"""Network-level property-based tests (hypothesis).

Mathematical invariants that must hold for *any* network the builder
can produce — linearity, translation covariance, mode/engine parity —
checked over randomly drawn architectures and data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Network, SGD
from repro.graph import build_layered_network
from repro.tensor import correlate_valid


def linear_net(spec, width, kernel, seed):
    graph = build_layered_network(spec, width=width, kernel=kernel,
                                  transfer="linear")
    return Network(graph, input_shape=(10, 10, 10), conv_mode="direct",
                   seed=seed)


@given(width=st.integers(1, 3), seed=st.integers(0, 100),
       scale=st.floats(-3, 3))
@settings(max_examples=15)
def test_linear_network_is_homogeneous(width, seed, scale):
    """With linear transfers and zero biases the whole network is a
    linear operator: f(a*x) = a*f(x)."""
    net = linear_net("CTC", width, 2, seed)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal((10, 10, 10))
    base = net.forward(x)
    scaled = net.forward(scale * x)
    for k in base:
        np.testing.assert_allclose(scaled[k], scale * base[k], atol=1e-9)


@given(width=st.integers(1, 3), seed=st.integers(0, 100))
@settings(max_examples=15)
def test_linear_network_is_additive(width, seed):
    """f(x + y) = f(x) + f(y) for linear nets."""
    net = linear_net("CTC", width, 2, seed)
    rng = np.random.default_rng(seed + 2)
    x = rng.standard_normal((10, 10, 10))
    y = rng.standard_normal((10, 10, 10))
    fx = net.forward(x)
    fy = net.forward(y)
    fxy = net.forward(x + y)
    for k in fx:
        np.testing.assert_allclose(fxy[k], fx[k] + fy[k], atol=1e-9)


@given(seed=st.integers(0, 200), shift=st.integers(1, 3))
@settings(max_examples=15)
def test_translation_covariance(seed, shift):
    """Valid ConvNets are translation covariant: shifting the input
    window shifts the output window (checked by evaluating a larger
    input and comparing interior crops)."""
    graph = build_layered_network("CTC", width=2, kernel=2,
                                  transfer="tanh")
    big_net = Network(graph, input_shape=(12, 12, 12), conv_mode="direct",
                      seed=seed)
    rng = np.random.default_rng(seed + 3)
    big = rng.standard_normal((12, 12, 12))
    out_big = big_net.forward(big)

    graph2 = build_layered_network("CTC", width=2, kernel=2,
                                   transfer="tanh")
    small_net = Network(graph2, input_shape=(12 - shift, 12, 12),
                        conv_mode="direct", seed=seed)
    from repro.core import copy_parameters
    copy_parameters(big_net, small_net)
    out_small = small_net.forward(big[shift:])
    for k in out_big:
        np.testing.assert_allclose(out_small[k], out_big[k][shift:],
                                   atol=1e-9)


@given(seed=st.integers(0, 500),
       spec=st.sampled_from(["CTC", "CTMC", "CMC"]),
       transfer=st.sampled_from(["relu", "tanh", "logistic"]))
@settings(max_examples=10)
def test_fft_direct_parity_random_architectures(seed, spec, transfer):
    """FFT and direct modes agree for random (spec, transfer, seed)."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((12, 12, 12))
    outs = []
    for mode in ("direct", "fft"):
        graph = build_layered_network(spec, width=2, kernel=2, window=2,
                                      transfer=transfer)
        net = Network(graph, input_shape=(12, 12, 12), conv_mode=mode,
                      seed=seed)
        outs.append(net.forward(x))
    for k in outs[0]:
        np.testing.assert_allclose(outs[0][k], outs[1][k], atol=1e-9)


@given(seed=st.integers(0, 500))
@settings(max_examples=10)
def test_single_conv_network_equals_raw_convolution(seed):
    """A 1-edge conv network is exactly correlate_valid with its
    kernel."""
    graph = build_layered_network("C", width=1, kernel=3)
    net = Network(graph, input_shape=(9, 9, 9), conv_mode="direct",
                  seed=seed)
    rng = np.random.default_rng(seed + 9)
    x = rng.standard_normal((9, 9, 9))
    out = net.forward(x)
    kernel = list(net.kernels().values())[0]
    expected = correlate_valid(x, kernel)
    np.testing.assert_allclose(list(out.values())[0], expected, atol=1e-12)


@given(seed=st.integers(0, 300), rounds=st.integers(1, 3))
@settings(max_examples=8)
def test_training_determinism_property(seed, rounds):
    """Same seed + same data => identical training trajectories."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((10, 10, 10))

    def run():
        graph = build_layered_network("CTC", width=2, kernel=2,
                                      transfer="tanh")
        net = Network(graph, input_shape=(10, 10, 10), seed=seed,
                      optimizer=SGD(learning_rate=0.01))
        targets = {n.name: np.zeros(n.shape) for n in net.output_nodes}
        return [net.train_step(x, targets) for _ in range(rounds)]

    np.testing.assert_array_equal(run(), run())


@given(seed=st.integers(0, 300))
@settings(max_examples=8)
def test_loss_gradient_direction_property(seed):
    """One small SGD step on a fixed sample never increases the loss
    by more than numerical noise (descent property for small lr)."""
    rng = np.random.default_rng(seed)
    graph = build_layered_network("CTC", width=2, kernel=2,
                                  transfer="tanh")
    net = Network(graph, input_shape=(8, 8, 8), seed=seed,
                  optimizer=SGD(learning_rate=1e-5))
    x = rng.standard_normal((8, 8, 8))
    targets = {n.name: rng.standard_normal(n.shape)
               for n in net.output_nodes}
    first = net.train_step(x, targets)
    net.synchronize()
    second = net.train_step(x, targets)
    assert second <= first * (1 + 1e-6)
