"""Model validation: the discrete-event simulator against the live
engine.

The DES substitutes for the paper's physical machines (DESIGN.md), so
its *relative* predictions should be consistent with what the real
threaded engine does on this host where comparable: task counts, the
work split between task families, and the qualitative effect of more
parallel slack.
"""

import numpy as np
import pytest

from repro.core import Network, SGD
from repro.graph import build_layered_network, build_task_graph
from repro.scheduler import TraceRecorder
from repro.simulate import MachineSpec, simulate_schedule


def traced_round(width=3, conv_mode="direct"):
    rec = TraceRecorder()
    graph = build_layered_network("CTMCT", width=width, kernel=3, window=2,
                                  transfer="tanh")
    net = Network(graph, input_shape=(16, 16, 16), conv_mode=conv_mode,
                  seed=0, recorder=rec, optimizer=SGD(learning_rate=1e-4))
    rng = np.random.default_rng(0)
    x = rng.standard_normal((16, 16, 16))
    targets = {n.name: np.zeros(n.shape) for n in net.output_nodes}
    net.train_step(x, targets)
    net.synchronize()
    net.close()
    return graph, rec


class TestTaskAccounting:
    def test_live_engine_runs_what_the_model_predicts(self):
        """Task counts: the live engine executes (at least) the
        forward/backward/lossgrad/provider tasks the task-graph model
        enumerates — updates may be folded into FORCEd forward tasks,
        and FFT-mode node transforms happen inside edge tasks."""
        graph, rec = traced_round()
        tg = build_task_graph(graph, conv_mode="direct")
        kinds = tg.count_kinds()
        families = {}
        for r in rec.records():
            families[r.family] = families.get(r.family, 0) + 1
        assert families["fwd"] == kinds["forward"]
        assert families["bwd"] == kinds["backward"]
        assert families["lossgrad"] == kinds["lossgrad"]
        assert families["provider"] == kinds["provider"]

    def test_work_split_correlates_with_flop_model(self):
        """The measured fwd:bwd wall-time ratio should be within a
        small factor of the FLOP model's prediction (both passes do
        the same direct convolutions here)."""
        graph, rec = traced_round()
        summary = rec.summary()
        measured = (summary.time_per_family["fwd"]
                    / summary.time_per_family["bwd"])
        tg = build_task_graph(graph, conv_mode="direct")
        fwd = sum(c for c, k in zip(tg.costs, tg.kinds) if k == "forward")
        bwd = sum(c for c, k in zip(tg.costs, tg.kinds) if k == "backward")
        modelled = fwd / bwd
        assert 0.3 < measured / modelled < 3.0


class TestRelativePredictions:
    def test_wider_network_more_simulated_parallelism_and_more_live_tasks(self):
        """Both the model and reality agree that wider networks expose
        more parallel work."""
        host = MachineSpec(name="h", cores=4, threads=4, ghz=1.0,
                           yield_tier1=0.0, sync_overhead=0.0)
        speedups = {}
        live_tasks = {}
        for width in (2, 6):
            graph, rec = traced_round(width=width)
            tg = build_task_graph(graph, conv_mode="direct")
            speedups[width] = simulate_schedule(tg, host, 4).speedup
            live_tasks[width] = rec.summary().tasks
        assert speedups[6] >= speedups[2]
        assert live_tasks[6] > live_tasks[2]

    def test_simulated_speedup_bounded_by_brent(self):
        """DES makespan can never beat max(T1/P, Tinf) — the Brent /
        critical-path lower bound."""
        graph, _ = traced_round(width=4)
        tg = build_task_graph(graph, conv_mode="direct")
        host = MachineSpec(name="h", cores=8, threads=8, ghz=1.0,
                           yield_tier1=0.0, sync_overhead=0.0)
        result = simulate_schedule(tg, host, 8)
        lower = max(tg.total_cost / 8, tg.critical_path_cost())
        assert result.makespan >= lower * 0.999
