"""Failure injection: errors raised inside tasks must surface to the
caller, on both engines, without deadlocking."""

import numpy as np
import pytest

from repro.core import (
    CustomOp,
    Network,
    SGD,
    register_custom_op,
    unregister_custom_op,
)
from repro.graph import ComputationGraph, build_layered_network


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    for name in ("boom-fwd", "boom-bwd"):
        unregister_custom_op(name)


def failing_graph(where: str):
    """Graph whose custom edge raises in forward or backward."""

    def fwd(x, state):
        if where == "forward":
            raise RuntimeError("injected forward failure")
        return x + 0.0

    def bwd(g, x, y, state):
        if where == "backward":
            raise RuntimeError("injected backward failure")
        return g + 0.0

    register_custom_op(CustomOp(f"boom-{where[:3]}", fwd, bwd),
                       replace=True)
    g = ComputationGraph()
    g.add_node("in")
    g.add_node("a")
    g.add_node("out")
    g.add_edge("c", "in", "a", "conv", kernel=2)
    g.add_edge("u", "a", "out", "custom", op=f"boom-{where[:3]}")
    return g


class TestSerialEngine:
    @pytest.mark.parametrize("where", ["forward", "backward"])
    def test_error_propagates(self, rng, where):
        net = Network(failing_graph(where), input_shape=(6, 6, 6), seed=0)
        x = rng.standard_normal((6, 6, 6))
        t = np.zeros(net.nodes["out"].shape)
        with pytest.raises(RuntimeError, match="injected"):
            net.train_step(x, t)


class TestThreadedEngine:
    def test_forward_error_propagates(self, rng):
        net = Network(failing_graph("forward"), input_shape=(6, 6, 6),
                      seed=0, num_workers=2)
        x = rng.standard_normal((6, 6, 6))
        t = np.zeros(net.nodes["out"].shape)
        with pytest.raises(RuntimeError, match="injected"):
            net.train_step(x, t)

    def test_backward_error_propagates(self, rng):
        net = Network(failing_graph("backward"), input_shape=(6, 6, 6),
                      seed=0, num_workers=2)
        x = rng.standard_normal((6, 6, 6))
        t = np.zeros(net.nodes["out"].shape)
        with pytest.raises(RuntimeError, match="injected"):
            net.train_step(x, t)

    def test_next_round_after_error_raises_promptly(self, rng):
        net = Network(failing_graph("forward"), input_shape=(6, 6, 6),
                      seed=0, num_workers=2)
        x = rng.standard_normal((6, 6, 6))
        t = np.zeros(net.nodes["out"].shape)
        with pytest.raises(RuntimeError):
            net.train_step(x, t)
        # The engine is dead; a new round must fail fast, not hang.
        with pytest.raises(RuntimeError):
            net.train_step(x, t)


class TestInvalidData:
    def test_nan_inputs_produce_nan_loss_not_crash(self, rng):
        graph = build_layered_network("CTC", width=2, kernel=2,
                                      transfer="tanh")
        net = Network(graph, input_shape=(8, 8, 8), seed=0,
                      optimizer=SGD(learning_rate=0.01))
        x = np.full((8, 8, 8), np.nan)
        t = {n.name: np.zeros(n.shape) for n in net.output_nodes}
        loss = net.train_step(x, t)
        assert np.isnan(loss)

    def test_forward_with_wrong_dtype_coerced(self, rng):
        graph = build_layered_network("CT", width=1, kernel=2)
        net = Network(graph, input_shape=(6, 6, 6), seed=0)
        out = net.forward(np.ones((6, 6, 6), dtype=np.float32))
        assert list(out.values())[0].dtype == np.float64
