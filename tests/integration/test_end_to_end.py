"""End-to-end integration tests: the full system exercised the way the
paper uses it."""

import numpy as np
import pytest

from repro import (
    Network,
    PatchProvider,
    RandomProvider,
    SGD,
    Trainer,
    build_layered_network,
)
from repro.data import make_cell_volume, pixel_error


class TestPaper3DArchitecture:
    """The Section VIII 3D benchmark net, trained for real (small
    width/input for test speed)."""

    def test_trains_and_infers(self, rng):
        graph = build_layered_network("CTMCTMCTCT", width=2, kernel=3,
                                      window=2, skip_kernels=True,
                                      transfer="relu",
                                      final_transfer="linear",
                                      output_nodes=1)
        net = Network(graph, input_shape=(30, 30, 30), conv_mode="direct",
                      seed=0, optimizer=SGD(learning_rate=1e-4))
        provider = RandomProvider((30, 30, 30),
                                  net.output_nodes[0].shape, seed=1)
        report = Trainer(net, provider).run(rounds=3, warmup=1)
        assert report.rounds == 3
        assert all(np.isfinite(l) for l in report.losses)
        x, _ = provider.sample()
        out = net.forward(x)
        assert list(out.values())[0].shape == net.output_nodes[0].shape
        net.close()


class TestBoundaryDetectionPipeline:
    def test_learns_above_chance(self, rng):
        """Short version of examples/boundary_detection_3d.py: the loss
        must drop and held-out pixel error must beat chance = 0.5."""
        volume = make_cell_volume(shape=36, num_cells=10, noise=0.05,
                                  seed=1)
        volume.image[:] = ((volume.image - volume.image.mean())
                           / volume.image.std())
        graph = build_layered_network("CTCT", width=4, kernel=3,
                                      transfer="tanh",
                                      final_transfer="linear",
                                      output_nodes=1)
        net = Network(graph, input_shape=(16, 16, 16), conv_mode="auto",
                      loss="binary-logistic", seed=0,
                      optimizer=SGD(learning_rate=2e-3, momentum=0.9))
        out_shape = net.output_nodes[0].shape
        provider = PatchProvider(volume, (16, 16, 16), out_shape, seed=2)
        report = Trainer(net, provider).run(rounds=40)
        assert np.mean(report.losses[-5:]) < np.mean(report.losses[:5])

        out_name = net.output_nodes[0].name
        errors = []
        for _ in range(5):
            patch, target = provider.sample()
            logits = net.forward(patch)[out_name]
            prob = 1 / (1 + np.exp(-logits))
            errors.append(pixel_error(prob, target))
        assert np.mean(errors) < 0.5
        net.close()


class TestMultiWorkerDeterminism:
    @pytest.mark.parametrize("scheduler", ["priority", "fifo",
                                           "work-stealing"])
    def test_full_training_parity_across_engines(self, rng, scheduler):
        """5 rounds of training must produce bit-identical weights on
        the serial engine and any threaded scheduler (float addition
        order is fixed by the wait-free sum's in-order determinism in
        our per-round reset design — contributions commute only up to
        fp rounding, so we allow 1e-8)."""
        x = rng.standard_normal((12, 12, 12))

        def final_kernels(num_workers, sched="priority"):
            graph = build_layered_network("CTMCT", width=3, kernel=2,
                                          window=2, transfer="tanh")
            net = Network(graph, input_shape=(12, 12, 12), seed=3,
                          num_workers=num_workers, scheduler=sched,
                          conv_mode="fft",
                          optimizer=SGD(learning_rate=0.01))
            targets = {n.name: np.zeros(n.shape) for n in net.output_nodes}
            for _ in range(5):
                net.train_step(x, targets)
            net.synchronize()
            kernels = net.kernels()
            net.close()
            return kernels

        ref = final_kernels(1)
        got = final_kernels(3, scheduler)
        for k in ref:
            np.testing.assert_allclose(ref[k], got[k], atol=1e-8)


class TestMemoizationAccounting:
    def test_memoized_round_uses_fewer_ffts(self, rng):
        """Count actual FFT computations per round with and without
        memoization — the Table II '(Memoized)' effect in vivo."""

        def fft_computes(memoize):
            graph = build_layered_network("CTC", width=3, kernel=2,
                                          transfer="tanh")
            net = Network(graph, input_shape=(10, 10, 10),
                          conv_mode="fft", memoize=memoize, seed=0)
            x = rng.standard_normal((10, 10, 10))
            targets = {n.name: np.zeros(n.shape) for n in net.output_nodes}
            net.train_step(x, targets)
            net.synchronize()
            return net.cache.stats.computed

        assert fft_computes(True) < fft_computes(False)

    def test_memoized_spectra_reused_across_passes(self, rng):
        graph = build_layered_network("CTC", width=3, kernel=2)
        net = Network(graph, input_shape=(10, 10, 10), conv_mode="fft",
                      seed=0)
        x = rng.standard_normal((10, 10, 10))
        targets = {n.name: np.zeros(n.shape) for n in net.output_nodes}
        net.train_step(x, targets)
        net.synchronize()
        assert net.cache.stats.reuse_fraction > 0.3


class TestArbitraryTopology:
    def test_skip_connection_network(self, rng):
        """'ZNN can efficiently train a ConvNet with an arbitrary
        topology' — a residual-style skip via convergent convs."""
        from repro.graph import ComputationGraph
        g = ComputationGraph()
        g.add_node("in")
        g.add_node("mid")
        g.add_node("midT")
        g.add_node("out")
        g.add_edge("c1", "in", "mid", "conv", kernel=3)
        g.add_edge("t1", "mid", "midT", "transfer", transfer="tanh")
        g.add_edge("c2", "midT", "out", "conv", kernel=3)
        g.add_edge("skip", "in", "out", "conv", kernel=5)  # same shrink
        net = Network(g, input_shape=(12, 12, 12), seed=0,
                      optimizer=SGD(learning_rate=1e-3))
        x = rng.standard_normal((12, 12, 12))
        t = np.zeros(net.nodes["out"].shape)
        losses = [net.train_step(x, t) for _ in range(10)]
        assert losses[-1] < losses[0]
