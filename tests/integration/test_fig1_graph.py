"""Fig 1 — the paper's illustrative computation graph, end to end.

The figure shows a general DAG: one input image, edges representing
convolution (red), transfer function (green), and max pooling/filtering
(blue), with convergent convolutions summing at nodes, and two output
images.  We build a faithful small instance, train it, and verify every
gradient — exercising general-topology support (Section II: "ZNN works
for general computation graphs").
"""

import numpy as np
import pytest

from repro.core import Network, SGD, check_gradients
from repro.graph import ComputationGraph, build_task_graph
from repro.graph.ordering import forward_priorities


@pytest.fixture(scope="module")
def fig1_graph():
    """input -> two parallel conv branches -> transfer -> filter,
    re-converging by convolution into two output nodes."""
    g = ComputationGraph()
    g.add_node("input", layer=0)
    for b in ("a", "b"):
        g.add_node(f"conv_{b}", layer=1)
        g.add_node(f"xfer_{b}", layer=2)
        g.add_node(f"filt_{b}", layer=3)
        g.add_edge(f"c_{b}", "input", f"conv_{b}", "conv", kernel=3)
        g.add_edge(f"t_{b}", f"conv_{b}", f"xfer_{b}", "transfer",
                   transfer="tanh")
        g.add_edge(f"f_{b}", f"xfer_{b}", f"filt_{b}", "filter", window=2)
    for o in ("out1", "out2"):
        g.add_node(o, layer=4)
        for b in ("a", "b"):
            g.add_edge(f"c_{b}_{o}", f"filt_{b}", o, "conv", kernel=2)
    g.validate()
    return g


class TestStructure:
    def test_two_outputs_one_input(self, fig1_graph):
        assert len(fig1_graph.input_nodes) == 1
        assert len(fig1_graph.output_nodes) == 2

    def test_convergent_edges_are_convolutions(self, fig1_graph):
        """The Section II property holds for this graph."""
        assert fig1_graph.check_convnet_properties() == []

    def test_shapes(self, fig1_graph):
        fig1_graph.propagate_shapes(12)
        # conv3 -> 10, filter2 -> 9, conv2 -> 8
        assert fig1_graph.nodes["out1"].shape == (8, 8, 8)

    def test_task_graph_counts(self, fig1_graph):
        fig1_graph.propagate_shapes(12)
        tg = build_task_graph(fig1_graph, conv_mode="direct")
        kinds = tg.count_kinds()
        assert kinds["lossgrad"] == 2
        assert kinds["forward"] == len(fig1_graph.edges)
        tg.validate()

    def test_priorities_shared_at_convergence(self, fig1_graph):
        fp = forward_priorities(fig1_graph)
        assert fp["c_a_out1"] == fp["c_b_out1"]
        assert fp["c_a_out2"] == fp["c_b_out2"]


class TestExecution:
    @pytest.mark.parametrize("mode,workers", [("direct", 1), ("fft", 1),
                                              ("fft", 3)])
    def test_trains(self, fig1_graph, rng, mode, workers):
        net = Network(fig1_graph, input_shape=(12, 12, 12), conv_mode=mode,
                      num_workers=workers, seed=0,
                      optimizer=SGD(learning_rate=1e-4))
        x = rng.standard_normal((12, 12, 12))
        targets = {"out1": np.zeros((8, 8, 8)), "out2": np.zeros((8, 8, 8))}
        losses = [net.train_step(x, targets) for _ in range(6)]
        net.close()
        assert losses[-1] < losses[0]

    def test_gradients_correct(self, fig1_graph, rng):
        net = Network(fig1_graph, input_shape=(12, 12, 12),
                      conv_mode="direct", seed=3)
        x = rng.standard_normal((12, 12, 12))
        targets = {"out1": rng.standard_normal((8, 8, 8)),
                   "out2": rng.standard_normal((8, 8, 8))}
        report = check_gradients(net, x, targets, kernel_samples=1)
        assert report.ok, report.failures

    def test_outputs_differ_between_heads(self, fig1_graph, rng):
        net = Network(fig1_graph, input_shape=(12, 12, 12), seed=1)
        out = net.forward(rng.standard_normal((12, 12, 12)))
        assert not np.allclose(out["out1"], out["out2"])
