"""Thread-local allocator tests (Section VII-C future work)."""

import threading

import numpy as np
import pytest

from repro.memory import PoolAllocator, ThreadLocalAllocator


class TestLocalFastPath:
    def test_free_then_alloc_hits_local(self):
        alloc = ThreadLocalAllocator()
        a = alloc.allocate_array((8, 8, 8))
        alloc.deallocate_array(a)
        alloc.allocate_array((8, 8, 8))
        assert alloc.local_hits == 1
        # the shared pool never saw the chunk come back
        assert alloc.backing.stats.deallocations == 0

    def test_first_allocation_goes_global(self):
        alloc = ThreadLocalAllocator()
        alloc.allocate_array((4, 4, 4))
        assert alloc.global_requests == 1
        assert alloc.local_hits == 0

    def test_capacity_overflow_to_global(self):
        alloc = ThreadLocalAllocator(local_capacity=2)
        arrays = [alloc.allocate_array((4, 4, 4)) for _ in range(4)]
        for a in arrays:
            alloc.deallocate_array(a)
        # 2 kept locally, 2 overflowed
        assert alloc.backing.stats.deallocations == 2
        assert sum(alloc.local_chunks().values()) == 2

    def test_zero_capacity_degenerates_to_global(self):
        alloc = ThreadLocalAllocator(local_capacity=0)
        a = alloc.allocate_array((4, 4, 4))
        alloc.deallocate_array(a)
        alloc.allocate_array((4, 4, 4))
        assert alloc.local_hits == 0
        assert alloc.backing.stats.pool_hits == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ThreadLocalAllocator(local_capacity=-1)

    def test_custom_backing(self):
        backing = PoolAllocator(alignment=64)
        alloc = ThreadLocalAllocator(backing=backing)
        alloc.allocate_array((4, 4, 4))
        assert backing.stats.system_allocations == 1


class TestThreadIsolation:
    def test_each_thread_has_its_own_pool(self):
        alloc = ThreadLocalAllocator()
        a = alloc.allocate_array((8, 8, 8))
        alloc.deallocate_array(a)  # main thread's local pool now holds it

        results = {}

        def other():
            b = alloc.allocate_array((8, 8, 8))
            results["hits"] = alloc.local_hits
            alloc.deallocate_array(b)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        # the other thread could NOT see the main thread's local chunk
        assert results["hits"] == 0
        # main thread's chunk is still there
        assert sum(alloc.local_chunks().values()) == 1

    def test_concurrent_usage_safe(self):
        alloc = ThreadLocalAllocator(local_capacity=8)
        errors = []

        def worker():
            try:
                for _ in range(100):
                    a = alloc.allocate_array((4, 4, 4))
                    a[0, 0, 0] = 1.0
                    alloc.deallocate_array(a)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert alloc.local_hit_rate > 0.9


class TestArraySemantics:
    def test_array_usable(self):
        alloc = ThreadLocalAllocator()
        a = alloc.allocate_array((3, 3, 3))
        a[:] = 2.0
        assert a.sum() == 54.0

    def test_double_free_rejected(self):
        alloc = ThreadLocalAllocator()
        a = alloc.allocate_array((2, 2, 2))
        alloc.deallocate_array(a)
        with pytest.raises(ValueError):
            alloc.deallocate_array(a)

    def test_foreign_array_rejected(self):
        a1 = ThreadLocalAllocator()
        a2 = ThreadLocalAllocator()
        arr = a1.allocate_array((2, 2, 2))
        with pytest.raises(ValueError):
            a2.deallocate_array(arr)
