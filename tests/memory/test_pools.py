"""Pooled allocator tests (Section VII-C semantics)."""

import threading

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import (
    PoolAllocator,
    image_allocator,
    reset_global_allocators,
    small_object_allocator,
)
from repro.memory.pools import _round_up_pow2


class TestRounding:
    @pytest.mark.parametrize("n,size,idx", [
        (1, 1, 0), (2, 2, 1), (3, 4, 2), (4, 4, 2), (5, 8, 3),
        (1023, 1024, 10), (1024, 1024, 10), (1025, 2048, 11),
    ])
    def test_round_up(self, n, size, idx):
        assert _round_up_pow2(n) == (size, idx)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            _round_up_pow2(0)


class TestAllocateDeallocate:
    def test_chunk_at_least_requested(self):
        alloc = PoolAllocator()
        chunk, idx = alloc.allocate(100)
        assert chunk.nbytes == 128 and idx == 7

    def test_reuse_after_free(self):
        alloc = PoolAllocator()
        chunk, idx = alloc.allocate(64)
        alloc.deallocate(chunk, idx)
        chunk2, _ = alloc.allocate(64)
        assert chunk2 is chunk
        assert alloc.stats.pool_hits == 1

    def test_never_returns_memory_to_system(self):
        alloc = PoolAllocator()
        held = []
        for _ in range(5):
            held.append(alloc.allocate(256))
        for chunk, idx in held:
            alloc.deallocate(chunk, idx)
        before = alloc.held_bytes()
        for _ in range(5):
            alloc.allocate(256)
        assert alloc.held_bytes() == before  # all served from pools

    def test_different_sizes_different_pools(self):
        alloc = PoolAllocator()
        c1, i1 = alloc.allocate(64)
        c2, i2 = alloc.allocate(4096)
        assert i1 != i2
        alloc.deallocate(c1, i1)
        alloc.deallocate(c2, i2)
        assert alloc.pooled_chunks()[i1] == 1
        assert alloc.pooled_chunks()[i2] == 1

    def test_deallocate_wrong_pool_rejected(self):
        alloc = PoolAllocator()
        chunk, idx = alloc.allocate(64)
        with pytest.raises(ValueError):
            alloc.deallocate(chunk, idx + 1)

    def test_huge_request_rejected(self):
        alloc = PoolAllocator()
        with pytest.raises(MemoryError):
            alloc.allocate(2 ** 40)

    def test_overhead_bounded_by_two(self):
        alloc = PoolAllocator()
        for n in (3, 5, 9, 17, 33, 100, 1000):
            alloc.allocate(n)
        assert alloc.stats.overhead_ratio < 2.0


class TestAlignment:
    @pytest.mark.parametrize("alignment", [1, 16, 64, 256])
    def test_chunks_aligned(self, alignment):
        alloc = PoolAllocator(alignment=alignment)
        for size in (8, 100, 5000):
            chunk, _ = alloc.allocate(size)
            assert chunk.ctypes.data % alignment == 0

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            PoolAllocator(alignment=48)


class TestArrays:
    def test_allocate_array_shape_dtype(self):
        alloc = PoolAllocator()
        a = alloc.allocate_array((3, 4, 5), dtype=np.float64)
        assert a.shape == (3, 4, 5) and a.dtype == np.float64

    def test_array_usable(self):
        alloc = PoolAllocator()
        a = alloc.allocate_array((4, 4, 4))
        a[:] = 7.0
        assert a.sum() == 7.0 * 64

    def test_array_roundtrip_reuses_chunk(self):
        alloc = PoolAllocator()
        a = alloc.allocate_array((8, 8, 8))
        alloc.deallocate_array(a)
        b = alloc.allocate_array((8, 8, 8))
        assert alloc.stats.pool_hits == 1
        assert b.shape == (8, 8, 8)

    def test_double_free_rejected(self):
        alloc = PoolAllocator()
        a = alloc.allocate_array((2, 2, 2))
        alloc.deallocate_array(a)
        with pytest.raises(ValueError):
            alloc.deallocate_array(a)

    def test_view_not_deallocatable(self):
        alloc = PoolAllocator()
        a = alloc.allocate_array((4, 4, 4))
        view = a[1:]
        with pytest.raises(ValueError):
            alloc.deallocate_array(view)

    def test_foreign_array_rejected(self):
        alloc1 = PoolAllocator()
        alloc2 = PoolAllocator()
        a = alloc1.allocate_array((2, 2, 2))
        with pytest.raises(ValueError):
            alloc2.deallocate_array(a)

    def test_scalar_shape(self):
        alloc = PoolAllocator()
        a = alloc.allocate_array(10)
        assert a.shape == (10,)


class TestGlobalAllocators:
    def test_two_distinct_allocators(self):
        reset_global_allocators()
        assert image_allocator() is not small_object_allocator()

    def test_singletons(self):
        reset_global_allocators()
        assert image_allocator() is image_allocator()

    def test_image_allocator_simd_aligned(self):
        reset_global_allocators()
        assert image_allocator().alignment == 64
        assert small_object_allocator().alignment == 1


class TestThreadSafety:
    def test_concurrent_allocate_free(self):
        alloc = PoolAllocator()
        errors = []

        def worker():
            try:
                for _ in range(200):
                    a = alloc.allocate_array((4, 4, 4))
                    a[0, 0, 0] = 1.0
                    alloc.deallocate_array(a)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert alloc.stats.deallocations == 800


@given(sizes=st.lists(st.integers(1, 10_000), min_size=1, max_size=40))
def test_property_alloc_free_alloc_never_grows(sizes):
    """After freeing everything, re-allocating the same sizes draws
    entirely from the pools (system bytes constant)."""
    alloc = PoolAllocator()
    held = [alloc.allocate(s) for s in sizes]
    for chunk, idx in held:
        alloc.deallocate(chunk, idx)
    baseline = alloc.held_bytes()
    for s in sizes:
        alloc.allocate(s)
    assert alloc.held_bytes() == baseline
