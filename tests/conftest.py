"""Shared fixtures and hypothesis settings for the test suite."""

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One-core container: keep property-based runs small and un-timed.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng():
    """Deterministic per-test RNG."""
    return np.random.default_rng(12345)
