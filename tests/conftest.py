"""Shared fixtures and hypothesis settings for the test suite."""

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One-core container: keep property-based runs small and un-timed.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng():
    """Deterministic per-test RNG."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session", autouse=True)
def _repro_check_clean():
    """The REPRO_CHECK=1 CI lane's zero-violation assertion.

    When the suite runs with dynamic concurrency checking enabled, any
    lock-order / race violation recorded against the *environment*
    checking state fails the session at teardown.  Tests that provoke
    violations deliberately run against throwaway states (see
    ``tests/analysis/``) and never land here.
    """
    yield
    from repro.analysis.runtime import assert_clean, checking_enabled

    if checking_enabled():
        assert_clean()
