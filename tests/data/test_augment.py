"""Augmentation tests: transforms preserve input/target correspondence."""

import numpy as np
import pytest

from repro.data import (
    AugmentedProvider,
    FixedProvider,
    PatchProvider,
    apply_transform,
    make_cell_volume,
    random_rigid_transform,
)


class TestApplyTransform:
    def test_identity(self, rng):
        a = rng.standard_normal((3, 4, 4))
        out = apply_transform(a, ((False, False, False), False))
        np.testing.assert_array_equal(out, a)

    def test_single_flip(self, rng):
        a = rng.standard_normal((3, 4, 4))
        out = apply_transform(a, ((True, False, False), False))
        np.testing.assert_array_equal(out, a[::-1])

    def test_transpose(self, rng):
        a = rng.standard_normal((3, 4, 4))
        out = apply_transform(a, ((False, False, False), True))
        np.testing.assert_array_equal(out, np.swapaxes(a, 1, 2))

    def test_transform_is_involution_for_flips(self, rng):
        a = rng.standard_normal((3, 4, 4))
        t = ((True, False, True), False)
        np.testing.assert_array_equal(apply_transform(apply_transform(a, t),
                                                      t), a)

    def test_transpose_nonsquare_rejected(self, rng):
        with pytest.raises(ValueError):
            apply_transform(rng.standard_normal((3, 4, 5)),
                            ((False, False, False), True))

    def test_output_contiguous(self, rng):
        out = apply_transform(rng.standard_normal((3, 3, 3)),
                              ((True, True, True), True))
        assert out.flags["C_CONTIGUOUS"]


class TestRandomTransform:
    def test_range(self, rng):
        for _ in range(20):
            flips, transpose = random_rigid_transform(rng)
            assert len(flips) == 3
            assert all(isinstance(f, bool) for f in flips)
            assert isinstance(transpose, bool)

    def test_transpose_disabled(self, rng):
        assert all(not random_rigid_transform(rng, False)[1]
                   for _ in range(20))


class TestAugmentedProvider:
    def test_shapes_preserved(self, rng):
        base = FixedProvider([(rng.standard_normal((6, 8, 8)),
                               rng.standard_normal((2, 4, 4)))])
        aug = AugmentedProvider(base, seed=0)
        x, t = aug.sample()
        assert x.shape == (6, 8, 8) and t.shape == (2, 4, 4)

    def test_correspondence_preserved(self):
        """Augmenting an (image, image-copy) pair must keep them equal
        — i.e. the same transform hits both."""
        img = np.arange(4 * 4 * 4, dtype=float).reshape(4, 4, 4)
        base = FixedProvider([(img, img.copy())])
        aug = AugmentedProvider(base, seed=1)
        for _ in range(10):
            x, t = aug.sample()
            np.testing.assert_array_equal(x, t)

    def test_varies_between_samples(self, rng):
        img = rng.standard_normal((4, 4, 4))
        base = FixedProvider([(img, img.copy())])
        aug = AugmentedProvider(base, seed=2)
        samples = [aug.sample()[0] for _ in range(10)]
        assert any(not np.array_equal(samples[0], s) for s in samples[1:])

    def test_transpose_skipped_for_nonsquare(self, rng):
        base = FixedProvider([(rng.standard_normal((4, 4, 6)),
                               rng.standard_normal((2, 2, 4)))])
        aug = AugmentedProvider(base, allow_transpose=True, seed=0)
        for _ in range(8):
            x, t = aug.sample()
            assert x.shape == (4, 4, 6)

    def test_rejects_non_array_samples(self):
        aug = AugmentedProvider(FixedProvider([("x", "y")]), seed=0)
        with pytest.raises(TypeError):
            aug.sample()

    def test_boundary_statistics_preserved(self):
        """Flips/transposes must not change the membrane fraction of a
        patch-provider target."""
        volume = make_cell_volume(shape=24, num_cells=6, seed=0)
        base = PatchProvider(volume, (12, 12, 12), (6, 6, 6), seed=1)
        aug = AugmentedProvider(base, seed=2)
        for _ in range(5):
            _, t = aug.sample()
            assert set(np.unique(t)) <= {0.0, 1.0}

    def test_training_with_augmentation(self, rng):
        from repro.core import Network, SGD, Trainer
        from repro.graph import build_layered_network

        volume = make_cell_volume(shape=24, num_cells=6, seed=0)
        graph = build_layered_network("CTC", width=[2, 1], kernel=2,
                                      transfer="tanh",
                                      final_transfer="linear")
        net = Network(graph, input_shape=(10, 10, 10), seed=0,
                      loss="binary-logistic",
                      optimizer=SGD(learning_rate=1e-3))
        base = PatchProvider(volume, (10, 10, 10),
                             net.output_nodes[0].shape, seed=1)
        report = Trainer(net, AugmentedProvider(base, seed=2)).run(rounds=4)
        assert all(np.isfinite(l) for l in report.losses)
