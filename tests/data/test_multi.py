"""Multi-volume provider tests."""

import numpy as np
import pytest

from repro.data import FixedProvider, MultiVolumeProvider


def providers(n=3):
    return [FixedProvider([(f"x{i}", f"t{i}")]) for i in range(n)]


class TestSelection:
    def test_samples_from_all_eventually(self):
        multi = MultiVolumeProvider(providers(3), seed=0)
        seen = {multi.sample()[0] for _ in range(60)}
        assert seen == {"x0", "x1", "x2"}

    def test_uniform_by_default(self):
        multi = MultiVolumeProvider(providers(2), seed=1)
        for _ in range(400):
            multi.sample()
        fractions = multi.draw_fractions()
        assert abs(fractions[0] - 0.5) < 0.1

    def test_weighted(self):
        multi = MultiVolumeProvider(providers(2), weights=[9, 1], seed=2)
        for _ in range(400):
            multi.sample()
        fractions = multi.draw_fractions()
        assert fractions[0] > 0.8

    def test_zero_weight_never_drawn(self):
        multi = MultiVolumeProvider(providers(2), weights=[1, 0], seed=3)
        seen = {multi.sample()[0] for _ in range(30)}
        assert seen == {"x0"}

    def test_deterministic_by_seed(self):
        a = MultiVolumeProvider(providers(3), seed=7)
        b = MultiVolumeProvider(providers(3), seed=7)
        assert [a.sample()[0] for _ in range(10)] \
            == [b.sample()[0] for _ in range(10)]


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiVolumeProvider([])

    def test_weight_length_checked(self):
        with pytest.raises(ValueError):
            MultiVolumeProvider(providers(2), weights=[1, 2, 3])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            MultiVolumeProvider(providers(2), weights=[1, -1])

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            MultiVolumeProvider(providers(2), weights=[0, 0])

    def test_draw_fractions_empty(self):
        multi = MultiVolumeProvider(providers(2))
        assert multi.draw_fractions().sum() == 0


class TestTrainingIntegration:
    def test_training_across_volumes(self, rng):
        from repro.core import Network, SGD, Trainer
        from repro.data import PatchProvider, make_cell_volume
        from repro.graph import build_layered_network

        volumes = [make_cell_volume(shape=20, num_cells=5, seed=i)
                   for i in range(2)]
        graph = build_layered_network("CTC", width=[2, 1], kernel=2,
                                      transfer="tanh",
                                      final_transfer="linear")
        net = Network(graph, input_shape=(10, 10, 10), seed=0,
                      loss="binary-logistic",
                      optimizer=SGD(learning_rate=1e-3))
        out_shape = net.output_nodes[0].shape
        multi = MultiVolumeProvider(
            [PatchProvider(v, (10, 10, 10), out_shape, seed=i)
             for i, v in enumerate(volumes)], seed=9)
        report = Trainer(net, multi).run(rounds=6)
        assert all(np.isfinite(l) for l in report.losses)
        assert multi.draws.sum() == 6
