"""Boundary metric tests."""

import numpy as np
import pytest

from repro.data import boundary_scores, pixel_error


class TestPixelError:
    def test_perfect(self):
        t = np.array([[[1.0, 0.0]]])
        assert pixel_error(t, t) == 0.0

    def test_all_wrong(self):
        pred = np.array([[[1.0, 1.0]]])
        target = np.array([[[0.0, 0.0]]])
        assert pixel_error(pred, target) == 1.0

    def test_threshold(self):
        pred = np.array([[[0.4, 0.6]]])
        target = np.array([[[1.0, 1.0]]])
        assert pixel_error(pred, target, threshold=0.5) == 0.5
        assert pixel_error(pred, target, threshold=0.3) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pixel_error(np.zeros((2, 2, 2)), np.zeros((3, 3, 3)))


class TestBoundaryScores:
    def test_perfect_prediction(self):
        t = (np.arange(8).reshape(2, 2, 2) % 2).astype(float)
        s = boundary_scores(t, t)
        assert s.precision == s.recall == s.f1 == s.accuracy == 1.0

    def test_all_negative_prediction(self):
        pred = np.zeros((2, 2, 2))
        target = np.ones((2, 2, 2))
        s = boundary_scores(pred, target)
        assert s.recall == 0.0 and s.f1 == 0.0

    def test_known_confusion(self):
        pred = np.array([[[1.0, 1.0, 0.0, 0.0]]])
        target = np.array([[[1.0, 0.0, 1.0, 0.0]]])
        s = boundary_scores(pred, target)
        assert s.precision == 0.5
        assert s.recall == 0.5
        assert s.f1 == 0.5
        assert s.accuracy == 0.5

    def test_as_dict(self):
        s = boundary_scores(np.ones((1, 1, 1)), np.ones((1, 1, 1)))
        assert set(s.as_dict()) == {"precision", "recall", "f1", "accuracy"}

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            boundary_scores(np.zeros((2, 2, 2)), np.zeros((1, 2, 2)))
