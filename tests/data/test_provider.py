"""Data-provider tests."""

import numpy as np
import pytest

from repro.data import (
    FixedProvider,
    PatchProvider,
    RandomProvider,
    make_cell_volume,
)


class TestRandomProvider:
    def test_shapes(self):
        p = RandomProvider((8, 8, 8), (4, 4, 4), seed=0)
        x, t = p.sample()
        assert x.shape == (8, 8, 8) and t.shape == (4, 4, 4)

    def test_binary_targets(self):
        p = RandomProvider((4, 4, 4), (2, 2, 2), binary_targets=True,
                           seed=0)
        _, t = p.sample()
        assert set(np.unique(t)) <= {0.0, 1.0}

    def test_seeded_stream(self):
        a = RandomProvider((4, 4, 4), (2, 2, 2), seed=3)
        b = RandomProvider((4, 4, 4), (2, 2, 2), seed=3)
        xa, _ = a.sample()
        xb, _ = b.sample()
        np.testing.assert_array_equal(xa, xb)

    def test_samples_vary(self):
        p = RandomProvider((4, 4, 4), (2, 2, 2), seed=0)
        x1, _ = p.sample()
        x2, _ = p.sample()
        assert not np.array_equal(x1, x2)


class TestFixedProvider:
    def test_cycles(self):
        p = FixedProvider([("a", 1), ("b", 2)])
        assert [p.sample()[0] for _ in range(4)] == ["a", "b", "a", "b"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FixedProvider([])


class TestPatchProvider:
    @pytest.fixture(scope="class")
    def volume(self):
        return make_cell_volume(shape=32, num_cells=8, seed=0)

    def test_dense_shapes(self, volume):
        p = PatchProvider(volume, (16, 16, 16), (8, 8, 8), seed=0)
        x, t = p.sample()
        assert x.shape == (16, 16, 16) and t.shape == (8, 8, 8)

    def test_target_alignment_with_fov_offset(self, volume):
        """Output voxel (i) must be supervised by the label under the
        centre of its window: target == boundary at corner+offset+i."""
        p = PatchProvider(volume, (16, 16, 16), (8, 8, 8), seed=1)
        rngs = p.rng.bit_generator.state  # freeze, then re-derive corner
        x, t = p.sample()
        # locate the patch by exhaustive match (small volume)
        found = False
        for z in range(17):
            for y in range(17):
                for xx in range(17):
                    if np.array_equal(
                            volume.image[z:z + 16, y:y + 16, xx:xx + 16], x):
                        off = (16 - 8) // 2
                        expected = volume.boundary[z + off:z + off + 8,
                                                   y + off:y + off + 8,
                                                   xx + off:xx + off + 8]
                        np.testing.assert_array_equal(t, expected)
                        found = True
        assert found

    def test_sparse_lattice_targets(self, volume):
        p = PatchProvider(volume, (17, 17, 17), (3, 3, 3),
                          lattice_period=4, seed=0)
        x, t = p.sample()
        assert t.shape == (3, 3, 3)

    def test_patch_larger_than_volume_rejected(self, volume):
        with pytest.raises(ValueError):
            PatchProvider(volume, (64, 64, 64), (8, 8, 8))

    def test_output_span_exceeding_patch_rejected(self, volume):
        with pytest.raises(ValueError):
            PatchProvider(volume, (8, 8, 8), (16, 16, 16))

    def test_sparse_span_checked(self, volume):
        # span (o-1)*p+1 = 13 > patch 8
        with pytest.raises(ValueError):
            PatchProvider(volume, (8, 8, 8), (4, 4, 4), lattice_period=4)

    def test_targets_are_binary(self, volume):
        p = PatchProvider(volume, (12, 12, 12), (6, 6, 6), seed=0)
        _, t = p.sample()
        assert set(np.unique(t)) <= {0.0, 1.0}

    def test_patches_cover_volume(self, volume):
        """Different samples draw different corners."""
        p = PatchProvider(volume, (8, 8, 8), (4, 4, 4), seed=0)
        patches = [p.sample()[0] for _ in range(5)]
        assert any(not np.array_equal(patches[0], q) for q in patches[1:])


class TestPooledPatchProvider:
    @pytest.fixture
    def volume(self):
        from repro.data import make_cell_volume
        return make_cell_volume((24, 24, 24), seed=7)

    def test_pooled_matches_unpooled_values(self, volume):
        plain = PatchProvider(volume, (12, 12, 12), (6, 6, 6), seed=3)
        pooled = PatchProvider(volume, (12, 12, 12), (6, 6, 6), seed=3,
                               pooled=True)
        for _ in range(3):
            x0, t0 = plain.sample()
            x1, t1 = pooled.sample()
            np.testing.assert_array_equal(x0, x1)
            np.testing.assert_array_equal(t0, t1)

    def test_pooled_buffers_come_from_image_allocator(self, volume):
        from repro.memory.pools import image_allocator

        p = PatchProvider(volume, (12, 12, 12), (6, 6, 6), seed=0,
                          pooled=True)
        x, t = p.sample()
        assert getattr(x, "_allocator", None) is image_allocator()
        assert getattr(t, "_allocator", None) is image_allocator()

    def test_next_sample_recycles_previous_buffers(self, volume):
        from repro.memory.pools import image_allocator

        p = PatchProvider(volume, (12, 12, 12), (6, 6, 6), seed=0,
                          pooled=True)
        p.sample()
        before = image_allocator().stats.pool_hits
        p.sample()  # same shapes -> previous chunks come straight back
        assert image_allocator().stats.pool_hits >= before + 2

    def test_unpooled_default_keeps_samples_valid(self, volume):
        p = PatchProvider(volume, (12, 12, 12), (6, 6, 6), seed=0)
        x0, _ = p.sample()
        snapshot = x0.copy()
        p.sample()
        np.testing.assert_array_equal(x0, snapshot)
