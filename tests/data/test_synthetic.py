"""Synthetic cell-volume tests."""

import numpy as np
import pytest

from repro.data import boundary_map_from_labels, make_cell_volume


class TestBoundaryMap:
    def test_uniform_labels_no_boundary(self):
        labels = np.zeros((4, 4, 4), dtype=int)
        assert boundary_map_from_labels(labels).sum() == 0

    def test_half_split_boundary_plane(self):
        labels = np.zeros((4, 4, 4), dtype=int)
        labels[2:] = 1
        b = boundary_map_from_labels(labels)
        # the two voxel layers adjacent to the cut are boundary
        assert b[1].all() and b[2].all()
        assert b[0].sum() == 0 and b[3].sum() == 0

    def test_binary_values(self):
        labels = np.arange(27).reshape(3, 3, 3)
        b = boundary_map_from_labels(labels)
        assert set(np.unique(b)) <= {0.0, 1.0}


class TestMakeCellVolume:
    def test_shapes_consistent(self):
        vol = make_cell_volume(shape=16, num_cells=4, seed=0)
        assert vol.image.shape == vol.labels.shape == vol.boundary.shape
        assert vol.shape == (16, 16, 16)

    def test_deterministic_by_seed(self):
        a = make_cell_volume(shape=12, num_cells=4, seed=5)
        b = make_cell_volume(shape=12, num_cells=4, seed=5)
        np.testing.assert_array_equal(a.image, b.image)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_cell_volume(shape=12, num_cells=4, seed=1)
        b = make_cell_volume(shape=12, num_cells=4, seed=2)
        assert not np.array_equal(a.labels, b.labels)

    def test_label_count(self):
        vol = make_cell_volume(shape=20, num_cells=6, seed=0)
        assert len(np.unique(vol.labels)) <= 6
        assert len(np.unique(vol.labels)) >= 2

    def test_boundary_fraction_reasonable(self):
        vol = make_cell_volume(shape=24, num_cells=10, seed=0)
        assert 0.02 < vol.boundary_fraction() < 0.6

    def test_membranes_darker_than_cytoplasm(self):
        vol = make_cell_volume(shape=24, num_cells=8, noise=0.0, seed=0)
        boundary_mean = vol.image[vol.boundary == 1].mean()
        interior_mean = vol.image[vol.boundary == 0].mean()
        assert boundary_mean < interior_mean

    def test_noise_increases_variance(self):
        quiet = make_cell_volume(shape=16, num_cells=4, noise=0.0, seed=0)
        noisy = make_cell_volume(shape=16, num_cells=4, noise=0.5, seed=0)
        assert noisy.image.std() > quiet.image.std()

    def test_anisotropic_distance(self):
        vol = make_cell_volume(shape=(8, 16, 16), num_cells=6,
                               anisotropy=(4.0, 1.0, 1.0), seed=0)
        assert vol.shape == (8, 16, 16)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make_cell_volume(shape=8, num_cells=0)
        with pytest.raises(ValueError):
            make_cell_volume(shape=8, anisotropy=(0, 1, 1))

    def test_2d_volume(self):
        vol = make_cell_volume(shape=(1, 32, 32), num_cells=6, seed=0)
        assert vol.shape == (1, 32, 32)
        assert vol.boundary_fraction() > 0
