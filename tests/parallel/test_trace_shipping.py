"""Cross-process span propagation: coordinator round contexts reach
spawn workers, workers ship their spans home, and the merged stream
forms one connected tree per round.

``ParallelTrainer`` spawns ``workers - 1`` children (the coordinator
fills shard 0 itself), so single-process behaviour — round spans,
inline gradient task spans, barrier accounting — is covered at
``workers=1`` in the tier-1 run, and the actual pipe shipping needs
``workers >= 2`` and is marked ``slow``.  Spawned children inherit
``REPRO_TRACING`` through the environment (spawn re-reads
``os.environ``), so the fixture sets both the env var and an enabled
global tracer in the parent.
"""

import pytest

from repro.data.provider import RandomProvider
from repro.observability.tracing import Tracer, get_tracer, set_tracer
from repro.parallel import ModelConfig, ParallelTrainer
from repro.resilience.faults import clear_plan

INPUT = (10, 10, 10)
OUT = (8, 8, 8)
CFG = ModelConfig(
    input_shape=INPUT,
    spec="CT",
    layered_kwargs={"width": 2, "kernel": 3, "transfer": "tanh",
                    "final_transfer": "tanh", "output_nodes": 1},
    loss="euclidean",
    seed=13,
    learning_rate=0.005,
    momentum=0.9)
PROVIDER_ARGS = (INPUT, OUT, False, None)
ROUNDS = 2


@pytest.fixture
def tracer(monkeypatch):
    monkeypatch.setenv("REPRO_TRACING", "1")
    fresh = Tracer(enabled=True)
    previous = set_tracer(fresh)
    yield fresh
    set_tracer(previous)


def run_traced(workers, batch, **kwargs):
    trainer = ParallelTrainer(CFG, RandomProvider, PROVIDER_ARGS,
                              workers=workers, batch=batch,
                              worker_timeout=120.0, **kwargs)
    try:
        report = trainer.run(ROUNDS)
    finally:
        trainer.close()
    return report, get_tracer().spans()


def round_roots(spans):
    return [s for s in spans if s.name.startswith("round:")]


def assert_connected(spans):
    """Every span's parent must exist in the stream (or be a root)."""
    ids = {s.span_id for s in spans}
    orphans = [s for s in spans
               if s.parent_id is not None and s.parent_id not in ids]
    assert not orphans, \
        f"orphaned spans: {[(s.name, s.process) for s in orphans]}"


def chain_to_root(span, by_id):
    cursor, seen = span, set()
    while cursor.parent_id is not None:
        assert cursor.span_id not in seen, "parent cycle"
        seen.add(cursor.span_id)
        cursor = by_id[cursor.parent_id]
    return cursor


class TestCoordinatorRounds:
    def test_each_round_is_one_tree(self, tracer):
        _, spans = run_traced(1, 1)
        roots = round_roots(spans)
        assert len(roots) == ROUNDS
        assert all(s.process == "coordinator" for s in roots)
        assert all(s.parent_id is None for s in roots)
        # One trace per round, and nothing crosses between them.
        assert len({s.trace_id for s in roots}) == ROUNDS
        assert_connected(spans)

    def test_gradient_task_spans_chain_to_the_round(self, tracer):
        _, spans = run_traced(1, 1)
        by_id = {s.span_id: s for s in spans}
        fwd = [s for s in spans if s.category == "fwd"]
        assert fwd, "no fwd task spans recorded"
        for span in fwd:
            assert chain_to_root(span, by_id).name.startswith("round:")

    def test_barrier_wait_recorded_per_round(self, tracer):
        _, spans = run_traced(1, 1)
        barriers = [s for s in spans if s.name == "barrier.wait"]
        assert len(barriers) == ROUNDS
        root_ids = {s.span_id for s in round_roots(spans)}
        assert all(s.parent_id in root_ids for s in barriers)
        assert all(s.end >= s.start for s in barriers)

    def test_tracing_off_records_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACING", raising=False)
        previous = set_tracer(Tracer(enabled=False))
        try:
            trainer = ParallelTrainer(CFG, RandomProvider, PROVIDER_ARGS,
                                      workers=1, batch=1,
                                      worker_timeout=120.0)
            try:
                report = trainer.run(1)
            finally:
                trainer.close()
            assert len(report.losses) == 1
            assert len(get_tracer().spans()) == 0
        finally:
            set_tracer(previous)


@pytest.mark.slow
class TestWorkerShipping:
    def test_worker_spans_come_home_connected(self, tracer):
        _, spans = run_traced(2, 2)
        assert {"coordinator", "worker-1"} <= {s.process for s in spans}
        by_id = {s.span_id: s for s in spans}
        rounds = [s for s in spans if s.process == "worker-1"
                  and s.name == "worker.round"]
        assert len(rounds) == ROUNDS
        for wr in rounds:
            # worker.round is parented on the coordinator's round span
            # (the context travelled over the pipe).
            parent = by_id[wr.parent_id]
            assert parent.name.startswith("round:")
            assert parent.process == "coordinator"
            assert wr.trace_id == parent.trace_id
        shipped_fwd = [s for s in spans if s.process == "worker-1"
                       and s.category == "fwd"]
        assert shipped_fwd, "worker-1 shipped no task spans"
        for span in shipped_fwd:
            assert chain_to_root(span, by_id).name.startswith("round:")
        assert_connected(spans)

    def test_killed_worker_round_stays_connected(self, tracer,
                                                 monkeypatch):
        # The child kills itself at its first "worker" fault check,
        # before shipping anything; the coordinator recomputes the
        # orphaned slot.  The trace must survive: all rounds rooted,
        # no dangling parents from the dead process.
        monkeypatch.setenv("REPRO_FAULTS", "fail:worker:1")
        try:
            report, spans = run_traced(2, 2)
        finally:
            clear_plan()
        assert report.worker_deaths == 1
        roots = round_roots(spans)
        assert len(roots) == ROUNDS
        by_id = {s.span_id: s for s in spans}
        fwd = [s for s in spans if s.category == "fwd"]
        assert fwd, "coordinator recorded no gradient task spans"
        for span in fwd:
            assert chain_to_root(span, by_id).name.startswith("round:")
        assert all(s.process == "coordinator" for s in spans)
        assert_connected(spans)
