"""Fixed-order cross-process summation semantics."""

import numpy as np
import pytest

from repro.memory.shared_pool import SharedMemoryPool
from repro.parallel.summation import SharedOrderedSum
from repro.sync import reduce_in_order


@pytest.fixture
def pool():
    with SharedMemoryPool(name="t-sum") as p:
        yield p


def fill(grads, values):
    for i, value in enumerate(values):
        grads.slot(i)[:] = value
        grads.mark_filled(i)


class TestReduce:
    def test_matches_reduce_in_order(self, pool):
        rng = np.random.default_rng(3)
        grads = SharedOrderedSum.create(pool, 5, (4, 3))
        arrays = [rng.standard_normal((4, 3)) for _ in range(5)]
        fill(grads, arrays)
        expected = reduce_in_order(arrays)
        assert np.array_equal(grads.reduce(), expected)
        grads.close()

    def test_order_is_slot_index_not_fill_order(self, pool):
        grads = SharedOrderedSum.create(pool, 3, (2,))
        a = np.array([1e16, 1.0])
        b = np.array([-1e16, 1.0])
        c = np.array([1.0, 1.0])
        # Fill in reverse; the reduction must still be a + b + c.
        grads.slot(2)[:] = c
        grads.mark_filled(2)
        grads.slot(1)[:] = b
        grads.mark_filled(1)
        grads.slot(0)[:] = a
        grads.mark_filled(0)
        assert np.array_equal(grads.reduce(), (a + b) + c)
        grads.close()

    def test_reduce_raises_on_unfilled_slots(self, pool):
        grads = SharedOrderedSum.create(pool, 3, (2,))
        grads.slot(0)[:] = 1.0
        grads.mark_filled(0)
        with pytest.raises(RuntimeError, match=r"\[1, 2\]"):
            grads.reduce()
        grads.close()

    def test_unfilled_indices_and_reset(self, pool):
        grads = SharedOrderedSum.create(pool, 4, (2,))
        assert grads.unfilled_indices() == [0, 1, 2, 3]
        fill(grads, [np.zeros(2)] * 4)
        assert grads.unfilled_indices() == []
        grads.reset()
        assert grads.unfilled_indices() == [0, 1, 2, 3]
        grads.close()


class TestAttach:
    def test_attached_writes_visible_to_owner(self, pool):
        grads = SharedOrderedSum.create(pool, 2, (3,))
        other = SharedOrderedSum.attach(grads.handles())
        other.slot(0)[:] = 5.0
        other.mark_filled(0)
        assert grads.filled(0)
        assert np.array_equal(grads.slot(0), np.full(3, 5.0))
        grads.slot(1)[:] = 1.0
        grads.mark_filled(1)
        assert np.array_equal(grads.reduce(), np.full(3, 6.0))
        other.close()
        grads.close()

    def test_handles_are_picklable(self, pool):
        import pickle

        grads = SharedOrderedSum.create(pool, 2, (3,))
        handles = pickle.loads(pickle.dumps(grads.handles()))
        assert handles.shape == (3,)
        assert handles.dtype == np.dtype(np.float64).str
        other = SharedOrderedSum.attach(handles)
        assert other.num_slots == 2
        other.close()
        grads.close()


def test_reduce_in_order_is_strictly_sequential():
    # Left-to-right float addition is not associative; the helper must
    # commit to the ((s0 + s1) + s2) ... ordering exactly.
    slots = [np.array([1e16]), np.array([1.0]), np.array([1.0]),
             np.array([-1e16])]
    expected = ((slots[0] + slots[1]) + slots[2]) + slots[3]
    assert np.array_equal(reduce_in_order(slots), expected)
    # and that this differs from another grouping, so the test means
    # something on this machine:
    other = (slots[0] + (slots[1] + slots[2])) + slots[3]
    assert not np.array_equal(expected, other)
