"""Cross-process pooled allocator: pow-2 rounding, reuse, lifecycle."""

import numpy as np
import pytest

from repro.memory.shared_pool import SharedMemoryPool, attach_block


class TestAllocation:
    def test_rounds_up_to_power_of_two(self):
        with SharedMemoryPool(name="t-pow2") as pool:
            block = pool.allocate(100)
            assert block.handle.size == 128
            assert block.handle.pool_index == 7

    def test_array_views_share_the_block_bytes(self):
        with SharedMemoryPool(name="t-view") as pool:
            block, arr = pool.allocate_array((4, 5), np.float64)
            arr[:] = 7.5
            again = block.as_array((4, 5), np.float64)
            assert np.array_equal(again, np.full((4, 5), 7.5))

    def test_view_larger_than_block_rejected(self):
        with SharedMemoryPool(name="t-big") as pool:
            block = pool.allocate(64)
            with pytest.raises(ValueError, match="exceeds block size"):
                block.as_array(100, np.float64)

    def test_free_list_reuse(self):
        with SharedMemoryPool(name="t-reuse") as pool:
            block = pool.allocate(1000)
            name = block.handle.name
            pool.deallocate(block)
            again = pool.allocate(900)  # same size class
            assert again.handle.name == name
            assert pool.stats.pool_hits == 1
            assert pool.stats.system_allocations == 1

    def test_held_bytes_counts_system_segments_only(self):
        with SharedMemoryPool(name="t-held") as pool:
            a = pool.allocate(256)
            pool.allocate(256)
            assert pool.held_bytes() == 512
            pool.deallocate(a)
            pool.allocate(256)  # reuse, not growth
            assert pool.held_bytes() == 512

    def test_foreign_block_rejected_on_free(self):
        with SharedMemoryPool(name="t-a") as pool_a, \
                SharedMemoryPool(name="t-b") as pool_b:
            block = pool_a.allocate(64)
            with pytest.raises(ValueError, match="does not belong"):
                pool_b.deallocate(block)
            pool_a.deallocate(block)


class TestAttach:
    def test_attach_sees_owner_writes(self):
        with SharedMemoryPool(name="t-attach") as pool:
            block, arr = pool.allocate_array(16)
            arr[:] = np.arange(16.0)
            attached = attach_block(block.handle)
            try:
                view = attached.as_array(16)
                assert np.array_equal(view, np.arange(16.0))
                view[0] = -1.0
                assert arr[0] == -1.0
            finally:
                attached.close()

    def test_attacher_cannot_unlink(self):
        with SharedMemoryPool(name="t-own") as pool:
            block = pool.allocate(64)
            attached = attach_block(block.handle)
            with pytest.raises(RuntimeError, match="owning process"):
                attached.unlink()
            attached.close()


class TestLifecycle:
    def test_close_is_idempotent_and_unlinks(self):
        pool = SharedMemoryPool(name="t-close")
        block = pool.allocate(64)
        name = block.handle.name
        pool.close()
        pool.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_allocate_after_close_rejected(self):
        pool = SharedMemoryPool(name="t-dead")
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.allocate(64)

    def test_oversized_request_rejected(self):
        with SharedMemoryPool(name="t-huge") as pool:
            with pytest.raises(MemoryError):
                pool.allocate(1 << 40)
