"""ParallelTrainer: determinism contract, degradation, lifecycle.

Multi-process cases (anything with ``workers >= 2`` actually spawns
children) are marked ``slow`` so the tier-1 run stays fast; the CI slow
lane runs them.
"""

import numpy as np
import pytest

from repro.core import Trainer, state_digest
from repro.core.serialization import checkpoint_digest
from repro.core.training import TrainingDiverged
from repro.data.provider import RandomProvider, ShardedSampler
from repro.parallel import ModelConfig, ParallelTrainer, WorkerPoolBroken
from repro.resilience import RetryPolicy
from repro.resilience.faults import FaultPlan, clear_plan, install_plan

INPUT = (10, 10, 10)
OUT = (8, 8, 8)
CFG = ModelConfig(
    input_shape=INPUT,
    spec="CT",
    layered_kwargs={"width": 2, "kernel": 3, "transfer": "tanh",
                    "final_transfer": "tanh", "output_nodes": 1},
    loss="euclidean",
    seed=13,
    learning_rate=0.005,
    momentum=0.9)
PROVIDER_ARGS = (INPUT, OUT, False, None)
ROUNDS = 3


def run_parallel(workers, batch, **kwargs):
    trainer = ParallelTrainer(CFG, RandomProvider, PROVIDER_ARGS,
                              workers=workers, batch=batch,
                              worker_timeout=120.0, **kwargs)
    try:
        report = trainer.run(ROUNDS)
        digest = state_digest(trainer.network)
    finally:
        trainer.close()
    return report, digest


class _Replay:
    def __init__(self, samples):
        self.samples = list(samples)

    def sample(self):
        return self.samples.pop(0)


class TestDeterminism:
    def test_w1_b1_bitwise_equals_sequential_trainer(self):
        report, digest = run_parallel(1, 1)
        # Replay the exact same sample stream through the plain
        # single-process Trainer.
        sampler = ShardedSampler(RandomProvider(*PROVIDER_ARGS),
                                 CFG.seed, 1)
        samples = [sampler.sample_at(r, 0) for r in range(ROUNDS)]
        net = CFG.build_network()
        try:
            seq_report = Trainer(net, _Replay(samples)).run(ROUNDS)
            seq_digest = state_digest(net)
        finally:
            net.close()
        assert report.losses == seq_report.losses
        assert digest == seq_digest

    def test_batch_size_changes_results(self):
        # Sanity check that the contract is on (workers), not vacuous:
        # different global batches must give different trajectories.
        _, d1 = run_parallel(1, 1)
        _, d2 = run_parallel(1, 2)
        assert d1 != d2

    @pytest.mark.slow
    def test_worker_count_invariance(self):
        r1, d1 = run_parallel(1, 2)
        r2, d2 = run_parallel(2, 2)
        assert r1.losses == r2.losses
        assert d1 == d2

    def test_repeat_runs_are_bitwise_identical(self):
        r_a, d_a = run_parallel(1, 2)
        r_b, d_b = run_parallel(1, 2)
        assert r_a.losses == r_b.losses
        assert d_a == d_b


class TestDegradation:
    @pytest.mark.slow
    def test_dead_worker_does_not_change_the_checkpoint(self, monkeypatch):
        _, clean_digest = run_parallel(1, 2)
        # The spawned child resolves REPRO_FAULTS on first use and
        # kills itself (os._exit) at its first "worker" check; the
        # coordinator recomputes the orphaned slot.
        monkeypatch.setenv("REPRO_FAULTS", "fail:worker:1")
        try:
            report, digest = run_parallel(2, 2)
        finally:
            clear_plan()  # drop any plan the parent resolved
        assert report.worker_deaths == 1
        assert digest == clean_digest

    @pytest.mark.slow
    def test_death_budget_exhaustion_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "fail:worker:1")
        trainer = ParallelTrainer(
            CFG, RandomProvider, PROVIDER_ARGS, workers=2, batch=2,
            worker_timeout=120.0,
            retry_policy=RetryPolicy(max_retries=0))
        try:
            with pytest.raises(WorkerPoolBroken, match="retry budget"):
                trainer.run(ROUNDS)
        finally:
            trainer.close()
            clear_plan()

    def test_corrupted_loss_raises_diverged(self):
        install_plan(FaultPlan.from_string("corrupt:loss:1"))
        trainer = ParallelTrainer(CFG, RandomProvider, PROVIDER_ARGS,
                                  workers=1, batch=1)
        try:
            with pytest.raises(TrainingDiverged):
                trainer.run(1)
        finally:
            trainer.close()
            clear_plan()


class TestLifecycle:
    def test_checkpoints_and_report(self, tmp_path):
        trainer = ParallelTrainer(CFG, RandomProvider, PROVIDER_ARGS,
                                  workers=1, batch=2)
        try:
            report = trainer.run(ROUNDS, checkpoint_every=2,
                                 checkpoint_dir=tmp_path)
            digest = state_digest(trainer.network)
        finally:
            trainer.close()
        assert report.workers == 1
        assert report.batch == 2
        assert len(report.losses) == ROUNDS
        assert len(report.round_seconds) == ROUNDS
        assert report.worker_deaths == 0
        names = [p.split("/")[-1] for p in report.checkpoints]
        assert names == ["ckpt-00000000.npz", "ckpt-00000002.npz",
                         "ckpt-00000003.npz"]
        assert checkpoint_digest(report.checkpoints[-1]) == digest

    def test_rounds_counter_counts_global_updates(self):
        trainer = ParallelTrainer(CFG, RandomProvider, PROVIDER_ARGS,
                                  workers=1, batch=3)
        try:
            trainer.run(2)
            assert trainer.network.rounds == 2
        finally:
            trainer.close()

    def test_callback_sees_each_round(self):
        seen = []
        trainer = ParallelTrainer(CFG, RandomProvider, PROVIDER_ARGS,
                                  workers=1, batch=1)
        try:
            report = trainer.run(
                ROUNDS, callback=lambda i, loss: seen.append((i, loss)))
        finally:
            trainer.close()
        assert seen == list(enumerate(report.losses))

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            ParallelTrainer(CFG, RandomProvider, PROVIDER_ARGS, workers=0)
        with pytest.raises(ValueError, match="batch"):
            ParallelTrainer(CFG, RandomProvider, PROVIDER_ARGS, batch=0)
        trainer = ParallelTrainer(CFG, RandomProvider, PROVIDER_ARGS)
        try:
            with pytest.raises(ValueError, match="rounds"):
                trainer.run(-1)
            with pytest.raises(ValueError, match="checkpoint_dir"):
                trainer.run(1, checkpoint_every=1)
        finally:
            trainer.close()
        trainer.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            trainer.run(1)

    def test_shipped_config_has_resolved_conv_modes(self):
        trainer = ParallelTrainer(CFG, RandomProvider, PROVIDER_ARGS)
        try:
            assert isinstance(trainer.config.conv_mode, dict)
        finally:
            trainer.close()


def test_shard_assignments_cover_batch_exactly():
    trainer = ParallelTrainer(CFG, RandomProvider, PROVIDER_ARGS,
                              workers=1, batch=5)
    try:
        assignments = trainer._assignments()
        assert sorted(i for s in assignments.values() for i in s) \
            == list(range(5))
    finally:
        trainer.close()


def test_w1b1_matches_digest_of_numpy_reduce():
    # reduce()/batch of a single slot is a bitwise no-op: x/1.0 == x.
    x = np.random.default_rng(0).standard_normal(16)
    assert np.array_equal(x / 1.0, x)
