"""Replica layout, gradient capture, and update equivalence."""

import numpy as np
import pytest

from repro.core import state_digest
from repro.data.provider import RandomProvider, ShardedSampler
from repro.parallel import GradientCollector, ModelConfig, Replica

CFG = ModelConfig(
    input_shape=(12, 12, 12),
    spec="CTCT",
    layered_kwargs={"width": 3, "kernel": 3, "transfer": "tanh",
                    "final_transfer": "linear", "output_nodes": 1},
    loss="euclidean",
    seed=5,
    learning_rate=0.01,
    momentum=0.9)
OUT = (8, 8, 8)


@pytest.fixture
def replica():
    r = Replica.from_config(CFG)
    yield r
    r.network.close()


def sampler():
    return ShardedSampler(RandomProvider((12, 12, 12), OUT, False, None),
                          CFG.seed, 1)


class TestLayout:
    def test_layout_is_identical_across_builds(self, replica):
        other = Replica.from_config(CFG)
        try:
            assert replica.slots == other.slots
            assert replica.num_values == other.num_values
        finally:
            other.network.close()

    def test_layout_covers_vector_exactly(self, replica):
        offsets = sorted(replica.slots, key=lambda s: s.offset)
        expected = 0
        for slot in offsets:
            assert slot.offset == expected
            expected += slot.size
        assert expected == replica.num_values

    def test_param_roundtrip_is_bitwise(self, replica):
        vec = np.empty(replica.num_values)
        replica.read_params_into(vec)
        # Perturb, write back, read again: must match exactly.
        vec2 = vec * 1.25 + 0.125
        replica.write_params_from(vec2)
        out = np.empty_like(vec2)
        replica.read_params_into(out)
        assert np.array_equal(out, vec2)

    def test_fresh_replicas_have_identical_params(self, replica):
        other = Replica.from_config(CFG)
        try:
            a = np.empty(replica.num_values)
            b = np.empty(other.num_values)
            replica.read_params_into(a)
            other.read_params_into(b)
            assert np.array_equal(a, b)
        finally:
            other.network.close()


class TestGradientCapture:
    def test_sample_gradient_leaves_params_untouched(self, replica):
        before = np.empty(replica.num_values)
        replica.read_params_into(before)
        out = np.empty(replica.num_values)
        replica.sample_gradient(sampler(), 0, 0, out)
        after = np.empty(replica.num_values)
        replica.read_params_into(after)
        assert np.array_equal(before, after)
        assert np.all(np.isfinite(out))
        assert np.any(out != 0.0)

    def test_gradient_is_repeatable(self, replica):
        a = np.empty(replica.num_values)
        b = np.empty(replica.num_values)
        replica.sample_gradient(sampler(), 2, 0, a)
        replica.sample_gradient(sampler(), 2, 0, b)
        assert np.array_equal(a, b)

    def test_capture_then_apply_equals_plain_train_step(self, replica):
        """collector-captured gradient + apply_update must reproduce a
        plain train_step bitwise (W=1 B=1 determinism in miniature)."""
        inputs, targets = sampler().sample_at(0, 0)
        grad = np.empty(replica.num_values)
        replica.sample_gradient(sampler(), 0, 0, grad)
        replica.apply_update(grad, replica.network.optimizer)
        replica.network.synchronize()
        via_collector = state_digest(replica.network)

        other = Replica.from_config(CFG)
        try:
            other._reseed_dropout(0, 0)
            other.network.train_step(inputs, targets)
            other.network.synchronize()
            plain = state_digest(other.network)
        finally:
            other.network.close()
        assert via_collector == plain


class TestCollector:
    def test_sums_repeat_contributions_per_state(self):
        collector = GradientCollector()
        state = object()
        g = np.ones(3)
        collector.update(np.zeros(3), g, state)
        collector.update(np.zeros(3), g * 2, state)
        assert np.array_equal(collector.array_grads[id(state)],
                              np.full(3, 3.0))
        assert collector.update_scalar(5.0, 0.5, state) == 5.0
        assert collector.update_scalar(5.0, 0.25, state) == 5.0
        assert collector.scalar_grads[id(state)] == 0.75

    def test_clear(self):
        collector = GradientCollector()
        state = object()
        collector.update(np.zeros(2), np.ones(2), state)
        collector.update_scalar(1.0, 1.0, state)
        collector.clear()
        assert not collector.array_grads
        assert not collector.scalar_grads


def test_resolved_pins_conv_modes(replica):
    cfg = CFG.resolved(replica.network)
    assert isinstance(cfg.conv_mode, dict)
    assert cfg.conv_mode == dict(replica.network.conv_modes)


def test_config_requires_spec_or_path():
    with pytest.raises(ValueError, match="spec"):
        ModelConfig(input_shape=(8, 8, 8)).build_graph()
