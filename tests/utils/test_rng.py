"""Seeded-RNG helper tests."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, kernel_init, spawn


class TestAsGenerator:
    def test_from_int(self):
        a = as_generator(7)
        b = as_generator(7)
        assert a.integers(0, 1000) == b.integers(0, 1000)

    def test_passthrough(self):
        g = np.random.default_rng(0)
        assert as_generator(g) is g

    def test_none_gives_fresh(self):
        a = as_generator(None)
        b = as_generator(None)
        # overwhelmingly likely to differ
        assert (a.integers(0, 2**31) != b.integers(0, 2**31)
                or a.integers(0, 2**31) != b.integers(0, 2**31))


class TestSpawn:
    def test_children_independent_and_deterministic(self):
        parents = [as_generator(3), as_generator(3)]
        kids_a = spawn(parents[0], 3)
        kids_b = spawn(parents[1], 3)
        for a, b in zip(kids_a, kids_b):
            assert a.integers(0, 10**9) == b.integers(0, 10**9)

    def test_children_differ_from_each_other(self):
        kids = spawn(as_generator(0), 4)
        draws = [k.integers(0, 2**31) for k in kids]
        assert len(set(draws)) > 1


class TestKernelInit:
    def test_shape_and_dtype(self):
        k = kernel_init(as_generator(0), (3, 3, 3))
        assert k.shape == (3, 3, 3) and k.dtype == np.float64

    def test_fan_in_scaling(self):
        rng = as_generator(0)
        small_fan = kernel_init(as_generator(1), (5, 5, 5), fan_in=10)
        big_fan = kernel_init(as_generator(1), (5, 5, 5), fan_in=1000)
        assert small_fan.std() > big_fan.std()

    def test_default_fan_in_is_kernel_size(self):
        a = kernel_init(as_generator(2), (4, 4, 4))
        b = kernel_init(as_generator(2), (4, 4, 4), fan_in=64)
        np.testing.assert_array_equal(a, b)

    def test_roughly_he_scaled(self):
        k = kernel_init(as_generator(3), (20, 20, 20), fan_in=800)
        expected_std = np.sqrt(2.0 / 800)
        assert 0.8 * expected_std < k.std() < 1.2 * expected_std
