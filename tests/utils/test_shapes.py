"""Shape algebra tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import shapes as sh


class TestAsShape3:
    def test_scalar_is_isotropic(self):
        assert sh.as_shape3(5) == (5, 5, 5)

    def test_three_tuple_passthrough(self):
        assert sh.as_shape3((2, 3, 4)) == (2, 3, 4)

    def test_two_tuple_promotes_leading_singleton(self):
        assert sh.as_shape3((7, 9)) == (1, 7, 9)

    def test_one_tuple_promotes_two_singletons(self):
        assert sh.as_shape3((7,)) == (1, 1, 7)

    def test_list_accepted(self):
        assert sh.as_shape3([2, 3, 4]) == (2, 3, 4)

    @pytest.mark.parametrize("bad", [0, -1, (1, 0, 1), (2, 3, -4)])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(ValueError):
            sh.as_shape3(bad)

    def test_four_dims_rejected(self):
        with pytest.raises(ValueError):
            sh.as_shape3((1, 2, 3, 4))


class TestEffectiveKernel:
    def test_dense_kernel_unchanged(self):
        assert sh.effective_kernel_shape(3, 1) == (3, 3, 3)

    def test_sparsity_dilates(self):
        # (k-1)*s + 1
        assert sh.effective_kernel_shape(3, 2) == (5, 5, 5)
        assert sh.effective_kernel_shape(3, 4) == (9, 9, 9)

    def test_anisotropic(self):
        assert sh.effective_kernel_shape((1, 3, 3), (1, 2, 4)) == (1, 5, 9)

    def test_kernel_of_one_ignores_sparsity(self):
        assert sh.effective_kernel_shape(1, 7) == (1, 1, 1)


class TestConvShapes:
    def test_valid_shrinks(self):
        assert sh.valid_conv_shape(10, 3) == (8, 8, 8)

    def test_valid_sparse(self):
        assert sh.valid_conv_shape(10, 3, 2) == (6, 6, 6)

    def test_full_grows(self):
        assert sh.full_conv_shape(10, 3) == (12, 12, 12)

    def test_full_inverts_valid(self):
        out = sh.valid_conv_shape((9, 11, 13), (2, 3, 4), (1, 2, 3))
        back = sh.full_conv_shape(out, (2, 3, 4), (1, 2, 3))
        assert back == (9, 11, 13)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            sh.valid_conv_shape(4, 3, 2)

    @given(n=st.integers(3, 30), k=st.integers(1, 4), s=st.integers(1, 3))
    def test_valid_plus_effective_matches_input(self, n, k, s):
        eff = (k - 1) * s + 1
        if eff > n:
            return
        out = sh.valid_conv_shape(n, k, s)
        assert out == (n - eff + 1,) * 3


class TestPoolFilterShapes:
    def test_pool_divides(self):
        assert sh.pool_shape(8, 2) == (4, 4, 4)

    def test_pool_indivisible_raises(self):
        with pytest.raises(ValueError):
            sh.pool_shape(9, 2)

    def test_filter_like_valid_conv(self):
        assert sh.filter_shape(10, 3) == sh.valid_conv_shape(10, 3)

    def test_filter_backward_restores(self):
        out = sh.filter_shape(10, 3, 2)
        assert sh.filter_backward_shape(out, 3, 2) == (10, 10, 10)


class TestVoxels:
    def test_cube(self):
        assert sh.voxels(4) == 64

    def test_anisotropic(self):
        assert sh.voxels((1, 5, 7)) == 35


class TestFieldOfView:
    def test_single_conv(self):
        assert sh.field_of_view([("conv", 3, 1)]) == (3, 3, 3)

    def test_conv_pool_conv(self):
        # conv2, pool2, conv2: fov = ((1+1)*2 + 1) = 5
        fov = sh.field_of_view([("conv", 2, 1), ("pool", 2, 1),
                                ("conv", 2, 1)])
        assert fov == (5, 5, 5)

    def test_sparse_conv_fov_matches_pool_version(self):
        # Fig 2: pooled net fov == filter+sparse net fov
        pooled = sh.field_of_view([("conv", 2, 1), ("pool", 2, 1),
                                   ("conv", 2, 1)])
        filtered = sh.field_of_view([("conv", 2, 1), ("filter", 2, 1),
                                     ("conv", 2, 2)])
        assert pooled == filtered

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            sh.field_of_view([("warp", 2, 1)])


class TestShapePropagation:
    LAYERS = [("conv", 3, 1), ("filter", 2, 1), ("conv", 3, 2)]

    def test_roundtrip(self):
        out = sh.output_shape_for_input(20, self.LAYERS)
        back = sh.input_shape_for_output(out, self.LAYERS)
        assert back == (20, 20, 20)

    def test_transfer_is_identity(self):
        assert sh.output_shape_for_input(9, [("transfer", 1, 1)]) == (9, 9, 9)

    def test_pool_inverse_multiplies(self):
        assert sh.input_shape_for_output(3, [("pool", 2, 1)]) == (6, 6, 6)

    @given(n=st.integers(12, 40))
    def test_roundtrip_property(self, n):
        try:
            out = sh.output_shape_for_input(n, self.LAYERS)
        except ValueError:
            return
        assert sh.input_shape_for_output(out, self.LAYERS) == (n, n, n)


class TestIsSubshape:
    def test_fits(self):
        assert sh.is_subshape(3, 5)

    def test_does_not_fit(self):
        assert not sh.is_subshape((6, 3, 3), 5)
