"""Validation helper tests."""

import numpy as np
import pytest

from repro.utils import validation as v


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert v.check_positive_int(3, "x") == 3

    def test_accepts_float_integral(self):
        assert v.check_positive_int(3.0, "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            v.check_positive_int(0, "x")

    def test_rejects_string(self):
        with pytest.raises((TypeError, ValueError)):
            v.check_positive_int("many", "x")


class TestCheckNonnegative:
    def test_zero_ok(self):
        assert v.check_nonnegative(0, "x") == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            v.check_nonnegative(-0.1, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_in_range(self, p):
        assert v.check_probability(p, "p") == p

    @pytest.mark.parametrize("p", [-0.01, 1.01])
    def test_out_of_range(self, p):
        with pytest.raises(ValueError):
            v.check_probability(p, "p")


class TestCheckArray3:
    def test_promotes_1d(self):
        a = v.check_array3(np.ones(4), "a")
        assert a.shape == (1, 1, 4)

    def test_promotes_2d(self):
        a = v.check_array3(np.ones((3, 4)), "a")
        assert a.shape == (1, 3, 4)

    def test_3d_contiguous(self):
        base = np.ones((4, 4, 8))[:, :, ::2]
        a = v.check_array3(base, "a")
        assert a.flags["C_CONTIGUOUS"]

    def test_4d_rejected(self):
        with pytest.raises(ValueError):
            v.check_array3(np.ones((2, 2, 2, 2)), "a")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            v.check_array3(np.ones((0, 3, 3)), "a")

    def test_dtype_default_float64(self):
        a = v.check_array3(np.ones((2, 2, 2), dtype=np.float32), "a")
        assert a.dtype == np.float64


class TestCheckChoice:
    def test_valid(self):
        assert v.check_choice("a", "x", ("a", "b")) == "a"

    def test_invalid(self):
        with pytest.raises(ValueError):
            v.check_choice("c", "x", ("a", "b"))
