"""Trace generator unit tests (the example-based half; the
hypothesis properties live in test_trace_properties.py)."""

import json

import pytest

from repro.loadgen import (
    SCENARIOS,
    FlashCrowd,
    TraceConfig,
    WorkloadError,
    generate_trace,
    load_trace,
    scenario_config,
    write_trace,
)
from repro.tensor.fourier import next_fast_len


class TestGeneration:
    def test_same_seed_identical_trace(self):
        config = scenario_config("diurnal", seed=5, duration=40.0,
                                 base_rate=2.0)
        assert generate_trace(config) == generate_trace(config)

    def test_mix_insertion_order_is_immaterial(self):
        # Regression: the smooth-WRR total was summed in dict
        # insertion order, so two configs with the same weights but
        # different literal order could (float reassociation) diverge.
        a = generate_trace(TraceConfig(
            seed=9, duration=30.0, base_rate=3.0,
            model_mix={"default": 3.0, "alt": 1.0},
            priority_mix={1: 1.0, 2: 2.0, 3: 1.0}))
        b = generate_trace(TraceConfig(
            seed=9, duration=30.0, base_rate=3.0,
            model_mix={"alt": 1.0, "default": 3.0},
            priority_mix={3: 1.0, 1: 1.0, 2: 2.0}))
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_trace(TraceConfig(seed=1, duration=50.0,
                                       base_rate=2.0))
        b = generate_trace(TraceConfig(seed=2, duration=50.0,
                                       base_rate=2.0))
        assert a.requests != b.requests

    def test_arrivals_strictly_increasing(self):
        trace = generate_trace(TraceConfig(seed=3, duration=60.0,
                                           base_rate=4.0))
        times = [r.t for r in trace.requests]
        assert all(b > a for a, b in zip(times, times[1:]))
        assert all(0.0 <= t < 60.0 for t in times)

    def test_sizes_are_5_smooth_and_bounded(self):
        config = TraceConfig(seed=4, duration=60.0, base_rate=3.0,
                             size_min=12, size_max=40)
        trace = generate_trace(config)
        for request in trace.requests:
            edge = request.shape[0]
            assert request.shape == (edge, edge, edge)
            assert 12 <= edge <= 40
            assert next_fast_len(edge) == edge

    def test_flash_crowd_raises_local_rate(self):
        crowd = FlashCrowd(start=20.0, duration=10.0, multiplier=8.0)
        config = TraceConfig(seed=6, duration=60.0, base_rate=2.0,
                             flash_crowds=(crowd,))
        trace = generate_trace(config)
        inside = sum(1 for r in trace.requests
                     if 20.0 <= r.t < 30.0)
        outside = len(trace.requests) - inside
        # 10s at 16 req/s inside vs 50s at 2 req/s outside.
        assert inside > outside

    def test_scaled_compresses_time(self):
        trace = generate_trace(TraceConfig(seed=7, duration=30.0,
                                           base_rate=2.0))
        fast = trace.scaled(10.0)
        assert len(fast) == len(trace)
        assert fast.config.duration == pytest.approx(3.0)
        assert fast.mean_rate == pytest.approx(trace.mean_rate * 10)
        for a, b in zip(trace.requests, fast.requests):
            assert b.t == pytest.approx(a.t / 10.0)
            assert b.shape == a.shape
            assert b.priority == a.priority

    def test_scenarios_all_generate(self):
        for scenario in SCENARIOS:
            config = scenario_config(scenario, seed=1, duration=20.0,
                                     base_rate=2.0)
            trace = generate_trace(config)
            assert len(trace) > 0

    def test_unknown_scenario_rejected(self):
        with pytest.raises(WorkloadError, match="unknown scenario"):
            scenario_config("tsunami")


class TestValidation:
    def test_bad_config_fields(self):
        with pytest.raises(WorkloadError):
            TraceConfig(duration=0.0)
        with pytest.raises(WorkloadError):
            TraceConfig(base_rate=-1.0)
        with pytest.raises(WorkloadError):
            TraceConfig(diurnal_amplitude=1.5)
        with pytest.raises(WorkloadError):
            TraceConfig(size_min=10, size_max=5)
        with pytest.raises(WorkloadError):
            TraceConfig(model_mix={})
        with pytest.raises(WorkloadError):
            TraceConfig(priority_mix={0: -1.0})


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        config = scenario_config("multi-model", seed=9,
                                 duration=25.0, base_rate=3.0)
        trace = generate_trace(config)
        path = str(tmp_path / "trace.jsonl")
        write_trace(path, trace)
        loaded = load_trace(path)
        assert loaded.config == trace.config
        assert loaded.requests == trace.requests

    def test_header_schema_checked(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"schema": "nope"}) + "\n")
        with pytest.raises(WorkloadError, match="schema"):
            load_trace(str(path))

    def test_request_lines_validated(self, tmp_path):
        config = TraceConfig(seed=1, duration=5.0, base_rate=1.0)
        trace = generate_trace(config)
        path = str(tmp_path / "t.jsonl")
        write_trace(path, trace)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"t": -1.0, "model": "m",
                                 "shape": [8, 8, 8], "priority": 0,
                                 "deadline": None}) + "\n")
        with pytest.raises(WorkloadError, match="t must be"):
            load_trace(path)

    def test_declared_count_checked(self, tmp_path):
        trace = generate_trace(TraceConfig(seed=2, duration=10.0,
                                           base_rate=2.0))
        path = str(tmp_path / "t.jsonl")
        write_trace(path, trace)
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        with open(path, "w", encoding="utf-8") as fh:
            fh.writelines(lines[:-1])  # drop one request
        with pytest.raises(WorkloadError, match="declares"):
            load_trace(path)

    def test_write_is_deterministic(self, tmp_path):
        trace = generate_trace(TraceConfig(seed=3, duration=15.0,
                                           base_rate=2.0))
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        write_trace(a, trace)
        write_trace(b, trace)
        assert open(a, "rb").read() == open(b, "rb").read()
