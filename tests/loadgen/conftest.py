"""Loadgen fixtures: a tiny trained model on disk (mirrors
tests/serving/conftest.py) so the replay tests can drive a real
InferenceServer."""

import os

import pytest

from repro.core import Network
from repro.core.serialization import save_network
from repro.graph import build_layered_network, dump_layered_spec
from repro.serving import ModelRegistry, ModelSpec


@pytest.fixture(scope="session")
def small_model_spec(tmp_path_factory):
    root = str(tmp_path_factory.mktemp("loadgen-model"))
    graph = build_layered_network("CTPCT", width=[2, 1], kernel=2,
                                  window=2, transfer="tanh")
    network = Network(graph, input_shape=(9, 9, 9), seed=11)
    checkpoint = os.path.join(root, "ckpt.npz")
    save_network(network, checkpoint)
    spec_path = os.path.join(root, "model.spec")
    with open(spec_path, "w", encoding="utf-8") as fh:
        fh.write(dump_layered_spec("CTPCT", [2, 1], kernel=2,
                                   window=2, transfer="tanh"))
    yield ModelSpec.from_files("default", spec_path,
                               checkpoint=checkpoint,
                               conv_mode="direct")
    network.close()


@pytest.fixture
def registry(small_model_spec):
    reg = ModelRegistry(max_models=2)
    reg.register(small_model_spec)
    yield reg
    reg.close()
