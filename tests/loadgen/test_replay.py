"""Live replay tests against a real in-process InferenceServer.

Kept tiny (few-second traces, speed-compressed) so they stay in
tier 1; the full fleet + autoscaler path is exercised by the slow
tests in tests/serving/test_scale.py and the CI smoke lane.
"""

import pytest

from repro.loadgen import (
    TraceConfig,
    generate_trace,
    replay_trace,
)
from repro.serving import InferenceServer


def _trace(**kwargs):
    kwargs.setdefault("seed", 1)
    kwargs.setdefault("duration", 4.0)
    kwargs.setdefault("base_rate", 2.0)
    kwargs.setdefault("size_min", 12)
    kwargs.setdefault("size_max", 12)
    kwargs.setdefault("deadline", 30.0)
    return generate_trace(TraceConfig(**kwargs))


class TestReplay:
    def test_light_load_all_served(self, registry):
        trace = _trace()
        with InferenceServer(registry, num_workers=2,
                             tile_voxels=1000) as server:
            result = replay_trace(trace, server, speed=4.0)
        assert len(result.outcomes) == len(trace)
        assert result.served == len(trace)
        for outcome in result.outcomes:
            assert outcome.status == "served"
            assert outcome.latency is not None
            assert outcome.latency >= 0.0
        # Open loop: wall time tracks trace duration / speed, not
        # service time (generous bound; CI boxes are slow).
        assert result.elapsed < 30.0

    def test_progress_callback_sees_every_request(self, registry):
        trace = _trace(seed=2, duration=2.0)
        seen = []
        with InferenceServer(registry, num_workers=2,
                             tile_voxels=1000) as server:
            replay_trace(trace, server, speed=4.0,
                         on_progress=lambda i, s: seen.append(i))
        assert sorted(seen) == list(range(len(trace)))

    def test_overload_is_shed_not_raised(self, registry):
        # A 1-deep queue with a single worker against a 20 req/s
        # burst: admission must shed, and the replay must classify
        # rather than propagate.
        trace = _trace(seed=3, duration=2.0, base_rate=20.0)
        with InferenceServer(registry, num_workers=1, max_queue=1,
                             tile_voxels=1000) as server:
            result = replay_trace(trace, server, speed=8.0)
        statuses = {o.status for o in result.outcomes}
        assert statuses <= {"served", "shed", "deadline"}
        assert sum(1 for o in result.outcomes
                   if o.status == "shed") > 0

    def test_closed_server_marks_failed(self, registry):
        trace = _trace(seed=4, duration=0.5, base_rate=4.0)
        server = InferenceServer(registry, num_workers=1,
                                 tile_voxels=1000).start()
        server.stop()
        result = replay_trace(trace, server, speed=8.0)
        assert all(o.status == "failed" for o in result.outcomes)

    def test_bad_speed_rejected(self, registry):
        with pytest.raises(ValueError, match="speed"):
            replay_trace(_trace(), object(), speed=0.0)
