"""Hypothesis properties of the workload-trace generator (ISSUE
satellite: same seed => identical, nondecreasing arrivals, mean rate
within tolerance, mix conservation)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadgen import TraceConfig, generate_trace
from repro.serving.pipeline import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
)

configs = st.builds(
    TraceConfig,
    seed=st.integers(min_value=0, max_value=2**31),
    duration=st.floats(min_value=5.0, max_value=120.0),
    base_rate=st.floats(min_value=0.5, max_value=20.0),
    diurnal_amplitude=st.floats(min_value=0.0, max_value=0.9),
    diurnal_period=st.floats(min_value=10.0, max_value=1000.0),
    size_alpha=st.floats(min_value=0.5, max_value=4.0),
)


@settings(max_examples=25, deadline=None)
@given(configs)
def test_same_seed_yields_identical_trace(config):
    assert generate_trace(config) == generate_trace(config)


@settings(max_examples=25, deadline=None)
@given(configs)
def test_arrivals_strictly_increasing_within_duration(config):
    trace = generate_trace(config)
    previous = -1.0
    for request in trace.requests:
        assert previous < request.t < config.duration
        previous = request.t


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**31),
       st.floats(min_value=2.0, max_value=10.0))
def test_mean_rate_tracks_configured_rate(seed, base_rate):
    # Steady trace, long enough that the Poisson count concentrates:
    # n ~ Poisson(rate * T), stddev/mean = 1/sqrt(n).  With
    # n >= 2 * 200 = 400 expected, 5 sigma is 25%, so a 35% band
    # (plus a small absolute floor) is comfortably flake-free.
    config = TraceConfig(seed=seed, duration=200.0,
                         base_rate=base_rate)
    trace = generate_trace(config)
    expected = config.expected_requests()
    sigma = math.sqrt(expected)
    assert abs(len(trace) - expected) < 5.0 * sigma + 5.0


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_mix_proportions_conserved(seed):
    # Smooth WRR guarantees the deviation bound over every prefix,
    # not just in expectation: |count - n * share| < 1.
    model_mix = {"default": 3.0, "alt": 1.0}
    priority_mix = {PRIORITY_HIGH: 1.0, PRIORITY_NORMAL: 2.0,
                    PRIORITY_LOW: 1.0}
    config = TraceConfig(seed=seed, duration=40.0, base_rate=4.0,
                         model_mix=model_mix,
                         priority_mix=priority_mix)
    trace = generate_trace(config)
    n = len(trace)
    for mix, key in ((model_mix, lambda r: r.model),
                     (priority_mix, lambda r: r.priority)):
        total = sum(mix.values())
        for value, weight in mix.items():
            count = sum(1 for r in trace.requests
                        if key(r) == value)
            assert abs(count - n * weight / total) < 1.0


@settings(max_examples=25, deadline=None)
@given(configs, st.floats(min_value=1.5, max_value=100.0))
def test_scaled_preserves_bodies_and_count(config, multiplier):
    trace = generate_trace(config)
    fast = trace.scaled(multiplier)
    assert len(fast) == len(trace)
    assert [(r.model, r.shape, r.priority) for r in fast.requests] \
        == [(r.model, r.shape, r.priority) for r in trace.requests]


@settings(max_examples=25, deadline=None)
@given(configs)
def test_sizes_within_configured_bounds(config):
    trace = generate_trace(config)
    for request in trace.requests:
        for edge in request.shape:
            assert config.size_min <= edge <= config.size_max
