"""Serving-simulator tests: conservation, overload behaviour,
determinism, and the autoscaler's effect on served fraction."""

import pytest

from repro.loadgen import (
    HysteresisPolicy,
    ServiceModel,
    SimConfig,
    TraceConfig,
    generate_trace,
    simulate_serving,
)


def _trace(seed=0, duration=30.0, base_rate=2.0, deadline=30.0,
           **kwargs):
    return generate_trace(TraceConfig(
        seed=seed, duration=duration, base_rate=base_rate,
        size_min=12, size_max=12, deadline=deadline, **kwargs))


class TestConservation:
    def test_every_request_gets_an_outcome(self):
        trace = _trace(seed=1)
        result = simulate_serving(trace, SimConfig(workers=2))
        assert len(result.outcomes) == len(trace)
        statuses = {o.status for o in result.outcomes}
        assert statuses <= {"served", "shed", "deadline"}

    def test_light_load_all_served(self):
        # 2 req/s against workers that clear ~20 req/s each.
        trace = _trace(seed=2)
        config = SimConfig(workers=2, service=ServiceModel(
            seconds_per_voxel=0.0, overhead_seconds=0.01))
        result = simulate_serving(trace, config)
        assert result.served == len(trace)
        for outcome in result.outcomes:
            # Tolerate float cancellation in finish - arrival.
            assert outcome.latency >= 0.01 - 1e-9
            assert outcome.wait >= -1e-9

    def test_determinism(self):
        trace = _trace(seed=3, base_rate=5.0)
        config = SimConfig(workers=2)
        policy_a = HysteresisPolicy(min_workers=1, max_workers=4)
        policy_b = HysteresisPolicy(min_workers=1, max_workers=4)
        a = simulate_serving(trace, config, policy_a)
        b = simulate_serving(trace, config, policy_b)
        assert a == b


class TestOverload:
    def test_saturated_fleet_sheds(self):
        # One worker needing 1s per request against 10 req/s with a
        # 32-deep queue must shed once the queue fills.
        trace = _trace(seed=4, base_rate=10.0, deadline=None)
        config = SimConfig(workers=1, max_queue=8, service=ServiceModel(
            seconds_per_voxel=0.0, overhead_seconds=1.0))
        result = simulate_serving(trace, config)
        shed = sum(1 for o in result.outcomes if o.status == "shed")
        assert shed > 0
        assert result.served + shed == len(trace)

    def test_tight_deadline_misses(self):
        trace = _trace(seed=5, base_rate=10.0, deadline=0.5)
        config = SimConfig(workers=1, service=ServiceModel(
            seconds_per_voxel=0.0, overhead_seconds=1.0))
        result = simulate_serving(trace, config)
        missed = sum(1 for o in result.outcomes
                     if o.status == "deadline")
        assert missed > 0

    def test_autoscaler_improves_served_fraction(self):
        # Overloaded at 2 fixed workers; the autoscaler may grow to 8.
        trace = _trace(seed=6, base_rate=20.0, duration=20.0,
                       deadline=2.0)
        service = ServiceModel(seconds_per_voxel=0.0,
                               overhead_seconds=0.3)
        config = SimConfig(workers=2, service=service,
                           control_interval=0.25)
        fixed = simulate_serving(trace, config)
        scaled = simulate_serving(
            trace, config,
            HysteresisPolicy(min_workers=1, max_workers=8,
                             cooldown_ticks=0))
        assert scaled.served > fixed.served
        assert scaled.final_workers > 2
        assert len(scaled.decisions) > 0

    def test_worker_seconds_track_capacity(self):
        trace = _trace(seed=7, duration=10.0)
        result = simulate_serving(trace, SimConfig(workers=3))
        # Fixed fleet: exactly capacity x simulated span.
        assert result.worker_seconds == pytest.approx(
            3.0 * result.end_time)


class TestServiceModel:
    def test_service_seconds(self):
        model = ServiceModel(seconds_per_voxel=1e-6,
                             overhead_seconds=0.5)
        assert model.service_seconds((10, 10, 10)) == pytest.approx(
            0.5 + 1e-3)

    def test_from_cost_model(self):
        doc = {"entries": [
            {"op": "fwd", "image_shape": [10, 10, 10],
             "count": 4, "seconds": 8.0},
            {"op": "bwd", "image_shape": [10, 10, 10],
             "count": 4, "seconds": 99.0},
        ]}
        model = ServiceModel.from_cost_model(doc)
        assert model.seconds_per_voxel == pytest.approx(
            8.0 / (4 * 1000))

    def test_from_cost_model_falls_back(self):
        model = ServiceModel.from_cost_model({"entries": []})
        assert model == ServiceModel()

    def test_config_validation(self):
        with pytest.raises(ValueError, match="workers"):
            SimConfig(workers=0)
        with pytest.raises(ValueError, match="max_queue"):
            SimConfig(max_queue=0)
        with pytest.raises(ValueError, match="control_interval"):
            SimConfig(control_interval=0.0)
