"""Autoscaler policy tests: hypothesis properties (never exceeds
max workers, hysteresis-stable on constant load) plus ctor
validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadgen import HysteresisPolicy, Signals

signal_values = st.builds(
    Signals,
    queue_depth=st.integers(min_value=0, max_value=10_000),
    ewma_wait_seconds=st.floats(min_value=0.0, max_value=1e6),
    inflight=st.integers(min_value=0, max_value=1000),
    workers=st.integers(min_value=0, max_value=100),
)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=0, max_value=8),
       st.lists(signal_values, min_size=1, max_size=30))
def test_target_always_within_bounds(min_workers, extra, signals):
    policy = HysteresisPolicy(min_workers=min_workers,
                              max_workers=min_workers + extra,
                              cooldown_ticks=0)
    for observation in signals:
        target = policy.decide(observation)
        assert policy.min_workers <= target <= policy.max_workers


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=60),
       st.floats(min_value=0.0, max_value=20.0),
       st.integers(min_value=0, max_value=3))
def test_hysteresis_stable_on_constant_load(depth, wait, cooldown):
    # Feed the policy its own decisions under a frozen load: after
    # it converges it must stay put — no up/down flapping.
    policy = HysteresisPolicy(min_workers=1, max_workers=8,
                              high_depth_per_worker=4.0,
                              low_depth_per_worker=1.0,
                              cooldown_ticks=cooldown)
    workers = 2
    history = [workers]
    for _ in range(40):
        workers = policy.decide(Signals(
            queue_depth=depth, ewma_wait_seconds=wait,
            inflight=0, workers=workers))
        history.append(workers)
    tail = history[-(cooldown + 2):]
    assert len(set(tail)) == 1, f"did not converge: {history}"


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=6))
def test_heavy_load_scales_up_calm_load_scales_down(step):
    policy = HysteresisPolicy(min_workers=1, max_workers=8,
                              cooldown_ticks=0, step=step)
    hot = Signals(queue_depth=1000, ewma_wait_seconds=0.0,
                  inflight=0, workers=2)
    assert policy.decide(hot) == min(2 + step, 8)
    calm = Signals(queue_depth=0, ewma_wait_seconds=0.0,
                   inflight=0, workers=8)
    down = policy.decide(calm)
    assert down == max(8 - step, 1)


class TestCooldown:
    def test_cooldown_separates_changes(self):
        policy = HysteresisPolicy(min_workers=1, max_workers=8,
                                  cooldown_ticks=2)
        hot = Signals(queue_depth=100, ewma_wait_seconds=0.0,
                      inflight=0, workers=1)
        assert policy.decide(hot) == 2
        # Two cooldown ticks hold the line even though load is hot.
        hot2 = Signals(queue_depth=100, ewma_wait_seconds=0.0,
                       inflight=0, workers=2)
        assert policy.decide(hot2) == 2
        assert policy.decide(hot2) == 2
        assert policy.decide(hot2) == 3

    def test_wait_override_triggers_scale_up(self):
        policy = HysteresisPolicy(min_workers=1, max_workers=4,
                                  high_wait_seconds=1.0,
                                  cooldown_ticks=0)
        slow = Signals(queue_depth=0, ewma_wait_seconds=5.0,
                       inflight=0, workers=1)
        assert policy.decide(slow) == 2


class TestValidation:
    def test_bad_bounds(self):
        with pytest.raises(ValueError, match="min_workers"):
            HysteresisPolicy(min_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            HysteresisPolicy(min_workers=4, max_workers=2)
        with pytest.raises(ValueError, match="low_depth_per_worker"):
            HysteresisPolicy(high_depth_per_worker=1.0,
                             low_depth_per_worker=2.0)
        with pytest.raises(ValueError, match="step"):
            HysteresisPolicy(step=0)
