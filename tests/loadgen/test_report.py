"""Loadtest report document tests: build/validate/dump determinism
and the calibration comparison."""

import json

import pytest

from repro.loadgen import (
    LOADTEST_SCHEMA,
    LoadtestReportError,
    TraceConfig,
    build_report,
    calibration_report,
    dump_report,
    generate_trace,
    latency_stats,
    render_loadtest_report,
    validate_loadtest_report,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TraceConfig(seed=1, duration=20.0,
                                      base_rate=2.0))


def _report(trace, mode="sim", served=30, shed=2):
    return build_report(
        mode, trace,
        counts={"served": served, "shed": shed, "deadline": 1,
                "failed": 0},
        latencies=[0.01 * (i + 1) for i in range(served)],
        waits=[0.001 * (i + 1) for i in range(served)],
        worker_seconds=40.0, workers=2)


class TestLatencyStats:
    def test_empty(self):
        stats = latency_stats([])
        assert stats == {"count": 0, "mean": 0.0, "max": 0.0,
                         "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_order_statistics(self):
        stats = latency_stats([3.0, 1.0, 2.0])
        assert stats["count"] == 3
        assert stats["p50"] == pytest.approx(2.0)
        assert stats["max"] == pytest.approx(3.0)
        assert stats["mean"] == pytest.approx(2.0)

    def test_interpolation(self):
        stats = latency_stats([0.0, 1.0])
        assert stats["p50"] == pytest.approx(0.5)
        assert stats["p99"] == pytest.approx(0.99)


class TestBuildAndValidate:
    def test_roundtrip(self, trace):
        doc = _report(trace)
        assert validate_loadtest_report(doc) is doc
        assert doc["schema"] == LOADTEST_SCHEMA
        assert doc["results"]["submitted"] == 33
        assert doc["results"]["served_fraction"] == pytest.approx(
            30 / 33)

    def test_bad_mode_rejected(self, trace):
        with pytest.raises(LoadtestReportError, match="mode"):
            build_report("dreamed", trace, counts={}, latencies=[])

    def test_validation_first_offending_field(self, trace):
        doc = _report(trace)
        doc["results"]["served"] = -1
        with pytest.raises(LoadtestReportError,
                           match="results.served"):
            validate_loadtest_report(doc)

    def test_validation_rejects_non_dict(self):
        with pytest.raises(LoadtestReportError, match="object"):
            validate_loadtest_report([1, 2])
        with pytest.raises(LoadtestReportError, match="schema"):
            validate_loadtest_report({"schema": "other"})

    def test_dump_deterministic_and_parseable(self, trace):
        doc = _report(trace)
        text = dump_report(doc)
        assert text == dump_report(doc)
        assert json.loads(text)["schema"] == LOADTEST_SCHEMA
        assert text.endswith("\n")

    def test_render_table(self, trace):
        doc = _report(trace)
        text = render_loadtest_report(doc)
        assert "loadtest (sim)" in text
        assert "served" in text


class TestCalibration:
    def test_ratios(self, trace):
        sim = _report(trace, mode="sim")
        live = _report(trace, mode="live", served=30, shed=3)
        cal = calibration_report(sim, live)
        assert cal["p50_ratio"] == pytest.approx(1.0)
        assert cal["p99_ratio"] == pytest.approx(1.0)
        assert cal["served_fraction_delta"] == pytest.approx(
            30 / 34 - 30 / 33)

    def test_zero_sim_latency_gives_none(self, trace):
        sim = build_report("sim", trace, counts={"served": 0},
                           latencies=[])
        live = _report(trace, mode="live")
        cal = calibration_report(sim, live)
        assert cal["p50_ratio"] is None
