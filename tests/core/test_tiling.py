"""Tiled inference tests: seamless stitching by translation covariance."""

import numpy as np
import pytest

from repro.core import (
    Network,
    copy_parameters,
    field_of_view_of,
    tile_plan,
    tiled_forward,
)
from repro.graph import build_layered_network


def dense_net(input_shape, seed=0, **kw):
    kw.setdefault("width", 2)
    kw.setdefault("kernel", 2)
    kw.setdefault("window", 2)
    kw.setdefault("transfer", "tanh")
    kw.setdefault("skip_kernels", True)
    kw.setdefault("output_nodes", 1)
    graph = build_layered_network("CTMCT", **kw)
    return Network(graph, input_shape=input_shape, seed=seed)


class TestFieldOfView:
    def test_value(self):
        net = dense_net((10, 10, 10))
        # conv2(-1) filter2(-1) conv2 s2(-2): fov 5
        assert field_of_view_of(net) == (5, 5, 5)

    def test_multi_output_rejected(self):
        graph = build_layered_network("CTC", width=2, kernel=2)
        net = Network(graph, input_shape=(8, 8, 8), seed=0)
        with pytest.raises(ValueError):
            field_of_view_of(net)


class TestTilePlan:
    def test_exact_cover_no_remainder(self):
        # volume 14, input 10, output 6: corners 0 and 4 (=14-10)
        corners = [ic for ic, _ in tile_plan((14, 14, 14), (10, 10, 10),
                                             (6, 6, 6))]
        zs = sorted({c[0] for c in corners})
        assert zs == [0, 4]

    def test_interior_stepping(self):
        corners = [ic[0] for ic, _ in tile_plan((22, 10, 10), (10, 10, 10),
                                                (6, 6, 6))]
        assert sorted(set(corners)) == [0, 6, 12]

    def test_volume_smaller_than_input_rejected(self):
        with pytest.raises(ValueError):
            list(tile_plan((8, 8, 8), (10, 10, 10), (6, 6, 6)))

    def test_exact_fit_single_tile(self):
        plan = list(tile_plan((10, 10, 10), (10, 10, 10), (6, 6, 6)))
        assert plan == [((0, 0, 0), (0, 0, 0))]


class TestTiledForward:
    @pytest.mark.parametrize("volume_shape", [(16, 16, 16), (17, 15, 21),
                                              (10, 10, 25)])
    def test_matches_single_pass(self, rng, volume_shape):
        net = dense_net((10, 10, 10), seed=1)
        vol = rng.standard_normal(volume_shape)
        tiled = tiled_forward(net, vol)

        big = dense_net(volume_shape, seed=99)
        copy_parameters(net, big)
        ref = big.forward(vol)[big.output_nodes[0].name]
        assert tiled.shape == ref.shape
        np.testing.assert_allclose(tiled, ref, atol=1e-10)

    def test_output_shape(self, rng):
        net = dense_net((10, 10, 10))
        vol = rng.standard_normal((18, 14, 12))
        out = tiled_forward(net, vol)
        assert out.shape == (14, 10, 8)  # volume - fov + 1

    def test_progress_callback(self, rng):
        net = dense_net((10, 10, 10))
        vol = rng.standard_normal((16, 16, 16))
        seen = []
        tiled_forward(net, vol, progress=lambda d, t: seen.append((d, t)))
        assert seen[-1][0] == seen[-1][1] == len(seen)

    def test_overlap_region_identical(self, rng):
        """The re-computed voxels of a shifted edge tile must agree with
        the interior tile's values — translation covariance in action."""
        net = dense_net((10, 10, 10), seed=2)
        vol = rng.standard_normal((17, 10, 10))  # corners 0, 6, 7 (last)
        out = tiled_forward(net, vol)
        # nothing to assert beyond the end-to-end match (covered above);
        # here we check determinism of the overlapping recompute:
        out2 = tiled_forward(net, vol)
        np.testing.assert_array_equal(out, out2)

    def test_fft_mode(self, rng):
        graph = build_layered_network("CTMCT", width=2, kernel=2, window=2,
                                      transfer="tanh", skip_kernels=True,
                                      output_nodes=1)
        net = Network(graph, input_shape=(10, 10, 10), conv_mode="fft",
                      seed=3)
        vol = rng.standard_normal((15, 13, 12))
        direct = dense_net((10, 10, 10), seed=3)
        np.testing.assert_allclose(tiled_forward(net, vol),
                                   tiled_forward(direct, vol), atol=1e-9)
