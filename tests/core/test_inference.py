"""Fig 2 equivalence and dense-inference utilities."""

import numpy as np
import pytest

from repro.core import (
    Network,
    copy_parameters,
    dense_equivalent_network,
    sliding_window_forward,
    sparse_lattice,
)
from repro.graph import build_layered_network


def build_pool_net(spec="CTPCT", input_shape=(5, 5, 5), seed=3, **kw):
    kw.setdefault("width", [2, 1])
    kw.setdefault("kernel", 2)
    kw.setdefault("window", 2)
    kw.setdefault("transfer", "tanh")
    graph = build_layered_network(spec, **kw)
    return Network(graph, input_shape=input_shape, conv_mode="direct",
                   seed=seed), kw


class TestSlidingWindowReference:
    def test_output_shape(self, rng):
        net, _ = build_pool_net()
        big = rng.standard_normal((7, 7, 7))
        dense = sliding_window_forward(net, big)
        assert dense.shape == (3, 3, 3)

    def test_each_voxel_is_a_window_evaluation(self, rng):
        net, _ = build_pool_net()
        big = rng.standard_normal((6, 6, 6))
        dense = sliding_window_forward(net, big)
        out_name = net.output_nodes[0].name
        manual = net.forward(big[1:6, 0:5, 1:6])[out_name][0, 0, 0]
        assert np.isclose(dense[1, 0, 1], manual)

    def test_multivoxel_output_rejected(self, rng):
        net, _ = build_pool_net(input_shape=(7, 7, 7))  # output 2^3
        with pytest.raises(ValueError):
            sliding_window_forward(net, rng.standard_normal((9, 9, 9)))

    def test_image_smaller_than_fov_rejected(self, rng):
        net, _ = build_pool_net()
        with pytest.raises(ValueError):
            sliding_window_forward(net, rng.standard_normal((4, 4, 4)))


class TestFig2Equivalence:
    @pytest.mark.parametrize("spec,fov,transfer", [
        ("CTPCT", 5, "tanh"),
        ("CTPCT", 5, "relu"),
        ("CPC", 5, "tanh"),
    ])
    def test_pool_net_equals_filter_net(self, rng, spec, fov, transfer):
        net, kw = build_pool_net(spec=spec, input_shape=(fov,) * 3,
                                 transfer=transfer)
        big = rng.standard_normal((fov + 4,) * 3)
        ref = sliding_window_forward(net, big)
        dense = dense_equivalent_network(net, spec, input_shape=big.shape,
                                         **kw)
        out = dense.forward(big)
        fast = out[list(out)[0]]
        np.testing.assert_allclose(fast, ref, atol=1e-10)

    def test_two_pooling_layers(self, rng):
        """Two poolings: sparsity compounds to 4 (the paper's period-4
        lattice)."""
        spec = "CPCPC"
        # fov: conv2 pool2 conv2 pool2 conv2 -> 1->2->3->6->7->14->15? compute:
        # backward: 1 +1=2 *2=4 +1=5 *2=10 +1=11
        net, kw = build_pool_net(spec=spec, input_shape=(11, 11, 11),
                                 width=[2, 2, 1])
        big = rng.standard_normal((14, 14, 14))
        ref = sliding_window_forward(net, big)
        dense = dense_equivalent_network(net, spec, input_shape=big.shape,
                                         **kw)
        out = dense.forward(big)
        np.testing.assert_allclose(out[list(out)[0]], ref, atol=1e-10)

    def test_fft_mode_equivalence(self, rng):
        net, kw = build_pool_net()
        big = rng.standard_normal((8, 8, 8))
        ref = sliding_window_forward(net, big)
        dense = dense_equivalent_network(net, "CTPCT",
                                         input_shape=big.shape,
                                         conv_mode="fft", **kw)
        out = dense.forward(big)
        np.testing.assert_allclose(out[list(out)[0]], ref, atol=1e-9)


class TestCopyParameters:
    def test_copies_kernels_and_biases(self):
        a, kw = build_pool_net(seed=1)
        b, _ = build_pool_net(seed=2)
        copied = copy_parameters(a, b)
        assert copied == len([e for e in a.edges.values()
                              if hasattr(e, "kernel") or hasattr(e, "bias")])
        for name in a.edges:
            ea, eb = a.edges[name], b.edges[name]
            if hasattr(ea, "kernel"):
                np.testing.assert_array_equal(ea.kernel.array,
                                              eb.kernel.array)
            if hasattr(ea, "bias"):
                assert ea.bias == eb.bias

    def test_missing_counterpart_raises(self):
        a, _ = build_pool_net(spec="CT", width=[1])
        b, _ = build_pool_net(spec="CTC", width=[1, 1], input_shape=(6, 6, 6))
        with pytest.raises(KeyError):
            copy_parameters(a, b)


class TestSparseLattice:
    def test_period_subsample(self, rng):
        dense = rng.standard_normal((8, 8, 8))
        sparse = sparse_lattice(dense, 4)
        np.testing.assert_array_equal(sparse, dense[::4, ::4, ::4])

    def test_offset(self, rng):
        dense = rng.standard_normal((8, 8, 8))
        sparse = sparse_lattice(dense, 2, offset=1)
        np.testing.assert_array_equal(sparse, dense[1::2, 1::2, 1::2])

    def test_negative_offset_rejected(self, rng):
        with pytest.raises(ValueError):
            sparse_lattice(rng.standard_normal((4, 4, 4)), 2, offset=-1)

    def test_dense_net_lattice_matches_pool_net_strided_windows(self, rng):
        """Sparse training semantics: the period-s lattice of the dense
        output equals evaluating the pool net at stride-s windows."""
        net, kw = build_pool_net()
        big = rng.standard_normal((9, 9, 9))
        dense_net = dense_equivalent_network(net, "CTPCT",
                                             input_shape=big.shape, **kw)
        out = dense_net.forward(big)
        lattice = sparse_lattice(out[list(out)[0]], 2)
        out_name = net.output_nodes[0].name
        for z in range(lattice.shape[0]):
            window = big[2 * z:2 * z + 5, 0:5, 0:5]
            assert np.isclose(lattice[z, 0, 0],
                              net.forward(window)[out_name][0, 0, 0])


class TestAnisotropicPooling:
    """Per-axis pooling factors (regression for anisotropic dilation)."""

    def test_fov_helper_matches_network(self):
        from repro.core import dense_network_field_of_view
        kw = dict(width=[2, 1], kernel=2, window=(1, 2, 2), transfer="tanh")
        assert dense_network_field_of_view("CTPCT", **kw) == (3, 5, 5)
        # isotropic control
        kw["window"] = 2
        assert dense_network_field_of_view("CTPCT", **kw) == (5, 5, 5)

    def test_pooling_period_per_axis(self):
        from repro.core import pooling_period
        assert pooling_period("CTPCT", window=(1, 2, 2)) == (1, 2, 2)
        assert pooling_period("CPCPC",
                              window=[(1, 2, 2), (2, 2, 1)]) == (2, 4, 2)
        assert pooling_period("CTC") == (1, 1, 1)

    def test_anisotropic_window_equivalence(self, rng):
        """Each axis dilates by its own pooling factor (Fig 2 per axis)."""
        kw = dict(width=[2, 1], kernel=2, window=(1, 2, 2), transfer="tanh")
        net, _ = build_pool_net(spec="CTPCT", input_shape=(3, 5, 5), **kw)
        big = rng.standard_normal((5, 8, 8))
        ref = sliding_window_forward(net, big)
        dense = dense_equivalent_network(net, "CTPCT",
                                         input_shape=big.shape, **kw)
        out = dense.forward(big)
        np.testing.assert_allclose(out[list(out)[0]], ref, atol=1e-10)

    def test_two_anisotropic_pooling_layers(self, rng):
        """Anisotropic sparsity compounds per axis across poolings."""
        kw = dict(width=[2, 2, 1], kernel=2,
                  window=[(1, 2, 2), (2, 2, 1)], transfer="tanh")
        # fov backward: 1 +1=2; *(2,2,1) eff conv... computed by helper:
        from repro.core import dense_network_field_of_view
        fov = dense_network_field_of_view("CPCPC", **kw)
        net, _ = build_pool_net(spec="CPCPC", input_shape=fov, **kw)
        big = rng.standard_normal(tuple(f + 2 for f in fov))
        ref = sliding_window_forward(net, big)
        dense = dense_equivalent_network(net, "CPCPC",
                                         input_shape=big.shape, **kw)
        out = dense.forward(big)
        np.testing.assert_allclose(out[list(out)[0]], ref, atol=1e-10)

    def test_2d_as_3d_network(self, rng):
        """2D nets are (1, n, n) volumes with (1, p, p) windows."""
        kw = dict(width=[2, 1], kernel=(1, 2, 2), window=(1, 2, 2),
                  transfer="tanh")
        net, _ = build_pool_net(spec="CTPCT", input_shape=(1, 5, 5), **kw)
        big = rng.standard_normal((1, 9, 9))
        ref = sliding_window_forward(net, big)
        dense = dense_equivalent_network(net, "CTPCT",
                                         input_shape=big.shape, **kw)
        out = dense.forward(big)
        np.testing.assert_allclose(out[list(out)[0]], ref, atol=1e-10)

    def test_too_small_input_raises_per_axis_error(self):
        kw = dict(width=[2, 1], kernel=2, window=2, transfer="tanh")
        net, _ = build_pool_net(spec="CTPCT", input_shape=(7, 7, 7), **kw)
        with pytest.raises(ValueError, match="field of view"):
            dense_equivalent_network(net, "CTPCT", input_shape=(4, 9, 9),
                                     **kw)

    def test_sparse_lattice_anisotropic_period_and_offset(self, rng):
        dense = rng.standard_normal((4, 8, 8))
        lat = sparse_lattice(dense, (1, 2, 2))
        np.testing.assert_array_equal(lat, dense[:, ::2, ::2])
        off = sparse_lattice(dense, (1, 2, 2), offset=(1, 1))
        np.testing.assert_array_equal(off, dense[:, 1::2, 1::2])
        off3 = sparse_lattice(dense, 2, offset=(1, 0, 1))
        np.testing.assert_array_equal(off3, dense[1::2, ::2, 1::2])
