"""Loss function tests: values, gradients (numeric check), joint
softmax behaviour."""

import numpy as np
import pytest

from repro.core import (
    BinaryLogisticLoss,
    EuclideanLoss,
    SoftmaxCrossEntropyLoss,
    get_loss,
)


class TestRegistry:
    def test_get_by_name(self):
        assert isinstance(get_loss("euclidean"), EuclideanLoss)
        assert isinstance(get_loss("binary-logistic"), BinaryLogisticLoss)
        assert isinstance(get_loss("softmax"), SoftmaxCrossEntropyLoss)

    def test_passthrough(self):
        loss = EuclideanLoss()
        assert get_loss(loss) is loss

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_loss("hinge")


class TestEuclidean:
    def test_zero_at_match(self, rng):
        t = rng.standard_normal((3, 3, 3))
        value, grad = EuclideanLoss().node_value_and_gradient(t.copy(), t)
        assert value == 0.0
        np.testing.assert_array_equal(grad, np.zeros_like(t))

    def test_value(self):
        o = np.full((2, 2, 2), 2.0)
        t = np.zeros((2, 2, 2))
        value, grad = EuclideanLoss().node_value_and_gradient(o, t)
        assert value == 0.5 * 4.0 * 8
        np.testing.assert_array_equal(grad, o)

    def test_numeric_gradient(self, rng):
        o = rng.standard_normal((3, 3, 3))
        t = rng.standard_normal((3, 3, 3))
        loss = EuclideanLoss()
        _, grad = loss.node_value_and_gradient(o, t)
        eps = 1e-6
        o2 = o.copy()
        o2[1, 1, 1] += eps
        numeric = (loss.node_value_and_gradient(o2, t)[0]
                   - loss.node_value_and_gradient(o, t)[0]) / eps
        assert np.isclose(grad[1, 1, 1], numeric, atol=1e-4)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            EuclideanLoss().node_value_and_gradient(
                rng.standard_normal((2, 2, 2)), rng.standard_normal((3, 3, 3)))

    def test_joint_sums_nodes(self, rng):
        loss = EuclideanLoss()
        outs = {"a": rng.standard_normal((2, 2, 2)),
                "b": rng.standard_normal((2, 2, 2))}
        tgts = {"a": rng.standard_normal((2, 2, 2)),
                "b": rng.standard_normal((2, 2, 2))}
        total, grads = loss.joint_value_and_gradient(outs, tgts)
        expected = sum(loss.node_value_and_gradient(outs[k], tgts[k])[0]
                       for k in outs)
        assert np.isclose(total, expected)
        assert set(grads) == {"a", "b"}


class TestBinaryLogistic:
    def test_gradient_is_sigmoid_minus_target(self, rng):
        o = rng.standard_normal((3, 3, 3)) * 3
        t = (rng.random((3, 3, 3)) < 0.5).astype(float)
        _, grad = BinaryLogisticLoss().node_value_and_gradient(o, t)
        sigmoid = 1 / (1 + np.exp(-o))
        np.testing.assert_allclose(grad, sigmoid - t, atol=1e-10)

    def test_numeric_gradient(self, rng):
        o = rng.standard_normal((2, 2, 2))
        t = (rng.random((2, 2, 2)) < 0.5).astype(float)
        loss = BinaryLogisticLoss()
        _, grad = loss.node_value_and_gradient(o, t)
        eps = 1e-6
        o2 = o.copy()
        o2[0, 1, 0] += eps
        numeric = (loss.node_value_and_gradient(o2, t)[0]
                   - loss.node_value_and_gradient(o, t)[0]) / eps
        assert np.isclose(grad[0, 1, 0], numeric, atol=1e-4)

    def test_extreme_logits_stable(self):
        o = np.array([[-1000.0, 1000.0]])
        t = np.array([[0.0, 1.0]])
        value, grad = BinaryLogisticLoss().node_value_and_gradient(o, t)
        assert np.isfinite(value) and np.isfinite(grad).all()
        assert value < 1e-6  # confident and correct

    def test_loss_nonnegative(self, rng):
        o = rng.standard_normal((3, 3, 3))
        t = rng.random((3, 3, 3))
        value, _ = BinaryLogisticLoss().node_value_and_gradient(o, t)
        assert value >= 0.0


class TestSoftmax:
    def test_per_node_flag(self):
        assert SoftmaxCrossEntropyLoss().per_node is False
        assert EuclideanLoss().per_node is True

    def test_gradients_sum_to_zero_over_classes(self, rng):
        loss = SoftmaxCrossEntropyLoss()
        outs = {f"c{i}": rng.standard_normal((2, 2, 2)) for i in range(3)}
        # one-hot targets per voxel
        labels = rng.integers(0, 3, size=(2, 2, 2))
        tgts = {f"c{i}": (labels == i).astype(float) for i in range(3)}
        _, grads = loss.joint_value_and_gradient(outs, tgts)
        total = sum(grads.values())
        np.testing.assert_allclose(total, np.zeros((2, 2, 2)), atol=1e-10)

    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropyLoss()
        big = np.full((1, 1, 1), 50.0)
        small = np.full((1, 1, 1), -50.0)
        outs = {"a": big, "b": small}
        tgts = {"a": np.ones((1, 1, 1)), "b": np.zeros((1, 1, 1))}
        value, _ = loss.joint_value_and_gradient(outs, tgts)
        assert value < 1e-6

    def test_numeric_gradient(self, rng):
        loss = SoftmaxCrossEntropyLoss()
        outs = {"a": rng.standard_normal((1, 2, 2)),
                "b": rng.standard_normal((1, 2, 2))}
        labels = rng.integers(0, 2, size=(1, 2, 2))
        tgts = {"a": (labels == 0).astype(float),
                "b": (labels == 1).astype(float)}
        _, grads = loss.joint_value_and_gradient(outs, tgts)
        eps = 1e-6
        outs2 = {k: v.copy() for k, v in outs.items()}
        outs2["a"][0, 0, 1] += eps
        numeric = (loss.joint_value_and_gradient(outs2, tgts)[0]
                   - loss.joint_value_and_gradient(outs, tgts)[0]) / eps
        assert np.isclose(grads["a"][0, 0, 1], numeric, atol=1e-4)

    def test_mismatched_node_names_rejected(self, rng):
        loss = SoftmaxCrossEntropyLoss()
        with pytest.raises(ValueError):
            loss.joint_value_and_gradient(
                {"a": rng.standard_normal((1, 1, 1))},
                {"b": rng.standard_normal((1, 1, 1))})
