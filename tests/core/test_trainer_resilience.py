"""Trainer hardening: periodic checkpoints, NaN/Inf rollback, resume."""

import numpy as np
import pytest

from repro.core import (
    Network,
    SGD,
    Trainer,
    TrainingDiverged,
    load_latest_checkpoint,
)
from repro.graph import build_layered_network
from repro.observability import MetricsRegistry, set_registry
from repro.resilience import FaultPlan, clear_plan, install_plan


@pytest.fixture(autouse=True)
def clean_faults():
    clear_plan()
    yield
    clear_plan()


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


class ConstProvider:
    """Deterministic provider: the same sample every round."""

    def __init__(self, net, seed=0):
        rng = np.random.default_rng(seed)
        shape = net.input_nodes[0].shape
        self.x = rng.standard_normal(shape)
        self.t = {n.name: rng.standard_normal(n.shape)
                  for n in net.output_nodes}

    def sample(self):
        return self.x, self.t


def make_net(seed=0, lr=0.05, momentum=0.9):
    graph = build_layered_network("CTC", width=2, kernel=2,
                                  transfer="tanh")
    return Network(graph, input_shape=(8, 8, 8), seed=seed,
                   optimizer=SGD(learning_rate=lr, momentum=momentum))


class TestPeriodicCheckpoints:
    def test_checkpoint_files_written(self, tmp_path):
        net = make_net()
        report = Trainer(net, ConstProvider(net)).run(
            rounds=5, checkpoint_every=2, checkpoint_dir=tmp_path)
        names = sorted(p.name for p in tmp_path.iterdir())
        # Initial (round 0), rounds 2 and 4, and the final partial one.
        assert names == ["ckpt-00000000.npz", "ckpt-00000002.npz",
                         "ckpt-00000004.npz", "ckpt-00000005.npz"]
        assert report.checkpoints == [str(tmp_path / n) for n in names]
        assert report.rounds == 5

    def test_validation_args(self, tmp_path):
        net = make_net()
        with pytest.raises(ValueError):
            Trainer(net, ConstProvider(net)).run(rounds=1,
                                                 checkpoint_every=2)
        with pytest.raises(ValueError):
            Trainer(net, ConstProvider(net)).run(
                rounds=1, checkpoint_every=1, checkpoint_dir=tmp_path,
                rollback_lr_decay=0.0)


class TestNanRollback:
    def test_rollback_recovers_and_round_counts_match_clean_run(
            self, tmp_path, registry):
        clean_net = make_net(seed=3)
        clean = Trainer(clean_net, ConstProvider(clean_net)).run(
            rounds=4, checkpoint_every=2,
            checkpoint_dir=tmp_path / "clean")

        install_plan(FaultPlan.from_string("corrupt:loss:3"))
        net = make_net(seed=3)
        report = Trainer(net, ConstProvider(net)).run(
            rounds=4, checkpoint_every=2,
            checkpoint_dir=tmp_path / "chaos")
        assert report.rollbacks == 1
        assert report.rounds == clean.rounds == 4
        # The acceptance criterion: the fault-injected run ends on the
        # same final checkpoint round count as the clean run.
        assert (report.checkpoints[-1].rsplit("-", 1)[-1]
                == clean.checkpoints[-1].rsplit("-", 1)[-1])
        assert all(np.isfinite(report.losses))
        assert registry.snapshot()["train.rollbacks"] == 1

    def test_rollback_decays_learning_rate(self, tmp_path):
        install_plan(FaultPlan.from_string("corrupt:loss:2"))
        net = make_net(lr=0.04)
        Trainer(net, ConstProvider(net)).run(
            rounds=3, checkpoint_every=1, checkpoint_dir=tmp_path,
            rollback_lr_decay=0.5)
        assert net.optimizer.learning_rate == pytest.approx(0.02)

    def test_rollback_truncates_recorded_rounds(self, tmp_path):
        install_plan(FaultPlan.from_string("corrupt:loss:4"))
        net = make_net()
        seen = []
        report = Trainer(net, ConstProvider(net)).run(
            rounds=5, checkpoint_every=2, checkpoint_dir=tmp_path,
            callback=lambda i, l: seen.append(i))
        # The NaN at round index 3 rolled back to the round-2 checkpoint
        # (recorded rounds truncated to 2), so indexes 2 and 3 re-ran;
        # the corrupted attempt itself never reached the callback.
        assert seen == [0, 1, 2, 2, 3, 4]
        assert report.rounds == 5

    def test_nonfinite_without_checkpointing_raises(self):
        install_plan(FaultPlan.from_string("corrupt:loss:1"))
        net = make_net()
        with pytest.raises(TrainingDiverged, match="no.*checkpoint"):
            Trainer(net, ConstProvider(net)).run(rounds=2)

    def test_rollback_budget_exhaustion_raises(self, tmp_path):
        install_plan(FaultPlan.from_string("corrupt:loss:1x50"))
        net = make_net()
        with pytest.raises(TrainingDiverged, match="after 2 rollbacks"):
            Trainer(net, ConstProvider(net)).run(
                rounds=3, checkpoint_every=1, checkpoint_dir=tmp_path,
                max_rollbacks=2)


class TestResume:
    def test_resume_continues_from_latest_checkpoint(self, tmp_path):
        net = make_net(seed=1)
        provider = ConstProvider(net)
        Trainer(net, provider).run(rounds=4, checkpoint_every=2,
                                   checkpoint_dir=tmp_path)
        assert net.rounds == 4

        fresh = make_net(seed=99)  # different init — the load overwrites
        path = load_latest_checkpoint(fresh, tmp_path)
        assert path is not None and fresh.rounds == 4
        for name in net.edges:
            if hasattr(net.edges[name], "kernel"):
                np.testing.assert_array_equal(
                    net.edges[name].kernel.array,
                    fresh.edges[name].kernel.array)
        # Continue the run: 2 more recorded rounds on the restored net.
        report = Trainer(fresh, ConstProvider(fresh)).run(
            rounds=2, checkpoint_every=2, checkpoint_dir=tmp_path)
        assert fresh.rounds == 6
        assert report.checkpoints[-1].endswith("ckpt-00000006.npz")
