"""SGD optimizer tests."""

import numpy as np
import pytest

from repro.core import SGD, UpdateState


class TestValidation:
    def test_negative_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=-0.1)

    def test_zero_lr_allowed(self):
        SGD(learning_rate=0.0)  # frozen networks are legitimate

    def test_momentum_range(self):
        with pytest.raises(ValueError):
            SGD(momentum=1.0)
        with pytest.raises(ValueError):
            SGD(momentum=-0.1)

    def test_negative_weight_decay_rejected(self):
        with pytest.raises(ValueError):
            SGD(weight_decay=-1e-4)


class TestPlainSgd:
    def test_paper_update_rule(self, rng):
        """params -= eta * G (Algorithm 3, line 2)."""
        params = rng.standard_normal((3, 3, 3))
        grad = rng.standard_normal((3, 3, 3))
        expected = params - 0.1 * grad
        SGD(learning_rate=0.1).update(params, grad, UpdateState())
        np.testing.assert_allclose(params, expected, atol=1e-12)

    def test_eta_override(self, rng):
        """The paper gives each edge its own learning rate e.eta."""
        params = np.ones((2, 2, 2))
        grad = np.ones((2, 2, 2))
        SGD(learning_rate=0.1).update(params, grad, UpdateState(), eta=0.5)
        np.testing.assert_allclose(params, np.full((2, 2, 2), 0.5))

    def test_no_velocity_allocated_without_momentum(self):
        state = UpdateState()
        SGD(learning_rate=0.1).update(np.ones((2, 2, 2)), np.ones((2, 2, 2)),
                                      state)
        assert state.velocity is None

    def test_in_place(self):
        params = np.ones((2, 2, 2))
        ref = params
        SGD(learning_rate=0.1).update(params, np.ones((2, 2, 2)),
                                      UpdateState())
        assert ref is params  # mutated in place, no reallocation


class TestMomentum:
    def test_velocity_accumulates(self):
        opt = SGD(learning_rate=1.0, momentum=0.5)
        params = np.zeros((1, 1, 1))
        state = UpdateState()
        grad = np.ones((1, 1, 1))
        opt.update(params, grad, state)      # v = -1,   p = -1
        opt.update(params, grad, state)      # v = -1.5, p = -2.5
        np.testing.assert_allclose(params, [[[-2.5]]])

    def test_momentum_matches_reference_formula(self, rng):
        opt = SGD(learning_rate=0.1, momentum=0.9)
        params = rng.standard_normal((2, 2, 2))
        state = UpdateState()
        v_ref = np.zeros_like(params)
        p_ref = params.copy()
        for _ in range(5):
            g = rng.standard_normal((2, 2, 2))
            v_ref = 0.9 * v_ref - 0.1 * g
            p_ref = p_ref + v_ref
            opt.update(params, g, state)
        np.testing.assert_allclose(params, p_ref, atol=1e-12)


class TestWeightDecay:
    def test_decay_shrinks_params_with_zero_grad(self):
        opt = SGD(learning_rate=0.1, weight_decay=0.5)
        params = np.full((1, 1, 1), 2.0)
        opt.update(params, np.zeros((1, 1, 1)), UpdateState())
        # p -= lr * wd * p = 2 - 0.1*0.5*2
        np.testing.assert_allclose(params, [[[1.9]]])


class TestScalar:
    def test_bias_update(self):
        opt = SGD(learning_rate=0.1)
        state = UpdateState()
        assert opt.update_scalar(1.0, 2.0, state) == pytest.approx(0.8)

    def test_bias_momentum(self):
        opt = SGD(learning_rate=1.0, momentum=0.5)
        state = UpdateState()
        b = opt.update_scalar(0.0, 1.0, state)   # v=-1, b=-1
        b = opt.update_scalar(b, 1.0, state)     # v=-1.5, b=-2.5
        assert b == pytest.approx(-2.5)
