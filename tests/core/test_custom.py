"""Custom edge-operation tests (Section XI extensibility)."""

import numpy as np
import pytest

from repro.core import (
    CustomOp,
    Network,
    SGD,
    check_gradients,
    get_custom_op,
    register_custom_op,
    registered_custom_ops,
    unregister_custom_op,
)
from repro.graph import ComputationGraph


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    for name in ("square", "half-res", "scale2", "stateful"):
        unregister_custom_op(name)


def square_op():
    return register_custom_op(CustomOp(
        name="square",
        forward=lambda x, state: x * x,
        backward=lambda g, x, y, state: 2.0 * x * g), replace=True)


def chain_with(op_name, input_shape=(6, 6, 6)):
    g = ComputationGraph()
    g.add_node("in")
    g.add_node("a")
    g.add_node("out")
    g.add_edge("c", "in", "a", "conv", kernel=2)
    g.add_edge("u", "a", "out", "custom", op=op_name)
    return g


class TestRegistry:
    def test_register_and_get(self):
        op = square_op()
        assert get_custom_op("square") is op
        assert "square" in registered_custom_ops()

    def test_duplicate_rejected(self):
        square_op()
        with pytest.raises(ValueError):
            register_custom_op(CustomOp("square", lambda x, s: x,
                                        lambda g, x, y, s: g))

    def test_replace(self):
        square_op()
        op2 = register_custom_op(CustomOp("square", lambda x, s: x,
                                          lambda g, x, y, s: g),
                                 replace=True)
        assert get_custom_op("square") is op2

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_custom_op("warp")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_custom_op(CustomOp("", lambda x, s: x,
                                        lambda g, x, y, s: g))


class TestGraphIntegration:
    def test_custom_edge_requires_op(self):
        g = ComputationGraph()
        g.add_node("a")
        g.add_node("b")
        with pytest.raises(ValueError):
            g.add_edge("e", "a", "b", "custom")

    def test_shape_preserving_by_default(self):
        square_op()
        g = chain_with("square")
        g.propagate_shapes(6)
        assert g.nodes["out"].shape == (5, 5, 5)

    def test_shape_changing_op(self):
        register_custom_op(CustomOp(
            name="half-res",
            forward=lambda x, state: x[::2, ::2, ::2].copy(),
            backward=lambda g, x, y, state: np.kron(
                g, np.ones((2, 2, 2)))[:x.shape[0], :x.shape[1],
                                       :x.shape[2]] * 0,
            output_shape=lambda s: tuple((d + 1) // 2 for d in s)),
            replace=True)
        g = chain_with("half-res")
        g.propagate_shapes(7)  # conv -> 6, half -> 3
        assert g.nodes["out"].shape == (3, 3, 3)


class TestExecution:
    def test_forward_values(self, rng):
        square_op()
        net = Network(chain_with("square"), input_shape=(6, 6, 6), seed=0)
        x = rng.standard_normal((6, 6, 6))
        out = net.forward(x)["out"]
        from repro.tensor import correlate_valid
        k = list(net.kernels().values())[0]
        np.testing.assert_allclose(out, correlate_valid(x, k) ** 2,
                                   atol=1e-12)

    def test_wrong_output_shape_detected(self, rng):
        register_custom_op(CustomOp(
            name="scale2",
            forward=lambda x, state: np.zeros((1, 1, 1)),
            backward=lambda g, x, y, state: g), replace=True)
        net = Network(chain_with("scale2"), input_shape=(6, 6, 6), seed=0)
        with pytest.raises((ValueError, RuntimeError)):
            net.forward(rng.standard_normal((6, 6, 6)))

    def test_backward_before_forward_rejected(self, rng):
        square_op()
        net = Network(chain_with("square"), input_shape=(6, 6, 6), seed=0)
        edge = net.edges["u"]
        with pytest.raises(RuntimeError):
            edge.backward(rng.standard_normal((5, 5, 5)))

    def test_state_dict_available(self, rng):
        records = []

        def fwd(x, state):
            state["mean"] = float(x.mean())
            return x + 0.0

        def bwd(g, x, y, state):
            records.append(state["mean"])
            return g + 0.0

        register_custom_op(CustomOp("stateful", fwd, bwd), replace=True)
        net = Network(chain_with("stateful"), input_shape=(6, 6, 6),
                      seed=0, optimizer=SGD(learning_rate=0.0))
        x = rng.standard_normal((6, 6, 6))
        t = np.zeros(net.nodes["out"].shape)
        net.train_step(x, t)
        assert len(records) == 1

    def test_gradcheck_through_custom_op(self, rng):
        square_op()
        net = Network(chain_with("square"), input_shape=(6, 6, 6), seed=0)
        x = rng.standard_normal((6, 6, 6))
        t = rng.standard_normal(net.nodes["out"].shape)
        report = check_gradients(net, x, t)
        assert report.ok, report.failures

    def test_training_decreases_loss(self, rng):
        square_op()
        net = Network(chain_with("square"), input_shape=(6, 6, 6), seed=0,
                      optimizer=SGD(learning_rate=1e-3))
        x = rng.standard_normal((6, 6, 6))
        t = rng.standard_normal(net.nodes["out"].shape)
        losses = [net.train_step(x, t) for _ in range(8)]
        assert losses[-1] < losses[0]
