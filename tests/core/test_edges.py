"""Runtime edge unit tests (transforms in isolation)."""

import numpy as np
import pytest

from repro.core import SGD
from repro.core.edges import (
    ConvEdge,
    DropoutEdge,
    MaxFilterEdge,
    MaxPoolEdge,
    SharedKernel,
    TransferEdge,
    make_runtime_edge,
)
from repro.core.nodes import RuntimeNode
from repro.graph.computation_graph import EdgeSpec, NodeSpec
from repro.tensor import correlate_valid


def node(name, shape):
    spec = NodeSpec(name=name)
    spec.shape = shape
    return RuntimeNode(spec)


def conv_edge(mode="direct", kernel_shape=(2, 2, 2), sparsity=1,
              src_shape=(6, 6, 6), seed=0):
    rng = np.random.default_rng(seed)
    spec = EdgeSpec(name="e", src="u", dst="v", kind="conv",
                    kernel=kernel_shape, sparsity=(sparsity,) * 3
                    if isinstance(sparsity, int) else sparsity)
    src = node("u", src_shape)
    dst = node("v", spec.output_shape(src.shape))
    kernel = SharedKernel(rng.standard_normal(spec.kernel))
    return ConvEdge(spec, src, dst, kernel, mode=mode), src, dst


class TestConvEdge:
    @pytest.mark.parametrize("mode", ["direct", "fft"])
    def test_forward_is_valid_correlation(self, mode, rng):
        edge, src, dst = conv_edge(mode=mode)
        x = rng.standard_normal((6, 6, 6))
        out = edge.forward(x)
        np.testing.assert_allclose(out, correlate_valid(x, edge.kernel.array),
                                   atol=1e-10)

    @pytest.mark.parametrize("mode", ["direct", "fft"])
    def test_update_closure_applies_sgd(self, mode, rng):
        edge, src, dst = conv_edge(mode=mode)
        src.fwd_image = rng.standard_normal((6, 6, 6))
        dst.bwd_image = rng.standard_normal((5, 5, 5))
        edge.forward(src.fwd_image)           # populate spectra caches
        edge.backward(dst.bwd_image)
        before = edge.kernel.array.copy()
        update = edge.capture_update(SGD(learning_rate=0.1))
        update()
        from repro.tensor import conv_kernel_gradient
        expected = before - 0.1 * conv_kernel_gradient(src.fwd_image,
                                                       dst.bwd_image)
        np.testing.assert_allclose(edge.kernel.array, expected, atol=1e-9)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            conv_edge(mode="winograd")

    def test_shared_kernel_updates_under_lock(self, rng):
        """Two edges sharing a kernel both apply their updates."""
        e1, s1, d1 = conv_edge()
        e2, s2, d2 = conv_edge(seed=1)
        e2.kernel = e1.kernel
        for e, s, d in ((e1, s1, d1), (e2, s2, d2)):
            s.fwd_image = rng.standard_normal((6, 6, 6))
            d.bwd_image = rng.standard_normal((5, 5, 5))
        before = e1.kernel.array.copy()
        u1 = e1.capture_update(SGD(learning_rate=0.1))
        u2 = e2.capture_update(SGD(learning_rate=0.1))
        u1()
        u2()
        from repro.tensor import conv_kernel_gradient
        expected = (before
                    - 0.1 * conv_kernel_gradient(s1.fwd_image, d1.bwd_image)
                    - 0.1 * conv_kernel_gradient(s2.fwd_image, d2.bwd_image))
        np.testing.assert_allclose(e1.kernel.array, expected, atol=1e-9)


class TestTransferEdge:
    def make(self, transfer="tanh", bias=0.3):
        spec = EdgeSpec(name="t", src="u", dst="v", kind="transfer",
                        transfer=transfer)
        src = node("u", (4, 4, 4))
        dst = node("v", (4, 4, 4))
        return TransferEdge(spec, src, dst, bias=bias), src, dst

    def test_forward_applies_bias_then_fn(self, rng):
        edge, _, _ = self.make()
        x = rng.standard_normal((4, 4, 4))
        np.testing.assert_allclose(edge.forward(x), np.tanh(x + 0.3),
                                   atol=1e-12)

    def test_backward_uses_stored_output(self, rng):
        edge, src, dst = self.make()
        x = rng.standard_normal((4, 4, 4))
        dst.fwd_image = edge.forward(x)
        g = rng.standard_normal((4, 4, 4))
        out = edge.backward(g)
        np.testing.assert_allclose(out, g * (1 - dst.fwd_image ** 2),
                                   atol=1e-12)

    def test_bias_gradient_is_sum_of_backward_image(self, rng):
        edge, src, dst = self.make()
        x = rng.standard_normal((4, 4, 4))
        dst.fwd_image = edge.forward(x)
        g = rng.standard_normal((4, 4, 4))
        out = edge.backward(g)
        update = edge.capture_update(SGD(learning_rate=1.0))
        before = edge.bias
        update()
        assert np.isclose(before - edge.bias, out.sum())


class TestPoolFilterEdges:
    def test_pool_roundtrip(self, rng):
        spec = EdgeSpec(name="p", src="u", dst="v", kind="pool", window=2)
        src, dst = node("u", (6, 6, 6)), node("v", (3, 3, 3))
        edge = MaxPoolEdge(spec, src, dst)
        x = rng.standard_normal((6, 6, 6))
        out = edge.forward(x)
        assert out.shape == (3, 3, 3)
        back = edge.backward(rng.standard_normal((3, 3, 3)))
        assert back.shape == (6, 6, 6)

    def test_pool_backward_before_forward_rejected(self, rng):
        spec = EdgeSpec(name="p", src="u", dst="v", kind="pool", window=2)
        edge = MaxPoolEdge(spec, node("u", (4, 4, 4)), node("v", (2, 2, 2)))
        with pytest.raises(RuntimeError):
            edge.backward(rng.standard_normal((2, 2, 2)))

    def test_filter_sparse(self, rng):
        spec = EdgeSpec(name="f", src="u", dst="v", kind="filter",
                        window=2, sparsity=(2, 2, 2))
        src, dst = node("u", (8, 8, 8)), node("v", (6, 6, 6))
        edge = MaxFilterEdge(spec, src, dst)
        x = rng.standard_normal((8, 8, 8))
        out = edge.forward(x)
        assert out.shape == (6, 6, 6)
        back = edge.backward(rng.standard_normal((6, 6, 6)))
        assert back.shape == (8, 8, 8)


class TestDropoutEdge:
    def make(self, rate=0.5, seed=0):
        spec = EdgeSpec(name="d", src="u", dst="v", kind="dropout",
                        rate=rate)
        return DropoutEdge(spec, node("u", (8, 8, 8)), node("v", (8, 8, 8)),
                           np.random.default_rng(seed))

    def test_training_masks_and_scales(self, rng):
        edge = self.make(rate=0.5)
        x = np.ones((8, 8, 8))
        out = edge.forward(x)
        kept = out != 0
        assert 0.2 < kept.mean() < 0.8
        np.testing.assert_allclose(out[kept], 2.0)  # 1 / (1 - rate)

    def test_backward_uses_same_mask(self, rng):
        edge = self.make(rate=0.5)
        x = rng.standard_normal((8, 8, 8))
        out = edge.forward(x)
        g = np.ones((8, 8, 8))
        back = edge.backward(g)
        np.testing.assert_array_equal(back == 0, out == 0)

    def test_inference_is_identity(self, rng):
        edge = self.make(rate=0.5)
        edge.training = False
        x = rng.standard_normal((8, 8, 8))
        np.testing.assert_array_equal(edge.forward(x), x)

    def test_rate_one_rejected(self):
        with pytest.raises(ValueError):
            self.make(rate=1.0)


class TestFactory:
    def test_conv_gets_fresh_kernel(self):
        spec = EdgeSpec(name="e", src="u", dst="v", kind="conv", kernel=2)
        src, dst = node("u", (5, 5, 5)), node("v", (4, 4, 4))
        dst.spec.in_edges.append(spec)
        edge = make_runtime_edge(spec, src, dst,
                                 rng=np.random.default_rng(0))
        assert edge.kernel.array.shape == (2, 2, 2)

    def test_all_kinds_constructible(self):
        kinds = {
            "conv": dict(kernel=2),
            "transfer": dict(transfer="relu"),
            "pool": dict(window=2),
            "filter": dict(window=2),
            "dropout": dict(rate=0.5),
        }
        for kind, params in kinds.items():
            spec = EdgeSpec(name=f"e-{kind}", src="u", dst="v", kind=kind,
                            **params)
            src = node("u", (4, 4, 4))
            dst = node("v", spec.output_shape(src.shape))
            edge = make_runtime_edge(spec, src, dst,
                                     rng=np.random.default_rng(0))
            assert edge.name == f"e-{kind}"
