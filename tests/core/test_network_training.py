"""Training tests: end-to-end gradient checks through every edge type,
FFT/direct/threaded parity over multiple rounds, deferred updates and
the FORCE path, loss descent."""

import numpy as np
import pytest

from repro.core import Network, SGD
from repro.graph import build_layered_network


def gradcheck(spec, input_shape, kernel=2, window=2, transfer="tanh",
              conv_mode="direct", seed=1, **kwargs):
    """Finite-difference check of the loss gradient w.r.t. one kernel
    voxel and one bias of a network built from *spec*."""
    rng = np.random.default_rng(99)
    graph = build_layered_network(spec, kernel=kernel, window=window,
                                  transfer=transfer, **kwargs)
    frozen = Network(graph, input_shape=input_shape, conv_mode=conv_mode,
                     seed=seed, optimizer=SGD(learning_rate=0.0))
    x = rng.standard_normal(input_shape)
    targets = {n.name: rng.standard_normal(n.shape)
               for n in frozen.output_nodes}

    def loss_value():
        outs = frozen.forward(x)
        return sum(0.5 * np.sum((outs[k] - targets[k]) ** 2)
                   for k in outs)

    # analytic gradients via a one-step lr probe on a twin network
    graph2 = build_layered_network(spec, kernel=kernel, window=window,
                                   transfer=transfer, **kwargs)
    lr = 1e-4
    probe = Network(graph2, input_shape=input_shape, conv_mode=conv_mode,
                    seed=seed, optimizer=SGD(learning_rate=lr))
    kern_edges = [n for n, e in probe.edges.items() if hasattr(e, "kernel")]
    bias_edges = [n for n, e in probe.edges.items() if hasattr(e, "bias")]
    k_name, b_name = kern_edges[0], bias_edges[-1]
    k_before = probe.edges[k_name].kernel.array.copy()
    b_before = probe.edges[b_name].bias
    probe.train_step(x, targets if len(targets) > 1
                     else list(targets.values())[0])
    probe.synchronize()
    k_grad = (k_before - probe.edges[k_name].kernel.array) / lr
    b_grad = (b_before - probe.edges[b_name].bias) / lr

    # numeric gradients on the frozen network
    eps = 1e-5
    idx = (0, 0, 0)
    K = frozen.edges[k_name].kernel.array
    base = loss_value()
    K[idx] += eps
    k_num = (loss_value() - base) / eps
    K[idx] -= eps
    frozen.edges[b_name].bias += eps
    b_num = (loss_value() - base) / eps
    frozen.edges[b_name].bias -= eps

    assert np.isclose(k_grad[idx], k_num,
                      atol=1e-3 * max(1.0, abs(k_num))), \
        f"kernel grad {k_grad[idx]} != numeric {k_num}"
    assert np.isclose(b_grad, b_num, atol=1e-3 * max(1.0, abs(b_num))), \
        f"bias grad {b_grad} != numeric {b_num}"


class TestGradientsThroughEveryEdgeType:
    def test_conv_transfer(self):
        gradcheck("CTC", (8, 8, 8), width=[2, 1])

    def test_with_max_pool(self):
        gradcheck("CTPC", (11, 11, 11), width=[2, 1])

    def test_with_max_filter(self):
        gradcheck("CTMC", (9, 9, 9), width=[2, 1])

    def test_with_sparse_convolutions(self):
        gradcheck("CTMC", (12, 12, 12), width=[2, 1], skip_kernels=True)

    def test_fft_mode(self):
        gradcheck("CTC", (8, 8, 8), width=[2, 1], conv_mode="fft")

    def test_logistic_transfer(self):
        gradcheck("CTC", (8, 8, 8), width=[2, 1], transfer="logistic")

    def test_multi_output(self):
        gradcheck("CTC", (8, 8, 8), width=[2, 3])


class TestTrainingParity:
    def test_fft_equals_direct_over_rounds(self, rng):
        x = rng.standard_normal((10, 10, 10))
        nets = []
        for mode in ("direct", "fft"):
            graph = build_layered_network("CTC", width=2, kernel=2,
                                          transfer="tanh")
            nets.append(Network(graph, input_shape=(10, 10, 10),
                                conv_mode=mode, seed=5,
                                optimizer=SGD(learning_rate=0.01)))
        t = rng.standard_normal(nets[0].output_nodes[0].shape)
        targets = {n.name: t for n in nets[0].output_nodes}
        for _ in range(4):
            la = nets[0].train_step(x, targets)
            lb = nets[1].train_step(x, targets)
            assert np.isclose(la, lb, atol=1e-8)
        for net in nets:
            net.synchronize()
        for name in nets[0].edges:
            e0, e1 = nets[0].edges[name], nets[1].edges[name]
            if hasattr(e0, "kernel"):
                np.testing.assert_allclose(e0.kernel.array, e1.kernel.array,
                                           atol=1e-9)
            if hasattr(e0, "bias"):
                assert np.isclose(e0.bias, e1.bias, atol=1e-9)

    @pytest.mark.parametrize("workers,sched", [(4, "priority"),
                                               (2, "work-stealing")])
    def test_threaded_training_matches_serial(self, rng, workers, sched):
        x = rng.standard_normal((10, 10, 10))

        def run(num_workers, scheduler="priority"):
            graph = build_layered_network("CTMCT", width=2, kernel=2,
                                          window=2, transfer="tanh")
            net = Network(graph, input_shape=(10, 10, 10),
                          conv_mode="fft", seed=5, num_workers=num_workers,
                          scheduler=scheduler,
                          optimizer=SGD(learning_rate=0.01))
            t = rng.standard_normal(net.output_nodes[0].shape)
            targets = {n.name: np.zeros(n.shape) for n in net.output_nodes}
            losses = [net.train_step(x, targets) for _ in range(3)]
            net.synchronize()
            kernels = net.kernels()
            net.close()
            return losses, kernels

        ref_losses, ref_kernels = run(1)
        thr_losses, thr_kernels = run(workers, sched)
        np.testing.assert_allclose(ref_losses, thr_losses, atol=1e-8)
        for k in ref_kernels:
            np.testing.assert_allclose(ref_kernels[k], thr_kernels[k],
                                       atol=1e-8)


class TestDeferredUpdates:
    def test_updates_pending_after_train_step_are_forced_next_round(self,
                                                                    rng):
        """With the threaded engine a train_step may return before its
        update tasks ran; the next forward must see updated weights
        (via FORCE), so two consecutive steps on identical data give
        the same result as the serial engine."""
        x = rng.standard_normal((8, 8, 8))

        def losses(num_workers):
            graph = build_layered_network("CTC", width=2, kernel=2,
                                          transfer="tanh")
            net = Network(graph, input_shape=(8, 8, 8), seed=7,
                          num_workers=num_workers,
                          optimizer=SGD(learning_rate=0.05))
            targets = {n.name: np.zeros(n.shape) for n in net.output_nodes}
            vals = [net.train_step(x, targets) for _ in range(5)]
            net.close()
            return vals

        np.testing.assert_allclose(losses(1), losses(3), atol=1e-8)

    def test_synchronize_applies_pending_updates(self, rng):
        graph = build_layered_network("CTC", width=2, kernel=2)
        net = Network(graph, input_shape=(8, 8, 8), seed=0,
                      optimizer=SGD(learning_rate=0.1))
        before = net.kernels()
        x = rng.standard_normal((8, 8, 8))
        targets = {n.name: rng.standard_normal(n.shape)
                   for n in net.output_nodes}
        net.train_step(x, targets)
        net.synchronize()
        after = net.kernels()
        assert any(not np.allclose(before[k], after[k]) for k in before)


class TestLearning:
    def test_loss_decreases_on_fixed_sample(self, rng):
        graph = build_layered_network("CTMCTCT", width=3, kernel=3,
                                      window=2, transfer="tanh",
                                      final_transfer="linear",
                                      skip_kernels=True, output_nodes=1)
        net = Network(graph, input_shape=(20, 20, 20), seed=0,
                      conv_mode="direct",
                      optimizer=SGD(learning_rate=5e-5, momentum=0.9))
        x = rng.standard_normal((20, 20, 20))
        t = 0.1 * rng.standard_normal(net.output_nodes[0].shape)
        losses = [net.train_step(x, t) for _ in range(20)]
        assert losses[-1] < 0.5 * losses[0]

    def test_rounds_counter(self, rng):
        graph = build_layered_network("CT", width=1, kernel=2)
        net = Network(graph, input_shape=(6, 6, 6), seed=0)
        x = rng.standard_normal((6, 6, 6))
        t = {n.name: np.zeros(n.shape) for n in net.output_nodes}
        net.train_step(x, t)
        net.train_step(x, t)
        assert net.rounds == 2

    def test_wrong_target_shape_rejected(self, rng):
        graph = build_layered_network("CT", width=1, kernel=2)
        net = Network(graph, input_shape=(6, 6, 6), seed=0)
        with pytest.raises(ValueError):
            net.train_step(rng.standard_normal((6, 6, 6)),
                           rng.standard_normal((9, 9, 9)))

    def test_softmax_joint_loss_trains(self, rng):
        graph = build_layered_network("CTC", width=[2, 2], kernel=2,
                                      transfer="tanh")
        net = Network(graph, input_shape=(8, 8, 8), seed=0, loss="softmax",
                      optimizer=SGD(learning_rate=0.005))
        x = rng.standard_normal((8, 8, 8))
        out_names = sorted(n.name for n in net.output_nodes)
        labels = rng.integers(0, 2, size=net.output_nodes[0].shape)
        targets = {out_names[0]: (labels == 0).astype(float),
                   out_names[1]: (labels == 1).astype(float)}
        losses = [net.train_step(x, targets) for _ in range(15)]
        assert losses[-1] < losses[0]

    def test_dropout_network_trains(self, rng):
        graph = build_layered_network("CTDC", width=[3, 1], kernel=2,
                                      transfer="tanh", dropout_rate=0.3)
        net = Network(graph, input_shape=(8, 8, 8), seed=0,
                      optimizer=SGD(learning_rate=0.02))
        x = rng.standard_normal((8, 8, 8))
        t = np.zeros(net.output_nodes[0].shape)
        losses = [net.train_step(x, t) for _ in range(10)]
        assert np.isfinite(losses).all()
        # inference mode: dropout off -> deterministic
        net.set_training(False)
        a = net.forward(x)
        b = net.forward(x)
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])
