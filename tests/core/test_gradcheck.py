"""Gradient-check utility tests — including that it catches broken
Jacobians."""

import numpy as np
import pytest

from repro.core import (
    CustomOp,
    Network,
    SGD,
    check_gradients,
    register_custom_op,
    unregister_custom_op,
)
from repro.graph import ComputationGraph, build_layered_network


def small_net(conv_mode="direct", loss="euclidean"):
    graph = build_layered_network("CTC", width=2, kernel=2,
                                  transfer="tanh")
    return Network(graph, input_shape=(8, 8, 8), seed=0,
                   conv_mode=conv_mode, loss=loss,
                   optimizer=SGD(learning_rate=0.01, momentum=0.9))


def data_for(net, rng):
    x = rng.standard_normal((8, 8, 8))
    t = {n.name: rng.standard_normal(n.shape) for n in net.output_nodes}
    return x, t


class TestPasses:
    @pytest.mark.parametrize("conv_mode", ["direct", "fft"])
    def test_correct_network_passes(self, rng, conv_mode):
        net = small_net(conv_mode)
        x, t = data_for(net, rng)
        report = check_gradients(net, x, t)
        assert report.ok, report.failures
        assert report.checked > 5
        assert report.max_relative_error < 1e-4

    def test_binary_logistic_loss(self, rng):
        graph = build_layered_network("CTC", width=2, kernel=2,
                                      transfer="tanh",
                                      final_transfer="linear")
        net = Network(graph, input_shape=(8, 8, 8), seed=0,
                      loss="binary-logistic")
        x = rng.standard_normal((8, 8, 8))
        t = {n.name: (rng.random(n.shape) < 0.5).astype(float)
             for n in net.output_nodes}
        assert check_gradients(net, x, t).ok

    def test_parameters_restored(self, rng):
        net = small_net()
        x, t = data_for(net, rng)
        before = net.kernels()
        biases = net.biases()
        check_gradients(net, x, t)
        after = net.kernels()
        for k in before:
            np.testing.assert_array_equal(before[k], after[k])
        assert biases == net.biases()

    def test_max_filter_network(self, rng):
        graph = build_layered_network("CTMC", width=2, kernel=2, window=2,
                                      transfer="tanh")
        net = Network(graph, input_shape=(9, 9, 9), seed=0)
        x = rng.standard_normal((9, 9, 9))
        t = {n.name: rng.standard_normal(n.shape)
             for n in net.output_nodes}
        assert check_gradients(net, x, t).ok

    @pytest.mark.parametrize("conv_mode", ["direct", "fft"])
    def test_sparse_conv_per_axis_dilation_above_two(self, rng, conv_mode):
        """Dilated (sparse) convolution with a different dilation > 2
        on every axis — the anisotropic skip-kernel case of the paper's
        sparse training."""
        g = ComputationGraph()
        g.add_node("in")
        g.add_node("a")
        g.add_node("b")
        g.add_node("out")
        g.add_edge("c1", "in", "a", "conv", kernel=2, sparsity=(3, 4, 5))
        g.add_edge("t1", "a", "b", "transfer", transfer="tanh")
        g.add_edge("c2", "b", "out", "conv", kernel=2, sparsity=(1, 1, 1))
        net = Network(g, input_shape=(10, 10, 10), seed=0,
                      conv_mode=conv_mode)
        assert net.nodes["a"].shape == (7, 6, 5)
        x = rng.standard_normal((10, 10, 10))
        t = rng.standard_normal(net.nodes["out"].shape)
        report = check_gradients(net, x, t)
        assert report.ok, report.failures

    def test_anisotropic_max_filter(self, rng):
        """Sparse max-filtering with per-axis window AND dilation —
        window (1, 2, 3) at sparsity (1, 3, 2)."""
        g = ComputationGraph()
        g.add_node("in")
        g.add_node("a")
        g.add_node("b")
        g.add_node("out")
        g.add_edge("c1", "in", "a", "conv", kernel=2)
        g.add_edge("m1", "a", "b", "filter", window=(1, 2, 3),
                   sparsity=(1, 3, 2))
        g.add_edge("c2", "b", "out", "conv", kernel=2)
        net = Network(g, input_shape=(11, 11, 11), seed=0)
        # filter shrink per axis: (w - 1) * sparsity = (0, 3, 4).
        assert net.nodes["b"].shape == (10, 7, 6)
        x = rng.standard_normal((11, 11, 11))
        t = rng.standard_normal(net.nodes["out"].shape)
        report = check_gradients(net, x, t)
        assert report.ok, report.failures

    def test_anisotropic_dilated_combo_network(self, rng):
        """Dilation > 2 convolutions feeding an anisotropic max-filter
        in one graph (gradients must compose across both)."""
        g = ComputationGraph()
        g.add_node("in")
        g.add_node("a")
        g.add_node("b")
        g.add_node("c")
        g.add_node("out")
        g.add_edge("c1", "in", "a", "conv", kernel=(2, 2, 1),
                   sparsity=(4, 3, 1))
        g.add_edge("t1", "a", "b", "transfer", transfer="tanh")
        g.add_edge("m1", "b", "c", "filter", window=(2, 1, 2),
                   sparsity=(2, 1, 4))
        g.add_edge("c2", "c", "out", "conv", kernel=2)
        net = Network(g, input_shape=(12, 12, 12), seed=0)
        x = rng.standard_normal((12, 12, 12))
        t = rng.standard_normal(net.nodes["out"].shape)
        report = check_gradients(net, x, t)
        assert report.ok, report.failures


class TestCatchesBugs:
    def test_wrong_jacobian_detected(self, rng):
        """A custom op whose backward lies must fail the check."""
        register_custom_op(CustomOp(
            name="broken-square",
            forward=lambda x, state: x * x,
            backward=lambda g, x, y, state: 3.0 * x * g),  # wrong: 2x
            replace=True)
        try:
            g = ComputationGraph()
            g.add_node("in")
            g.add_node("a")
            g.add_node("out")
            g.add_edge("c", "in", "a", "conv", kernel=2)
            g.add_edge("u", "a", "out", "custom", op="broken-square")
            net = Network(g, input_shape=(6, 6, 6), seed=0)
            x = rng.standard_normal((6, 6, 6))
            t = rng.standard_normal(net.nodes["out"].shape)
            report = check_gradients(net, x, t, input_samples=3)
            assert not report.ok
            assert any("input" in f or "kernel" in f
                       for f in report.failures)
        finally:
            unregister_custom_op("broken-square")

    def test_zero_tolerance_flags_noise(self, rng):
        net = small_net()
        x, t = data_for(net, rng)
        report = check_gradients(net, x, t, tolerance=0.0)
        assert not report.ok  # fp noise exceeds zero tolerance


class TestReport:
    def test_counts(self, rng):
        net = small_net()
        x, t = data_for(net, rng)
        report = check_gradients(net, x, t, kernel_samples=1,
                                 input_samples=2)
        kernels = sum(1 for e in net.edges.values() if hasattr(e, "kernel"))
        biases = sum(1 for e in net.edges.values() if hasattr(e, "bias"))
        assert report.checked == kernels * 1 + biases + 2

    def test_no_input_samples(self, rng):
        net = small_net()
        x, t = data_for(net, rng)
        report = check_gradients(net, x, t, input_samples=0)
        assert report.ok
