"""Multi-scale and scale-invariant network tests."""

import numpy as np
import pytest

from repro.core import Network, SGD
from repro.core.multiscale import (
    branch_edge_names,
    build_multiscale_graph,
    make_scale_invariant,
)


@pytest.fixture(scope="module")
def graph():
    return build_multiscale_graph(kernel=3, scales=(1, 2), width=2)


class TestGraphStructure:
    def test_validates(self, graph):
        graph.validate()

    def test_shapes_propagate(self, graph):
        graph.propagate_shapes(16)
        assert graph.nodes["output"].shape is not None

    def test_branches_per_scale(self, graph):
        names = branch_edge_names(graph, "trunkT_0", 0)
        assert set(names) == {1, 2}

    def test_invalid_scales_rejected(self):
        with pytest.raises(ValueError):
            build_multiscale_graph(scales=(0, 2))


class TestForwardAndTraining:
    def test_forward_runs(self, rng):
        g = build_multiscale_graph(kernel=3, scales=(1, 2), width=2)
        net = Network(g, input_shape=(16, 16, 16), seed=0)
        out = net.forward(rng.standard_normal((16, 16, 16)))
        assert "output" in out

    def test_trains(self, rng):
        g = build_multiscale_graph(kernel=3, scales=(1, 2), width=2)
        net = Network(g, input_shape=(16, 16, 16), seed=0,
                      optimizer=SGD(learning_rate=1e-4))
        x = rng.standard_normal((16, 16, 16))
        t = np.zeros(net.nodes["output"].shape)
        losses = [net.train_step(x, t) for _ in range(8)]
        assert losses[-1] < losses[0]


class TestScaleInvariance:
    def test_kernels_tied(self, rng):
        g = build_multiscale_graph(kernel=3, scales=(1, 2), width=2)
        net = Network(g, input_shape=(16, 16, 16), seed=0)
        tied = make_scale_invariant(net, g, trunk_width=2, merge_width=2)
        assert tied == 4  # 2 trunk nodes x 2 merge channels
        names = branch_edge_names(g, "trunkT_0", 0)
        kernels = [net.edges[n].kernel for n in names.values()]
        assert all(k is kernels[0] for k in kernels)

    def test_tied_kernels_stay_tied_through_training(self, rng):
        g = build_multiscale_graph(kernel=3, scales=(1, 2), width=2)
        net = Network(g, input_shape=(16, 16, 16), seed=0,
                      optimizer=SGD(learning_rate=1e-4))
        make_scale_invariant(net, g, trunk_width=2, merge_width=2)
        x = rng.standard_normal((16, 16, 16))
        t = np.zeros(net.nodes["output"].shape)
        for _ in range(3):
            net.train_step(x, t)
        net.synchronize()
        names = branch_edge_names(g, "trunkT_1", 1)
        arrays = [net.edges[n].kernel.array for n in names.values()]
        np.testing.assert_array_equal(arrays[0], arrays[1])

    def test_mismatched_kernel_shapes_rejected(self, rng):
        from repro.graph import build_layered_network
        graph = build_layered_network("CTC", width=1, kernel=[2, 3])
        net = Network(graph, input_shape=(10, 10, 10), seed=0)
        conv_names = [n for n, e in net.edges.items()
                      if hasattr(e, "kernel")]
        with pytest.raises(ValueError):
            net.share_kernels(conv_names)
