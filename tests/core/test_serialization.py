"""Checkpointing tests."""

import numpy as np
import pytest

from repro.core import (
    Network,
    SGD,
    load_network,
    network_state,
    save_network,
)
from repro.graph import build_layered_network


def make_net(seed=0, momentum=0.0, kernel=2):
    graph = build_layered_network("CTC", width=2, kernel=kernel,
                                  transfer="tanh")
    return Network(graph, input_shape=(8, 8, 8), seed=seed,
                   optimizer=SGD(learning_rate=0.05, momentum=momentum))


def train_a_bit(net, rng, rounds=3):
    x = rng.standard_normal((8, 8, 8))
    targets = {n.name: np.zeros(n.shape) for n in net.output_nodes}
    for _ in range(rounds):
        net.train_step(x, targets)
    net.synchronize()
    return x, targets


class TestState:
    def test_state_covers_all_parameters(self):
        net = make_net()
        state = network_state(net)
        kernels = [k for k in state if k.startswith("kernel::")]
        biases = [k for k in state if k.startswith("bias::")]
        assert len(kernels) == sum(1 for e in net.edges.values()
                                   if hasattr(e, "kernel"))
        assert len(biases) == sum(1 for e in net.edges.values()
                                  if hasattr(e, "bias"))
        assert "__meta__" in state

    def test_velocity_saved_with_momentum(self, rng):
        net = make_net(momentum=0.9)
        train_a_bit(net, rng)
        state = network_state(net)
        assert any(k.startswith("kvel::") for k in state)
        assert any(k.startswith("bvel::") for k in state)

    def test_no_velocity_without_momentum(self, rng):
        net = make_net(momentum=0.0)
        train_a_bit(net, rng)
        state = network_state(net)
        assert not any(k.startswith(("kvel::", "bvel::", "velocity::"))
                       for k in state)

    def test_shared_kernel_velocity_keyed_by_first_sharing_edge(self, rng):
        graph = build_layered_network("CTC", width=2, kernel=2,
                                      transfer="tanh")
        net = Network(graph, input_shape=(8, 8, 8), seed=0,
                      optimizer=SGD(learning_rate=0.05, momentum=0.9))
        # The first layer's edges (input -> both width-2 nodes) have
        # equal kernel shapes; share them in *reverse* name order so a
        # stable key cannot come from dict/iteration order by accident.
        first_layer = sorted(n for n in net.edges
                             if n.startswith("conv_L1_"))[::-1]
        assert len(first_layer) >= 2
        net.share_kernels(first_layer)
        train_a_bit(net, rng)
        state = network_state(net)
        canonical = sorted(first_layer)[0]
        assert f"kvel::{canonical}" in state
        # The velocity of a shared kernel is stored exactly once.
        others = [n for n in first_layer if n != canonical]
        for name in others:
            assert f"kvel::{name}" not in state


class TestRoundtrip:
    def test_save_load_restores_everything(self, rng, tmp_path):
        net = make_net(seed=1, momentum=0.9)
        x, targets = train_a_bit(net, rng)
        path = tmp_path / "ckpt.npz"
        save_network(net, path)

        fresh = make_net(seed=99, momentum=0.9)  # different init
        rounds = load_network(fresh, path)
        assert rounds == net.rounds
        for name in net.edges:
            a, b = net.edges[name], fresh.edges[name]
            if hasattr(a, "kernel"):
                np.testing.assert_array_equal(a.kernel.array, b.kernel.array)
            if hasattr(a, "bias"):
                assert a.bias == b.bias

    def test_restored_network_continues_identically(self, rng, tmp_path):
        rng2 = np.random.default_rng(7)
        net = make_net(seed=1, momentum=0.9)
        x, targets = train_a_bit(net, rng2)
        path = tmp_path / "ckpt.npz"
        save_network(net, path)

        fresh = make_net(seed=99, momentum=0.9)
        load_network(fresh, path)
        la = net.train_step(x, targets)
        lb = fresh.train_step(x, targets)
        assert np.isclose(la, lb, atol=1e-10)

    def test_outputs_identical_after_restore(self, rng, tmp_path):
        net = make_net(seed=1)
        x, _ = train_a_bit(net, rng)
        path = tmp_path / "ckpt.npz"
        save_network(net, path)
        fresh = make_net(seed=2)
        load_network(fresh, path)
        a = net.forward(x)
        b = fresh.forward(x)
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])


class TestAtomicWrites:
    def test_save_leaves_no_temp_files(self, tmp_path):
        net = make_net()
        save_network(net, tmp_path / "ckpt.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]

    def test_failed_save_preserves_previous_checkpoint(self, rng, tmp_path,
                                                       monkeypatch):
        import repro.core.serialization as ser

        net = make_net(seed=1)
        path = tmp_path / "ckpt.npz"
        save_network(net, path)
        good = path.read_bytes()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(ser.np, "savez_compressed", boom)
        with pytest.raises(OSError):
            save_network(net, path)
        # The old checkpoint is untouched and no temp residue remains.
        assert path.read_bytes() == good
        assert sorted(p.name for p in tmp_path.iterdir()) == ["ckpt.npz"]


class TestLatestCheckpoint:
    def test_empty_or_missing_directory(self, tmp_path):
        from repro.core import latest_checkpoint, load_latest_checkpoint

        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "nope") is None
        net = make_net()
        assert load_latest_checkpoint(net, tmp_path) is None

    def test_picks_highest_round_number(self, tmp_path):
        from repro.core import latest_checkpoint

        net = make_net()
        for r in (2, 10, 9):  # lexicographic order would pick 9
            net.rounds = r
            save_network(net, tmp_path / f"ckpt-{r:08d}.npz")
        assert latest_checkpoint(tmp_path).endswith("ckpt-00000010.npz")

    def test_load_latest_restores_rounds(self, rng, tmp_path):
        from repro.core import load_latest_checkpoint

        net = make_net(seed=1)
        train_a_bit(net, rng)
        save_network(net, tmp_path / f"ckpt-{net.rounds:08d}.npz")
        fresh = make_net(seed=2)
        path = load_latest_checkpoint(fresh, tmp_path)
        assert path is not None
        assert fresh.rounds == net.rounds
        for name, edge in net.edges.items():
            if hasattr(edge, "kernel"):
                np.testing.assert_array_equal(
                    edge.kernel.array, fresh.edges[name].kernel.array)


class TestLegacyVelocityKeys:
    def test_legacy_velocity_keys_still_load(self, rng, tmp_path):
        net = make_net(seed=1, momentum=0.9)
        train_a_bit(net, rng)
        state = network_state(net)
        legacy = {}
        for key, value in state.items():
            if key.startswith("kvel::") or key.startswith("bvel::"):
                legacy["velocity::" + key.split("::", 1)[1]] = value
            else:
                legacy[key] = value
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, **legacy)

        fresh = make_net(seed=2, momentum=0.9)
        load_network(fresh, path)
        for name, edge in net.edges.items():
            other = fresh.edges[name]
            if hasattr(edge, "kernel") and edge.kernel.state.velocity is not None:
                np.testing.assert_array_equal(
                    edge.kernel.state.velocity, other.kernel.state.velocity)
            if hasattr(edge, "bias"):
                assert edge.state.velocity == other.state.velocity


class TestErrors:
    def test_architecture_mismatch_missing_edge(self, tmp_path, rng):
        net = make_net()
        path = tmp_path / "ckpt.npz"
        save_network(net, path)
        bigger = Network(build_layered_network("CTCT", width=2, kernel=2),
                         input_shape=(8, 8, 8), seed=0)
        with pytest.raises(KeyError):
            load_network(bigger, path)

    def test_kernel_shape_mismatch(self, tmp_path):
        net = make_net(kernel=2)
        path = tmp_path / "ckpt.npz"
        save_network(net, path)
        other = make_net(kernel=3)
        with pytest.raises(ValueError):
            load_network(other, path)
