"""Checkpointing tests."""

import numpy as np
import pytest

from repro.core import (
    Network,
    SGD,
    load_network,
    network_state,
    save_network,
)
from repro.graph import build_layered_network


def make_net(seed=0, momentum=0.0, kernel=2):
    graph = build_layered_network("CTC", width=2, kernel=kernel,
                                  transfer="tanh")
    return Network(graph, input_shape=(8, 8, 8), seed=seed,
                   optimizer=SGD(learning_rate=0.05, momentum=momentum))


def train_a_bit(net, rng, rounds=3):
    x = rng.standard_normal((8, 8, 8))
    targets = {n.name: np.zeros(n.shape) for n in net.output_nodes}
    for _ in range(rounds):
        net.train_step(x, targets)
    net.synchronize()
    return x, targets


class TestState:
    def test_state_covers_all_parameters(self):
        net = make_net()
        state = network_state(net)
        kernels = [k for k in state if k.startswith("kernel::")]
        biases = [k for k in state if k.startswith("bias::")]
        assert len(kernels) == sum(1 for e in net.edges.values()
                                   if hasattr(e, "kernel"))
        assert len(biases) == sum(1 for e in net.edges.values()
                                  if hasattr(e, "bias"))
        assert "__meta__" in state

    def test_velocity_saved_with_momentum(self, rng):
        net = make_net(momentum=0.9)
        train_a_bit(net, rng)
        state = network_state(net)
        assert any(k.startswith("velocity::") for k in state)


class TestRoundtrip:
    def test_save_load_restores_everything(self, rng, tmp_path):
        net = make_net(seed=1, momentum=0.9)
        x, targets = train_a_bit(net, rng)
        path = tmp_path / "ckpt.npz"
        save_network(net, path)

        fresh = make_net(seed=99, momentum=0.9)  # different init
        rounds = load_network(fresh, path)
        assert rounds == net.rounds
        for name in net.edges:
            a, b = net.edges[name], fresh.edges[name]
            if hasattr(a, "kernel"):
                np.testing.assert_array_equal(a.kernel.array, b.kernel.array)
            if hasattr(a, "bias"):
                assert a.bias == b.bias

    def test_restored_network_continues_identically(self, rng, tmp_path):
        rng2 = np.random.default_rng(7)
        net = make_net(seed=1, momentum=0.9)
        x, targets = train_a_bit(net, rng2)
        path = tmp_path / "ckpt.npz"
        save_network(net, path)

        fresh = make_net(seed=99, momentum=0.9)
        load_network(fresh, path)
        la = net.train_step(x, targets)
        lb = fresh.train_step(x, targets)
        assert np.isclose(la, lb, atol=1e-10)

    def test_outputs_identical_after_restore(self, rng, tmp_path):
        net = make_net(seed=1)
        x, _ = train_a_bit(net, rng)
        path = tmp_path / "ckpt.npz"
        save_network(net, path)
        fresh = make_net(seed=2)
        load_network(fresh, path)
        a = net.forward(x)
        b = fresh.forward(x)
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])


class TestErrors:
    def test_architecture_mismatch_missing_edge(self, tmp_path, rng):
        net = make_net()
        path = tmp_path / "ckpt.npz"
        save_network(net, path)
        bigger = Network(build_layered_network("CTCT", width=2, kernel=2),
                         input_shape=(8, 8, 8), seed=0)
        with pytest.raises(KeyError):
            load_network(bigger, path)

    def test_kernel_shape_mismatch(self, tmp_path):
        net = make_net(kernel=2)
        path = tmp_path / "ckpt.npz"
        save_network(net, path)
        other = make_net(kernel=3)
        with pytest.raises(ValueError):
            load_network(other, path)
