"""Autotuner tests (Section IV).

Timing-based *selections* run under the ``analytic_clock`` fixture: the
wall-clock benchmarks are monkeypatched with the paper's analytic FLOP
counts priced at a fixed rate, so which mode wins is a deterministic
function of shapes — not of host load, turbo states or CI noise.  The
real benchmarks keep only smoke coverage (positive, well-formed).
"""

import pytest

from repro.core import (
    autotune_graph,
    autotune_layer,
    crossover_kernel_size,
    layer_crossover_kernel_size,
    time_direct,
    time_fft,
)
from repro.graph import build_layered_network
from repro.pram import conv_layer_costs_direct, conv_layer_costs_fft
from repro.pram.costs import (
    direct_conv_task_cost,
    fft_cost,
    pointwise_product_cost,
)


@pytest.fixture
def analytic_clock(monkeypatch):
    """Replace the benchmarks with a deterministic analytic 'clock'.

    ``autotune_layer`` (and through it ``autotune_graph`` and the
    crossover sweeps) calls the module globals ``time_direct`` /
    ``time_fft``, so patching those reroutes every timing-based
    selection.  The fakes mirror each benchmark's work mix — three
    direct convolutions vs. six transforms plus three spectral
    products — priced at 1 GFLOP/s.  Returns a call counter so tests
    can assert the per-layer-group memoization.
    """
    import repro.core.autotune as autotune_module

    calls = {"direct": 0, "fft": 0}

    def fake_direct(image_shape, kernel_shape, sparsity=1, repeats=3):
        calls["direct"] += 1
        return 3e-9 * direct_conv_task_cost(image_shape, kernel_shape,
                                            sparsity)

    def fake_fft(image_shape, kernel_shape, sparsity=1, repeats=3):
        calls["fft"] += 1
        return 1e-9 * (6 * fft_cost(image_shape)
                       + 3 * pointwise_product_cost(image_shape))

    monkeypatch.setattr(autotune_module, "time_direct", fake_direct)
    monkeypatch.setattr(autotune_module, "time_fft", fake_fft)
    return calls


class TestTiming:
    def test_times_positive(self):
        assert time_direct((8, 8, 8), 2, repeats=1) > 0
        assert time_fft((8, 8, 8), 2, repeats=1) > 0

    def test_autotune_layer_returns_mode_and_times(self):
        mode, t_d, t_f = autotune_layer((8, 8, 8), 2, repeats=1)
        assert mode in ("direct", "fft")
        assert t_d > 0 and t_f > 0


class TestAnalyticSelection:
    def test_fft_wins_for_big_kernels(self, analytic_clock):
        mode, t_d, t_f = autotune_layer((32, 32, 32), 7)
        assert mode == "fft"
        assert t_f < t_d

    def test_direct_wins_for_small_kernels(self, analytic_clock):
        mode, t_d, t_f = autotune_layer((16, 16, 16), 2)
        assert mode == "direct"
        assert t_d < t_f

    def test_crossover_is_deterministic(self, analytic_clock):
        assert crossover_kernel_size((32, 32, 32),
                                     range(2, 10)) == 7

    def test_tolerance_breaks_ties_toward_direct(self, analytic_clock,
                                                 monkeypatch):
        import repro.core.autotune as autotune_module

        # Make FFT barely faster: inside the 5% tolerance band the
        # tuner must still choose direct (no spectra bookkeeping).
        t_direct = autotune_module.time_direct((16, 16, 16), 3)
        monkeypatch.setattr(autotune_module, "time_fft",
                            lambda *a, **k: t_direct * 0.99)
        mode, _, _ = autotune_layer((16, 16, 16), 3)
        assert mode == "direct"


class TestAutotuneGraph:
    def test_one_mode_per_conv_edge(self, analytic_clock):
        g = build_layered_network("CTC", width=2, kernel=2)
        g.propagate_shapes(10)
        modes = autotune_graph(g)
        conv_names = {e.name for e in g.edges.values() if e.kind == "conv"}
        assert set(modes) == conv_names
        assert set(modes.values()) <= {"direct", "fft"}

    def test_same_layer_same_mode(self, analytic_clock):
        g = build_layered_network("CTC", width=3, kernel=2)
        g.propagate_shapes(10)
        modes = autotune_graph(g)
        layer2 = {m for n, m in modes.items() if n.startswith("conv_L3")}
        assert len(layer2) == 1

    def test_one_measurement_per_layer_group(self, analytic_clock):
        # CTC has two conv layers (distinct shapes): exactly two
        # measurements of each benchmark, however wide the layers are.
        g = build_layered_network("CTC", width=3, kernel=2)
        g.propagate_shapes(10)
        autotune_graph(g)
        assert analytic_clock == {"direct": 2, "fft": 2}

    def test_requires_shapes(self):
        g = build_layered_network("CT", width=1, kernel=2)
        with pytest.raises(ValueError):
            autotune_graph(g)


class TestLayerCrossover:
    def test_layer_crossover_at_most_single_conv_crossover(self):
        """The paper's §IV claim: shared image/kernel FFTs move the
        crossover to smaller kernels for wide layers."""
        ks = range(2, 12)
        single = layer_crossover_kernel_size((32, 32, 32), ks, 1, 1)
        wide = layer_crossover_kernel_size((32, 32, 32), ks, 16, 16)
        assert wide is not None
        if single is not None:
            assert wide <= single

    def test_model_consistency(self):
        """At the crossover kernel the FFT model is indeed cheaper."""
        k = layer_crossover_kernel_size((32, 32, 32), range(2, 12), 8, 8)
        assert k is not None
        direct = conv_layer_costs_direct(8, 8, 32, k).total
        fft = conv_layer_costs_fft(8, 8, 32).total
        assert fft < direct

    def test_none_when_direct_always_wins(self):
        # kernel 1 or 2 on a big image with tiny width: direct is cheap
        k = layer_crossover_kernel_size((64, 64, 64), [1], 1, 1)
        assert k is None
