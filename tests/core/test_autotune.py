"""Autotuner tests (Section IV)."""

import pytest

from repro.core import (
    autotune_graph,
    autotune_layer,
    layer_crossover_kernel_size,
    time_direct,
    time_fft,
)
from repro.graph import build_layered_network
from repro.pram import conv_layer_costs_direct, conv_layer_costs_fft


class TestTiming:
    def test_times_positive(self):
        assert time_direct((8, 8, 8), 2, repeats=1) > 0
        assert time_fft((8, 8, 8), 2, repeats=1) > 0

    def test_autotune_layer_returns_mode_and_times(self):
        mode, t_d, t_f = autotune_layer((8, 8, 8), 2, repeats=1)
        assert mode in ("direct", "fft")
        assert t_d > 0 and t_f > 0

    def test_fft_wins_for_big_kernels_on_this_host(self):
        """Pure-numpy direct conv is slow; by k=7 on a 24^3 image FFT
        must win by a wide margin."""
        mode, t_d, t_f = autotune_layer((24, 24, 24), 7, repeats=2)
        assert mode == "fft"
        assert t_f < t_d


class TestAutotuneGraph:
    def test_one_mode_per_conv_edge(self):
        g = build_layered_network("CTC", width=2, kernel=2)
        g.propagate_shapes(10)
        modes = autotune_graph(g, repeats=1)
        conv_names = {e.name for e in g.edges.values() if e.kind == "conv"}
        assert set(modes) == conv_names
        assert set(modes.values()) <= {"direct", "fft"}

    def test_same_layer_same_mode(self):
        g = build_layered_network("CTC", width=3, kernel=2)
        g.propagate_shapes(10)
        modes = autotune_graph(g, repeats=1)
        layer2 = {m for n, m in modes.items() if n.startswith("conv_L3")}
        assert len(layer2) == 1

    def test_requires_shapes(self):
        g = build_layered_network("CT", width=1, kernel=2)
        with pytest.raises(ValueError):
            autotune_graph(g)


class TestLayerCrossover:
    def test_layer_crossover_at_most_single_conv_crossover(self):
        """The paper's §IV claim: shared image/kernel FFTs move the
        crossover to smaller kernels for wide layers."""
        ks = range(2, 12)
        single = layer_crossover_kernel_size((32, 32, 32), ks, 1, 1)
        wide = layer_crossover_kernel_size((32, 32, 32), ks, 16, 16)
        assert wide is not None
        if single is not None:
            assert wide <= single

    def test_model_consistency(self):
        """At the crossover kernel the FFT model is indeed cheaper."""
        k = layer_crossover_kernel_size((32, 32, 32), range(2, 12), 8, 8)
        assert k is not None
        direct = conv_layer_costs_direct(8, 8, 32, k).total
        fft = conv_layer_costs_fft(8, 8, 32).total
        assert fft < direct

    def test_none_when_direct_always_wins(self):
        # kernel 1 or 2 on a big image with tiny width: direct is cheap
        k = layer_crossover_kernel_size((64, 64, 64), [1], 1, 1)
        assert k is None
