"""Trainer / TrainingReport tests (Section VIII measurement protocol)."""

import numpy as np
import pytest

from repro.core import Network, SGD, Trainer, measure_seconds_per_update
from repro.data import FixedProvider, RandomProvider
from repro.graph import build_layered_network


def make_net():
    graph = build_layered_network("CTC", width=[2, 1], kernel=2,
                                  transfer="tanh")
    return Network(graph, input_shape=(8, 8, 8), seed=0,
                   optimizer=SGD(learning_rate=0.01))


class TestTrainer:
    def test_records_losses_and_times(self):
        net = make_net()
        provider = RandomProvider((8, 8, 8), net.output_nodes[0].shape,
                                  seed=1)
        report = Trainer(net, provider).run(rounds=5)
        assert report.rounds == 5
        assert len(report.round_seconds) == 5
        assert all(t > 0 for t in report.round_seconds)

    def test_warmup_not_recorded(self):
        net = make_net()
        provider = RandomProvider((8, 8, 8), net.output_nodes[0].shape,
                                  seed=1)
        report = Trainer(net, provider).run(rounds=3, warmup=2)
        assert report.rounds == 3
        assert net.rounds == 5  # warmup rounds did happen

    def test_callback_invoked(self):
        net = make_net()
        provider = RandomProvider((8, 8, 8), net.output_nodes[0].shape,
                                  seed=1)
        seen = []
        Trainer(net, provider).run(rounds=4,
                                   callback=lambda i, l: seen.append(i))
        assert seen == [0, 1, 2, 3]

    def test_negative_rounds_rejected(self):
        net = make_net()
        provider = RandomProvider((8, 8, 8), net.output_nodes[0].shape)
        with pytest.raises(ValueError):
            Trainer(net, provider).run(rounds=-1)

    def test_fixed_provider_deterministic_losses(self, rng):
        x = rng.standard_normal((8, 8, 8))

        def run():
            net = make_net()
            t = np.zeros(net.output_nodes[0].shape)
            provider = FixedProvider([(x, t)])
            return Trainer(net, provider).run(rounds=4).losses

        np.testing.assert_allclose(run(), run(), atol=1e-12)


class TestReport:
    def test_smoothed_losses_window(self):
        from repro.core import TrainingReport
        report = TrainingReport(losses=[4.0, 2.0, 0.0],
                                round_seconds=[0.1] * 3)
        assert report.smoothed_losses(window=2) == [4.0, 3.0, 1.0]

    def test_smoothed_invalid_window(self):
        from repro.core import TrainingReport
        with pytest.raises(ValueError):
            TrainingReport().smoothed_losses(window=0)

    def test_mean_seconds_empty(self):
        from repro.core import TrainingReport
        assert TrainingReport().mean_seconds_per_update == 0.0


class TestMeasurementProtocol:
    def test_measure_seconds_per_update(self):
        """5 warm-up rounds then averaged timing — the paper's method,
        here with tiny counts."""
        net = make_net()
        provider = RandomProvider((8, 8, 8), net.output_nodes[0].shape,
                                  seed=2)
        seconds = measure_seconds_per_update(net, provider, warmup=1,
                                             rounds=3)
        assert seconds > 0


class TestValidation:
    def test_validate_forward_only(self, rng):
        net = make_net()
        provider = RandomProvider((8, 8, 8), net.output_nodes[0].shape,
                                  seed=5)
        before = net.kernels()
        from repro.core import Trainer
        value = Trainer(net, provider).validate(provider, samples=2)
        assert value > 0
        after = net.kernels()
        for k in before:
            np.testing.assert_array_equal(before[k], after[k])

    def test_validations_recorded(self):
        net = make_net()
        train = RandomProvider((8, 8, 8), net.output_nodes[0].shape,
                               seed=1)
        val = RandomProvider((8, 8, 8), net.output_nodes[0].shape, seed=2)
        from repro.core import Trainer
        report = Trainer(net, train).run(rounds=6, val_provider=val,
                                         validate_every=2, val_samples=1)
        assert [r for r, _ in report.validations] == [1, 3, 5]
        assert all(v > 0 for _, v in report.validations)

    def test_validate_every_without_provider_rejected(self):
        net = make_net()
        provider = RandomProvider((8, 8, 8), net.output_nodes[0].shape)
        from repro.core import Trainer
        with pytest.raises(ValueError):
            Trainer(net, provider).run(rounds=2, validate_every=1)

    def test_lr_schedule_applied(self, rng):
        net = make_net()
        provider = RandomProvider((8, 8, 8), net.output_nodes[0].shape,
                                  seed=1)
        seen = []
        from repro.core import Trainer
        Trainer(net, provider).run(
            rounds=3,
            lr_schedule=lambda i: seen.append(i) or 0.01 * (i + 1))
        assert seen == [0, 1, 2]
        assert net.optimizer.learning_rate == pytest.approx(0.03)
