"""RuntimeNode unit tests (accumulator lifecycle, domain detection)."""

import numpy as np
import pytest

from repro.core.edges import ConvEdge, SharedKernel, TransferEdge
from repro.core.nodes import RuntimeNode
from repro.graph.computation_graph import EdgeSpec, NodeSpec


def make_node(name="n", shape=(6, 6, 6)):
    spec = NodeSpec(name=name)
    spec.shape = shape
    return RuntimeNode(spec)


def conv_edge(src, dst, mode="direct", name="e"):
    spec = EdgeSpec(name=name, src=src.name, dst=dst.name, kind="conv",
                    kernel=2)
    kernel = SharedKernel(np.zeros((2, 2, 2)))
    return ConvEdge(spec, src, dst, kernel, mode=mode)


def transfer_edge(src, dst, name="t"):
    spec = EdgeSpec(name=name, src=src.name, dst=dst.name, kind="transfer",
                    transfer="relu")
    return TransferEdge(spec, src, dst)


class TestConstruction:
    def test_requires_shape(self):
        spec = NodeSpec(name="x")
        with pytest.raises(ValueError):
            RuntimeNode(spec)

    def test_input_output_flags(self):
        n = make_node()
        assert n.is_input and n.is_output
        src, dst = make_node("a"), make_node("b", (5, 5, 5))
        e = conv_edge(src, dst)
        src.out_edges.append(e)
        dst.in_edges.append(e)
        assert src.is_input and not src.is_output
        assert dst.is_output and not dst.is_input


class TestWire:
    def test_no_sums_for_isolated_node(self):
        n = make_node()
        n.wire()
        assert n.fwd_sum is None and n.bwd_sum is None

    def test_spectral_requires_all_fft(self):
        src1, src2 = make_node("a"), make_node("b")
        dst = make_node("d", (5, 5, 5))
        e1 = conv_edge(src1, dst, mode="fft", name="e1")
        e2 = conv_edge(src2, dst, mode="direct", name="e2")
        dst.in_edges.extend([e1, e2])
        dst.wire()
        assert dst.forward_domain == "spatial"  # mixed modes

    def test_spectral_when_uniform_fft(self):
        src1, src2 = make_node("a"), make_node("b")
        dst = make_node("d", (5, 5, 5))
        dst.in_edges.extend([conv_edge(src1, dst, mode="fft", name="e1"),
                             conv_edge(src2, dst, mode="fft", name="e2")])
        dst.wire()
        assert dst.forward_domain == "spectral"

    def test_transfer_edges_spatial(self):
        src = make_node("a")
        dst = make_node("d")
        dst.in_edges.append(transfer_edge(src, dst))
        dst.wire()
        assert dst.forward_domain == "spatial"


class TestAccumulation:
    def test_add_forward_counts(self, rng):
        src1, src2 = make_node("a"), make_node("b")
        dst = make_node("d", (5, 5, 5))
        e1 = conv_edge(src1, dst, name="e1")
        e2 = conv_edge(src2, dst, name="e2")
        dst.in_edges.extend([e1, e2])
        dst.wire()
        assert not dst.add_forward(e1, rng.standard_normal((5, 5, 5)))
        assert dst.add_forward(e2, rng.standard_normal((5, 5, 5)))
        out = dst.finalize_forward()
        assert out.shape == (5, 5, 5)
        assert dst.fwd_image is out

    def test_deterministic_wire_uses_ordered_sum(self, rng):
        from repro.sync import OrderedSum

        src = make_node("a")
        dst = make_node("d", (5, 5, 5))
        e = conv_edge(src, dst)
        dst.in_edges.append(e)
        dst.wire(deterministic=True)
        assert isinstance(dst.fwd_sum, OrderedSum)
        assert dst.add_forward(e, rng.standard_normal((5, 5, 5)))

    def test_reset_round_allows_reuse(self, rng):
        src = make_node("a")
        dst = make_node("d", (5, 5, 5))
        e = conv_edge(src, dst)
        dst.in_edges.append(e)
        dst.wire()
        dst.add_forward(e, rng.standard_normal((5, 5, 5)))
        dst.finalize_forward()
        dst.reset_round()
        assert dst.add_forward(e, rng.standard_normal((5, 5, 5)))
