"""Additional Network behaviours: multi-input training, mixed modes,
fast FFT sizes in training, deterministic mode interactions,
context-manager lifecycle."""

import numpy as np
import pytest

from repro.core import Network, SGD, check_gradients
from repro.graph import ComputationGraph, build_layered_network


def two_input_graph():
    g = ComputationGraph()
    g.add_node("img")
    g.add_node("aux")
    g.add_node("mix")
    g.add_node("mixT")
    g.add_node("out")
    g.add_edge("c1", "img", "mix", "conv", kernel=3)
    g.add_edge("c2", "aux", "mix", "conv", kernel=3)
    g.add_edge("t", "mix", "mixT", "transfer", transfer="tanh")
    g.add_edge("c3", "mixT", "out", "conv", kernel=2)
    return g


class TestMultiInput:
    def test_trains_with_two_inputs(self, rng):
        net = Network(two_input_graph(), input_shape=(10, 10, 10), seed=0,
                      optimizer=SGD(learning_rate=1e-3))
        inputs = {"img": rng.standard_normal((10, 10, 10)),
                  "aux": rng.standard_normal((10, 10, 10))}
        t = np.zeros(net.nodes["out"].shape)
        losses = [net.train_step(inputs, t) for _ in range(8)]
        assert losses[-1] < losses[0]

    def test_gradients_correct(self, rng):
        net = Network(two_input_graph(), input_shape=(10, 10, 10), seed=1)
        inputs = {"img": rng.standard_normal((10, 10, 10)),
                  "aux": rng.standard_normal((10, 10, 10))}
        t = {"out": rng.standard_normal(net.nodes["out"].shape)}
        report = check_gradients(net, inputs, t, kernel_samples=1)
        assert report.ok, report.failures

    def test_array_input_rejected_for_multi_input(self, rng):
        net = Network(two_input_graph(), input_shape=(10, 10, 10), seed=0)
        with pytest.raises(ValueError):
            net.forward(rng.standard_normal((10, 10, 10)))


class TestFastSizesTraining:
    def test_training_parity_with_plain_fft(self, rng):
        x = rng.standard_normal((11, 11, 11))  # prime size -> padding real

        def run(fast):
            graph = build_layered_network("CTC", width=2, kernel=2,
                                          transfer="tanh")
            net = Network(graph, input_shape=(11, 11, 11), conv_mode="fft",
                          seed=4, fft_fast_sizes=fast,
                          optimizer=SGD(learning_rate=0.01))
            targets = {n.name: np.zeros(n.shape)
                       for n in net.output_nodes}
            losses = [net.train_step(x, targets) for _ in range(3)]
            net.synchronize()
            return losses, net.kernels()

        la, ka = run(False)
        lb, kb = run(True)
        np.testing.assert_allclose(la, lb, atol=1e-8)
        for k in ka:
            np.testing.assert_allclose(ka[k], kb[k], atol=1e-9)

    def test_padded_transform_shapes(self):
        graph = build_layered_network("CT", width=1, kernel=2)
        net = Network(graph, input_shape=(11, 11, 11), conv_mode="fft",
                      fft_fast_sizes=True, seed=0)
        conv = next(e for e in net.edges.values() if hasattr(e, "plan")
                    and e.plan is not None)
        assert conv.plan.transform_shape == (12, 12, 12)


class TestDeterministicInteractions:
    def test_deterministic_with_fft_and_spectral_sums(self, rng):
        """OrderedSum must handle complex spectra (spectral-domain
        convergence) too."""
        graph = build_layered_network("CTC", width=3, kernel=2)
        net = Network(graph, input_shape=(10, 10, 10), conv_mode="fft",
                      deterministic_sums=True, seed=0)
        x = rng.standard_normal((10, 10, 10))
        a = net.forward(x)
        graph2 = build_layered_network("CTC", width=3, kernel=2)
        ref = Network(graph2, input_shape=(10, 10, 10), conv_mode="direct",
                      seed=0).forward(x)
        for k in a:
            np.testing.assert_allclose(a[k], ref[k], atol=1e-9)

    def test_deterministic_with_work_stealing(self, rng):
        x = rng.standard_normal((10, 10, 10))

        def run(sched):
            graph = build_layered_network("CTC", width=3, kernel=2)
            net = Network(graph, input_shape=(10, 10, 10), seed=6,
                          num_workers=3, scheduler=sched,
                          deterministic_sums=True,
                          optimizer=SGD(learning_rate=0.01))
            targets = {n.name: np.zeros(n.shape)
                       for n in net.output_nodes}
            losses = [net.train_step(x, targets) for _ in range(2)]
            net.synchronize()
            kernels = net.kernels()
            net.close()
            return losses, kernels

        la, ka = run("priority")
        lb, kb = run("work-stealing")
        assert la == lb  # bitwise across schedulers
        for k in ka:
            np.testing.assert_array_equal(ka[k], kb[k])


class TestLifecycle:
    def test_context_manager(self, rng):
        graph = build_layered_network("CT", width=1, kernel=2)
        with Network(graph, input_shape=(6, 6, 6), seed=0,
                     num_workers=2) as net:
            out = net.forward(rng.standard_normal((6, 6, 6)))
            assert out

    def test_outputs_accessor(self, rng):
        graph = build_layered_network("CT", width=1, kernel=2)
        net = Network(graph, input_shape=(6, 6, 6), seed=0)
        assert net.outputs() == {}
        net.forward(rng.standard_normal((6, 6, 6)))
        assert len(net.outputs()) == 1

    def test_set_kernel_validates_shape(self):
        graph = build_layered_network("CT", width=1, kernel=2)
        net = Network(graph, input_shape=(6, 6, 6), seed=0)
        name = next(n for n, e in net.edges.items() if hasattr(e, "kernel"))
        with pytest.raises(ValueError):
            net.set_kernel(name, np.zeros((3, 3, 3)))

    def test_set_bias_on_conv_rejected(self):
        graph = build_layered_network("CT", width=1, kernel=2)
        net = Network(graph, input_shape=(6, 6, 6), seed=0)
        conv = next(n for n, e in net.edges.items() if hasattr(e, "kernel"))
        with pytest.raises(ValueError):
            net.set_bias(conv, 1.0)
