"""Network forward-pass tests: shapes, determinism, FFT/direct parity,
spectral node sums, engines and schedulers."""

import numpy as np
import pytest

from repro.core import Network
from repro.graph import ComputationGraph, build_layered_network


@pytest.fixture
def x(rng):
    return rng.standard_normal((12, 12, 12))


def small_net(**kwargs):
    graph = build_layered_network("CTC", width=[3, 2], kernel=2,
                                  transfer="tanh")
    defaults = dict(input_shape=(12, 12, 12), conv_mode="direct", seed=11)
    defaults.update(kwargs)
    return Network(graph, **defaults)


class TestForwardBasics:
    def test_output_shapes(self, x):
        net = small_net()
        outs = net.forward(x)
        assert len(outs) == 2
        for v in outs.values():
            assert v.shape == (10, 10, 10)

    def test_deterministic(self, x):
        net = small_net()
        a = net.forward(x)
        b = net.forward(x)
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])

    def test_same_seed_same_network(self, x):
        a = small_net().forward(x)
        b = small_net().forward(x)
        for k in a:
            np.testing.assert_array_equal(a[k], b[k])

    def test_different_seed_different_weights(self, x):
        a = small_net(seed=1).forward(x)
        b = small_net(seed=2).forward(x)
        assert any(not np.allclose(a[k], b[k]) for k in a)

    def test_wrong_input_shape_rejected(self, rng):
        net = small_net()
        with pytest.raises(ValueError):
            net.forward(rng.standard_normal((5, 5, 5)))

    def test_input_dict_for_single_input(self, x):
        net = small_net()
        name = net.input_nodes[0].name
        outs = net.forward({name: x})
        assert len(outs) == 2

    def test_missing_input_rejected(self, x):
        net = small_net()
        with pytest.raises(ValueError):
            net.forward({"nonexistent": x})

    def test_input_not_mutated(self, x):
        net = small_net()
        copy = x.copy()
        net.forward(x)
        np.testing.assert_array_equal(x, copy)

    def test_2d_network(self, rng):
        graph = build_layered_network("CTC", width=2, kernel=(1, 3, 3))
        net = Network(graph, input_shape=(1, 10, 10), seed=0)
        outs = net.forward(rng.standard_normal((1, 10, 10)))
        for v in outs.values():
            assert v.shape == (1, 6, 6)


class TestFftDirectParity:
    @pytest.mark.parametrize("spec,kernel", [("CTC", 2), ("CTMCT", 3)])
    def test_forward_parity(self, rng, spec, kernel):
        graph_d = build_layered_network(spec, width=2, kernel=kernel,
                                        window=2)
        graph_f = build_layered_network(spec, width=2, kernel=kernel,
                                        window=2)
        x = rng.standard_normal((14, 14, 14))
        net_d = Network(graph_d, input_shape=(14, 14, 14),
                        conv_mode="direct", seed=9)
        net_f = Network(graph_f, input_shape=(14, 14, 14),
                        conv_mode="fft", seed=9)
        a = net_d.forward(x)
        b = net_f.forward(x)
        for k in a:
            np.testing.assert_allclose(a[k], b[k], atol=1e-9)

    def test_memoization_does_not_change_results(self, rng):
        graph1 = build_layered_network("CTC", width=2, kernel=2)
        graph2 = build_layered_network("CTC", width=2, kernel=2)
        x = rng.standard_normal((10, 10, 10))
        a = Network(graph1, input_shape=(10, 10, 10), conv_mode="fft",
                    memoize=True, seed=4).forward(x)
        b = Network(graph2, input_shape=(10, 10, 10), conv_mode="fft",
                    memoize=False, seed=4).forward(x)
        for k in a:
            np.testing.assert_allclose(a[k], b[k], atol=1e-10)

    def test_memoization_reuses_spectra(self, x):
        net = small_net(conv_mode="fft", memoize=True)
        net.forward(x)
        assert net.cache.stats.reused > 0

    def test_spectral_node_domain_detected(self, x):
        net = small_net(conv_mode="fft")
        # conv-layer destinations accumulate spectra
        l1 = net.nodes["L1_0"]
        assert l1.forward_domain == "spectral"
        # input node's backward sum also spectral (all out-edges fft)
        assert net.nodes["L0_0"].backward_domain == "spectral"
        # transfer destinations are spatial
        assert net.nodes["L2_0"].forward_domain == "spatial"

    def test_mixed_mode_network(self, rng):
        graph = build_layered_network("CTC", width=2, kernel=2)
        conv_names = [e.name for e in graph.edges.values()
                      if e.kind == "conv"]
        modes = {n: ("fft" if i % 2 else "direct")
                 for i, n in enumerate(conv_names)}
        x = rng.standard_normal((10, 10, 10))
        mixed = Network(graph, input_shape=(10, 10, 10), conv_mode=modes,
                        seed=3).forward(x)
        graph2 = build_layered_network("CTC", width=2, kernel=2)
        pure = Network(graph2, input_shape=(10, 10, 10),
                       conv_mode="direct", seed=3).forward(x)
        for k in mixed:
            np.testing.assert_allclose(mixed[k], pure[k], atol=1e-9)


class TestEngines:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_threaded_matches_serial(self, x, workers):
        serial = small_net(num_workers=1).forward(x)
        net = small_net(num_workers=workers)
        threaded = net.forward(x)
        net.close()
        for k in serial:
            np.testing.assert_allclose(serial[k], threaded[k], atol=1e-12)

    @pytest.mark.parametrize("sched", ["fifo", "lifo", "work-stealing"])
    def test_alternative_schedulers_same_result(self, x, sched):
        ref = small_net().forward(x)
        net = small_net(num_workers=2, scheduler=sched)
        out = net.forward(x)
        net.close()
        for k in ref:
            np.testing.assert_allclose(ref[k], out[k], atol=1e-12)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            small_net(num_workers=0)

    def test_invalid_conv_mode(self):
        with pytest.raises(ValueError):
            small_net(conv_mode="winograd")


class TestConvergentSums:
    def test_multi_input_convergence(self, rng):
        """Two inputs converging by convolution onto one node sum."""
        g = ComputationGraph()
        g.add_node("in1")
        g.add_node("in2")
        g.add_node("sum")
        g.add_edge("c1", "in1", "sum", "conv", kernel=2)
        g.add_edge("c2", "in2", "sum", "conv", kernel=2)
        net = Network(g, input_shape=(6, 6, 6), conv_mode="direct", seed=2)
        x1 = rng.standard_normal((6, 6, 6))
        x2 = rng.standard_normal((6, 6, 6))
        out = net.forward({"in1": x1, "in2": x2})["sum"]

        from repro.tensor import correlate_valid
        k1 = net.edges["c1"].kernel.array
        k2 = net.edges["c2"].kernel.array
        expected = correlate_valid(x1, k1) + correlate_valid(x2, k2)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_spectral_sum_matches_spatial(self, rng):
        g1 = ComputationGraph()
        g2 = ComputationGraph()
        for g in (g1, g2):
            g.add_node("in1")
            g.add_node("in2")
            g.add_node("sum")
            g.add_edge("c1", "in1", "sum", "conv", kernel=2)
            g.add_edge("c2", "in2", "sum", "conv", kernel=2)
        inputs = {"in1": rng.standard_normal((6, 6, 6)),
                  "in2": rng.standard_normal((6, 6, 6))}
        a = Network(g1, input_shape=(6, 6, 6), conv_mode="direct",
                    seed=2).forward(inputs)
        b = Network(g2, input_shape=(6, 6, 6), conv_mode="fft",
                    seed=2).forward(inputs)
        np.testing.assert_allclose(a["sum"], b["sum"], atol=1e-10)
