"""GPU baseline model tests (Fig 8/9 machinery)."""

import pytest

from repro.baselines import (
    GPU_FRAMEWORKS,
    TITAN_X_MEMORY_BYTES,
    ConvLayerShape,
    comparison_layers,
    gpu_fits_in_memory,
    gpu_memory_bytes,
    gpu_seconds_per_update,
    znn_seconds_per_update,
)


class TestComparisonLayers:
    def test_six_conv_layers(self):
        layers = comparison_layers(2, 10, 8)
        assert len(layers) == 6

    def test_widths(self):
        layers = comparison_layers(2, 10, 8, width=40)
        assert layers[0].f_in == 1 and layers[0].f_out == 40
        assert all(l.f_in == 40 and l.f_out == 40 for l in layers[1:])

    def test_2d_shapes_have_singleton_axis(self):
        layers = comparison_layers(2, 10, 8)
        assert all(l.input_shape[0] == 1 for l in layers)

    def test_output_grows_with_patch(self):
        small = comparison_layers(3, 3, 1)
        large = comparison_layers(3, 3, 8)
        assert large[0].input_shape[0] > small[0].input_shape[0]

    def test_final_layer_output_matches_patch(self):
        layers = comparison_layers(3, 3, 4)
        assert layers[-1].output_shape == (4, 4, 4)

    def test_pooling_halves_resolution(self):
        layers = comparison_layers(3, 3, 4)
        # layer 2's input is pooled relative to layer 1's output
        assert layers[1].input_shape[0] == layers[0].output_shape[0] // 2

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            comparison_layers(4, 3, 4)


class TestGpuTimeModel:
    def test_seconds_increase_with_kernel(self):
        fw = GPU_FRAMEWORKS["theano"]
        t10 = gpu_seconds_per_update(fw, comparison_layers(2, 10, 8))
        t40 = gpu_seconds_per_update(fw, comparison_layers(2, 40, 8))
        assert t40 > t10

    def test_seconds_increase_with_output(self):
        fw = GPU_FRAMEWORKS["caffe-cudnn"]
        t1 = gpu_seconds_per_update(fw, comparison_layers(2, 20, 1))
        t64 = gpu_seconds_per_update(fw, comparison_layers(2, 20, 64))
        assert t64 > t1

    def test_cudnn_faster_than_plain_caffe(self):
        layers = comparison_layers(2, 10, 8)
        assert (gpu_seconds_per_update(GPU_FRAMEWORKS["caffe-cudnn"], layers)
                < gpu_seconds_per_update(GPU_FRAMEWORKS["caffe"], layers))

    def test_macs_formula(self):
        layer = ConvLayerShape(f_in=2, f_out=3, input_shape=(1, 10, 10),
                               output_shape=(1, 6, 6),
                               kernel_shape=(1, 5, 5))
        assert layer.macs_per_pass == 2 * 3 * 36 * 25


class TestGpuMemoryModel:
    def test_memory_grows_with_kernel(self):
        fw = GPU_FRAMEWORKS["caffe"]
        m10 = gpu_memory_bytes(fw, comparison_layers(2, 10, 8))
        m40 = gpu_memory_bytes(fw, comparison_layers(2, 40, 8))
        assert m40 > m10

    def test_caffe_oom_at_kernel_30(self):
        """Fig 8's missing Caffe bars for kernels >= 30^2."""
        fw = GPU_FRAMEWORKS["caffe"]
        assert gpu_fits_in_memory(fw, comparison_layers(2, 10, 8))
        assert not gpu_fits_in_memory(fw, comparison_layers(2, 30, 8))

    def test_cudnn_fits_everywhere_in_fig8(self):
        fw = GPU_FRAMEWORKS["caffe-cudnn"]
        for k in (10, 20, 30, 40):
            assert gpu_fits_in_memory(fw, comparison_layers(2, k, 64))

    def test_theano_3d_oom_beyond_7(self):
        """'We were unable to use Theano to train 3D networks with
        kernel sizes larger than 7x7x7.'"""
        fw = GPU_FRAMEWORKS["theano-3d"]
        assert gpu_fits_in_memory(fw, comparison_layers(3, 7, 1))
        assert not gpu_fits_in_memory(fw, comparison_layers(3, 9, 1))

    def test_custom_capacity(self):
        fw = GPU_FRAMEWORKS["caffe"]
        layers = comparison_layers(2, 10, 8)
        assert not gpu_fits_in_memory(fw, layers, capacity=1024)


class TestZnnModel:
    def test_fft_memoized_cheapest(self):
        layers = comparison_layers(3, 5, 4)
        memo = znn_seconds_per_update(layers, mode="fft-memo")
        plain = znn_seconds_per_update(layers, mode="fft")
        assert memo < plain

    def test_direct_mode_scales_with_kernel(self):
        t3 = znn_seconds_per_update(comparison_layers(3, 3, 4),
                                    mode="direct")
        t7 = znn_seconds_per_update(comparison_layers(3, 7, 4),
                                    mode="direct")
        assert t7 > 5 * t3

    def test_fft_mode_grows_slower_with_kernel_than_direct(self):
        """FFT cost depends on the kernel only through the enlarged
        field of view (image size), not through k^3 taps — the source
        of ZNN's large-kernel advantage."""
        fft_ratio = (znn_seconds_per_update(comparison_layers(3, 7, 4))
                     / znn_seconds_per_update(comparison_layers(3, 3, 4)))
        direct_ratio = (znn_seconds_per_update(comparison_layers(3, 7, 4),
                                               mode="direct")
                        / znn_seconds_per_update(comparison_layers(3, 3, 4),
                                                 mode="direct"))
        assert fft_ratio < direct_ratio

    def test_bigger_machine_faster(self):
        layers = comparison_layers(2, 20, 8)
        assert (znn_seconds_per_update(layers, machine="xeon-40")
                < znn_seconds_per_update(layers, machine="xeon-8"))
