"""Regenerate the golden training-determinism digests.

Run from the repository root after any change that *intentionally*
alters training arithmetic::

    PYTHONPATH=src python tests/baselines/regenerate_golden.py

The golden model deliberately uses only IEEE-exact operations — direct
convolution (fixed tap order), linear transfers, euclidean loss, plain
SGD with momentum — so the digest is reproducible across machines; no
``tanh``/``exp`` whose libm rounding could differ between platforms.

The script re-verifies the worker-count invariance (``workers=2`` must
produce the same digest as ``workers=1``) before overwriting
``golden_digests.json``; ``test_golden_determinism.py`` then pins the
stored values in CI.
"""

import json
import os

from repro.core import state_digest
from repro.data.provider import RandomProvider
from repro.parallel import ModelConfig, ParallelTrainer

GOLDEN_INPUT = (10, 10, 10)
GOLDEN_OUTPUT = (6, 6, 6)
GOLDEN_BATCH = 2
GOLDEN_ROUNDS = 3
GOLDEN_CFG = ModelConfig(
    input_shape=GOLDEN_INPUT,
    spec="CTCT",
    layered_kwargs={"width": 2, "kernel": 3, "transfer": "linear",
                    "final_transfer": "linear", "output_nodes": 1},
    conv_mode="direct",
    loss="euclidean",
    seed=2026,
    learning_rate=1e-5,
    momentum=0.9)
PROVIDER_ARGS = (GOLDEN_INPUT, GOLDEN_OUTPUT, False, None)

DIGEST_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "golden_digests.json")


def golden_run(workers: int):
    """(final state digest, per-round losses) of the golden run."""
    trainer = ParallelTrainer(GOLDEN_CFG, RandomProvider, PROVIDER_ARGS,
                              workers=workers, batch=GOLDEN_BATCH,
                              worker_timeout=120.0)
    try:
        report = trainer.run(GOLDEN_ROUNDS)
        digest = state_digest(trainer.network)
    finally:
        trainer.close()
    return digest, list(report.losses)


def main() -> None:
    digest, losses = golden_run(workers=1)
    digest_w2, losses_w2 = golden_run(workers=2)
    if digest_w2 != digest or losses_w2 != losses:
        raise SystemExit(
            "worker-count invariance is broken; refusing to write "
            f"golden digests (w1={digest} w2={digest_w2})")
    payload = {
        "_comment": "regenerate with tests/baselines/regenerate_golden.py",
        "final_state_digest": digest,
        "losses": losses,
    }
    with open(DIGEST_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {DIGEST_PATH}")
    print(f"  final_state_digest: {digest}")


if __name__ == "__main__":
    main()
