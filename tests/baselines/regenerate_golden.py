"""Regenerate the golden training- and serving-determinism digests.

Run from the repository root after any change that *intentionally*
alters training or serving arithmetic::

    PYTHONPATH=src python tests/baselines/regenerate_golden.py

The golden models deliberately use only IEEE-exact operations — direct
convolution (fixed tap order), linear transfers, euclidean loss, plain
SGD with momentum — so the digests are reproducible across machines;
no ``tanh``/``exp`` whose libm rounding could differ between
platforms.

Before overwriting ``golden_digests.json`` the script re-verifies two
invariances:

* worker-count: ``workers=2`` training must produce the same digest as
  ``workers=1`` (``test_golden_determinism.py`` pins it in CI);
* specialization: the ZNNi-specialized serving path — tiled, with
  per-layer plan modes — must produce output bitwise identical to the
  unspecialized whole-volume pass (``test_golden_serving.py`` pins
  it).  The golden serving plan is all-direct by construction (kernel
  3 sits below the analytic FFT crossover), which is exactly the case
  where bitwise equality is the contract (docs/serving.md "Per-layer
  specialization").
"""

import hashlib
import json
import os
import tempfile

import numpy as np

from repro.core import state_digest
from repro.data.provider import RandomProvider
from repro.graph import dump_layered_spec
from repro.parallel import ModelConfig, ParallelTrainer
from repro.serving import ModelRegistry, ModelSpec, plan_specialization

GOLDEN_INPUT = (10, 10, 10)
GOLDEN_OUTPUT = (6, 6, 6)
GOLDEN_BATCH = 2
GOLDEN_ROUNDS = 3
GOLDEN_CFG = ModelConfig(
    input_shape=GOLDEN_INPUT,
    spec="CTCT",
    layered_kwargs={"width": 2, "kernel": 3, "transfer": "linear",
                    "final_transfer": "linear", "output_nodes": 1},
    conv_mode="direct",
    loss="euclidean",
    seed=2026,
    learning_rate=1e-5,
    momentum=0.9)
PROVIDER_ARGS = (GOLDEN_INPUT, GOLDEN_OUTPUT, False, None)

DIGEST_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "golden_digests.json")

# The golden *serving* model: same IEEE-exact recipe as the training
# golden (CTCT, kernel 3, linear transfers, direct conv), random
# weights from the spec's fixed seed.  Kernel 3 keeps every layer
# below the analytic FFT crossover, so the specialization plan is
# all-direct and the bitwise contract applies.
SERVING_SPEC = "CTCT"
SERVING_KWARGS = {"kernel": 3, "transfer": "linear",
                  "final_transfer": "linear", "output_nodes": 1}
SERVING_WIDTH = 2
SERVING_VOLUME = (14, 14, 14)
#: Forces a multi-tile plan on the 14^3 volume (fov 5 -> 10^3 dense).
SERVING_TILE_VOXELS = 1000
SERVING_SEED = 2026


def serving_model_spec(root: str) -> "ModelSpec":
    path = os.path.join(root, "golden_serving.spec")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dump_layered_spec(SERVING_SPEC, SERVING_WIDTH,
                                   **SERVING_KWARGS))
    return ModelSpec.from_files("golden", path, conv_mode="direct")


def dense_digest(dense) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(dense).tobytes()).hexdigest()


def serving_run():
    """(specialized dense, unspecialized dense, plan) of the golden
    serving run; the two dense outputs must be bitwise identical."""
    with tempfile.TemporaryDirectory() as root:
        spec = serving_model_spec(root)
        volume = np.random.default_rng(SERVING_SEED).standard_normal(
            SERVING_VOLUME)
        plan = plan_specialization(spec, SERVING_VOLUME,
                                   tile_voxels=SERVING_TILE_VOXELS)
        registry = ModelRegistry(max_models=2)
        try:
            registry.register(spec)
            registry.set_plan(plan)
            specialized = registry.warm(
                spec.name, plan.input_tile,
                conv_modes=plan.conv_mode_map).run(volume)
            reference = registry.warm(spec.name, SERVING_VOLUME).run(volume)
        finally:
            registry.close()
    return specialized, reference, plan


def golden_run(workers: int):
    """(final state digest, per-round losses) of the golden run."""
    trainer = ParallelTrainer(GOLDEN_CFG, RandomProvider, PROVIDER_ARGS,
                              workers=workers, batch=GOLDEN_BATCH,
                              worker_timeout=120.0)
    try:
        report = trainer.run(GOLDEN_ROUNDS)
        digest = state_digest(trainer.network)
    finally:
        trainer.close()
    return digest, list(report.losses)


def main() -> None:
    digest, losses = golden_run(workers=1)
    digest_w2, losses_w2 = golden_run(workers=2)
    if digest_w2 != digest or losses_w2 != losses:
        raise SystemExit(
            "worker-count invariance is broken; refusing to write "
            f"golden digests (w1={digest} w2={digest_w2})")
    specialized, reference, plan = serving_run()
    if plan.uses_fft() or plan.num_tiles < 2:
        raise SystemExit(
            f"golden serving plan must be all-direct and tiled, got "
            f"modes {dict(plan.layer_modes)} over {plan.num_tiles} "
            f"tile(s); the bitwise contract would not apply")
    if not np.array_equal(specialized, reference):
        raise SystemExit(
            "specialized serving output diverged from the "
            "unspecialized whole-volume pass; refusing to write "
            "golden digests")
    payload = {
        "_comment": "regenerate with tests/baselines/regenerate_golden.py",
        "final_state_digest": digest,
        "losses": losses,
        "serving": {
            "dense_digest": dense_digest(reference),
            "plan_sha256": hashlib.sha256(
                plan.to_json().encode()).hexdigest(),
            "num_tiles": plan.num_tiles,
            "volume_shape": list(SERVING_VOLUME),
            "tile_voxels": SERVING_TILE_VOXELS,
        },
    }
    with open(DIGEST_PATH, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {DIGEST_PATH}")
    print(f"  final_state_digest: {digest}")
    print(f"  serving dense_digest: {payload['serving']['dense_digest']}")


if __name__ == "__main__":
    main()
