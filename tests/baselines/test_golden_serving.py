"""Golden serving determinism: pinned digests for the specialized path.

``golden_digests.json`` (written by ``regenerate_golden.py``) pins the
bitwise result of serving a fixed-seed volume through the golden
IEEE-exact model under a ZNNi specialization plan — tiled, with
per-layer plan modes.  Two regressions are caught:

* the specialized path drifting from the unspecialized whole-volume
  pass (the all-direct bitwise contract of docs/serving.md "Per-layer
  specialization");
* the planner itself drifting — the plan JSON is hashed, so a changed
  tile choice, mode flip or cost-model tweak shows up even when the
  dense output happens to survive it.

If a change is *supposed* to alter the planner or serving arithmetic,
rerun the regeneration script and commit the new digests alongside.
"""

import hashlib
import json

import numpy as np
import pytest

from regenerate_golden import (
    DIGEST_PATH,
    SERVING_TILE_VOXELS,
    SERVING_VOLUME,
    dense_digest,
    serving_run,
)


@pytest.fixture(scope="module")
def stored():
    with open(DIGEST_PATH) as fh:
        return json.load(fh)["serving"]


@pytest.fixture(scope="module")
def run():
    return serving_run()


def test_specialized_is_bitwise_identical_to_unspecialized(run):
    specialized, reference, plan = run
    assert plan.num_tiles > 1  # the tiled path is actually exercised
    assert not plan.uses_fft()  # all-direct: bitwise is the contract
    assert np.array_equal(specialized, reference)


def test_dense_output_matches_stored_digest(run, stored):
    _, reference, _ = run
    assert dense_digest(reference) == stored["dense_digest"]


def test_plan_matches_stored_digest(run, stored):
    """Plan purity, cross-run and cross-host: the analytic planner's
    canonical JSON hashes to the committed value."""
    _, _, plan = run
    assert hashlib.sha256(
        plan.to_json().encode()).hexdigest() == stored["plan_sha256"]
    assert plan.num_tiles == stored["num_tiles"]
    assert list(plan.volume_shape) == stored["volume_shape"]
    assert plan.tile_voxels == SERVING_TILE_VOXELS


def test_stored_geometry_is_self_consistent(stored):
    assert tuple(stored["volume_shape"]) == SERVING_VOLUME
    assert stored["tile_voxels"] == SERVING_TILE_VOXELS
