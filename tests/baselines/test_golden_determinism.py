"""Golden training determinism: pinned digests for the fixed-seed run.

The stored baseline (``golden_digests.json``, written by
``regenerate_golden.py``) pins the bitwise result of a 3-round
fixed-seed training run.  These tests catch two distinct regressions:

* an *unintentional* change to training arithmetic anywhere in the
  stack (sampling, conv, loss, backward pass, optimizer) — the
  single-process digest drifts from the stored one;
* a broken determinism contract in the data-parallel layer — the
  ``workers=2`` digest drifts from ``workers=1``.

If a change is *supposed* to alter training arithmetic, rerun the
regeneration script and commit the new digests alongside it.
"""

import json
import os

import pytest

from regenerate_golden import (DIGEST_PATH, GOLDEN_BATCH, GOLDEN_CFG,
                               GOLDEN_ROUNDS, PROVIDER_ARGS, golden_run)
from repro.core import checkpoint_digest
from repro.data.provider import RandomProvider
from repro.parallel import ParallelTrainer


@pytest.fixture(scope="module")
def stored():
    with open(DIGEST_PATH) as fh:
        return json.load(fh)


def test_single_process_run_matches_stored_digest(stored):
    digest, losses = golden_run(workers=1)
    assert losses == stored["losses"]
    assert digest == stored["final_state_digest"]


def test_final_checkpoint_file_matches_stored_digest(stored, tmp_path):
    trainer = ParallelTrainer(GOLDEN_CFG, RandomProvider, PROVIDER_ARGS,
                              workers=1, batch=GOLDEN_BATCH)
    try:
        report = trainer.run(GOLDEN_ROUNDS, checkpoint_every=GOLDEN_ROUNDS,
                             checkpoint_dir=tmp_path)
    finally:
        trainer.close()
    final = report.checkpoints[-1]
    assert os.path.basename(final) == f"ckpt-{GOLDEN_ROUNDS:08d}.npz"
    assert checkpoint_digest(final) == stored["final_state_digest"]


@pytest.mark.slow
def test_two_process_run_matches_stored_digest(stored):
    """The acceptance contract: ``--workers 2`` is bitwise identical to
    single-process for the same seed."""
    digest, losses = golden_run(workers=2)
    assert losses == stored["losses"]
    assert digest == stored["final_state_digest"]
