"""Fig 8 / Fig 9 comparison-harness tests — the paper's qualitative
regimes must reproduce."""

import pytest

from repro.baselines import (
    FIG8_KERNELS,
    FIG9_KERNELS,
    fig8_comparison,
    fig9_comparison,
    format_comparison,
)


@pytest.fixture(scope="module")
def fig8():
    return fig8_comparison(outputs=(1, 8, 64))


@pytest.fixture(scope="module")
def fig9():
    return fig9_comparison()


class TestFig8Regimes:
    def test_row_inventory(self, fig8):
        assert len(fig8) == len(FIG8_KERNELS) * 3
        assert all(set(r.seconds) == {"znn", "caffe", "caffe-cudnn",
                                      "theano"} for r in fig8)

    def test_gpu_wins_small_kernels(self, fig8):
        """'Such large kernels are not generally used in practice, so
        ZNN may not be competitive' — at 10^2 the GPU wins."""
        for row in fig8:
            if row.kernel_size == 10:
                assert row.winner() != "znn"

    def test_znn_wins_kernels_30_and_up(self, fig8):
        """'ZNN is faster than Caffe and Theano for sufficiently large
        kernels (30x30 or larger).'"""
        for row in fig8:
            if row.kernel_size >= 30:
                assert row.winner() == "znn"

    def test_caffe_missing_bars_for_large_kernels(self, fig8):
        """'Where Caffe data is missing, it means that Caffe could not
        handle networks of the given size.'"""
        oom = [r for r in fig8 if r.seconds["caffe"] is None]
        assert oom and all(r.kernel_size >= 30 for r in oom)

    def test_znn_never_oom(self, fig8):
        """'A typical CPU system has much more RAM than even a top
        GPU' — ZNN always reports a time."""
        assert all(r.seconds["znn"] is not None for r in fig8)

    def test_seconds_scale_with_output(self, fig8):
        for k in FIG8_KERNELS:
            rows = {r.output_size: r for r in fig8 if r.kernel_size == k}
            assert rows[64].seconds["znn"] > rows[1].seconds["znn"]


class TestFig9Regimes:
    def test_row_inventory(self, fig9):
        assert len(fig9) == len(FIG9_KERNELS) * 5
        assert all(set(r.seconds) == {"znn", "theano"} for r in fig9)

    def test_theano_competitive_small_kernels(self, fig9):
        """Theano holds its own at 3^3."""
        for row in fig9:
            if row.kernel_size == 3:
                assert row.winner() == "theano"

    def test_comparable_at_5(self, fig9):
        """'ZNN is comparable to Theano even for modest kernel sizes of
        5x5x5' — within a factor of 2 either way."""
        for row in fig9:
            if row.kernel_size == 5 and row.seconds["theano"] is not None:
                ratio = row.seconds["znn"] / row.seconds["theano"]
                assert 0.5 < ratio < 2.0

    def test_znn_wins_at_7(self, fig9):
        """'...outperforms Theano for kernel sizes of 7x7x7 and
        greater.'"""
        for row in fig9:
            if row.kernel_size == 7:
                assert row.winner() == "znn"

    def test_theano_oom_at_large_output_k7(self, fig9):
        """Theano's 12 GB limit bites within the 7^3 sweep."""
        k7 = [r for r in fig9 if r.kernel_size == 7]
        assert any(r.seconds["theano"] is None for r in k7)


class TestFormatting:
    def test_format_contains_oom_and_winner(self, fig8):
        text = format_comparison(fig8, 2)
        assert "OOM" in text
        assert "znn" in text
        assert "kernel" in text.splitlines()[0]
