"""Dense-training comparison tests (Section IX's 'no contest' remark)."""

import pytest

from repro.baselines import (
    GPU_FRAMEWORKS,
    comparison_layers,
    dense_offset_count,
    gpu_dense_seconds,
    znn_dense_layers,
    znn_dense_seconds,
    znn_seconds_per_update,
)


class TestOffsetCount:
    def test_paper_values(self):
        """'computing 16 sparse outputs in 2D and 64 in 3D'."""
        assert dense_offset_count(2) == 16
        assert dense_offset_count(3) == 64

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            dense_offset_count(4)


class TestDenseLayers:
    def test_six_conv_layers(self):
        layers = znn_dense_layers(3, 3, 2)
        assert len(layers) == 6

    def test_no_resolution_loss(self):
        """Max-filtering keeps resolution: layer inputs shrink only by
        valid trims, never by halving."""
        dense = znn_dense_layers(3, 3, 2)
        pooled = comparison_layers(3, 3, 2)
        # after the first pooling stage the pooled net's images are
        # roughly half the dense net's
        assert dense[2].input_shape[0] > 1.5 * pooled[2].input_shape[0]

    def test_sparsity_grows_past_filters(self):
        """Later layers cover the same field of view via dilation: the
        dense net's conv outputs shrink faster (effective kernels)."""
        layers = znn_dense_layers(3, 3, 2)
        trims = [l.input_shape[0] - l.output_shape[0] for l in layers]
        assert trims[0] < trims[-1]  # dilated late kernels trim more


class TestNoContest:
    @pytest.mark.parametrize("dims,kernel,out,framework", [
        (2, 20, 8, "theano"),
        (2, 10, 8, "caffe"),
        (3, 5, 4, "theano-3d"),
        (3, 3, 4, "theano-3d"),
    ])
    def test_znn_dense_beats_gpu_dense(self, dims, kernel, out, framework):
        gpu = gpu_dense_seconds(GPU_FRAMEWORKS[framework], dims, kernel,
                                out)
        znn = znn_dense_seconds(dims, kernel, out)
        assert znn < gpu

    def test_dense_factor_well_below_offset_count(self):
        """ZNN's dense pass costs far less than 4^d sparse passes."""
        for dims, kernel, out in ((2, 20, 8), (3, 5, 4)):
            sparse = znn_seconds_per_update(
                comparison_layers(dims, kernel, out))
            dense = znn_dense_seconds(dims, kernel, out)
            assert dense < 0.5 * dense_offset_count(dims) * sparse

    def test_dense_costs_more_than_sparse(self):
        """Sanity: dense output is more work than one sparse pass."""
        sparse = znn_seconds_per_update(comparison_layers(3, 5, 4))
        dense = znn_dense_seconds(3, 5, 4)
        assert dense > sparse
