"""ComputationGraph structural tests."""

import pytest

from repro.graph import ComputationGraph


def diamond():
    """input -> (two conv paths) -> sum node -> output transfer."""
    g = ComputationGraph()
    g.add_node("in", layer=0)
    g.add_node("a", layer=1)
    g.add_node("b", layer=1)
    g.add_node("sum", layer=2)
    g.add_node("out", layer=3)
    g.add_edge("c1", "in", "a", "conv", kernel=3)
    g.add_edge("c2", "in", "b", "conv", kernel=3)
    g.add_edge("t1", "a", "sum", "transfer", transfer="relu")
    g.add_edge("t2", "b", "sum", "transfer", transfer="relu")
    g.add_edge("t3", "sum", "out", "transfer", transfer="linear")
    return g


class TestConstruction:
    def test_duplicate_node_rejected(self):
        g = ComputationGraph()
        g.add_node("x")
        with pytest.raises(ValueError):
            g.add_node("x")

    def test_duplicate_edge_rejected(self):
        g = diamond()
        with pytest.raises(ValueError):
            g.add_edge("c1", "in", "a", "conv", kernel=3)

    def test_unknown_endpoint_rejected(self):
        g = ComputationGraph()
        g.add_node("x")
        with pytest.raises(ValueError):
            g.add_edge("e", "x", "ghost", "transfer", transfer="relu")

    def test_conv_requires_kernel(self):
        g = ComputationGraph()
        g.add_node("a")
        g.add_node("b")
        with pytest.raises(ValueError):
            g.add_edge("e", "a", "b", "conv")

    def test_pool_requires_window(self):
        g = ComputationGraph()
        g.add_node("a")
        g.add_node("b")
        with pytest.raises(ValueError):
            g.add_edge("e", "a", "b", "pool")

    def test_transfer_requires_name(self):
        g = ComputationGraph()
        g.add_node("a")
        g.add_node("b")
        with pytest.raises(ValueError):
            g.add_edge("e", "a", "b", "transfer")

    def test_unknown_kind_rejected(self):
        g = ComputationGraph()
        g.add_node("a")
        g.add_node("b")
        with pytest.raises(ValueError):
            g.add_edge("e", "a", "b", "warp")


class TestQueries:
    def test_input_output_nodes(self):
        g = diamond()
        assert [n.name for n in g.input_nodes] == ["in"]
        assert [n.name for n in g.output_nodes] == ["out"]

    def test_trainable_flags(self):
        g = diamond()
        assert g.edges["c1"].is_trainable
        assert g.edges["t1"].is_trainable  # transfer carries the bias
        g2 = ComputationGraph()
        g2.add_node("a")
        g2.add_node("b")
        e = g2.add_edge("p", "a", "b", "pool", window=2)
        assert not e.is_trainable

    def test_topological_order(self):
        g = diamond()
        order = [n.name for n in g.topological_order()]
        assert order.index("in") < order.index("a")
        assert order.index("a") < order.index("sum")
        assert order.index("sum") < order.index("out")

    def test_cycle_detected(self):
        g = ComputationGraph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("e1", "a", "b", "transfer", transfer="relu")
        g.add_edge("e2", "b", "a", "transfer", transfer="relu")
        with pytest.raises(ValueError):
            g.topological_order()

    def test_layers_grouping(self):
        g = diamond()
        layers = g.layers()
        assert [n.name for n in layers[1]] == ["a", "b"]


class TestShapePropagation:
    def test_diamond_shapes(self):
        g = diamond()
        g.propagate_shapes(10)
        assert g.nodes["in"].shape == (10, 10, 10)
        assert g.nodes["a"].shape == (8, 8, 8)
        assert g.nodes["sum"].shape == (8, 8, 8)
        assert g.nodes["out"].shape == (8, 8, 8)

    def test_mismatched_convergence_rejected(self):
        g = ComputationGraph()
        g.add_node("in")
        g.add_node("mid")
        g.add_node("sum")
        g.add_edge("short", "in", "sum", "conv", kernel=3)
        g.add_edge("c", "in", "mid", "conv", kernel=5)
        g.add_edge("c2", "mid", "sum", "transfer", transfer="relu")
        with pytest.raises(ValueError):
            g.propagate_shapes(10)

    def test_repropagation_overwrites(self):
        g = diamond()
        g.propagate_shapes(10)
        g.propagate_shapes(12)
        assert g.nodes["out"].shape == (10, 10, 10)


class TestConvnetProperties:
    def test_diamond_flags_nonconv_convergence(self):
        problems = diamond().check_convnet_properties()
        assert any("convergent non-convolution" in p for p in problems)

    def test_adjacent_convolutions_flagged(self):
        g = ComputationGraph()
        g.add_node("a")
        g.add_node("b")
        g.add_node("c")
        g.add_edge("c1", "a", "b", "conv", kernel=2)
        g.add_edge("c2", "b", "c", "conv", kernel=2)
        problems = g.check_convnet_properties()
        assert any("collapsed" in p for p in problems)

    def test_clean_layered_net_has_no_problems(self):
        from repro.graph import build_layered_network
        g = build_layered_network("CTC", width=2, kernel=2)
        assert g.check_convnet_properties() == []


class TestValidate:
    def test_no_inputs_rejected(self):
        g = ComputationGraph()
        g.add_node("a")
        g.add_node("b")
        g.add_edge("e1", "a", "b", "transfer", transfer="relu")
        g.add_edge("e2", "b", "a", "transfer", transfer="relu")
        with pytest.raises(ValueError):
            g.validate()

    def test_diamond_validates(self):
        diamond().validate()
