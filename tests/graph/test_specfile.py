"""Network spec-file parser tests."""

import numpy as np
import pytest

from repro.graph import dump_layered_spec, load_spec, parse_spec

LAYERED = """
[layered]
spec = CTMCT
width = 3
kernel = 3 3 3
window = 2
transfer = tanh
final_transfer = linear
skip_kernels = true
output_nodes = 1
"""

EXPLICIT = """
[node input]
[node a]
layer = 1
[node out]
layer = 2

[edge c1]
type = conv
src = input
dst = a
kernel = 3, 3, 3
sparsity = 2

[edge t1]
type = transfer
src = a
dst = out
transfer = tanh
"""


class TestLayered:
    def test_builds_graph(self):
        g = parse_spec(LAYERED)
        assert len(g.output_nodes) == 1
        kinds = {e.kind for e in g.edges.values()}
        assert kinds == {"conv", "transfer", "filter"}

    def test_skip_kernels_applied(self):
        g = parse_spec(LAYERED)
        sparsities = {e.sparsity for e in g.edges.values()
                      if e.kind == "conv"}
        assert (2, 2, 2) in sparsities

    def test_final_transfer_applied(self):
        g = parse_spec(LAYERED)
        transfers = [e.transfer for e in g.edges.values()
                     if e.kind == "transfer"]
        assert "linear" in transfers and "tanh" in transfers

    def test_width_list(self):
        g = parse_spec("[layered]\nspec = CTC\nwidth = 2 3\nkernel = 2\n")
        assert len(g.output_nodes) == 3

    def test_missing_required_key(self):
        with pytest.raises(ValueError):
            parse_spec("[layered]\nspec = CTC\n")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            parse_spec("[layered]\nspec = CTC\nwidth = 2\ncolour = red\n")

    def test_bad_boolean_rejected(self):
        with pytest.raises(ValueError):
            parse_spec("[layered]\nspec = CTC\nwidth = 2\n"
                       "skip_kernels = maybe\n")


class TestExplicit:
    def test_builds_graph(self):
        g = parse_spec(EXPLICIT)
        assert set(g.nodes) == {"input", "a", "out"}
        assert g.edges["c1"].kind == "conv"
        assert g.edges["c1"].sparsity == (2, 2, 2)
        assert g.nodes["a"].layer == 1

    def test_runs_through_network(self, rng):
        from repro.core import Network

        g = parse_spec(EXPLICIT)
        net = Network(g, input_shape=(9, 9, 9), seed=0)
        out = net.forward(rng.standard_normal((9, 9, 9)))
        assert list(out) == ["out"]

    def test_edge_missing_endpoints_rejected(self):
        with pytest.raises(ValueError):
            parse_spec("[node a]\n[node b]\n[edge e]\ntype = conv\n"
                       "kernel = 2\n")

    def test_unknown_edge_key_rejected(self):
        with pytest.raises(ValueError):
            parse_spec(EXPLICIT + "\n[edge bad]\ntype = conv\nsrc = a\n"
                                  "dst = out\nstride = 2\n")

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError):
            parse_spec("[settings]\nx = 1\n" + EXPLICIT)

    def test_mixing_styles_rejected(self):
        with pytest.raises(ValueError):
            parse_spec(LAYERED + EXPLICIT)

    def test_cycle_rejected(self):
        bad = """
[node a]
[node b]
[edge e1]
type = transfer
src = a
dst = b
transfer = relu
[edge e2]
type = transfer
src = b
dst = a
transfer = relu
"""
        with pytest.raises(ValueError):
            parse_spec(bad)


class TestRoundtrip:
    def test_dump_then_parse(self):
        text = dump_layered_spec("CTC", width=[2, 3], kernel=2,
                                 transfer="relu")
        g = parse_spec(text)
        assert len(g.output_nodes) == 3

    def test_dump_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            dump_layered_spec("CTC", width=2, colour="red")

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "net.cfg"
        path.write_text(LAYERED)
        g = load_spec(path)
        assert len(g.output_nodes) == 1


class TestParityWithBuilder:
    def test_same_graph_as_direct_builder_call(self, rng):
        from repro.core import Network
        from repro.graph import build_layered_network

        g1 = parse_spec(LAYERED)
        g2 = build_layered_network("CTMCT", width=3, kernel=3, window=2,
                                   transfer="tanh", final_transfer="linear",
                                   skip_kernels=True, output_nodes=1)
        assert set(g1.nodes) == set(g2.nodes)
        assert set(g1.edges) == set(g2.edges)
        x = rng.standard_normal((14, 14, 14))
        o1 = Network(g1, input_shape=(14, 14, 14), seed=5).forward(x)
        o2 = Network(g2, input_shape=(14, 14, 14), seed=5).forward(x)
        for k in o1:
            np.testing.assert_array_equal(o1[k], o2[k])
