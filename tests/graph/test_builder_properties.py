"""Property-based structural tests over random layered specs."""

import string

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.graph import (
    build_layered_network,
    build_task_graph,
    forward_priorities,
    output_distance_ordering,
)
from repro.simulate import MachineSpec, simulate_schedule

spec_strategy = st.text(alphabet="CTMP", min_size=1, max_size=8).filter(
    lambda s: "C" in s)
width_strategy = st.integers(1, 4)


def try_build(spec, width):
    """Build with safe parameters; returns None if the spec is
    geometrically impossible at the probe input size."""
    try:
        g = build_layered_network(spec, width=width, kernel=2, window=2,
                                  skip_kernels=True)
        g.propagate_shapes(32)
        return g
    except ValueError:
        return None


class TestStructuralProperties:
    @given(spec=spec_strategy, width=width_strategy)
    @settings(max_examples=40)
    def test_edge_count_formula(self, spec, width):
        g = try_build(spec, width)
        assume(g is not None)
        conv = sum(1 for e in g.edges.values() if e.kind == "conv")
        one_to_one = sum(1 for e in g.edges.values() if e.kind != "conv")
        # Walk the spec tracking the running layer width: conv layers
        # contribute prev*width edges, one-to-one layers prev edges.
        expected_conv = 0
        expected_o2o = 0
        prev = 1  # input_nodes
        for c in spec.upper():
            if c == "C":
                expected_conv += prev * width
                prev = width
            else:
                expected_o2o += prev
        assert conv == expected_conv
        assert one_to_one == expected_o2o

    @given(spec=spec_strategy, width=width_strategy)
    @settings(max_examples=40)
    def test_always_acyclic_and_shaped(self, spec, width):
        g = try_build(spec, width)
        assume(g is not None)
        g.validate()
        assert all(n.shape is not None for n in g.nodes.values())

    @given(spec=spec_strategy, width=width_strategy)
    @settings(max_examples=30)
    def test_orderings_are_permutations(self, spec, width):
        g = try_build(spec, width)
        assume(g is not None)
        order = output_distance_ordering(g)
        assert sorted(order.values()) == list(range(len(g.nodes)))

    @given(spec=spec_strategy, width=width_strategy)
    @settings(max_examples=30)
    def test_convergent_edges_share_priority(self, spec, width):
        g = try_build(spec, width)
        assume(g is not None)
        fp = forward_priorities(g)
        for node in g.nodes.values():
            values = {fp[e.name] for e in node.in_edges}
            assert len(values) <= 1


class TestDeterminismProperties:
    """Data-parallel replicas rely on the builder being a pure function
    of its arguments: every process must derive the same graph."""

    @given(spec=spec_strategy, width=width_strategy)
    @settings(max_examples=30)
    def test_build_is_deterministic(self, spec, width):
        a = try_build(spec, width)
        assume(a is not None)
        b = try_build(spec, width)
        assert sorted(a.nodes) == sorted(b.nodes)
        assert sorted(a.edges) == sorted(b.edges)
        for name in a.edges:
            assert a.edges[name].kind == b.edges[name].kind
        for name in a.nodes:
            assert a.nodes[name].shape == b.nodes[name].shape

    @given(spec=spec_strategy, width=width_strategy)
    @settings(max_examples=30)
    def test_node_count_formula(self, spec, width):
        g = try_build(spec, width)
        assume(g is not None)
        expected = 1  # the input node
        prev = 1
        for c in spec.upper():
            prev = width if c == "C" else prev
            expected += prev
        assert len(g.nodes) == expected

    @given(spec=spec_strategy, width=width_strategy)
    @settings(max_examples=30)
    def test_shapes_never_grow_along_edges(self, spec, width):
        """Every layer kind in the alphabet (conv without padding,
        transfer, max-filter, pooling) preserves or shrinks the
        per-axis extent."""
        g = try_build(spec, width)
        assume(g is not None)
        for edge in g.edges.values():
            src = g.nodes[edge.src].shape
            dst = g.nodes[edge.dst].shape
            assert all(d <= s for s, d in zip(src, dst)), (
                edge.name, src, dst)


class TestTaskGraphProperties:
    @given(spec=spec_strategy, width=width_strategy,
           mode=st.sampled_from(["direct", "fft"]))
    @settings(max_examples=25)
    def test_task_graph_valid_and_consistent(self, spec, width, mode):
        g = try_build(spec, width)
        assume(g is not None)
        tg = build_task_graph(g, conv_mode=mode)
        tg.validate()
        kinds = tg.count_kinds()
        assert kinds["forward"] + kinds.get("fft", 0) >= len(g.edges)
        assert kinds["provider"] == 1
        assert tg.total_cost > 0
        assert 0 < tg.critical_path_cost() <= tg.total_cost

    @given(spec=spec_strategy, width=width_strategy,
           threads=st.integers(1, 12))
    @settings(max_examples=25)
    def test_des_makespan_bounds(self, spec, width, threads):
        """For every random network: T1/P <= makespan <= T1 (ideal
        machine, no overhead)."""
        g = try_build(spec, width)
        assume(g is not None)
        tg = build_task_graph(g, conv_mode="direct")
        machine = MachineSpec(name="ideal", cores=threads, threads=threads,
                              ghz=1.0, yield_tier1=0.0, sync_overhead=0.0)
        result = simulate_schedule(tg, machine, threads)
        lower = max(tg.total_cost / threads, tg.critical_path_cost())
        assert lower * 0.999 <= result.makespan <= tg.total_cost * 1.001
