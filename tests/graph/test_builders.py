"""Layered-network builder tests."""

import pytest

from repro.graph import build_layered_network, pool_to_filter_spec
from repro.graph.builders import LayeredSpec


class TestSpecParsing:
    def test_invalid_characters_rejected(self):
        with pytest.raises(ValueError):
            build_layered_network("CTX", width=2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_layered_network("", width=2)

    def test_no_conv_rejected(self):
        with pytest.raises(ValueError):
            build_layered_network("TT", width=2)

    def test_lowercase_accepted(self):
        g = build_layered_network("ctc", width=2, kernel=2)
        assert len(g.edges) > 0

    def test_width_list_length_checked(self):
        with pytest.raises(ValueError):
            build_layered_network("CTC", width=[2], kernel=2)

    def test_conv_layer_sizes(self):
        spec = LayeredSpec("CTC", width=[3, 5], kernel=2)
        assert spec.conv_layer_sizes() == [(1, 3), (3, 5)]


class TestStructure:
    def test_paper_3d_net_counts(self):
        """CTMCTMCTCT at width f: conv edges f + 3f^2, one-to-one
        transfer/filter edges."""
        f = 4
        g = build_layered_network("CTMCTMCTCT", width=f, kernel=3, window=2)
        conv = [e for e in g.edges.values() if e.kind == "conv"]
        xfer = [e for e in g.edges.values() if e.kind == "transfer"]
        filt = [e for e in g.edges.values() if e.kind == "filter"]
        assert len(conv) == f + 3 * f * f
        assert len(xfer) == 4 * f
        assert len(filt) == 2 * f

    def test_fully_connected(self):
        g = build_layered_network("CTC", width=[3, 2], kernel=2)
        # second conv layer: 3 sources x 2 destinations
        second = [e for e in g.edges.values()
                  if e.kind == "conv" and e.src.startswith("L2")]
        assert len(second) == 6

    def test_output_nodes_override(self):
        g = build_layered_network("CTCT", width=5, kernel=2, output_nodes=1)
        assert len(g.output_nodes) == 1

    def test_multiple_input_nodes(self):
        g = build_layered_network("CT", width=3, kernel=2, input_nodes=2)
        assert len(g.input_nodes) == 2
        conv = [e for e in g.edges.values() if e.kind == "conv"]
        assert len(conv) == 6  # fully connected from both inputs

    def test_dropout_layer(self):
        g = build_layered_network("CTD", width=2, kernel=2,
                                  dropout_rate=0.3)
        drops = [e for e in g.edges.values() if e.kind == "dropout"]
        assert len(drops) == 2 and drops[0].rate == 0.3

    def test_pool_layers(self):
        g = build_layered_network("CTP", width=2, kernel=2, window=2)
        pools = [e for e in g.edges.values() if e.kind == "pool"]
        assert len(pools) == 2


class TestSkipKernels:
    def test_sparsity_grows_with_filters(self):
        g = build_layered_network("CMCMC", width=1, kernel=3, window=2,
                                  skip_kernels=True)
        convs = sorted((e.name, e.sparsity) for e in g.edges.values()
                       if e.kind == "conv")
        sparsities = [s for _, s in convs]
        assert sparsities == [(1, 1, 1), (2, 2, 2), (4, 4, 4)]

    def test_filter_sparsity_grows_too(self):
        g = build_layered_network("CMCM", width=1, kernel=3, window=2,
                                  skip_kernels=True)
        filts = sorted((e.name, e.sparsity) for e in g.edges.values()
                       if e.kind == "filter")
        assert [s for _, s in filts] == [(1, 1, 1), (2, 2, 2)]

    def test_disabled_by_default(self):
        g = build_layered_network("CMC", width=1, kernel=3, window=2)
        assert all(e.sparsity == (1, 1, 1) for e in g.edges.values())

    def test_explicit_schedule_overrides(self):
        g = build_layered_network("CMC", width=1, kernel=3, window=2,
                                  sparsity_schedule=[1, 3])
        convs = sorted((e.name, e.sparsity) for e in g.edges.values()
                       if e.kind == "conv")
        assert [s for _, s in convs] == [(1, 1, 1), (3, 3, 3)]

    def test_schedule_length_checked(self):
        with pytest.raises(ValueError):
            build_layered_network("CMC", width=1, kernel=3,
                                  sparsity_schedule=[1])


class TestTransferOptions:
    def test_uniform_transfer(self):
        g = build_layered_network("CTCT", width=2, kernel=2,
                                  transfer="tanh")
        assert all(e.transfer == "tanh" for e in g.edges.values()
                   if e.kind == "transfer")

    def test_final_transfer_override(self):
        g = build_layered_network("CTCT", width=2, kernel=2,
                                  transfer="relu", final_transfer="linear")
        last = [e.transfer for e in g.edges.values()
                if e.kind == "transfer" and e.src.startswith("L3")]
        first = [e.transfer for e in g.edges.values()
                 if e.kind == "transfer" and e.src.startswith("L1")]
        assert set(last) == {"linear"} and set(first) == {"relu"}


class TestPerLayerParameters:
    def test_kernel_list(self):
        g = build_layered_network("CTC", width=2, kernel=[2, 3])
        kernels = {e.kernel for e in g.edges.values() if e.kind == "conv"}
        assert kernels == {(2, 2, 2), (3, 3, 3)}

    def test_kernel_tuple_applies_to_all(self):
        g = build_layered_network("CTC", width=2, kernel=(1, 3, 3))
        kernels = {e.kernel for e in g.edges.values() if e.kind == "conv"}
        assert kernels == {(1, 3, 3)}

    def test_anisotropic_window(self):
        g = build_layered_network("CM", width=1, kernel=2, window=(1, 2, 2))
        filt = [e for e in g.edges.values() if e.kind == "filter"][0]
        assert filt.window == (1, 2, 2)


class TestPoolToFilterSpec:
    def test_replaces_p_with_m(self):
        assert pool_to_filter_spec("CTPCTPCT") == "CTMCTMCT"

    def test_lowercase(self):
        assert pool_to_filter_spec("ctp") == "CTM"

    def test_idempotent_without_p(self):
        assert pool_to_filter_spec("CTM") == "CTM"
