"""Distance orderings and task priority tests (Section VI-A)."""

from repro.graph import (
    backward_priorities,
    build_layered_network,
    forward_priorities,
    input_distance_ordering,
    longest_distance_to_inputs,
    longest_distance_to_outputs,
    output_distance_ordering,
)


def chain():
    return build_layered_network("CTCT", width=1, kernel=2)


class TestDistances:
    def test_chain_output_distances(self):
        g = chain()
        d = longest_distance_to_outputs(g)
        assert d["L4_0"] == 0
        assert d["L0_0"] == 4

    def test_chain_input_distances(self):
        g = chain()
        d = longest_distance_to_inputs(g)
        assert d["L0_0"] == 0
        assert d["L4_0"] == 4

    def test_longest_path_not_shortest(self):
        """With a skip connection the LONGEST path must be used."""
        from repro.graph import ComputationGraph
        g = ComputationGraph()
        for name in ("in", "mid", "out"):
            g.add_node(name)
        g.add_edge("long1", "in", "mid", "conv", kernel=3)
        g.add_edge("long2", "mid", "out", "transfer", transfer="relu")
        g.add_edge("skip", "in", "out", "conv", kernel=5)
        d = longest_distance_to_outputs(g)
        assert d["in"] == 2  # through mid, not the skip edge

    def test_same_layer_same_distance(self):
        g = build_layered_network("CTC", width=3, kernel=2)
        d = longest_distance_to_outputs(g)
        assert len({d[f"L1_{j}"] for j in range(3)}) == 1


class TestOrderings:
    def test_ordering_is_permutation(self):
        g = build_layered_network("CTMCT", width=2, kernel=2, window=2)
        order = output_distance_ordering(g)
        assert sorted(order.values()) == list(range(len(g.nodes)))

    def test_farther_from_output_means_earlier_position(self):
        g = chain()
        order = output_distance_ordering(g)
        assert order["L0_0"] < order["L4_0"]

    def test_farther_from_input_means_earlier_backward_position(self):
        g = chain()
        order = input_distance_ordering(g)
        assert order["L4_0"] < order["L0_0"]

    def test_deterministic_tiebreak(self):
        g = build_layered_network("CTC", width=3, kernel=2)
        a = output_distance_ordering(g)
        b = output_distance_ordering(g)
        assert a == b


class TestPriorities:
    def test_forward_priorities_by_head_node(self):
        g = chain()
        fp = forward_priorities(g)
        # priorities increase along the chain (closer to output = later)
        names = ["conv_L1_0_0", "xfer_L2_0", "conv_L3_0_0", "xfer_L4_0"]
        values = [fp[n] for n in names]
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    def test_backward_priorities_by_tail_node(self):
        g = chain()
        bp = backward_priorities(g)
        names = ["xfer_L4_0", "conv_L3_0_0", "xfer_L2_0", "conv_L1_0_0"]
        values = [bp[n] for n in names]
        assert values == sorted(values)

    def test_convergent_edges_share_forward_priority(self):
        """Temporal locality: all conv edges summing into one node get
        one priority value, so they run back-to-back."""
        g = build_layered_network("CTC", width=4, kernel=2)
        fp = forward_priorities(g)
        into_l3_0 = [fp[e.name] for e in g.nodes["L3_0"].in_edges]
        assert len(set(into_l3_0)) == 1

    def test_distinct_priorities_much_smaller_than_edges(self):
        """The heap-of-lists K << N claim for wide networks: each edge
        converging on a node shares the head node's priority, so K is
        the node count, far below the edge count for wide layers."""
        g = build_layered_network("CTC", width=10, kernel=2)
        fp = forward_priorities(g)
        assert len(set(fp.values())) <= len(fp) / 4
