"""Task dependency graph tests (Section V, Fig 3)."""

import pytest

from repro.graph import (
    LOWEST_TASK_PRIORITY,
    build_layered_network,
    build_task_graph,
)
from repro.pram import direct_conv_task_cost


def small_graph(width=2, mode_input=16):
    g = build_layered_network("CTMCT", width=width, kernel=3, window=2)
    g.propagate_shapes(mode_input)
    return g


class TestStructureDirect:
    def test_task_counts(self):
        g = small_graph(width=2)
        tg = build_task_graph(g, conv_mode="direct")
        kinds = tg.count_kinds()
        n_edges = len(g.edges)
        assert kinds["forward"] == n_edges
        assert kinds["backward"] == n_edges
        # updates: conv + transfer edges only
        trainable = sum(1 for e in g.edges.values()
                        if e.kind in ("conv", "transfer"))
        assert kinds["update"] == trainable
        assert kinds["provider"] == 1
        assert kinds["lossgrad"] == len(g.output_nodes)

    def test_acyclic(self):
        tg = build_task_graph(small_graph(), conv_mode="direct")
        tg.validate()  # raises on cycles

    def test_forward_depends_on_own_update(self):
        """The Fig 3 round ordering: fwd:e waits for upd:e."""
        g = small_graph(width=1)
        tg = build_task_graph(g, conv_mode="direct")
        conv = next(e for e in g.edges.values() if e.kind == "conv")
        upd = tg.ids[f"upd:{conv.name}"]
        fwd = tg.ids[f"fwd:{conv.name}"]
        assert fwd in tg.successors[upd]

    def test_update_depends_on_backward(self):
        g = small_graph(width=1)
        tg = build_task_graph(g, conv_mode="direct")
        conv = next(e for e in g.edges.values() if e.kind == "conv")
        bwd = tg.ids[f"bwd:{conv.name}"]
        upd = tg.ids[f"upd:{conv.name}"]
        assert upd in tg.successors[bwd]

    def test_provider_feeds_first_layer_forward(self):
        g = small_graph(width=1)
        tg = build_task_graph(g, conv_mode="direct")
        provider = tg.ids["provider"]
        first_conv = next(e for e in g.edges.values()
                          if e.kind == "conv" and e.src == "L0_0")
        assert tg.ids[f"fwd:{first_conv.name}"] in tg.successors[provider]

    def test_lossgrad_seeds_backward(self):
        g = small_graph(width=1)
        tg = build_task_graph(g, conv_mode="direct")
        out = g.output_nodes[0]
        lg = tg.ids[f"lossgrad:{out.name}"]
        last_edge = out.in_edges[0]
        assert tg.ids[f"bwd:{last_edge.name}"] in tg.successors[lg]

    def test_update_priority_lowest(self):
        tg = build_task_graph(small_graph(), conv_mode="direct")
        for tid, kind in enumerate(tg.kinds):
            if kind == "update":
                assert tg.priorities[tid] == LOWEST_TASK_PRIORITY

    def test_conv_task_cost_matches_model(self):
        g = small_graph(width=1)
        tg = build_task_graph(g, conv_mode="direct")
        conv = next(e for e in g.edges.values() if e.kind == "conv"
                    and e.src == "L0_0")
        expected = direct_conv_task_cost((16, 16, 16), 3)
        assert tg.costs[tg.ids[f"fwd:{conv.name}"]] == expected

    def test_include_updates_false(self):
        tg = build_task_graph(small_graph(), conv_mode="direct",
                              include_updates=False)
        assert "update" not in tg.count_kinds()

    def test_unpropagated_graph_rejected(self):
        g = build_layered_network("CT", width=1, kernel=2)
        with pytest.raises(ValueError):
            build_task_graph(g)


class TestStructureFft:
    def test_fft_tasks_present(self):
        g = small_graph(width=2)
        tg = build_task_graph(g, conv_mode="fft")
        kinds = tg.count_kinds()
        assert kinds.get("fft", 0) > 0
        tg.validate()

    def test_fft_task_inventory(self):
        """Per conv layer: image FFT per source node, kernel FFT per
        edge, inverse FFT per destination node (forward); gradient FFT
        per head node, inverse per tail node (backward)."""
        g = build_layered_network("CTC", width=2, kernel=2)
        g.propagate_shapes(8)
        tg = build_task_graph(g, conv_mode="fft")
        fft_names = [n for n, k in zip(tg.names, tg.kinds) if k == "fft"]
        img = [n for n in fft_names if n.startswith("fft_img:")]
        ker = [n for n in fft_names if n.startswith("fft_kernel:")]
        grad = [n for n in fft_names if n.startswith("fft_grad:")]
        ifft_f = [n for n in fft_names if n.startswith("ifft_fwd:")]
        ifft_b = [n for n in fft_names if n.startswith("ifft_bwd:")]
        # conv edges: 1->2 then 2->2: sources 1 + 2, edges 2 + 4
        assert len(img) == 3
        assert len(ker) == 6
        assert len(ifft_f) == 4  # destination nodes of conv layers: 2+2
        # gradient FFTs at conv heads; inverse at conv tails (non-input
        # tails only contribute if they need spatial gradients — the
        # input node also gets one)
        assert len(grad) == 4
        assert len(ifft_b) == 3

    def test_kernel_fft_follows_update(self):
        g = build_layered_network("CT", width=1, kernel=2)
        g.propagate_shapes(6)
        tg = build_task_graph(g, conv_mode="fft")
        conv = next(e for e in g.edges.values() if e.kind == "conv")
        upd = tg.ids[f"upd:{conv.name}"]
        fk = tg.ids[f"fft_kernel:{conv.name}"]
        assert fk in tg.successors[upd]
        assert tg.priorities[fk] == LOWEST_TASK_PRIORITY

    def test_per_edge_mode_dict(self):
        g = build_layered_network("CTC", width=1, kernel=2)
        g.propagate_shapes(8)
        conv_names = [e.name for e in g.edges.values() if e.kind == "conv"]
        modes = {conv_names[0]: "fft", conv_names[1]: "direct"}
        tg = build_task_graph(g, conv_mode=modes)
        assert f"prod_fwd:{conv_names[0]}" in tg.ids
        assert f"fwd:{conv_names[1]}" in tg.ids

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            build_task_graph(small_graph(), conv_mode="winograd")


class TestCostAggregates:
    def test_total_cost_positive_and_finite(self):
        tg = build_task_graph(small_graph(), conv_mode="direct")
        assert 0 < tg.total_cost < float("inf")

    def test_critical_path_bounded_by_total(self):
        tg = build_task_graph(small_graph(width=3), conv_mode="direct")
        assert 0 < tg.critical_path_cost() <= tg.total_cost

    def test_wider_networks_more_parallel(self):
        """S_inf = T1 / Tinf grows with width (the Fig 4 insight)."""
        def s_inf(width):
            g = build_layered_network("CTCT", width=width, kernel=3)
            g.propagate_shapes(12)
            tg = build_task_graph(g, conv_mode="direct")
            return tg.total_cost / tg.critical_path_cost()

        assert s_inf(8) > s_inf(2) > 1.0

    def test_to_networkx_roundtrip(self):
        tg = build_task_graph(small_graph(width=1), conv_mode="direct")
        nx_graph = tg.to_networkx()
        assert nx_graph.number_of_nodes() == len(tg)
        assert nx_graph.number_of_edges() == sum(
            len(s) for s in tg.successors)
