"""Request pipeline: admission, backpressure, deadlines, batching."""

import threading
import time

import numpy as np
import pytest

from repro.observability import get_registry as metrics_registry
from repro.resilience import RetryPolicy
from repro.serving import (
    DeadlineExceeded,
    InferenceServer,
    ServerClosed,
    ServerOverloaded,
    ServingClient,
)


def make_server(registry, **kwargs):
    kwargs.setdefault("num_workers", 2)
    kwargs.setdefault("max_queue", 4)
    kwargs.setdefault("tile_voxels", 1000)
    return InferenceServer(registry, **kwargs)


class TestRoundTrip:
    def test_infer_returns_dense_output(self, registry, volume):
        with make_server(registry) as server:
            out = server.infer("small", volume)
        assert out.shape == tuple(v - 4 for v in volume.shape)

    def test_too_thin_volume_fails_cleanly(self, registry):
        # A 2D array promotes to (1, 20, 20), which cannot cover this
        # model's (5, 5, 5) fov — the planner's error must reach the
        # caller, not hang the request.
        vol = np.random.default_rng(3).standard_normal((20, 20))
        with make_server(registry) as server:
            request = server.submit("small", vol)
            with pytest.raises(ValueError, match="field of view"):
                request.result(timeout=30)

    def test_unknown_model_fails_before_queueing(self, registry, volume):
        with make_server(registry) as server:
            with pytest.raises(KeyError, match="unknown model"):
                server.submit("nope", volume)
            assert server.queue_depth == 0

    def test_bad_volume_rejected(self, registry):
        with make_server(registry) as server:
            with pytest.raises(ValueError, match="2D or 3D"):
                server.submit("small", np.zeros((2, 2, 2, 2)))


class TestBackpressure:
    def test_queue_full_rejects_with_retry_after(self, registry, volume):
        with make_server(registry, max_queue=2) as server:
            server.gate.clear()
            time.sleep(0.05)  # let workers park behind the gate
            accepted = [server.submit("small", volume) for _ in range(2)]
            with pytest.raises(ServerOverloaded) as info:
                server.submit("small", volume)
            assert info.value.retry_after > 0
            server.gate.set()
            for request in accepted:
                assert request.result(timeout=30).size > 0

    def test_rejection_metric(self, registry, volume):
        counter = metrics_registry().counter("serving.requests.rejected")
        before = counter.value
        with make_server(registry, max_queue=1) as server:
            server.gate.clear()
            time.sleep(0.05)
            server.submit("small", volume)
            with pytest.raises(ServerOverloaded):
                server.submit("small", volume)
            server.gate.set()
        assert counter.value == before + 1

    def test_client_retries_until_capacity(self, registry, volume):
        with make_server(registry, max_queue=1) as server:
            server.gate.clear()
            time.sleep(0.05)
            first = server.submit("small", volume)
            client = ServingClient(server, max_attempts=20,
                                   backoff_cap=0.05)
            done = threading.Event()
            result = {}

            def retrying_infer():
                result["out"] = client.infer("small", volume)
                done.set()

            t = threading.Thread(target=retrying_infer)
            t.start()
            time.sleep(0.1)  # client is being rejected meanwhile
            server.gate.set()
            assert done.wait(30)
            t.join()
            assert np.array_equal(result["out"],
                                  first.result(timeout=30))

    def test_client_gives_up_after_max_attempts(self, registry, volume):
        with make_server(registry, max_queue=1) as server:
            server.gate.clear()
            time.sleep(0.05)
            server.submit("small", volume)
            client = ServingClient(server, max_attempts=2,
                                   backoff_cap=0.01)
            with pytest.raises(ServerOverloaded):
                client.infer("small", volume)
            server.gate.set()

    def test_overload_rejects_under_nonreentrant_lock(self, small_model,
                                                      volume, monkeypatch):
        # Regression: submit()'s rejection path used to call
        # retry_after_hint(), re-entering the admission condition's
        # lock.  The default Condition RLock masked the recursion; with
        # checking enabled the lock is non-reentrant, so the old code
        # would raise recursive-acquire here instead of overload.
        # Everything built under the throwaway state (whose CheckedLocks
        # are bound to it) is also closed under it — hence a private
        # registry rather than the fixture, whose teardown runs after
        # the monkeypatch reverts.
        from repro.analysis import runtime
        from repro.serving import ModelRegistry
        state = runtime._CheckState()
        monkeypatch.setattr(runtime, "_state", state)
        registry = ModelRegistry(max_models=2)
        registry.register(small_model.model_spec())
        try:
            with make_server(registry, max_queue=1) as server:
                server.gate.clear()
                time.sleep(0.05)
                accepted = server.submit("small", volume)
                with pytest.raises(ServerOverloaded) as info:
                    server.submit("small", volume)
                assert info.value.retry_after > 0
                server.gate.set()
                assert accepted.result(timeout=30).size > 0
        finally:
            registry.close()
        assert [v.kind for v in state.violations] == []


class TestDeadlines:
    def test_deadline_missed_in_queue(self, registry, volume):
        counter = metrics_registry().counter(
            "serving.requests.deadline_missed")
        before = counter.value
        with make_server(registry) as server:
            server.gate.clear()
            time.sleep(0.05)
            request = server.submit("small", volume, timeout=0.01)
            time.sleep(0.1)  # deadline passes while queued
            server.gate.set()
            with pytest.raises(DeadlineExceeded):
                request.result(timeout=30)
        assert counter.value == before + 1

    def test_generous_deadline_met(self, registry, volume):
        with make_server(registry) as server:
            out = server.infer("small", volume, timeout=60)
        assert out.size > 0


class TestShutdown:
    def test_stop_fails_pending_requests(self, registry, volume):
        server = make_server(registry)
        server.start()
        server.gate.clear()
        time.sleep(0.05)
        pending = [server.submit("small", volume) for _ in range(3)]
        server.stop()
        for request in pending:
            with pytest.raises(ServerClosed):
                request.result(timeout=5)

    def test_submit_after_stop_raises(self, registry, volume):
        server = make_server(registry)
        server.start()
        server.stop()
        with pytest.raises(ServerClosed):
            server.submit("small", volume)

    def test_stop_is_idempotent(self, registry):
        server = make_server(registry)
        server.start()
        server.stop()
        server.stop()


class TestBatching:
    def test_same_model_requests_batched(self, registry, volume):
        histogram = metrics_registry().histogram("serving.batch_size")
        with make_server(registry, num_workers=1, max_batch=4,
                         max_queue=8) as server:
            server.gate.clear()
            time.sleep(0.05)
            requests = [server.submit("small", volume) for _ in range(4)]
            server.gate.set()
            for request in requests:
                request.result(timeout=30)
        snap = histogram.snapshot()
        assert snap["max"] >= 2  # at least one multi-request batch

    def test_max_batch_one_disables_batching(self, registry, volume):
        with make_server(registry, max_batch=1) as server:
            assert server.infer("small", volume).size > 0


class TestRetryPolicy:
    def test_failed_request_retried(self, registry, volume):
        policy = RetryPolicy(max_retries=2, backoff_seconds=0.0)
        counter = metrics_registry().counter("serving.requests.retried")
        before = counter.value
        with make_server(registry, num_workers=1,
                         retry_policy=policy) as server:
            calls = {"n": 0}
            original = server.registry.warm

            def flaky_warm(name, tile):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise OSError("transient")
                return original(name, tile)

            server.registry.warm = flaky_warm
            try:
                out = server.infer("small", volume)
            finally:
                server.registry.warm = original
        assert out.size > 0
        assert counter.value == before + 1

    def test_exhausted_retries_surface_error(self, registry, volume):
        policy = RetryPolicy(max_retries=1, backoff_seconds=0.0)
        with make_server(registry, num_workers=1,
                         retry_policy=policy) as server:
            original = server.registry.warm

            def always_broken(name, tile):
                raise OSError("permanent")

            server.registry.warm = always_broken
            try:
                request = server.submit("small", volume)
                with pytest.raises(OSError, match="permanent"):
                    request.result(timeout=30)
            finally:
                server.registry.warm = original
