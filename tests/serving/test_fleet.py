"""Fleet building blocks that run without spawning processes.

Consistent-hash routing, tiered admission, graceful drain on the
single-process server, deadline-capped client retries, and the
robustness-aware ``/healthz`` document.  Everything that needs a real
multi-process fleet lives in ``test_fleet_chaos.py`` (slow lane).
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import get_registry as metrics_registry
from repro.serving import (
    ADMISSION_FRACTIONS,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    DeadlineExceeded,
    HashRing,
    InferenceServer,
    ServerDraining,
    ServerClosed,
    ServerOverloaded,
    ServingClient,
    admission_limit,
)
from repro.serving.client import _remaining_timeout, _retry_sleep


def make_server(registry, **kwargs):
    kwargs.setdefault("num_workers", 2)
    kwargs.setdefault("max_queue", 4)
    kwargs.setdefault("tile_voxels", 1000)
    return InferenceServer(registry, **kwargs)


class TestHashRing:
    def test_lookup_is_deterministic(self):
        ring = HashRing(range(4))
        owners = [ring.lookup(f"model-{i}") for i in range(32)]
        again = [ring.lookup(f"model-{i}") for i in range(32)]
        assert owners == again

    def test_all_nodes_receive_keys(self):
        ring = HashRing(range(4))
        owners = {ring.lookup(f"model-{i}") for i in range(256)}
        assert owners == {0, 1, 2, 3}

    def test_walk_yields_each_node_once(self):
        ring = HashRing(range(5))
        order = list(ring.walk("some-model"))
        assert sorted(order) == [0, 1, 2, 3, 4]
        assert order[0] == ring.lookup("some-model")

    def test_single_node_owns_everything(self):
        ring = HashRing([7])
        assert ring.lookup("anything") == 7
        assert list(ring.walk("anything")) == [7]

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])

    @given(nodes=st.integers(2, 8), keys=st.integers(1, 64),
           gone=st.integers(0, 7))
    @settings(max_examples=40, deadline=None)
    def test_removal_remaps_only_the_lost_nodes_keys(
            self, nodes, keys, gone):
        # The affinity property the fleet relies on: when one worker
        # leaves, only the models it owned move; everyone else keeps
        # their warm FFT spectra.
        gone = gone % nodes
        ring = HashRing(range(nodes))
        shrunk = ring.without(gone)
        for i in range(keys):
            key = f"model-{i}"
            before = ring.lookup(key)
            after = shrunk.lookup(key)
            if before != gone:
                assert after == before
            else:
                assert after != gone

    def test_failover_order_matches_shrunken_ring(self):
        # walk()'s second choice is exactly where the key lands once
        # the first owner is removed — failover keeps affinity stable.
        ring = HashRing(range(4))
        for i in range(64):
            key = f"model-{i}"
            first, second = list(ring.walk(key))[:2]
            assert ring.without(first).lookup(key) == second


class TestAdmission:
    def test_high_priority_gets_full_queue(self):
        assert admission_limit(PRIORITY_HIGH, 20) == 20

    def test_fractions_are_monotonic(self):
        limits = [admission_limit(p, 20) for p in
                  (PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW)]
        assert limits == sorted(limits, reverse=True)
        assert limits[-1] == int(20 * ADMISSION_FRACTIONS[PRIORITY_LOW])

    def test_limit_never_below_one(self):
        assert admission_limit(PRIORITY_LOW, 1) == 1

    def test_unknown_priority_rejected(self):
        with pytest.raises(ValueError, match="priority"):
            admission_limit(9, 20)

    def test_low_priority_shed_before_queue_full(self, registry, volume):
        shed = metrics_registry().counter("serving.requests.shed")
        before = shed.value
        with make_server(registry, max_queue=4) as server:
            server.gate.clear()
            time.sleep(0.05)
            limit = admission_limit(PRIORITY_LOW, 4)
            accepted = [server.submit("small", volume, priority=PRIORITY_LOW)
                        for _ in range(limit)]
            # Queue has spare capacity, but the low tier is full.
            with pytest.raises(ServerOverloaded):
                server.submit("small", volume, priority=PRIORITY_LOW)
            # A normal-priority request still gets in.
            accepted.append(server.submit("small", volume))
            server.gate.set()
            for request in accepted:
                assert request.result(timeout=30).size > 0
        assert shed.value == before + 1

    def test_bad_priority_rejected_at_submit(self, registry, volume):
        with make_server(registry) as server:
            with pytest.raises(ValueError, match="priority"):
                server.submit("small", volume, priority=42)


class TestDrain:
    def test_drain_finishes_inflight_then_refuses(self, registry, volume):
        server = make_server(registry).start()
        try:
            server.gate.clear()
            time.sleep(0.05)
            pending = server.submit("small", volume)
            server.begin_drain()
            with pytest.raises(ServerDraining) as info:
                server.submit("small", volume)
            assert info.value.retry_after > 0
            # Draining refusals are ServerClosed (clients must not
            # retry against a goner), not ServerOverloaded.
            assert isinstance(info.value, ServerClosed)
            assert not isinstance(info.value, ServerOverloaded)
            server.gate.set()
            assert server.wait_drained(timeout=30)
            assert pending.result(timeout=30).size > 0
        finally:
            server.stop()

    def test_drain_helper_stops_the_server(self, registry, volume):
        server = make_server(registry).start()
        out = server.infer("small", volume)
        assert out.size > 0
        assert server.drain(timeout=30)
        with pytest.raises(ServerClosed):
            server.submit("small", volume)

    def test_health_reflects_drain_lifecycle(self, registry):
        server = make_server(registry).start()
        try:
            assert server.health()["status"] == "ok"
            server.begin_drain()
            assert server.health()["status"] == "draining"
        finally:
            server.stop()
        assert server.health()["status"] == "stopped"

    def test_health_document_shape(self, registry):
        with make_server(registry) as server:
            doc = server.health()
        assert doc["role"] == "server"
        assert doc["models"] == ["small"]
        assert doc["queue_depth"] == 0
        assert doc["admission"]["capacity"] == doc["max_queue"]
        limits = doc["admission"]["limits"]
        assert limits[str(PRIORITY_HIGH)] == doc["max_queue"]


class _OverloadedServer:
    """submit() that always answers 'come back in retry_after'."""

    def __init__(self, retry_after):
        self.retry_after = retry_after
        self.calls = 0

    def submit(self, model, volume, timeout=None, trace_id=None,
               **kwargs):
        self.calls += 1
        raise ServerOverloaded("full", retry_after=self.retry_after)


class TestClientDeadline:
    def test_backoff_never_sleeps_past_the_deadline(self):
        # Server hints 10s waits; a 0.3s deadline must fail fast with
        # DeadlineExceeded instead of sleeping 10s between attempts.
        fake = _OverloadedServer(retry_after=10.0)
        client = ServingClient(fake, max_attempts=5)
        start = time.monotonic()
        with pytest.raises(DeadlineExceeded, match="backing off"):
            client.infer("small", np.zeros((9, 9, 9)), timeout=0.3)
        assert time.monotonic() - start < 2.0
        assert fake.calls >= 1

    def test_unbounded_requests_still_retry(self):
        fake = _OverloadedServer(retry_after=0.01)
        client = ServingClient(fake, max_attempts=3)
        with pytest.raises(ServerOverloaded):
            client.infer("small", np.zeros((9, 9, 9)))
        assert fake.calls == 3

    def test_retry_sleep_is_capped_by_backoff_cap(self):
        exc = ServerOverloaded("full", retry_after=60.0)
        assert _retry_sleep(exc, 0.5, deadline=None) == 0.5

    def test_retry_sleep_raises_when_budget_consumed(self):
        exc = ServerOverloaded("full", retry_after=10.0)
        with pytest.raises(DeadlineExceeded):
            _retry_sleep(exc, 10.0, deadline=time.monotonic() + 0.05)

    def test_remaining_timeout_shrinks_per_attempt(self):
        deadline = time.monotonic() + 5.0
        first = _remaining_timeout(5.0, deadline)
        time.sleep(0.02)
        second = _remaining_timeout(5.0, deadline)
        assert second < first <= 5.0

    def test_remaining_timeout_expired_raises(self):
        with pytest.raises(DeadlineExceeded):
            _remaining_timeout(1.0, time.monotonic() - 0.01)

    def test_each_attempt_sends_remaining_budget(self, registry, volume):
        # The server-side deadline must match the client's: later
        # attempts carry less than the original timeout.
        seen = []

        class Recorder:
            def submit(self, model, vol, timeout=None, **kwargs):
                seen.append(timeout)
                if len(seen) < 3:
                    raise ServerOverloaded("busy", retry_after=0.05)

                class Done:
                    @staticmethod
                    def result(timeout=None):
                        return np.ones((1, 1, 1))
                return Done()

        out = ServingClient(Recorder(), max_attempts=5).infer(
            "small", volume, timeout=10.0)
        assert out.size == 1
        assert len(seen) == 3
        assert seen[0] > seen[1] > seen[2]
