"""HTTP front end: wire protocol, status mapping, client retry."""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving import (
    HttpServingClient,
    InferenceServer,
    ServerOverloaded,
    ServingError,
    decode_array,
    encode_array,
    serve_http,
)


@pytest.fixture
def http_server(registry):
    inference = InferenceServer(registry, num_workers=2, max_queue=2,
                                tile_voxels=1000)
    server = serve_http(inference)
    yield server
    server.stop()


class TestCodec:
    def test_roundtrip(self):
        array = np.random.default_rng(1).standard_normal((3, 4, 5))
        assert np.array_equal(decode_array(encode_array(array)), array)


class TestEndpoints:
    def test_healthz(self, http_server):
        client = HttpServingClient(http_server.url)
        health = client.health()
        assert health["status"] == "ok"
        assert health["models"] == ["small"]
        assert health["max_queue"] == 2

    def test_metrics_endpoint(self, http_server):
        with urllib.request.urlopen(
                f"{http_server.url}/metrics", timeout=30) as response:
            snapshot = json.loads(response.read().decode("utf-8"))
        assert "serving.queue.depth" in snapshot

    def test_infer_roundtrip(self, http_server, volume):
        client = HttpServingClient(http_server.url)
        out = client.infer("small", volume)
        assert out.shape == tuple(v - 4 for v in volume.shape)
        direct = http_server.inference.infer("small", volume)
        assert np.array_equal(out, direct)

    def test_unknown_model_404(self, http_server, volume):
        client = HttpServingClient(http_server.url, max_attempts=1)
        with pytest.raises(ServingError, match="404"):
            client.infer("missing", volume)

    def test_bad_payload_400(self, http_server):
        request = urllib.request.Request(
            f"{http_server.url}/v1/infer?model=small",
            data=b"not an npy", method="POST")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400

    def test_missing_model_param_400(self, http_server, volume):
        request = urllib.request.Request(
            f"{http_server.url}/v1/infer",
            data=encode_array(volume), method="POST")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400

    def test_unknown_path_404(self, http_server):
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(f"{http_server.url}/nope", timeout=30)
        assert info.value.code == 404


class TestOverloadOverHttp:
    def test_503_with_retry_after(self, http_server, volume):
        import time

        inference = http_server.inference
        inference.gate.clear()
        time.sleep(0.05)
        accepted = [inference.submit("small", volume) for _ in range(2)]
        client = HttpServingClient(http_server.url, max_attempts=1)
        with pytest.raises(ServerOverloaded) as info:
            client.infer("small", volume)
        assert info.value.retry_after > 0
        inference.gate.set()
        for request in accepted:
            request.result(timeout=30)


class TestDrainOverHttp:
    def test_healthz_503_with_body_while_draining(self, http_server):
        http_server.inference.begin_drain()
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(f"{http_server.url}/healthz",
                                   timeout=30)
        assert info.value.code == 503
        # Load balancers key off the 503; operators still get the full
        # document in the body (`repro fleet status` reads it there).
        doc = json.loads(info.value.read().decode("utf-8"))
        assert doc["status"] == "draining"
        assert doc["models"] == ["small"]

    def test_infer_rejected_while_draining(self, http_server, volume):
        http_server.inference.begin_drain()
        request = urllib.request.Request(
            f"{http_server.url}/v1/infer?model=small",
            data=encode_array(volume), method="POST")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 503
        assert float(info.value.headers["Retry-After"]) > 0

    def test_drain_helper_finishes_then_stops(self, http_server, volume):
        client = HttpServingClient(http_server.url)
        assert client.infer("small", volume).size > 0
        assert http_server.drain(timeout=30)
        # The socket is closed once drained; nothing was dropped.
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            client.health()


class TestPriorityOverHttp:
    def test_priority_param_reaches_admission(self, http_server, volume):
        import time

        inference = http_server.inference
        inference.gate.clear()
        time.sleep(0.05)
        # max_queue=2 → the low tier's limit is 1; the second low-
        # priority POST is shed while capacity remains for normal ones.
        accepted = [inference.submit("small", volume)]
        client = HttpServingClient(http_server.url, max_attempts=1)
        with pytest.raises(ServerOverloaded):
            client.infer("small", volume, priority=2)
        inference.gate.set()
        for request in accepted:
            request.result(timeout=30)

    def test_bad_priority_is_400(self, http_server, volume):
        request = urllib.request.Request(
            f"{http_server.url}/v1/infer?model=small&priority=nope",
            data=encode_array(volume), method="POST")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400
