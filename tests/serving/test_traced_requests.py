"""Serving-side tracing: one connected span tree per request, SLO
histograms fed per request, and the tracing-off no-op path."""

import pytest

from repro.observability.tracing import (
    Tracer,
    get_tracer,
    render_span_tree,
    set_tracer,
)
from repro.serving import InferenceServer


@pytest.fixture
def tracer(monkeypatch):
    monkeypatch.setenv("REPRO_TRACING", "1")
    fresh = Tracer(enabled=True, process="serve")
    previous = set_tracer(fresh)
    yield fresh
    set_tracer(previous)


@pytest.fixture
def server(registry):
    srv = InferenceServer(registry, num_workers=1).start()
    yield srv
    srv.stop()


def spans_for(tracer, trace_id):
    return [s for s in tracer.spans() if s.trace_id == trace_id]


class TestTracedRequests:
    def test_request_forms_one_connected_tree(self, tracer, server,
                                              volume):
        server.infer("small", volume, trace_id="req-tree")
        spans = spans_for(tracer, "req-tree")
        names = {s.name for s in spans}
        assert "request" in names
        assert "admission.wait" in names
        assert "serve" in names
        assert any(n.startswith("tile:") for n in names)
        roots = [s for s in spans if s.parent_id is None]
        assert [s.name for s in roots] == ["request"]
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            cursor, hops = span, 0
            while cursor.parent_id is not None:
                cursor = by_id[cursor.parent_id]
                hops += 1
                assert hops < 50
            assert cursor.name == "request"

    def test_caller_trace_id_is_adopted(self, tracer, server, volume):
        request = server.submit("small", volume, trace_id="mine")
        request.result()
        assert request.trace_id == "mine"
        assert spans_for(tracer, "mine")

    def test_fresh_trace_id_per_request(self, tracer, server, volume):
        first = server.submit("small", volume)
        first.result()
        second = server.submit("small", volume)
        second.result()
        assert first.trace_id
        assert second.trace_id
        assert first.trace_id != second.trace_id

    def test_request_span_status_ok(self, tracer, server, volume):
        server.infer("small", volume, trace_id="req-ok")
        request = next(s for s in spans_for(tracer, "req-ok")
                       if s.name == "request")
        assert request.status == "ok"
        assert request.process == "serve"

    def test_span_tree_renders_the_request(self, tracer, server, volume):
        server.infer("small", volume, trace_id="req-render")
        text = render_span_tree(spans_for(tracer, "req-render"),
                                "req-render")
        lines = text.splitlines()
        assert lines[0] == "trace req-render"
        assert lines[1].lstrip().startswith("request")
        assert any("serve" in line for line in lines)

    def test_slo_histograms_fed_per_request(self, tracer, server,
                                            volume):
        # The tracker writes to the process-global registry, so other
        # tests' requests are already in it: assert the delta.
        before = server.slo.report()
        for _ in range(3):
            server.infer("small", volume)
        report = server.slo.report()
        for component in ("e2e", "admission_wait", "service"):
            assert (report[component]["count"]
                    == before[component]["count"] + 3)
        assert report["deadline"]["ok"] == before["deadline"]["ok"] + 3
        assert report["e2e"]["p99"] is not None


class TestTracingOff:
    def test_requests_record_nothing(self, monkeypatch, registry,
                                     volume):
        monkeypatch.delenv("REPRO_TRACING", raising=False)
        previous = set_tracer(Tracer(enabled=False))
        try:
            with InferenceServer(registry, num_workers=1) as server:
                before = server.slo.report()["e2e"]["count"]
                request = server.submit("small", volume)
                request.result()
                assert request.trace_id == ""
                assert request.trace_ctx is None
                assert len(get_tracer().spans()) == 0
                # SLO accounting is independent of tracing.
                assert server.slo.report()["e2e"]["count"] == before + 1
        finally:
            set_tracer(previous)
