"""Model registry: spec loading, warm cache LRU, checkpoint restore."""

import numpy as np
import pytest

from repro.core.inference import dense_equivalent_network
from repro.observability import get_registry as metrics_registry
from repro.serving import ModelRegistry, ModelSpec, WarmModel


class TestModelSpec:
    def test_from_files(self, small_model):
        spec = small_model.model_spec()
        assert spec.spec == "CTPCT"
        assert spec.builder_kwargs["width"] == [2, 1]
        assert "skip_kernels" not in spec.builder_kwargs
        assert spec.fov == small_model.fov

    def test_explicit_graph_spec_rejected(self, tmp_path):
        path = tmp_path / "explicit.spec"
        path.write_text("[node input]\n[node out]\n"
                        "[edge t]\ntype = transfer\nsrc = input\n"
                        "dst = out\ntransfer = tanh\n")
        with pytest.raises(ValueError, match="layered"):
            ModelSpec.from_files("x", path)


class TestWarmModel:
    def test_checkpoint_restores_into_twin(self, small_model, volume):
        """The twin built straight from the checkpoint (no pooling net
        in memory) matches dense_equivalent_network built by copying."""
        warm = WarmModel(small_model.model_spec(), volume.shape)
        served = warm.run(volume)
        reference = dense_equivalent_network(
            small_model.pool_network, small_model.spec, volume.shape,
            conv_mode="direct", deterministic_sums=True,
            **small_model.builder_kwargs())
        expected = reference.forward(volume)[
            reference.output_nodes[0].name]
        reference.close()
        warm.close()
        assert np.array_equal(served, expected)

    def test_kernel_spectra_pinned(self, small_model):
        warm = WarmModel(small_model.model_spec(conv_mode="fft"),
                         (10, 10, 10))
        assert "ker" in warm.network.cache.pinned_kinds
        baseline = warm.network.cache.stats.computed
        warm.run(np.zeros((10, 10, 10)))
        warm.run(np.ones((10, 10, 10)))
        # Forward passes after prewarm never recompute kernel spectra:
        # only image transforms are computed, and their count is
        # identical between the two post-prewarm passes.
        per_pass = warm.network.cache.stats.computed - baseline
        assert per_pass % 2 == 0
        warm.close()

    def test_plan_uses_fixed_tile(self, small_model):
        warm = WarmModel(small_model.model_spec(), (9, 9, 9))
        plan = warm.plan((17, 17, 17))
        assert plan.input_tile == (9, 9, 9)
        assert plan.dense_shape == (13, 13, 13)
        with pytest.raises(ValueError, match="smaller"):
            warm.plan((8, 8, 8))
        warm.close()

    def test_run_rejects_wrong_volume(self, small_model):
        warm = WarmModel(small_model.model_spec(), (9, 9, 9))
        plan = warm.plan((17, 17, 17))
        with pytest.raises(ValueError, match="does not match"):
            warm.run(np.zeros((16, 16, 16)), plan)
        warm.close()


class TestModelRegistry:
    def test_unknown_model(self, registry):
        with pytest.raises(KeyError, match="unknown model"):
            registry.warm("nope", (9, 9, 9))
        with pytest.raises(KeyError, match="unknown model"):
            registry.spec("nope")

    def test_hit_and_miss(self, registry):
        first = registry.warm("small", (9, 9, 9))
        again = registry.warm("small", (9, 9, 9))
        assert first is again
        other = registry.warm("small", (10, 10, 10))
        assert other is not first
        assert len(registry) == 2

    def test_lru_eviction_closes_oldest(self, registry):
        a = registry.warm("small", (9, 9, 9))
        registry.warm("small", (10, 10, 10))
        registry.warm("small", (9, 9, 9))  # refresh a
        registry.warm("small", (12, 12, 12))  # evicts the (10,10,10) twin
        assert len(registry) == 2
        assert registry.warm("small", (9, 9, 9)) is a

    def test_replacing_spec_invalidates_warm_models(self, small_model):
        reg = ModelRegistry(max_models=2)
        reg.register(small_model.model_spec())
        stale = reg.warm("small", (9, 9, 9))
        reg.register(small_model.model_spec(conv_mode="fft"))
        fresh = reg.warm("small", (9, 9, 9))
        assert fresh is not stale
        reg.close()

    def test_metrics_counters_move(self, registry):
        reg = metrics_registry()
        hit = reg.counter("serving.model_cache.hit").value
        miss = reg.counter("serving.model_cache.miss").value
        registry.warm("small", (9, 9, 9))
        registry.warm("small", (9, 9, 9))
        assert reg.counter("serving.model_cache.miss").value == miss + 1
        assert reg.counter("serving.model_cache.hit").value == hit + 1

    def test_model_names(self, registry):
        assert registry.model_names() == ["small"]
        assert registry.fov("small") == (5, 5, 5)
