"""Property-based tests for the serving tile planner.

The geometric contract behind seam-free stitching: every output voxel
of the dense result is written by at least one tile, every tile stays
inside the volume, and the tile-shape chooser respects the fov floor,
the volume ceiling, and the voxel budget (5-smooth where it claims to
be).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.tiler import (PlanInfeasible, choose_tile_shape,
                                 largest_fast_len, plan_volume)
from repro.tensor.fourier import next_fast_len
from repro.utils.shapes import voxels

axis = st.tuples(st.integers(1, 5), st.integers(0, 19))
geometry = st.tuples(axis, axis, axis)
budget = st.one_of(st.none(), st.integers(1, 4000))


def unpack(geom):
    fov = tuple(f for f, _ in geom)
    volume = tuple(f + extra for f, extra in geom)
    return volume, fov


class TestLargestFastLen:
    @given(n=st.integers(1, 2000), floor=st.integers(1, 2000))
    @settings(max_examples=60)
    def test_result_is_the_largest_5_smooth_in_range(self, n, floor):
        result = largest_fast_len(n, floor)
        if result is None:
            # No 5-smooth integer in [floor, n] at all.
            assert all(next_fast_len(k) != k for k in range(floor, n + 1))
            return
        assert floor <= result <= n
        assert next_fast_len(result) == result  # 5-smooth
        # Maximal: nothing 5-smooth above it within range.
        assert all(next_fast_len(k) != k for k in range(result + 1, n + 1))


class TestChooseTileShape:
    @given(geom=geometry, max_voxels=budget,
           fast_sizes=st.booleans())
    @settings(max_examples=60)
    def test_bounds_and_budget(self, geom, max_voxels, fast_sizes):
        volume, fov = unpack(geom)
        if max_voxels is not None and voxels(fov) > max_voxels:
            # Budget below the fov floor: refusal is the contract.
            with pytest.raises(PlanInfeasible):
                choose_tile_shape(volume, fov, max_voxels=max_voxels,
                                  fast_sizes=fast_sizes)
            return
        tile = choose_tile_shape(volume, fov, max_voxels=max_voxels,
                                 fast_sizes=fast_sizes)
        for t, f, v in zip(tile, fov, volume):
            assert f <= t <= v
        if max_voxels is not None:
            assert voxels(tile) <= max_voxels

    @given(geom=geometry)
    @settings(max_examples=30)
    def test_unsatisfiable_budget_raises(self, geom):
        volume, fov = unpack(geom)
        # A budget below prod(fov) cannot be met — fov is the hard
        # floor — so the planner raises instead of silently returning
        # an over-budget fov tile (the old behaviour hid real
        # memory-budget violations).
        with pytest.raises(PlanInfeasible, match="budget"):
            choose_tile_shape(volume, fov, max_voxels=voxels(fov) - 1,
                              fast_sizes=False)

    @given(geom=geometry, max_voxels=budget)
    @settings(max_examples=40)
    def test_fast_sizes_are_5_smooth_when_possible(self, geom, max_voxels):
        volume, fov = unpack(geom)
        if max_voxels is not None and voxels(fov) > max_voxels:
            max_voxels = voxels(fov)  # keep the budget feasible
        tile = choose_tile_shape(volume, fov, max_voxels=max_voxels,
                                 fast_sizes=True)
        for t, f, v in zip(tile, fov, volume):
            if largest_fast_len(v, f) is not None and t != f:
                # A 5-smooth choice existed on this axis; unless pinned
                # to the fov floor, the planner must have taken one.
                assert next_fast_len(t) == t


class TestPlanVolume:
    @given(geom=geometry, max_voxels=budget,
           fast_sizes=st.booleans())
    @settings(max_examples=60)
    def test_seam_free_coverage(self, geom, max_voxels, fast_sizes):
        volume, fov = unpack(geom)
        if max_voxels is not None and voxels(fov) > max_voxels:
            max_voxels = voxels(fov)  # keep the budget feasible
        plan = plan_volume(volume, fov, max_voxels=max_voxels,
                           fast_sizes=fast_sizes)
        assert plan.dense_shape == tuple(
            v - f + 1 for v, f in zip(volume, fov))
        assert plan.output_tile == tuple(
            t - f + 1 for t, f in zip(plan.input_tile, fov))
        counts = np.zeros(plan.dense_shape, dtype=np.int64)
        o = plan.output_tile
        for ic, oc in plan.tiles:
            assert ic == oc  # corners coincide (output = input - fov + 1)
            for d in range(3):
                assert 0 <= ic[d]
                assert ic[d] + plan.input_tile[d] <= volume[d]
                assert oc[d] + o[d] <= plan.dense_shape[d]
            counts[oc[0]:oc[0] + o[0],
                   oc[1]:oc[1] + o[1],
                   oc[2]:oc[2] + o[2]] += 1
        # Every dense output voxel is computed by at least one tile —
        # no seams, no gaps.  (Boundary tiles shift back, so "exactly
        # once" is deliberately NOT the contract; recompute is.)
        assert counts.min() >= 1

    @given(geom=geometry, max_voxels=budget)
    @settings(max_examples=40)
    def test_recompute_fraction_bounds(self, geom, max_voxels):
        volume, fov = unpack(geom)
        if max_voxels is not None and voxels(fov) > max_voxels:
            max_voxels = voxels(fov)  # keep the budget feasible
        plan = plan_volume(volume, fov, max_voxels=max_voxels)
        assert 0.0 <= plan.recompute_fraction < 1.0
        assert plan.num_tiles >= 1
        assert plan.tile_input_voxels == voxels(plan.input_tile)
        assert plan.halo == tuple(f - 1 for f in fov)

    @given(geom=geometry)
    @settings(max_examples=20)
    def test_single_tile_when_budget_allows_whole_volume(self, geom):
        volume, fov = unpack(geom)
        plan = plan_volume(volume, fov, max_voxels=voxels(volume),
                           fast_sizes=False)
        assert plan.input_tile == volume
        assert plan.num_tiles == 1
        assert plan.tiles == [((0, 0, 0), (0, 0, 0))]
