"""Tiling planner: fast sizes, voxel budgets, exact coverage."""

import numpy as np
import pytest

from repro.serving.tiler import (
    DEFAULT_TILE_VOXELS,
    PlanInfeasible,
    TilePlan,
    choose_tile_shape,
    largest_fast_len,
    normalize_conv_modes,
    plan_volume,
)
from repro.tensor.fourier import next_fast_len


class TestLargestFastLen:
    def test_fast_numbers_map_to_themselves(self):
        for n in (1, 2, 3, 4, 5, 8, 9, 10, 12, 16, 20, 25, 27, 30):
            assert largest_fast_len(n) == n

    def test_rounds_down(self):
        assert largest_fast_len(7) == 6
        assert largest_fast_len(11) == 10
        assert largest_fast_len(31) == 30

    def test_respects_floor(self):
        assert largest_fast_len(7, floor=7) is None
        assert largest_fast_len(11, floor=9) == 10

    def test_empty_range(self):
        assert largest_fast_len(3, floor=5) is None

    def test_is_dual_of_next_fast_len(self):
        for n in range(1, 200):
            down = largest_fast_len(n)
            assert down is not None and down <= n
            assert next_fast_len(down) == down


class TestChooseTileShape:
    def test_small_volume_unchanged_when_fast(self):
        assert choose_tile_shape((16, 16, 16), (5, 5, 5)) == (16, 16, 16)

    def test_prefers_fast_sizes(self):
        tile = choose_tile_shape((17, 17, 17), (5, 5, 5))
        assert tile == (16, 16, 16)

    def test_fast_sizes_disabled(self):
        tile = choose_tile_shape((17, 17, 17), (5, 5, 5), fast_sizes=False)
        assert tile == (17, 17, 17)

    def test_budget_shrinks_tile(self):
        tile = choose_tile_shape((100, 100, 100), (5, 5, 5),
                                 max_voxels=1000)
        assert np.prod(tile) <= 1000
        assert all(t >= 5 for t in tile)

    def test_budget_below_fov_raises(self):
        # fov is a hard floor, so a budget under prod(fov) is
        # unsatisfiable: the planner must refuse, not silently return
        # an over-budget fov-sized tile.
        with pytest.raises(PlanInfeasible, match="budget"):
            choose_tile_shape((50, 50, 50), (9, 9, 9), max_voxels=1)

    def test_budget_exactly_fov_is_feasible(self):
        tile = choose_tile_shape((50, 50, 50), (9, 9, 9),
                                 max_voxels=9 * 9 * 9)
        assert tile == (9, 9, 9)

    def test_volume_smaller_than_fov_raises(self):
        with pytest.raises(PlanInfeasible, match="field of view"):
            choose_tile_shape((4, 10, 10), (5, 5, 5))

    def test_plan_infeasible_is_a_value_error(self):
        # Pre-existing callers catch ValueError; the typed refusal must
        # keep matching.
        assert issubclass(PlanInfeasible, ValueError)

    def test_anisotropic_fov(self):
        tile = choose_tile_shape((40, 40, 40), (1, 7, 7), max_voxels=500)
        assert all(t >= f for t, f in zip(tile, (1, 7, 7)))
        assert np.prod(tile) <= 500

    def test_default_budget(self):
        tile = choose_tile_shape((512, 512, 512), (9, 9, 9))
        assert np.prod(tile) <= DEFAULT_TILE_VOXELS


class TestPlanVolume:
    def test_single_tile_plan(self):
        plan = plan_volume((16, 16, 16), (5, 5, 5))
        assert plan.num_tiles == 1
        assert plan.input_tile == (16, 16, 16)
        assert plan.output_tile == (12, 12, 12)
        assert plan.dense_shape == (12, 12, 12)

    def test_output_blocks_cover_dense_exactly(self):
        plan = plan_volume((30, 30, 30), (5, 5, 5), max_voxels=1000)
        covered = np.zeros(plan.dense_shape, dtype=int)
        o = plan.output_tile
        for _, oc in plan.tiles:
            covered[oc[0]:oc[0] + o[0],
                    oc[1]:oc[1] + o[1],
                    oc[2]:oc[2] + o[2]] += 1
        assert covered.min() >= 1  # every output voxel written
        # interior tiles don't overlap; only shift-back tiles do
        assert covered.max() <= 8

    def test_input_corners_in_bounds(self):
        plan = plan_volume((23, 29, 31), (5, 5, 5), max_voxels=800)
        for ic, oc in plan.tiles:
            assert all(c >= 0 for c in ic)
            assert all(c + t <= v for c, t, v in
                       zip(ic, plan.input_tile, plan.volume_shape))
            assert ic == oc  # output corner == input corner (valid conv)

    def test_halo_and_recompute(self):
        plan = plan_volume((30, 30, 30), (5, 5, 5), max_voxels=1000)
        assert plan.halo == (4, 4, 4)
        assert 0.0 < plan.recompute_fraction < 1.0
        single = plan_volume((16, 16, 16), (5, 5, 5))
        assert single.recompute_fraction == 0.0

    def test_is_frozen(self):
        plan = plan_volume((16, 16, 16), (5, 5, 5))
        assert isinstance(plan, TilePlan)
        with pytest.raises(AttributeError):
            plan.fov = (1, 1, 1)

    def test_2d_volume_promotes(self):
        plan = plan_volume((1, 20, 20), (1, 5, 5))
        assert plan.volume_shape == (1, 20, 20)
        assert plan.dense_shape == (1, 16, 16)

    def test_externally_built_sub_fov_tile_raises(self):
        # TilePlan itself guards the geometry: a hand-built plan with
        # tile < fov (negative output extent) is refused at
        # construction, not at stitch time.
        with pytest.raises(PlanInfeasible, match="non-positive"):
            TilePlan(volume_shape=(16, 16, 16), fov=(5, 5, 5),
                     input_tile=(4, 16, 16), output_tile=(0, 12, 12),
                     dense_shape=(12, 12, 12), tiles=[])


class TestConvModes:
    def test_normalize_sorts_and_freezes(self):
        modes = normalize_conv_modes({"b": "fft", "a": "direct"})
        assert modes == (("a", "direct"), ("b", "fft"))
        # Pairs round-trip through the tuple form unchanged.
        assert normalize_conv_modes(modes) == modes
        assert normalize_conv_modes(None) is None

    def test_normalize_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="direct|fft"):
            normalize_conv_modes({"a": "spectral"})

    def test_plan_volume_records_modes(self):
        plan = plan_volume((16, 16, 16), (5, 5, 5),
                           conv_modes={"conv_a": "fft"})
        assert plan.conv_modes == (("conv_a", "fft"),)
        assert plan.conv_mode_map == {"conv_a": "fft"}
        agnostic = plan_volume((16, 16, 16), (5, 5, 5))
        assert agnostic.conv_modes is None
        assert agnostic.conv_mode_map is None
