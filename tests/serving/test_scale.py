"""Live fleet scaling tests: ``FleetServer.scale_to`` up and down,
the supervisor's add/retire surface, and the closed-loop
``FleetAutoscaler`` driving a real fleet.

Everything spawns worker processes, so it is all marked ``slow``
(tier 1 skips it; the CI ``loadtest-smoke`` lane covers the same
path end-to-end through the CLI).
"""

import time

import numpy as np
import pytest

from repro.loadgen import (
    FleetAutoscaler,
    HysteresisPolicy,
    TraceConfig,
    generate_trace,
    replay_trace,
)
from repro.serving import FleetServer, SupervisorConfig
from repro.serving.supervisor import STATE_RETIRED

pytestmark = pytest.mark.slow

VOLUME_SHAPE = (13, 13, 13)

FAST = SupervisorConfig(heartbeat_interval=0.1, heartbeat_timeout=5.0,
                        restart_backoff=0.05, restart_backoff_max=0.2,
                        breaker_restarts=5, breaker_window=30.0)


def make_fleet(small_model, num_workers, *, pool_name, **kwargs):
    kwargs.setdefault("prewarm_shape", VOLUME_SHAPE)
    kwargs.setdefault("max_queue", 16)
    return FleetServer([small_model.model_spec()],
                       num_workers=num_workers,
                       supervisor_config=FAST,
                       pool_name=pool_name, **kwargs)


def wait_for_healthy(fleet, count, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        workers = fleet.health()["workers"]
        active = set(fleet.active_worker_ids())
        up = sum(1 for wid, info in workers.items()
                 if info["state"] == "healthy"
                 and int(wid) in active)
        if up >= count:
            return
        time.sleep(0.1)
    raise AssertionError(
        f"fleet never reached {count} healthy active workers: "
        f"{fleet.health()}")


class TestScaleTo:
    def test_scale_up_then_down_keeps_serving(self, small_model):
        volume = np.random.default_rng(7).standard_normal(VOLUME_SHAPE)
        fleet = make_fleet(small_model, 1, pool_name="fleet-scale")
        fleet.start(ready_timeout=120)
        try:
            reference = fleet.infer("small", volume, timeout=60.0)
            assert fleet.active_workers == 1

            active = fleet.scale_to(2, ready_timeout=120)
            assert active == [0, 1]
            assert fleet.active_workers == 2
            wait_for_healthy(fleet, 2)
            out = fleet.infer("small", volume, timeout=60.0)
            assert np.array_equal(out, reference)

            fleet.scale_to(1)
            assert fleet.active_workers == 1
            out = fleet.infer("small", volume, timeout=60.0)
            assert np.array_equal(out, reference)
        finally:
            fleet.stop()

    def test_retired_worker_is_not_restarted(self, small_model):
        fleet = make_fleet(small_model, 2, pool_name="fleet-retire")
        fleet.start(ready_timeout=120)
        try:
            victim = max(fleet.active_worker_ids())
            fleet.scale_to(1)
            # Give the supervisor time to misread the retirement as a
            # death; a restart would flip the state back to healthy.
            time.sleep(1.0)
            states = {int(wid): info["state"] for wid, info
                      in fleet.health()["workers"].items()}
            assert states[victim] == STATE_RETIRED
            assert victim not in fleet.active_worker_ids()
        finally:
            fleet.stop()

    def test_scale_to_zero_rejected(self, small_model):
        fleet = make_fleet(small_model, 1, pool_name="fleet-zero")
        fleet.start(ready_timeout=120)
        try:
            with pytest.raises(ValueError):
                fleet.scale_to(0)
        finally:
            fleet.stop()


class TestFleetAutoscaler:
    def test_closed_loop_scales_a_real_fleet(self, small_model):
        # Calm trace + min_workers=1 forces a live scale-down; the
        # decisions log proves the loop observed and acted.
        trace = generate_trace(TraceConfig(
            seed=11, duration=6.0, base_rate=2.0, size_min=12,
            size_max=12, deadline=30.0,
            model_mix={"small": 1.0}))
        fleet = make_fleet(small_model, 2, pool_name="fleet-auto")
        fleet.start(ready_timeout=120)
        policy = HysteresisPolicy(min_workers=1, max_workers=3,
                                  cooldown_ticks=1)
        try:
            with FleetAutoscaler(fleet, policy, interval=0.3) as auto:
                result = replay_trace(trace, fleet, speed=3.0)
            assert result.served == len(trace)
            decisions = auto.decisions()
            assert decisions, "autoscaler never ticked"
            assert all(policy.min_workers <= d.target
                       <= policy.max_workers for d in decisions)
            assert fleet.active_workers == 1
            assert auto.worker_seconds > 0.0
        finally:
            fleet.stop()
