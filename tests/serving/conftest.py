"""Shared serving fixtures: a tiny trained model on disk.

Session-scoped so the ~20 serving tests build the pooling network,
checkpoint and spec file exactly once.
"""

import os

import numpy as np
import pytest

from repro.core import Network
from repro.core.serialization import save_network
from repro.graph import build_layered_network, dump_layered_spec
from repro.serving import ModelRegistry, ModelSpec


class SmallModel:
    """A CTPCT pooling net (kernel 2, window 2, fov 5) saved to disk."""

    spec = "CTPCT"
    width = [2, 1]
    kernel = 2
    window = 2
    transfer = "tanh"
    fov = (5, 5, 5)

    def __init__(self, root):
        graph = build_layered_network(self.spec, width=self.width,
                                      kernel=self.kernel,
                                      window=self.window,
                                      transfer=self.transfer)
        self.pool_network = Network(graph, input_shape=(9, 9, 9), seed=11)
        self.checkpoint = os.path.join(root, "ckpt.npz")
        save_network(self.pool_network, self.checkpoint)
        self.spec_path = os.path.join(root, "model.spec")
        with open(self.spec_path, "w", encoding="utf-8") as fh:
            fh.write(dump_layered_spec(self.spec, self.width,
                                       kernel=self.kernel,
                                       window=self.window,
                                       transfer=self.transfer))

    def builder_kwargs(self):
        return dict(width=self.width, kernel=self.kernel,
                    window=self.window, transfer=self.transfer)

    def model_spec(self, name="small", conv_mode="direct"):
        return ModelSpec.from_files(name, self.spec_path,
                                    checkpoint=self.checkpoint,
                                    conv_mode=conv_mode)


@pytest.fixture(scope="session")
def small_model(tmp_path_factory):
    model = SmallModel(str(tmp_path_factory.mktemp("serving-model")))
    yield model
    model.pool_network.close()


@pytest.fixture
def registry(small_model):
    reg = ModelRegistry(max_models=2)
    reg.register(small_model.model_spec())
    yield reg
    reg.close()


@pytest.fixture
def volume():
    return np.random.default_rng(42).standard_normal((13, 13, 13))
