"""Tiled serving output is bitwise identical to one whole-volume pass.

The dense-equivalent twin computes each output voxel from exactly its
fov-sized input window (translation covariance), and direct-mode
convolution accumulates kernel taps in a fixed order independent of
the image extent (``deterministic_sums`` makes the summation order
schedule-independent).  So stitching overlapping tiles must reproduce
the single-pass output *bit for bit* — the acceptance criterion of the
serving tiler.  FFT mode computes per-tile transforms whose sizes
depend on the tile shape, so there equality is only up to float
tolerance.
"""

import numpy as np
import pytest

from repro.core import Network
from repro.core.inference import dense_equivalent_network
from repro.graph import build_layered_network
from repro.serving.tiler import plan_volume, run_plan


def build_pool(spec, pool_input, **kwargs):
    graph = build_layered_network(spec, **kwargs)
    return Network(graph, input_shape=pool_input, seed=5)


def stitched_and_single(pool, spec, volume, max_voxels, fast_sizes,
                        conv_mode="direct", **builder_kwargs):
    """Run the volume tiled and in one pass; return both outputs."""
    fov_twin = dense_equivalent_network(
        pool, spec, volume.shape, conv_mode=conv_mode,
        deterministic_sums=True, **builder_kwargs)
    fov = tuple(v - o + 1 for v, o in
                zip(volume.shape, fov_twin.output_nodes[0].shape))
    single = fov_twin.forward(volume)[fov_twin.output_nodes[0].name]
    fov_twin.close()

    plan = plan_volume(volume.shape, fov, max_voxels=max_voxels,
                       fast_sizes=fast_sizes)
    tile_twin = dense_equivalent_network(
        pool, spec, plan.input_tile, conv_mode=conv_mode,
        deterministic_sums=True, **builder_kwargs)
    stitched = run_plan(tile_twin, volume, plan)
    tile_twin.close()
    return stitched, single, plan


CASES = [
    # (name, spec, builder kwargs, pool input, volume, max_voxels,
    #  fast_sizes)
    ("even-tiles", "CTPCT",
     dict(width=[2, 1], kernel=2, window=2, transfer="tanh"),
     (9, 9, 9), (14, 14, 14), 1000, True),
    ("odd-tiles", "CTPCT",
     dict(width=[2, 1], kernel=2, window=2, transfer="tanh"),
     (9, 9, 9), (15, 15, 15), 343, False),
    ("wide-halo", "CTPCT",
     dict(width=[2, 1], kernel=3, window=2, transfer="tanh"),
     (10, 10, 10), (17, 17, 17), 1500, True),
    ("two-pool-layers", "CTPCTPCT",
     dict(width=[2, 2, 1], kernel=2, window=2, transfer="tanh"),
     (11, 11, 11), (20, 20, 20), 4500, True),
    ("anisotropic-window", "CTPCT",
     dict(width=[2, 1], kernel=2, window=(1, 2, 2), transfer="tanh"),
     (5, 9, 9), (7, 15, 15), 700, True),
    ("2d-as-3d", "CTPCT",
     dict(width=[2, 1], kernel=(1, 2, 2), window=(1, 2, 2),
          transfer="tanh"),
     (1, 9, 9), (1, 17, 17), 120, False),
]


@pytest.mark.parametrize(
    "name,spec,kwargs,pool_input,volume_shape,max_voxels,fast_sizes",
    CASES, ids=[c[0] for c in CASES])
def test_stitched_bitwise_equals_single_pass(name, spec, kwargs,
                                             pool_input, volume_shape,
                                             max_voxels, fast_sizes):
    pool = build_pool(spec, pool_input, **kwargs)
    volume = np.random.default_rng(hash(name) % 2**32).standard_normal(
        volume_shape)
    stitched, single, plan = stitched_and_single(
        pool, spec, volume, max_voxels, fast_sizes, **kwargs)
    pool.close()
    assert plan.num_tiles > 1, "case must actually exercise stitching"
    assert stitched.shape == single.shape
    assert np.array_equal(stitched, single)  # bitwise, not allclose


def test_single_tile_degenerates_to_one_pass():
    kwargs = dict(width=[2, 1], kernel=2, window=2, transfer="tanh")
    pool = build_pool("CTPCT", (9, 9, 9), **kwargs)
    volume = np.random.default_rng(0).standard_normal((12, 12, 12))
    stitched, single, plan = stitched_and_single(
        pool, "CTPCT", volume, 10**9, True, **kwargs)
    pool.close()
    assert plan.num_tiles == 1
    assert np.array_equal(stitched, single)


def test_fft_mode_matches_to_tolerance():
    """FFT transform sizes differ between tile and whole-volume nets,
    so exact equality is not expected — but agreement must be tight."""
    kwargs = dict(width=[2, 1], kernel=2, window=2, transfer="tanh")
    pool = build_pool("CTPCT", (9, 9, 9), **kwargs)
    volume = np.random.default_rng(7).standard_normal((14, 14, 14))
    stitched, single, plan = stitched_and_single(
        pool, "CTPCT", volume, 1000, True, conv_mode="fft", **kwargs)
    pool.close()
    assert plan.num_tiles > 1
    np.testing.assert_allclose(stitched, single, rtol=1e-10, atol=1e-12)


def test_fft_tiles_match_direct_single_pass_to_tolerance():
    """Cross-mode check: FFT-served tiles vs direct whole-volume."""
    kwargs = dict(width=[2, 1], kernel=2, window=2, transfer="tanh")
    pool = build_pool("CTPCT", (9, 9, 9), **kwargs)
    volume = np.random.default_rng(8).standard_normal((14, 14, 14))

    direct_twin = dense_equivalent_network(
        pool, "CTPCT", volume.shape, conv_mode="direct",
        deterministic_sums=True, **kwargs)
    single = direct_twin.forward(volume)[
        direct_twin.output_nodes[0].name]
    fov = tuple(v - o + 1 for v, o in
                zip(volume.shape, direct_twin.output_nodes[0].shape))
    direct_twin.close()

    plan = plan_volume(volume.shape, fov, max_voxels=1000)
    fft_twin = dense_equivalent_network(
        pool, "CTPCT", plan.input_tile, conv_mode="fft",
        deterministic_sums=True, **kwargs)
    stitched = run_plan(fft_twin, volume, plan)
    fft_twin.close()
    pool.close()
    np.testing.assert_allclose(stitched, single, rtol=1e-10, atol=1e-12)
