"""Per-layer inference specialization (ZNNi part a, arXiv:1606.05688).

The planner's contract, property-tested:

* **Budget compliance** — a returned plan never exceeds the memory
  budget; when nothing fits, the refusal is a typed
  :class:`PlanInfeasible`, not a silently over-budget plan.
* **Minimality** — the plan is the argmin of exactly what
  :func:`evaluate_candidate` computes over exactly what
  :func:`enumerate_candidate_tiles` enumerates (same tie-break key), so
  the optimum is independently recomputable.
* **Degenerate volumes** — a volume at the field of view collapses to
  a single whole-volume tile.
* **Purity** — equal inputs give byte-identical plan JSON.

Plus the layered determinism contract (docs/serving.md "Per-layer
specialization"): all-direct plans serve bitwise identically to the
unspecialized whole-volume network; FFT-flipped plans are
tolerance-equal (FFT and direct convolution differ in floating-point
rounding, ~1e-14); any *fixed* plan is bitwise reproducible run to
run.
"""

import json
import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import dump_layered_spec
from repro.observability import get_registry as metrics_registry
from repro.serving import (
    InferenceServer,
    ModelRegistry,
    ModelSpec,
    PlanInfeasible,
    SpecializationPlan,
    WorkerConfig,
    plan_specialization,
)
from repro.serving.specialize import (
    CostModel,
    enumerate_candidate_tiles,
    evaluate_candidate,
)
from repro.utils.shapes import voxels


@pytest.fixture(scope="session")
def big_kernel_model(tmp_path_factory):
    """A CT net with kernel 7 (fov 7): large enough that the analytic
    FLOP comparison flips its conv layer to FFT at serving tiles."""
    root = str(tmp_path_factory.mktemp("specialize-k7"))
    path = os.path.join(root, "k7.spec")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(dump_layered_spec("CT", [1], kernel=7, transfer="tanh"))
    return ModelSpec.from_files("k7", path, conv_mode="direct")


def _min_key(spec, volume, tile_voxels=None, memory_bytes=None):
    """The planner's argmin, recomputed from the public pieces."""
    best = None
    for tile in enumerate_candidate_tiles(volume, spec.fov,
                                          tile_voxels=tile_voxels):
        result = evaluate_candidate(spec.spec, spec.builder_kwargs,
                                    volume, tile)
        if (memory_bytes is not None
                and result["working_set_bytes"] > memory_bytes):
            continue
        key = (result["predicted_seconds"], result["num_tiles"],
               -voxels(tile), tile)
        if best is None or key < best[0]:
            best = (key, result)
    return best


class TestCostModel:
    def test_analytic_defaults(self):
        model = CostModel()
        assert not model.measured
        assert model.source == "analytic"
        assert model.base_rate() == 1.0
        assert model.rate(["conv_x"], "fft") == 1.0

    def test_measured_rate_ladder(self):
        def entry(edge, backend, flops, seconds):
            return {"edge": edge, "backend": backend, "op": "fwd",
                    "count": 1, "seconds": seconds,
                    "mean_seconds": seconds, "flops": flops,
                    "flops_per_second": flops / seconds, "bytes": 0}
        doc = {"schema": "repro.cost_model/v1", "created": 0.0,
               "entries": [entry("conv_a", "direct", 100.0, 1.0),
                           entry("conv_b", "fft", 300.0, 1.0),
                           # Non-fwd ops are ignored by the ladder.
                           dict(entry("conv_a", "direct", 9e9, 1.0),
                                op="bwd")]}
        model = CostModel(doc, source="test")
        assert model.measured
        # Edge-level entry wins ...
        assert model.rate(["conv_a"], "direct") == pytest.approx(100.0)
        # ... unknown edge falls back to the backend's global rate ...
        assert model.rate(["conv_zzz"], "fft") == pytest.approx(300.0)
        # ... unknown backend falls back to the overall rate.
        assert model.rate(["conv_zzz"], "direct") == pytest.approx(100.0)
        assert model.base_rate() == pytest.approx(400.0 / 2.0)

    @staticmethod
    def _entry(edge, backend, flops, seconds, shape=None, count=1):
        return {"edge": edge, "backend": backend, "op": "fwd",
                "count": count, "seconds": seconds,
                "mean_seconds": seconds / count, "flops": flops,
                "flops_per_second": flops / seconds, "bytes": 0,
                "image_shape": list(shape) if shape else None}

    def test_layer_sample_sums_means_under_shape_consensus(self):
        doc = {"schema": "repro.cost_model/v1", "created": 0.0,
               "entries": [
                   self._entry("conv_a", "fft", 8.0, 1.0,
                               shape=(16, 16, 16), count=2),
                   self._entry("conv_b", "fft", 4.0, 0.1,
                               shape=(16, 16, 16)),
                   self._entry("conv_c", "fft", 4.0, 0.1,
                               shape=(20, 16, 16)),
                   self._entry("conv_d", "fft", 4.0, 0.1)]}
        model = CostModel(doc, source="test")
        seconds, shape = model.layer_sample(["conv_a", "conv_b"], "fft")
        assert seconds == pytest.approx(0.5 + 0.1)  # per-forward means
        assert shape == (16, 16, 16)
        # Any edge unmeasured, shape-less, or shape-conflicting: None.
        assert model.layer_sample(["conv_a", "conv_zzz"], "fft") is None
        assert model.layer_sample(["conv_a", "conv_c"], "fft") is None
        assert model.layer_sample(["conv_a", "conv_d"], "fft") is None
        assert model.layer_sample(["conv_a"], "direct") is None

    def test_measured_layer_seconds_override_flop_attribution(
            self, small_model):
        """At the profiled shape, a layer is priced at its *measured*
        wall-clock, not at FLOPs over a blended rate.

        The profiler bills every FFT edge a full image transform even
        when the transform cache shares it across the layer (the first
        edge pays, the rest hit), so per-edge attributed FLOPs
        over-count the layer and a blended rate misprices it near the
        crossover.  With ``image_shape`` present the planner must use
        the summed measured seconds directly — here they say this
        kernel-2 layer (analytically a decisive direct win) measured
        faster under FFT, and the decision must follow the measurement.
        """
        from repro.pram.costs import fft_cost, pointwise_product_cost

        spec = small_model.model_spec()
        tile = (16, 16, 16)
        # Profiler-style attribution: image + output transform and one
        # spectral product billed to each of layer 1's two edges.
        f_edge = 2 * fft_cost(tile) + pointwise_product_cost(tile)
        doc = {"schema": "repro.cost_model/v1", "created": 0.0,
               "entries": [
                   self._entry("conv_L1_0_0", "direct", 1e6, 1.0,
                               shape=tile),
                   self._entry("conv_L1_0_1", "direct", 1e6, 1.0,
                               shape=tile),
                   self._entry("conv_L1_0_0", "fft", f_edge, 0.5,
                               shape=tile),
                   self._entry("conv_L1_0_1", "fft", f_edge, 0.1,
                               shape=tile)]}
        result = evaluate_candidate(spec.spec, spec.builder_kwargs,
                                    (24, 24, 24), tile, doc)
        layer1 = next(r for r in result["layers"] if r["layer"] == 1)
        # Candidate shape == profiled shape: the formula ratio is 1, so
        # predictions are exactly the measured sums — the inflated
        # per-edge FFT FLOPs never enter.
        assert layer1["direct_seconds"] == pytest.approx(2.0)
        assert layer1["fft_seconds"] == pytest.approx(0.6)
        assert layer1["mode"] == "fft"
        # Without shapes the same numbers fall back to rate pricing,
        # which reprices the layer through the analytic formulas.
        for entry in doc["entries"]:
            entry["image_shape"] = None
        unscaled = evaluate_candidate(spec.spec, spec.builder_kwargs,
                                      (24, 24, 24), tile, doc)
        layer1_rate = next(r for r in unscaled["layers"]
                           if r["layer"] == 1)
        assert layer1_rate["fft_seconds"] != pytest.approx(0.6)


class TestEnumerateCandidates:
    def test_endpoints_present(self, small_model):
        spec = small_model.model_spec()
        tiles = enumerate_candidate_tiles((24, 24, 24), spec.fov)
        assert (24, 24, 24) in tiles  # whole volume
        assert (5, 5, 5) in tiles     # fov floor
        assert len(tiles) == len(set(tiles))
        for tile in tiles:
            assert all(f <= t <= 24 for t, f in zip(tile, spec.fov))

    def test_budget_filters(self, small_model):
        spec = small_model.model_spec()
        tiles = enumerate_candidate_tiles((24, 24, 24), spec.fov,
                                          tile_voxels=1000)
        assert tiles
        assert all(voxels(t) <= 1000 for t in tiles)

    def test_infeasible_geometry(self, small_model):
        spec = small_model.model_spec()
        with pytest.raises(PlanInfeasible):
            enumerate_candidate_tiles((4, 24, 24), spec.fov)
        with pytest.raises(PlanInfeasible):
            enumerate_candidate_tiles((24, 24, 24), spec.fov,
                                      tile_voxels=voxels(spec.fov) - 1)


class TestEvaluateCandidate:
    def test_small_kernel_prefers_direct(self, small_model):
        spec = small_model.model_spec()
        result = evaluate_candidate(spec.spec, spec.builder_kwargs,
                                    (24, 24, 24), (24, 24, 24))
        assert result["conv_modes"]
        assert set(result["conv_modes"].values()) == {"direct"}
        for row in result["layers"]:
            assert row["direct_seconds"] <= row["fft_seconds"]
        assert result["working_set_bytes"] > 0
        assert result["num_tiles"] == 1

    def test_big_kernel_flips_to_fft(self, big_kernel_model):
        spec = big_kernel_model
        result = evaluate_candidate(spec.spec, spec.builder_kwargs,
                                    (32, 32, 32), (32, 32, 32))
        assert set(result["conv_modes"].values()) == {"fft"}
        # The FFT choice charges its spectra to the working set.
        direct_only = evaluate_candidate(
            spec.spec, spec.builder_kwargs, (32, 32, 32), (8, 8, 8))
        assert result["working_set_bytes"] > direct_only["working_set_bytes"]

    def test_fov_matches_spec(self, small_model, big_kernel_model):
        for spec in (small_model.model_spec(), big_kernel_model):
            result = evaluate_candidate(
                spec.spec, spec.builder_kwargs,
                (32, 32, 32), (32, 32, 32))
            assert result["fov"] == spec.fov


class TestPlannerProperties:
    @given(extra=st.tuples(st.integers(0, 23), st.integers(0, 23),
                           st.integers(0, 23)))
    @settings(max_examples=20, deadline=None)
    def test_plan_is_the_argmin(self, small_model, extra):
        spec = small_model.model_spec()
        volume = tuple(f + e for f, e in zip(spec.fov, extra))
        plan = plan_specialization(spec, volume)
        best_key, best = _min_key(spec, volume)
        assert plan.input_tile == best["input_tile"]
        assert plan.predicted_seconds == best["predicted_seconds"]
        assert plan.num_tiles == best["num_tiles"]

    @given(extra=st.tuples(st.integers(0, 23), st.integers(0, 23),
                           st.integers(0, 23)),
           memory_kb=st.integers(1, 4096))
    @settings(max_examples=20, deadline=None)
    def test_memory_budget_is_respected_or_refused(self, small_model,
                                                   extra, memory_kb):
        spec = small_model.model_spec()
        volume = tuple(f + e for f, e in zip(spec.fov, extra))
        memory_bytes = memory_kb * 1024
        try:
            plan = plan_specialization(spec, volume,
                                       memory_bytes=memory_bytes)
        except PlanInfeasible:
            # Refusal must mean refusal: no enumerated candidate fits.
            assert _min_key(spec, volume,
                            memory_bytes=memory_bytes) is None
            return
        assert plan.working_set_bytes <= memory_bytes

    @given(extra=st.tuples(st.integers(0, 23), st.integers(0, 23),
                           st.integers(0, 23)))
    @settings(max_examples=15, deadline=None)
    def test_plan_json_is_pure(self, small_model, extra):
        spec = small_model.model_spec()
        volume = tuple(f + e for f, e in zip(spec.fov, extra))
        first = plan_specialization(spec, volume)
        second = plan_specialization(spec, volume)
        assert first == second
        assert first.to_json().encode() == second.to_json().encode()

    def test_degenerate_volume_is_whole_volume(self, small_model):
        spec = small_model.model_spec()
        plan = plan_specialization(spec, spec.fov)
        assert plan.input_tile == spec.fov
        assert plan.num_tiles == 1
        assert plan.output_tile == (1, 1, 1)

    def test_infeasible_volume_raises(self, small_model):
        spec = small_model.model_spec()
        with pytest.raises(PlanInfeasible):
            plan_specialization(spec, (4, 4, 4))
        with pytest.raises(PlanInfeasible, match="memory budget"):
            plan_specialization(spec, (24, 24, 24), memory_bytes=10)

    def test_big_kernel_plan_uses_fft(self, big_kernel_model):
        plan = plan_specialization(big_kernel_model, (32, 32, 32))
        assert plan.uses_fft()
        assert {mode for _, mode in plan.layer_modes} == {"fft"}


class TestPlanSerialization:
    def test_round_trip(self, small_model, tmp_path):
        spec = small_model.model_spec()
        plan = plan_specialization(spec, (24, 24, 24),
                                   memory_bytes=1 << 24)
        doc = json.loads(plan.to_json())
        assert doc["schema"] == "repro.specialize/v1"
        assert SpecializationPlan.from_doc(doc) == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert SpecializationPlan.from_file(str(path)) == plan

    def test_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            SpecializationPlan.from_doc({"schema": "nope"})
        with pytest.raises(ValueError, match="dict"):
            SpecializationPlan.from_doc([1, 2])

    def test_plan_is_picklable_and_hashable(self, small_model):
        spec = small_model.model_spec()
        plan = plan_specialization(spec, (24, 24, 24))
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert hash(clone) == hash(plan)

    def test_covers(self, small_model):
        spec = small_model.model_spec()
        plan = plan_specialization(spec, (24, 24, 24))
        assert plan.covers((24, 24, 24))
        assert plan.covers((30, 40, 50))
        assert not plan.covers(tuple(t - 1 for t in plan.input_tile))
        assert not plan.covers("garbage")


class TestDeterminismContract:
    def test_all_direct_plan_is_bitwise_vs_unspecialized(self,
                                                         small_model):
        """An all-direct plan — even a *tiled* one — serves bitwise
        identically to the whole-volume unspecialized network
        (translation covariance + fixed tap order)."""
        spec = small_model.model_spec()
        volume = np.random.default_rng(7).standard_normal((17, 17, 17))
        # Force tiling: 1000 voxels < 17^3.
        plan = plan_specialization(spec, volume.shape, tile_voxels=1000)
        assert not plan.uses_fft()
        assert plan.num_tiles > 1
        reg = ModelRegistry(max_models=2)
        reg.register(spec)
        reg.set_plan(plan)
        specialized = reg.warm(spec.name, plan.input_tile,
                               conv_modes=plan.conv_mode_map)
        served = specialized.run(volume)
        reference = reg.warm(spec.name, volume.shape)
        expected = reference.run(volume)
        reg.close()
        assert np.array_equal(served, expected)

    def test_fft_plan_is_tolerance_equal(self, big_kernel_model):
        """A plan that flips layers to FFT changes the arithmetic, so
        the contract is tolerance equality, not bitwise."""
        spec = big_kernel_model
        # 32^3 is past the k=7 analytic crossover; 16^3 is not.
        volume = np.random.default_rng(8).standard_normal((32, 32, 32))
        plan = plan_specialization(spec, volume.shape)
        assert plan.uses_fft()
        reg = ModelRegistry(max_models=2)
        reg.register(spec)
        specialized = reg.warm(spec.name, plan.input_tile,
                               conv_modes=plan.conv_mode_map)
        served = specialized.run(volume)
        reference = reg.warm(spec.name, volume.shape)
        expected = reference.run(volume)
        reg.close()
        np.testing.assert_allclose(served, expected,
                                   rtol=1e-10, atol=1e-12)

    def test_fixed_plan_is_bitwise_reproducible(self, big_kernel_model):
        spec = big_kernel_model
        volume = np.random.default_rng(9).standard_normal((16, 16, 16))
        plan = plan_specialization(spec, volume.shape)
        reg = ModelRegistry(max_models=2)
        reg.register(spec)
        warm = reg.warm(spec.name, plan.input_tile,
                        conv_modes=plan.conv_mode_map)
        first = warm.run(volume)
        second = warm.run(volume)
        reg.close()
        assert np.array_equal(first, second)


class TestRegistryIntegration:
    def test_set_plan_requires_registration(self, small_model):
        spec = small_model.model_spec()
        plan = plan_specialization(spec, (24, 24, 24))
        reg = ModelRegistry()
        with pytest.raises(KeyError, match="unknown model"):
            reg.set_plan(plan)
        reg.register(spec)
        assert reg.set_plan(plan) is plan
        assert reg.plan_for(spec.name) is plan
        assert reg.plans() == [plan]
        reg.close()

    def test_reregister_drops_stale_plan(self, small_model):
        spec = small_model.model_spec()
        plan = plan_specialization(spec, (24, 24, 24))
        reg = ModelRegistry()
        reg.register(spec)
        reg.set_plan(plan)
        # Re-registering an *equal* spec keeps the plan (same graph) …
        reg.register(small_model.model_spec())
        assert reg.plan_for(spec.name) is plan
        # … but a changed spec invalidates it.
        reg.register(small_model.model_spec(conv_mode="fft"))
        assert reg.plan_for(spec.name) is None
        reg.close()

    def test_warm_cache_keyed_by_modes(self, small_model):
        spec = small_model.model_spec()
        reg = ModelRegistry(max_models=4)
        reg.register(spec)
        plain = reg.warm(spec.name, (9, 9, 9))
        moded = reg.warm(spec.name, (9, 9, 9),
                         conv_modes={edge: "direct"
                                     for edge in plain.network.conv_modes})
        assert plain is not moded
        assert reg.warm(spec.name, (9, 9, 9)) is plain
        reg.close()

    def test_pipeline_serves_specialized(self, small_model):
        spec = small_model.model_spec()
        volume = np.random.default_rng(3).standard_normal((17, 17, 17))
        plan = plan_specialization(spec, volume.shape, tile_voxels=1000)
        reg = ModelRegistry(max_models=2)
        reg.register(spec)
        reg.set_plan(plan)
        counter = metrics_registry().counter(
            "serving.requests.specialized")
        before = counter.value
        server = InferenceServer(reg, num_workers=1).start()
        try:
            served = server.infer(spec.name, volume, timeout=60.0)
        finally:
            server.stop()
        assert counter.value == before + 1
        reference = reg.warm(spec.name, volume.shape)
        assert np.array_equal(served, reference.run(volume))
        reg.close()

    def test_pipeline_falls_back_when_plan_does_not_cover(self,
                                                          small_model):
        spec = small_model.model_spec()
        plan = plan_specialization(spec, (24, 24, 24))
        assert not plan.covers((9, 9, 9))  # smaller than the plan tile
        reg = ModelRegistry(max_models=2)
        reg.register(spec)
        reg.set_plan(plan)
        counter = metrics_registry().counter(
            "serving.requests.specialized")
        before = counter.value
        server = InferenceServer(reg, num_workers=1).start()
        try:
            served = server.infer(
                spec.name,
                np.random.default_rng(4).standard_normal((9, 9, 9)),
                timeout=60.0)
        finally:
            server.stop()
        assert counter.value == before  # generic path
        assert served.shape == (5, 5, 5)
        reg.close()


class TestFleetPlumbing:
    def test_worker_config_plans_pickle(self, small_model):
        spec = small_model.model_spec()
        plan = plan_specialization(spec, (24, 24, 24))
        config = WorkerConfig(specs=(spec,), plans=(plan,))
        clone = pickle.loads(pickle.dumps(config))
        assert clone.plans == (plan,)

    def test_fleet_rejects_plan_for_unknown_model(self, small_model):
        from repro.serving import FleetServer

        spec = small_model.model_spec()
        other = plan_specialization(spec, (24, 24, 24))
        other = SpecializationPlan.from_doc(
            dict(other.to_doc(), model="nope"))
        with pytest.raises(ValueError, match="unknown model"):
            FleetServer([spec], num_workers=1, plans=[other])

    def test_fleet_forwards_plans_to_worker_config(self, small_model):
        from repro.serving import FleetServer

        spec = small_model.model_spec()
        plan = plan_specialization(spec, (24, 24, 24))
        fleet = FleetServer([spec], num_workers=1, plans=[plan])
        assert fleet._worker_config.plans == (plan,)


class TestSpecializeCLI:
    def test_plan_only_json(self, small_model, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "plan.json"
        code = main(["specialize", "--spec", small_model.spec_path,
                     "--name", "small", "--volume", "16",
                     "--no-measure", "--json", "--out", str(out)])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.specialize/v1"
        assert doc["model"] == "small"
        # --out wrote the same canonical document.
        assert json.loads(out.read_text()) == doc

    def test_infeasible_exit_code(self, small_model, capsys):
        from repro.cli import main

        code = main(["specialize", "--spec", small_model.spec_path,
                     "--volume", "3", "--no-measure"])
        assert code == 65
        assert "infeasible" in capsys.readouterr().err
