"""Chaos tests for the multi-process serving fleet.

Every case here spawns real worker processes, so everything is marked
``slow`` (the tier-1 run skips them; the CI ``fleet-chaos-smoke`` lane
runs them under ``REPRO_CHECK=1``).  The invariant throughout: a fleet
under a seeded FaultPlan — workers killed or hung mid-load — serves
every in-deadline request **bitwise identically** to a clean run, and
``health()`` narrates the restart/quarantine/drain transitions.

Fault grammar notes (see repro.resilience.faults): occurrence counts
are per-process, so a restarted worker re-arms its plan —
``fail:serve_worker@0:1x99`` kills worker 0 *and every replacement*,
which is how the restart-storm breaker is driven deterministically.
"""

import threading
import time

import numpy as np
import pytest

from repro.serving import (
    DeadlineExceeded,
    FleetServer,
    HashRing,
    ServerDraining,
    SupervisorConfig,
    WorkerConfig,
)
from repro.serving.supervisor import (
    STATE_HEALTHY,
    STATE_QUARANTINED,
    Supervisor,
)

pytestmark = pytest.mark.slow

VOLUME_SHAPE = (13, 13, 13)

# Fast-failure-detection knobs for tests: 0.1s heartbeats, 0.6s hang
# watchdog, near-immediate restarts.
FAST = SupervisorConfig(heartbeat_interval=0.1, heartbeat_timeout=0.6,
                        restart_backoff=0.05, restart_backoff_max=0.2,
                        breaker_restarts=5, breaker_window=30.0)


def make_fleet(small_model, num_workers, *, faults=None, config=FAST,
               pool_name="fleet-test", **kwargs):
    kwargs.setdefault("prewarm_shape", VOLUME_SHAPE)
    kwargs.setdefault("max_queue", 16)
    return FleetServer([small_model.model_spec()],
                       num_workers=num_workers,
                       worker_faults=faults,
                       supervisor_config=config,
                       pool_name=pool_name, **kwargs)


@pytest.fixture(scope="module")
def clean_output(small_model):
    """Reference output from a fault-free single-worker fleet."""
    volume = np.random.default_rng(42).standard_normal(VOLUME_SHAPE)
    fleet = make_fleet(small_model, 1, pool_name="fleet-clean")
    fleet.start(ready_timeout=120)
    try:
        return volume, fleet.infer("small", volume, timeout=60.0)
    finally:
        fleet.stop()


class TestCleanFleet:
    def test_matches_single_process_server(self, clean_output, registry):
        # The fleet is a router, not a different numerics path: its
        # output is bitwise what the in-process server computes.
        volume, reference = clean_output
        from repro.serving import InferenceServer
        with InferenceServer(registry, num_workers=1,
                             tile_voxels=1000) as server:
            direct = server.infer("small", volume)
        assert np.array_equal(reference, direct)

    def test_health_names_every_worker(self, small_model):
        fleet = make_fleet(small_model, 2, pool_name="fleet-health")
        fleet.start(ready_timeout=120)
        try:
            doc = fleet.health()
            assert doc["status"] == "ok"
            assert doc["role"] == "fleet"
            assert sorted(doc["workers"]) == ["0", "1"]
            for info in doc["workers"].values():
                assert info["state"] == STATE_HEALTHY
                assert info["restarts"] == 0
                assert not info["last_restart_reason"]
        finally:
            fleet.stop()
        assert fleet.health()["status"] == "stopped"


class TestKillChaos:
    def test_crashes_mid_load_stay_bitwise_identical(
            self, small_model, clean_output):
        # Kill whichever worker serves the 2nd request, and hang the
        # 4th occurrence for 3s: every request must still complete in
        # deadline with output bitwise equal to the clean run, via
        # requeue-on-death and watchdog reroute.
        volume, reference = clean_output
        fleet = make_fleet(
            small_model, 3,
            faults="fail:serve_worker:2,hang:serve_worker:4,hang=3",
            pool_name="fleet-kill")
        fleet.start(ready_timeout=120)
        try:
            outputs = [fleet.infer("small", volume, timeout=60.0)
                       for _ in range(8)]
            assert all(np.array_equal(out, reference) for out in outputs)
            doc = fleet.health()
            restarts = sum(w["restarts"]
                           for w in doc["workers"].values())
            assert restarts >= 1
            reasons = [w["last_restart_reason"]
                       for w in doc["workers"].values()
                       if w["restarts"]]
            assert any("crash" in r or "hang" in r for r in reasons)
        finally:
            fleet.stop()

    def test_restart_storm_trips_the_breaker(self, small_model):
        # The model's preferred worker (and every replacement —
        # occurrence counts are per-process) dies on its first
        # request, a deterministic crash loop: after breaker_restarts
        # deaths inside the window it must be quarantined, not
        # restarted forever.
        preferred = HashRing(range(2)).lookup("small")
        other = 1 - preferred
        config = SupervisorConfig(
            heartbeat_interval=0.1, heartbeat_timeout=0.6,
            restart_backoff=0.05, restart_backoff_max=0.1,
            breaker_restarts=2, breaker_window=30.0)
        fleet = make_fleet(
            small_model, 2,
            faults=f"fail:serve_worker@{preferred}:1x999",
            config=config, pool_name="fleet-storm")
        fleet.start(ready_timeout=120)
        volume = np.random.default_rng(7).standard_normal(VOLUME_SHAPE)
        try:
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                doc = fleet.health()
                state = doc["workers"][str(preferred)]["state"]
                if state == STATE_QUARANTINED:
                    break
                # Traffic is what trips the fault; requests crashing
                # the preferred worker fail over and still succeed.
                assert fleet.infer("small", volume,
                                   timeout=60.0).size > 0
                time.sleep(0.2)
            doc = fleet.health()
            assert doc["workers"][str(preferred)]["state"] \
                == STATE_QUARANTINED
            # The surviving worker still serves traffic.
            assert fleet.infer("small", volume, timeout=60.0).size > 0
            assert doc["workers"][str(other)]["state"] == STATE_HEALTHY
        finally:
            fleet.stop()


class TestHangChaos:
    def test_watchdog_reroutes_around_a_hung_worker(self, small_model,
                                                    clean_output):
        # Hang the model's preferred worker for far longer than the
        # heartbeat timeout: the watchdog must kill it and the request
        # must fail over to the other worker within its deadline.
        volume, reference = clean_output
        preferred = HashRing(range(2)).lookup("small")
        fleet = make_fleet(
            small_model, 2,
            faults=f"hang:serve_worker@{preferred}:1,hang=30",
            pool_name="fleet-hang")
        fleet.start(ready_timeout=120)
        try:
            start = time.monotonic()
            out = fleet.infer("small", volume, timeout=60.0)
            elapsed = time.monotonic() - start
            assert np.array_equal(out, reference)
            # Served via failover, not by waiting out the 30s hang.
            assert elapsed < 20.0
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                info = fleet.health()["workers"][str(preferred)]
                if info["restarts"] >= 1:
                    break
                time.sleep(0.2)
            assert info["restarts"] >= 1
            assert "hang" in info["last_restart_reason"]
        finally:
            fleet.stop()


class TestDrainUnderLoad:
    def test_zero_accepted_requests_dropped(self, small_model,
                                            clean_output):
        # Pile up requests, then drain: every accepted request must
        # resolve with the right bits; post-drain submissions are
        # refused with ServerDraining.
        volume, reference = clean_output
        fleet = make_fleet(small_model, 2, pool_name="fleet-drain",
                           inflight_per_worker=2)
        fleet.start(ready_timeout=120)
        stopped = False
        try:
            accepted = [fleet.submit("small", volume, timeout=60.0)
                        for _ in range(6)]
            fleet.begin_drain()
            assert fleet.health()["status"] == "draining"
            with pytest.raises(ServerDraining):
                fleet.submit("small", volume)
            assert fleet.wait_drained(timeout=60.0)
            for request in accepted:
                assert np.array_equal(request.result(timeout=60.0),
                                      reference)
            fleet.stop()
            stopped = True
        finally:
            if not stopped:
                fleet.stop()

    def test_drain_with_a_mid_flight_crash(self, small_model,
                                           clean_output):
        # A worker dying while the fleet drains must not drop the
        # requests it held — they requeue onto the survivor.  The
        # fault targets only the preferred worker so its replacement
        # (which receives no traffic once everything moved to the
        # survivor) cannot re-arm the crash loop.
        volume, reference = clean_output
        preferred = HashRing(range(2)).lookup("small")
        fleet = make_fleet(small_model, 2,
                           faults=f"fail:serve_worker@{preferred}:2",
                           pool_name="fleet-drain-crash",
                           inflight_per_worker=2)
        fleet.start(ready_timeout=120)
        try:
            accepted = [fleet.submit("small", volume, timeout=60.0)
                        for _ in range(6)]
            fleet.begin_drain()
            assert fleet.wait_drained(timeout=60.0)
            for request in accepted:
                assert np.array_equal(request.result(timeout=60.0),
                                      reference)
        finally:
            fleet.stop()


class TestDeadlines:
    def test_expired_request_fails_fast_not_served(self, small_model):
        # A deadline already gone when the dispatcher picks the
        # request up: the dispatch check (or the janitor) must fail it
        # with DeadlineExceeded rather than serving a dead request.
        fleet = make_fleet(small_model, 1, pool_name="fleet-deadline")
        fleet.start(ready_timeout=120)
        try:
            volume = np.random.default_rng(3).standard_normal(
                VOLUME_SHAPE)
            with pytest.raises(DeadlineExceeded):
                fleet.infer("small", volume, timeout=0.0)
        finally:
            fleet.stop()


class TestSupervisorUnit:
    def test_status_and_stop_are_clean(self, small_model):
        config = WorkerConfig(specs=(small_model.model_spec(),),
                              prewarm_shape=VOLUME_SHAPE)
        supervisor = Supervisor(config, num_workers=2,
                                config=FAST)
        supervisor.start()
        try:
            assert supervisor.wait_ready(timeout=120)
            status = supervisor.status()
            assert sorted(status) == ["0", "1"]
            assert all(w["state"] == STATE_HEALTHY
                       for w in status.values())
            assert all(w["pid"] for w in status.values())
        finally:
            supervisor.stop()
        assert all(w["state"] == "stopped"
                   for w in supervisor.status().values())

    def test_callbacks_fire_without_holding_locks(self, small_model):
        # A callback that immediately calls back into the supervisor
        # must not deadlock — the contract is that callbacks run
        # lock-free.
        seen = []
        ready = threading.Event()

        def on_up(worker_id):
            seen.append(supervisor.is_healthy(worker_id))
            ready.set()

        config = WorkerConfig(specs=(small_model.model_spec(),),
                              prewarm_shape=VOLUME_SHAPE, prewarm=False)
        supervisor = Supervisor(config, num_workers=1, config=FAST,
                                on_worker_up=on_up)
        supervisor.start()
        try:
            assert ready.wait(timeout=120)
            assert seen == [True]
        finally:
            supervisor.stop()
