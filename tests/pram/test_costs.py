"""Cost-formula tests — Tables I, II, III, IV verified symbolically
and against operation counts."""

import math

import pytest

from repro.pram import (
    DEFAULT_FFT_CONSTANT,
    conv_layer_costs_direct,
    conv_layer_costs_fft,
    conv_layer_tinf,
    direct_conv_task_cost,
    fft_cost,
    filter_task_cost,
    filtering_layer_costs,
    nonconv_layer_tinf,
    pointwise_product_cost,
    pooling_layer_costs,
    transfer_layer_costs,
)


class TestTaskCosts:
    def test_direct_conv_nk(self):
        # n' = 10 - 3 + 1 = 8 -> 8^3 * 3^3
        assert direct_conv_task_cost(10, 3) == 8 ** 3 * 27

    def test_direct_conv_sparse(self):
        # effective 5 -> n' = 6, taps still 3^3
        assert direct_conv_task_cost(10, 3, 2) == 6 ** 3 * 27

    def test_fft_cost_formula(self):
        n = 8 ** 3
        assert fft_cost(8) == pytest.approx(
            DEFAULT_FFT_CONSTANT * n * math.log2(n))

    def test_fft_cost_custom_constant(self):
        assert fft_cost(8, constant=1.0) == pytest.approx(
            8 ** 3 * math.log2(8 ** 3))

    def test_pointwise_product_4n(self):
        assert pointwise_product_cost(8) == 4 * 512

    def test_filter_cost_6nlogk(self):
        # Table I: 6 n^3 log k
        assert filter_task_cost(8, 4) == pytest.approx(6 * 512 * 2)

    def test_filter_backward_n3(self):
        assert filter_task_cost(8, 4, backward=True) == 512


class TestTableI:
    """Table I rows for a layer of f nodes on n^3 images."""

    def test_pooling_row(self):
        costs = pooling_layer_costs(4, 8)
        assert costs.forward == 4 * 512
        assert costs.backward == 4 * 512
        assert costs.update == 0.0

    def test_filtering_row(self):
        costs = filtering_layer_costs(4, 8, 4)
        assert costs.forward == pytest.approx(4 * 6 * 512 * 2)
        assert costs.backward == 4 * 512
        assert costs.update == 0.0

    def test_transfer_row(self):
        costs = transfer_layer_costs(4, 8)
        assert costs.forward == costs.backward == costs.update == 4 * 512


class TestTableII:
    """Table II: f -> f' fully connected conv layer."""

    def test_direct_every_pass_ffnk(self):
        costs = conv_layer_costs_direct(3, 5, 10, 3)
        per_pass = 3 * 5 * 8 ** 3 * 27
        assert costs.forward == costs.backward == costs.update == per_pass
        assert costs.total == 3 * per_pass

    def test_fft_forward_term(self):
        f, fp, n = 3, 5, 8
        costs = conv_layer_costs_fft(f, fp, n, memoized=True)
        one = fft_cost(n)
        expected = one * (f + fp + f * fp) + 4 * n ** 3 * f * fp
        assert costs.forward == pytest.approx(expected)

    def test_memoized_backward_drops_kernel_ffts(self):
        f, fp, n = 3, 5, 8
        memo = conv_layer_costs_fft(f, fp, n, memoized=True)
        plain = conv_layer_costs_fft(f, fp, n, memoized=False)
        one = fft_cost(n)
        assert plain.backward - memo.backward == pytest.approx(one * f * fp)

    def test_memoized_total_is_two_thirds_of_fft_terms(self):
        """9C -> 6C: memoization removes one third of the FFT work."""
        f, fp, n = 4, 4, 8
        memo = conv_layer_costs_fft(f, fp, n, memoized=True)
        plain = conv_layer_costs_fft(f, fp, n, memoized=False)
        one = fft_cost(n)
        fft_terms_plain = 3 * (f + fp + f * fp)   # 9C... / 3C per pass
        fft_terms_memo = 2 * (f + fp + f * fp)
        assert (plain.total - memo.total) == pytest.approx(
            one * (fft_terms_plain - fft_terms_memo))

    def test_fft_beats_direct_for_large_kernels(self):
        direct = conv_layer_costs_direct(8, 8, 32, 9).total
        fft = conv_layer_costs_fft(8, 8, 32).total
        assert fft < direct

    def test_direct_beats_fft_for_tiny_kernels(self):
        direct = conv_layer_costs_direct(1, 1, 32, 1).total
        fft = conv_layer_costs_fft(1, 1, 32).total
        assert direct < fft


class TestTablesIIIandIV:
    def test_direct_tinf_has_log_width_term(self):
        """T_inf grows by ceil(log2 f) image additions (binary collapse)."""
        narrow = conv_layer_tinf(2, 2, 10, 3, mode="direct")
        wide = conv_layer_tinf(16, 16, 10, 3, mode="direct")
        out3 = (10 - 3 + 1) ** 3
        assert wide.forward - narrow.forward == pytest.approx(
            out3 * (4 - 1))  # log2 16 - log2 2

    def test_update_tinf_width_independent(self):
        a = conv_layer_tinf(2, 2, 10, 3, mode="direct").update
        b = conv_layer_tinf(64, 64, 10, 3, mode="direct").update
        assert a == b

    def test_fft_memo_update_single_inverse(self):
        t = conv_layer_tinf(4, 4, 8, 3, mode="fft-memo")
        assert t.update == pytest.approx(fft_cost(8) + 4 * 512)

    def test_fft_update_two_transforms(self):
        t = conv_layer_tinf(4, 4, 8, 3, mode="fft")
        assert t.update == pytest.approx(2 * fft_cost(8) + 4 * 512)

    def test_nonconv_rows(self):
        n3 = 512
        pool = nonconv_layer_tinf("pool", 8)
        assert (pool.forward, pool.backward, pool.update) == (n3, n3, 0.0)
        filt = nonconv_layer_tinf("filter", 8, 4)
        assert filt.forward == pytest.approx(6 * n3 * 2)
        xfer = nonconv_layer_tinf("transfer", 8)
        assert xfer.update == n3

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            nonconv_layer_tinf("warp", 8)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            conv_layer_tinf(2, 2, 8, 3, mode="winograd")

    def test_tinf_below_t1(self):
        """Sanity: the infinite-processor time never exceeds the
        serial work."""
        for mode in ("direct", "fft", "fft-memo"):
            t1 = (conv_layer_costs_direct(8, 8, 16, 3).total
                  if mode == "direct"
                  else conv_layer_costs_fft(8, 8, 16,
                                            memoized=(mode == "fft-memo")
                                            ).total)
            tinf = conv_layer_tinf(8, 8, 16, 3, mode=mode)
            assert tinf.forward + tinf.backward + tinf.update < t1
