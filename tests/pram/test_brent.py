"""Brent bound and Fig 4 tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pram import (
    FIG4_PROCESSORS,
    achievable_speedup,
    achievable_speedup_curve,
    brent_speedup_bound,
    brent_time_bound,
    fig4_series,
    layered_network_times,
)


class TestBrentBound:
    def test_time_bound_formula(self):
        assert brent_time_bound(100.0, 10.0, 10) == pytest.approx(19.0)

    def test_one_processor_is_serial(self):
        assert brent_time_bound(100.0, 10.0, 1) == pytest.approx(100.0)

    def test_infinite_processors_approach_tinf(self):
        assert brent_time_bound(100.0, 10.0, 10**9) == pytest.approx(
            10.0, rel=1e-6)

    def test_speedup_bound_eq2(self):
        s_inf = 100.0 / 10.0
        expected = s_inf / (1 + (s_inf - 1) / 4)
        assert brent_speedup_bound(100.0, 10.0, 4) == pytest.approx(expected)

    def test_speedup_never_exceeds_p(self):
        for p in (1, 2, 8, 64):
            assert brent_speedup_bound(1e9, 1.0, p) <= p + 1e-9

    def test_speedup_never_exceeds_sinf(self):
        assert brent_speedup_bound(100.0, 50.0, 1000) <= 2.0 + 1e-9

    def test_tinf_above_t1_rejected(self):
        with pytest.raises(ValueError):
            brent_time_bound(1.0, 2.0, 4)

    @given(t1=st.floats(10, 1e6), ratio=st.floats(0.001, 1.0),
           p=st.integers(1, 256))
    def test_property_bound_sandwiched(self, t1, ratio, p):
        tinf = t1 * ratio
        s = brent_speedup_bound(t1, tinf, p)
        assert 0 < s <= min(p, t1 / tinf) + 1e-6


class TestNetworkTimes:
    def test_t1_scales_quadratically_with_width(self):
        """T1 ~ f^2 for large f (Section V-A)."""
        a = layered_network_times(20, 4).t1
        b = layered_network_times(40, 4).t1
        assert 3.0 < b / a < 4.5

    def test_tinf_scales_logarithmically_with_width(self):
        a = layered_network_times(16, 4).tinf
        b = layered_network_times(64, 4).tinf
        assert b / a < 1.5  # log-factor only

    def test_sinf_diverges_with_width(self):
        widths = [4, 16, 64]
        sinfs = [layered_network_times(w, 4).s_inf for w in widths]
        assert sinfs[0] < sinfs[1] < sinfs[2]

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            layered_network_times(0, 4)


class TestFig4:
    def test_speedup_increases_with_width(self):
        curve = achievable_speedup_curve(18, widths=[2, 10, 40, 120])
        assert curve == sorted(curve)

    def test_wide_networks_reach_p(self):
        for p in FIG4_PROCESSORS:
            s = achievable_speedup(p, 120, 8)
            assert s > 0.9 * p

    def test_narrow_networks_far_from_p(self):
        s = achievable_speedup(120, 2, 8)
        assert s < 0.5 * 120

    def test_width_at_75pct_grows_with_p(self):
        """'The network width at which S_P reaches a fixed fraction of
        its maximal value increases with P' (Section V-A)."""
        def width_at_75(p):
            for w in range(1, 200):
                if achievable_speedup(p, w, 8) >= 0.75 * p:
                    return w
            return 200

        assert width_at_75(8) < width_at_75(40) < width_at_75(120)

    def test_fft_memo_mode_curve(self):
        curve = achievable_speedup_curve(60, widths=[5, 60, 120],
                                         mode="fft-memo")
        assert curve == sorted(curve)
        assert curve[-1] <= 60 + 1e-9

    def test_fig4_series_structure(self):
        series = fig4_series(widths=[5, 20], depths=(4, 8),
                             processors=(8, 18))
        assert set(series) == {8, 18}
        assert set(series[8]) == {4, 8}
        assert len(series[8][4]) == 2

    def test_depth_weakly_affects_speedup(self):
        """Fig 4: 'Multiple lines of the same color' (depths 4-40) sit
        close together."""
        shallow = achievable_speedup(40, 60, 4)
        deep = achievable_speedup(40, 60, 40)
        assert abs(shallow - deep) / shallow < 0.2
