"""Automatic scheduling-strategy selection tests (Section X future
work)."""

import pytest

from repro.graph import ComputationGraph, build_layered_network
from repro.scheduler import StrategyChoice, select_strategy
from repro.simulate import MachineSpec


def layered(width=4, spec="CTMCT"):
    g = build_layered_network(spec, width=width, kernel=3, window=2)
    g.propagate_shapes(16)
    return g


class TestSelection:
    def test_returns_valid_scheduler(self):
        choice = select_strategy(layered(), num_workers=4)
        assert choice.scheduler in ("priority", "fifo", "lifo",
                                    "work-stealing")

    def test_all_policies_evaluated(self):
        choice = select_strategy(layered(), num_workers=4)
        assert set(choice.policy_makespans) == {"priority", "fifo",
                                                "lifo", "random"}
        assert all(m > 0 for m in choice.policy_makespans.values())

    def test_prefers_priority_on_ties(self):
        """The paper's scheduler wins whenever it is within tolerance —
        wide layered nets leave little between policies, so priority
        must be chosen."""
        choice = select_strategy(layered(width=8), num_workers=4,
                                 tolerance=0.05)
        assert choice.scheduler == "priority"

    def test_custom_policy_subset(self):
        choice = select_strategy(layered(), num_workers=2,
                                 policies=("fifo", "lifo"))
        assert choice.scheduler in ("fifo", "lifo")

    def test_single_worker_any_policy_same_makespan(self):
        choice = select_strategy(layered(), num_workers=1)
        values = list(choice.policy_makespans.values())
        # one worker: total work dominates; policies within 1 %
        assert max(values) / min(values) < 1.01

    def test_custom_machine(self):
        machine = MachineSpec(name="m", cores=2, threads=4, ghz=1.0)
        choice = select_strategy(layered(), num_workers=4, machine=machine)
        assert choice.best_makespan > 0

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            select_strategy(layered(), num_workers=0)

    def test_requires_propagated_shapes(self):
        g = build_layered_network("CT", width=1, kernel=2)
        with pytest.raises(ValueError):
            select_strategy(g, num_workers=2)


class TestChoiceObject:
    def test_speedup_over(self):
        choice = StrategyChoice(
            scheduler="priority",
            policy_makespans={"priority": 10.0, "fifo": 15.0,
                              "lifo": 12.0, "random": 20.0})
        assert choice.speedup_over("fifo") == pytest.approx(1.5)
        assert choice.best_makespan == 10.0

    def test_selected_strategy_runs_in_live_engine(self, rng):
        """The recommendation plugs straight into Network."""
        import numpy as np

        from repro.core import Network, SGD

        g = layered(width=2)
        choice = select_strategy(g, num_workers=2)
        net = Network(g, input_shape=(16, 16, 16), num_workers=2,
                      scheduler=choice.scheduler, seed=0,
                      optimizer=SGD(learning_rate=0.01))
        x = rng.standard_normal((16, 16, 16))
        targets = {n.name: np.zeros(n.shape) for n in net.output_nodes}
        loss = net.train_step(x, targets)
        net.close()
        assert np.isfinite(loss)
