"""Threaded TaskEngine and SerialEngine tests."""

import threading

import pytest

from repro.scheduler import (
    LOWEST_PRIORITY,
    SerialEngine,
    Task,
    TaskEngine,
    force,
)


class TestTaskEngine:
    def test_executes_submitted_tasks(self):
        done = threading.Event()
        with TaskEngine(num_workers=2) as engine:
            engine.spawn(done.set)
            assert done.wait(timeout=5)
        assert engine.executed >= 1

    def test_tasks_can_spawn_tasks(self):
        results = []
        done = threading.Event()
        with TaskEngine(num_workers=2) as engine:
            def child():
                results.append("child")
                done.set()

            engine.spawn(lambda: engine.spawn(child))
            assert done.wait(timeout=5)
        assert results == ["child"]

    def test_many_tasks_all_run(self):
        count = 200
        seen = []
        lock = threading.Lock()
        remaining = threading.Semaphore(0)
        with TaskEngine(num_workers=4) as engine:
            for i in range(count):
                def body(i=i):
                    with lock:
                        seen.append(i)
                    remaining.release()

                engine.spawn(body, priority=i % 5)
            for _ in range(count):
                assert remaining.acquire(timeout=5)
        assert sorted(seen) == list(range(count))

    def test_error_propagates_on_shutdown(self):
        engine = TaskEngine(num_workers=1).start()
        engine.spawn(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            # allow the worker to hit the error, then join
            import time
            time.sleep(0.1)
            engine.shutdown()

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            TaskEngine(num_workers=0)

    def test_force_through_engine(self):
        order = []
        done = threading.Event()
        with TaskEngine(num_workers=1) as engine:
            upd = Task(lambda: order.append("upd"),
                       priority=LOWEST_PRIORITY, name="upd")
            engine.submit(upd)

            def fwd_task():
                engine.force(upd, lambda: (order.append("fwd"), done.set()))

            engine.spawn(fwd_task, priority=0)
            assert done.wait(timeout=5)
        assert order == ["upd", "fwd"]


class TestMultiWorkerFailures:
    def _fail_both_workers(self):
        import time

        engine = TaskEngine(num_workers=2).start()
        barrier = threading.Barrier(2)

        def boom(i):
            barrier.wait(timeout=5)  # both workers inside a task body
            raise RuntimeError(f"worker failure {i}")

        engine.spawn(lambda: boom(0), name="fwd:a")
        engine.spawn(lambda: boom(1), name="fwd:b")
        deadline = time.time() + 5
        while len(engine.errors) < 2 and time.time() < deadline:
            time.sleep(0.01)
        return engine

    def test_errors_property_collects_every_failure(self):
        engine = self._fail_both_workers()
        errors = engine.errors
        assert len(errors) == 2
        assert {str(e) for e in errors} == {"worker failure 0",
                                           "worker failure 1"}
        with pytest.raises(RuntimeError):
            engine.shutdown()

    def test_shutdown_notes_secondary_errors(self):
        engine = self._fail_both_workers()
        with pytest.raises(RuntimeError) as excinfo:
            engine.shutdown()
        notes = getattr(excinfo.value, "__notes__", [])
        assert len(notes) == 1
        assert "additional worker error" in notes[0]
        assert "worker failure" in notes[0]

    def test_shutdown_reraise_is_idempotent(self):
        engine = self._fail_both_workers()
        with pytest.raises(RuntimeError) as first:
            engine.shutdown()
        with pytest.raises(RuntimeError) as second:
            engine.shutdown()
        # Same primary exception, and its notes are not duplicated.
        assert second.value is first.value
        assert len(getattr(first.value, "__notes__", [])) == 1


class TestQueueClosedVsForce:
    def test_pending_force_survives_queue_close(self):
        """A QUEUED update whose queue closed underneath it can still be
        FORCEd: the steal works on the task's state machine, not the
        queue, so the update is not lost."""
        from repro.sync import QueueClosed

        engine = TaskEngine(num_workers=1)  # not started: deterministic
        order = []
        upd = Task(lambda: order.append("upd"),
                   priority=LOWEST_PRIORITY, name="upd:e")
        engine.submit(upd)
        engine.queue.close()
        with pytest.raises(QueueClosed):
            engine.spawn(lambda: None, name="fwd:late")
        engine.force(upd, lambda: order.append("sub"), name="do-fwd:e")
        assert order == ["upd", "sub"]

    def test_force_races_worker_failure_close(self):
        """A worker failure closes the queue while another worker is
        about to FORCE a pending update; the forced chain still runs."""
        import time

        started = threading.Event()
        order = []
        engine = TaskEngine(num_workers=2).start()
        upd = Task(lambda: order.append("upd"),
                   priority=LOWEST_PRIORITY, name="upd:e")
        engine.submit(upd)

        def fwd():
            started.set()
            deadline = time.time() + 5
            while not engine.errors and time.time() < deadline:
                time.sleep(0.005)
            engine.force(upd, lambda: order.append("sub"), name="do-fwd:e")

        def boom():
            assert started.wait(5)
            raise RuntimeError("fatal")

        engine.spawn(fwd, priority=0, name="fwd:e")
        engine.spawn(boom, priority=1, name="bwd:boom")
        with pytest.raises(RuntimeError, match="fatal"):
            engine.shutdown()
        assert order == ["upd", "sub"]


class TestSerialEngine:
    def test_run_until_idle_executes_all(self):
        engine = SerialEngine()
        seen = []
        engine.spawn(lambda: seen.append(1))
        engine.spawn(lambda: seen.append(2))
        assert engine.run_until_idle() == 2
        assert sorted(seen) == [1, 2]

    def test_priority_order_respected(self):
        engine = SerialEngine()
        order = []
        engine.spawn(lambda: order.append("late"), priority=5)
        engine.spawn(lambda: order.append("early"), priority=1)
        engine.run_until_idle()
        assert order == ["early", "late"]

    def test_spawned_children_run_in_same_drain(self):
        engine = SerialEngine()
        order = []

        def parent():
            order.append("parent")
            engine.spawn(lambda: order.append("child"))

        engine.spawn(parent)
        engine.run_until_idle()
        assert order == ["parent", "child"]

    def test_executed_counter(self):
        engine = SerialEngine()
        for _ in range(5):
            engine.spawn(lambda: None)
        engine.run_until_idle()
        assert engine.executed == 5

    def test_context_manager_drains(self):
        seen = []
        with SerialEngine() as engine:
            engine.spawn(lambda: seen.append(1))
        assert seen == [1]

    def test_force_steals_queued_update(self):
        engine = SerialEngine()
        order = []
        upd = Task(lambda: order.append("upd"), priority=LOWEST_PRIORITY)
        engine.submit(upd)
        engine.force(upd, lambda: order.append("fwd"))
        assert order == ["upd", "fwd"]
        # the queue entry was invalidated; draining runs nothing more
        assert engine.run_until_idle() == 0
