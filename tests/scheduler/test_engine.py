"""Threaded TaskEngine and SerialEngine tests."""

import threading

import pytest

from repro.scheduler import (
    LOWEST_PRIORITY,
    SerialEngine,
    Task,
    TaskEngine,
    force,
)


class TestTaskEngine:
    def test_executes_submitted_tasks(self):
        done = threading.Event()
        with TaskEngine(num_workers=2) as engine:
            engine.spawn(done.set)
            assert done.wait(timeout=5)
        assert engine.executed >= 1

    def test_tasks_can_spawn_tasks(self):
        results = []
        done = threading.Event()
        with TaskEngine(num_workers=2) as engine:
            def child():
                results.append("child")
                done.set()

            engine.spawn(lambda: engine.spawn(child))
            assert done.wait(timeout=5)
        assert results == ["child"]

    def test_many_tasks_all_run(self):
        count = 200
        seen = []
        lock = threading.Lock()
        remaining = threading.Semaphore(0)
        with TaskEngine(num_workers=4) as engine:
            for i in range(count):
                def body(i=i):
                    with lock:
                        seen.append(i)
                    remaining.release()

                engine.spawn(body, priority=i % 5)
            for _ in range(count):
                assert remaining.acquire(timeout=5)
        assert sorted(seen) == list(range(count))

    def test_error_propagates_on_shutdown(self):
        engine = TaskEngine(num_workers=1).start()
        engine.spawn(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            # allow the worker to hit the error, then join
            import time
            time.sleep(0.1)
            engine.shutdown()

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            TaskEngine(num_workers=0)

    def test_force_through_engine(self):
        order = []
        done = threading.Event()
        with TaskEngine(num_workers=1) as engine:
            upd = Task(lambda: order.append("upd"),
                       priority=LOWEST_PRIORITY, name="upd")
            engine.submit(upd)

            def fwd_task():
                engine.force(upd, lambda: (order.append("fwd"), done.set()))

            engine.spawn(fwd_task, priority=0)
            assert done.wait(timeout=5)
        assert order == ["upd", "fwd"]


class TestSerialEngine:
    def test_run_until_idle_executes_all(self):
        engine = SerialEngine()
        seen = []
        engine.spawn(lambda: seen.append(1))
        engine.spawn(lambda: seen.append(2))
        assert engine.run_until_idle() == 2
        assert sorted(seen) == [1, 2]

    def test_priority_order_respected(self):
        engine = SerialEngine()
        order = []
        engine.spawn(lambda: order.append("late"), priority=5)
        engine.spawn(lambda: order.append("early"), priority=1)
        engine.run_until_idle()
        assert order == ["early", "late"]

    def test_spawned_children_run_in_same_drain(self):
        engine = SerialEngine()
        order = []

        def parent():
            order.append("parent")
            engine.spawn(lambda: order.append("child"))

        engine.spawn(parent)
        engine.run_until_idle()
        assert order == ["parent", "child"]

    def test_executed_counter(self):
        engine = SerialEngine()
        for _ in range(5):
            engine.spawn(lambda: None)
        engine.run_until_idle()
        assert engine.executed == 5

    def test_context_manager_drains(self):
        seen = []
        with SerialEngine() as engine:
            engine.spawn(lambda: seen.append(1))
        assert seen == [1]

    def test_force_steals_queued_update(self):
        engine = SerialEngine()
        order = []
        upd = Task(lambda: order.append("upd"), priority=LOWEST_PRIORITY)
        engine.submit(upd)
        engine.force(upd, lambda: order.append("fwd"))
        assert order == ["upd", "fwd"]
        # the queue entry was invalidated; draining runs nothing more
        assert engine.run_until_idle() == 0
