"""Alternative scheduling strategies (Section X) tests."""

import threading

import pytest

from repro.scheduler import (
    FifoScheduler,
    LifoScheduler,
    SerialEngine,
    TaskEngine,
    WorkStealingScheduler,
    make_scheduler,
)
from repro.sync import QueueClosed


class TestFactory:
    @pytest.mark.parametrize("name", ["priority", "fifo", "lifo",
                                      "work-stealing"])
    def test_known_names(self, name):
        assert make_scheduler(name, num_workers=2) is not None

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_scheduler("round-robin")


class TestFifo:
    def test_order(self):
        q = FifoScheduler()
        for i in range(4):
            q.push(10 - i, i)  # priorities deliberately misleading
        assert [q.pop(block=False)[1] for _ in range(4)] == [0, 1, 2, 3]

    def test_invalid_skipped(self):
        q = FifoScheduler()
        q.push(0, "dead", is_valid=lambda: False)
        q.push(0, "live")
        assert q.pop(block=False)[1] == "live"

    def test_close_raises_for_popper(self):
        q = FifoScheduler()
        q.close()
        with pytest.raises(QueueClosed):
            q.pop(block=False)


class TestLifo:
    def test_order(self):
        q = LifoScheduler()
        for i in range(4):
            q.push(0, i)
        assert [q.pop(block=False)[1] for _ in range(4)] == [3, 2, 1, 0]


class TestWorkStealing:
    def test_local_lifo(self):
        q = WorkStealingScheduler(num_workers=2)
        q.push(0, "a")
        q.push(0, "b")
        # same thread owns the deque: LIFO
        assert q.pop(block=False)[1] == "b"
        assert q.pop(block=False)[1] == "a"

    def test_steal_from_other_deque(self):
        q = WorkStealingScheduler(num_workers=2)
        q.push(0, "victim-work")  # lands on this thread's deque

        stolen = []

        def thief():
            stolen.append(q.pop(block=False)[1])

        t = threading.Thread(target=thief)
        t.start()
        t.join()
        assert stolen == ["victim-work"]

    def test_steals_oldest_first(self):
        q = WorkStealingScheduler(num_workers=2)
        q.push(0, "old")
        q.push(0, "new")

        stolen = []

        def thief():
            stolen.append(q.pop(block=False)[1])

        t = threading.Thread(target=thief)
        t.start()
        t.join()
        assert stolen == ["old"]  # FIFO end for thieves

    def test_len_counts_all_deques(self):
        q = WorkStealingScheduler(num_workers=3)
        for i in range(5):
            q.push(0, i)
        assert len(q) == 5

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkStealingScheduler(num_workers=0)


@pytest.mark.parametrize("name", ["priority", "fifo", "lifo",
                                  "work-stealing"])
class TestEnginesWithEveryStrategy:
    """Every strategy must run a full task cascade to completion in
    both the serial and the threaded engine."""

    def test_serial_engine(self, name):
        engine = SerialEngine(scheduler=make_scheduler(name, 1))
        seen = []

        def parent():
            seen.append("p")
            for i in range(3):
                engine.spawn(lambda i=i: seen.append(i))

        engine.spawn(parent)
        engine.run_until_idle()
        assert sorted(map(str, seen)) == ["0", "1", "2", "p"]

    def test_threaded_engine(self, name):
        done = threading.Semaphore(0)
        with TaskEngine(num_workers=3,
                        scheduler=make_scheduler(name, 3)) as engine:
            for _ in range(30):
                engine.spawn(done.release, priority=1)
            for _ in range(30):
                assert done.acquire(timeout=5)
