"""Task state machine and FORCE protocol tests (Algorithms 1–3)."""

import threading
import time

import pytest

from repro.scheduler import Task, TaskState, force


class TestStateMachine:
    def test_initial_state_pending(self):
        assert Task(lambda: None).state is TaskState.PENDING

    def test_mark_queued(self):
        t = Task(lambda: None)
        t.mark_queued()
        assert t.state is TaskState.QUEUED

    def test_double_queue_rejected(self):
        t = Task(lambda: None)
        t.mark_queued()
        with pytest.raises(RuntimeError):
            t.mark_queued()

    def test_execute_runs_body(self):
        ran = []
        t = Task(lambda: ran.append(1))
        t.mark_queued()
        t.execute()
        assert ran == [1]
        assert t.state is TaskState.COMPLETED

    def test_execute_twice_rejected(self):
        t = Task(lambda: None)
        t.mark_queued()
        t.execute()
        with pytest.raises(RuntimeError):
            t.execute()

    def test_steal_only_from_queued(self):
        t = Task(lambda: None)
        assert not t.try_steal()       # pending
        t.mark_queued()
        assert t.try_steal()           # queued -> stolen
        assert not t.try_steal()       # already stolen
        assert t.state is TaskState.STOLEN

    def test_is_queued_validity_callback(self):
        t = Task(lambda: None)
        t.mark_queued()
        assert t.is_queued()
        t.try_steal()
        assert not t.is_queued()       # queue will skip this entry

    def test_unique_ids(self):
        assert Task(lambda: None).task_id != Task(lambda: None).task_id


class TestAttachment:
    def test_attached_subtask_runs_after_body(self):
        order = []
        main = Task(lambda: order.append("main"))
        sub = Task(lambda: order.append("sub"))
        main.mark_queued()
        assert main.try_attach(sub)
        main.execute()
        assert order == ["main", "sub"]
        assert sub.state is TaskState.COMPLETED

    def test_attach_to_completed_fails(self):
        main = Task(lambda: None)
        main.mark_queued()
        main.execute()
        assert not main.try_attach(Task(lambda: None))

    def test_double_attach_rejected(self):
        main = Task(lambda: None)
        main.try_attach(Task(lambda: None))
        with pytest.raises(RuntimeError):
            main.try_attach(Task(lambda: None))

    def test_attachment_chain_drains(self):
        order = []
        a = Task(lambda: order.append("a"))
        b = Task(lambda: order.append("b"))
        c = Task(lambda: order.append("c"))
        a.try_attach(b)
        b.try_attach(c)
        a.execute()
        assert order == ["a", "b", "c"]


class TestForce:
    def test_none_update_runs_subtask_directly(self):
        ran = []
        force(None, Task(lambda: ran.append("fwd")))
        assert ran == ["fwd"]

    def test_completed_update_runs_subtask(self):
        order = []
        upd = Task(lambda: order.append("upd"))
        upd.mark_queued()
        upd.execute()
        force(upd, Task(lambda: order.append("fwd")))
        assert order == ["upd", "fwd"]

    def test_queued_update_is_stolen_and_run_first(self):
        """FORCE case 2: the caller steals the queued update and runs
        update-then-forward itself."""
        order = []
        upd = Task(lambda: order.append("upd"))
        upd.mark_queued()
        force(upd, Task(lambda: order.append("fwd")))
        assert order == ["upd", "fwd"]
        assert upd.state is TaskState.COMPLETED
        assert not upd.is_queued()  # its queue entry is now invalid

    def test_executing_update_gets_attachment(self):
        """FORCE case 3: the forward subtask is delegated to the thread
        executing the update; the forcing thread returns immediately."""
        order = []
        release = threading.Event()
        attached_ran = threading.Event()

        def slow_update():
            order.append("upd-start")
            release.wait(timeout=5)
            order.append("upd-end")

        upd = Task(slow_update)
        upd.mark_queued()
        upd.try_steal()
        runner = threading.Thread(target=upd.execute)
        runner.start()
        while not order:  # wait until the update is running
            time.sleep(0.001)

        def fwd():
            order.append("fwd")
            attached_ran.set()

        force(upd, Task(fwd))
        # forcing thread returned without running fwd
        assert "fwd" not in order
        release.set()
        runner.join(timeout=5)
        assert attached_ran.wait(timeout=5)
        assert order == ["upd-start", "upd-end", "fwd"]

    def test_force_race_attach_vs_completion(self):
        """If the update completes between the steal attempt and the
        attach, the forcing thread must run the subtask itself."""
        for _ in range(50):
            order = []
            upd = Task(lambda: order.append("upd"))
            upd.mark_queued()
            upd.try_steal()
            t = threading.Thread(target=upd.execute)
            t.start()
            force(upd, Task(lambda: order.append("fwd")))
            t.join()
            # Wait for a possible delegated execution to finish: the
            # executing thread runs the attachment after its body.
            deadline = time.time() + 2
            while order.count("fwd") == 0 and time.time() < deadline:
                time.sleep(0.0005)
            assert order == ["upd", "fwd"]  # fwd exactly once, never lost
