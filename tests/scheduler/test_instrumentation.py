"""Trace recorder and engine instrumentation tests."""

import threading

import numpy as np
import pytest

from repro.scheduler import (
    SerialEngine,
    TaskEngine,
    TraceRecorder,
)


class TestRecorder:
    def test_records_and_summarises(self):
        rec = TraceRecorder()
        rec.record("fwd:a", 0, 0.0, 1.0)
        rec.record("upd:a", 0, 1.0, 1.5)
        rec.record("fwd:b", 1, 0.0, 2.0)
        s = rec.summary()
        assert s.tasks == 3
        assert s.span == pytest.approx(2.0)
        assert s.busy_per_worker == {0: 1.5, 1: 2.0}
        assert s.time_per_family == {"fwd": 3.0, "upd": 0.5}
        assert s.utilization == pytest.approx(3.5 / 4.0)

    def test_empty_summary(self):
        s = TraceRecorder().summary()
        assert s.tasks == 0 and s.utilization == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record("x", 0, 1.0, 0.5)

    def test_clear(self):
        rec = TraceRecorder()
        rec.record("x", 0, 0.0, 1.0)
        rec.clear()
        assert len(rec) == 0

    def test_family_without_colon(self):
        rec = TraceRecorder()
        rec.record("provider", 0, 0.0, 1.0)
        assert rec.summary().time_per_family == {"provider": 1.0}


class TestEngineIntegration:
    def test_serial_engine_records(self):
        rec = TraceRecorder()
        engine = SerialEngine(recorder=rec)
        engine.spawn(lambda: None, name="fwd:x")
        engine.spawn(lambda: None, name="bwd:x")
        engine.run_until_idle()
        assert len(rec) == 2
        families = {r.family for r in rec.records()}
        assert families == {"fwd", "bwd"}

    def test_threaded_engine_records(self):
        rec = TraceRecorder()
        done = threading.Semaphore(0)
        with TaskEngine(num_workers=2, recorder=rec) as engine:
            for i in range(10):
                engine.spawn(done.release, name=f"fwd:t{i}")
            for _ in range(10):
                assert done.acquire(timeout=5)
        assert len(rec) == 10
        workers = {r.worker for r in rec.records()}
        assert workers <= {0, 1}

    def test_network_training_trace(self, rng):
        """A traced training round contains every task family of
        Fig 3."""
        from repro.core import Network, SGD
        from repro.graph import build_layered_network

        rec = TraceRecorder()
        graph = build_layered_network("CTC", width=2, kernel=2)
        net = Network(graph, input_shape=(8, 8, 8), seed=0,
                      recorder=rec, optimizer=SGD(learning_rate=0.01))
        x = rng.standard_normal((8, 8, 8))
        targets = {n.name: np.zeros(n.shape) for n in net.output_nodes}
        net.train_step(x, targets)
        net.synchronize()
        families = set(rec.summary().time_per_family)
        assert {"provider", "fwd", "lossgrad", "bwd"} <= families
        # updates may run inline via FORCE (then they appear as part of
        # the forcing task) or as their own queued tasks
        assert rec.summary().tasks >= len(net.edges) * 2
