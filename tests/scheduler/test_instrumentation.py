"""Trace recorder and engine instrumentation tests."""

import threading

import numpy as np
import pytest

from repro.scheduler import (
    SerialEngine,
    TaskEngine,
    TraceRecorder,
)


class TestRecorder:
    def test_records_and_summarises(self):
        rec = TraceRecorder()
        rec.record("fwd:a", 0, 0.0, 1.0)
        rec.record("upd:a", 0, 1.0, 1.5)
        rec.record("fwd:b", 1, 0.0, 2.0)
        s = rec.summary()
        assert s.tasks == 3
        assert s.span == pytest.approx(2.0)
        assert s.busy_per_worker == {0: 1.5, 1: 2.0}
        assert s.time_per_family == {"fwd": 3.0, "upd": 0.5}
        assert s.utilization == pytest.approx(3.5 / 4.0)

    def test_empty_summary(self):
        s = TraceRecorder().summary()
        assert s.tasks == 0 and s.utilization == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record("x", 0, 1.0, 0.5)

    def test_clear(self):
        rec = TraceRecorder()
        rec.record("x", 0, 0.0, 1.0)
        rec.clear()
        assert len(rec) == 0

    def test_family_without_colon(self):
        rec = TraceRecorder()
        rec.record("provider", 0, 0.0, 1.0)
        assert rec.summary().time_per_family == {"provider": 1.0}

    def test_single_task_span(self):
        rec = TraceRecorder()
        rec.record("fwd:only", 3, 5.0, 5.25, queue_wait=0.1)
        s = rec.summary()
        assert s.tasks == 1
        assert s.span == pytest.approx(0.25)
        assert s.workers == 1
        assert s.utilization == pytest.approx(1.0)
        assert s.mean_queue_wait == pytest.approx(0.1)

    def test_zero_duration_task(self):
        rec = TraceRecorder()
        rec.record("fwd:instant", 0, 1.0, 1.0)
        s = rec.summary()
        assert s.tasks == 1 and s.span == 0.0
        assert s.utilization == 0.0  # zero span guards the division

    def test_overlapping_workers_full_utilization(self):
        rec = TraceRecorder()
        rec.record("fwd:a", 0, 0.0, 1.0)
        rec.record("fwd:b", 1, 0.0, 1.0)
        rec.record("fwd:c", 2, 0.0, 1.0)
        s = rec.summary()
        assert s.workers == 3
        assert s.utilization == pytest.approx(1.0)

    def test_out_of_order_records(self):
        """Records arriving in non-chronological order (as they do from
        racing workers) still produce the correct span and totals."""
        rec = TraceRecorder()
        rec.record("fwd:late", 0, 2.0, 3.0, queue_wait=0.2)
        rec.record("fwd:early", 1, 0.0, 1.0, queue_wait=0.1)
        rec.record("fwd:mid", 0, 1.0, 2.0)
        s = rec.summary()
        assert s.span == pytest.approx(3.0)
        assert s.busy_per_worker == {0: 2.0, 1: 1.0}
        assert s.total_queue_wait == pytest.approx(0.3)
        assert s.mean_queue_wait == pytest.approx(0.1)

    def test_negative_queue_wait_clamped(self):
        rec = TraceRecorder()
        rec.record("fwd:x", 0, 0.0, 1.0, queue_wait=-0.5)
        assert rec.records()[0].queue_wait == 0.0

    def test_failed_status_counted(self):
        rec = TraceRecorder()
        rec.record("fwd:ok", 0, 0.0, 1.0)
        rec.record("fwd:bad", 0, 1.0, 2.0, status="error")
        s = rec.summary()
        assert s.failed == 1
        assert s.tasks == 2  # failed tasks still count
        assert rec.records()[1].failed


class TestEngineIntegration:
    def test_serial_engine_records(self):
        rec = TraceRecorder()
        engine = SerialEngine(recorder=rec)
        engine.spawn(lambda: None, name="fwd:x")
        engine.spawn(lambda: None, name="bwd:x")
        engine.run_until_idle()
        assert len(rec) == 2
        families = {r.family for r in rec.records()}
        assert families == {"fwd", "bwd"}

    def test_threaded_engine_records(self):
        rec = TraceRecorder()
        done = threading.Semaphore(0)
        with TaskEngine(num_workers=2, recorder=rec) as engine:
            for i in range(10):
                engine.spawn(done.release, name=f"fwd:t{i}")
            for _ in range(10):
                assert done.acquire(timeout=5)
        assert len(rec) == 10
        workers = {r.worker for r in rec.records()}
        assert workers <= {0, 1}

    def test_network_training_trace(self, rng):
        """A traced training round contains every task family of
        Fig 3."""
        from repro.core import Network, SGD
        from repro.graph import build_layered_network

        rec = TraceRecorder()
        graph = build_layered_network("CTC", width=2, kernel=2)
        net = Network(graph, input_shape=(8, 8, 8), seed=0,
                      recorder=rec, optimizer=SGD(learning_rate=0.01))
        x = rng.standard_normal((8, 8, 8))
        targets = {n.name: np.zeros(n.shape) for n in net.output_nodes}
        net.train_step(x, targets)
        net.synchronize()
        families = set(rec.summary().time_per_family)
        assert {"provider", "fwd", "lossgrad", "bwd"} <= families
        # updates may run inline via FORCE (then they appear as part of
        # the forcing task) or as their own queued tasks
        assert rec.summary().tasks >= len(net.edges) * 2

    def test_threaded_engine_records_queue_wait(self):
        rec = TraceRecorder()
        done = threading.Semaphore(0)
        with TaskEngine(num_workers=1, recorder=rec) as engine:
            for i in range(4):
                engine.spawn(done.release, name=f"fwd:t{i}")
            for _ in range(4):
                assert done.acquire(timeout=5)
        assert all(r.queue_wait >= 0.0 for r in rec.records())
        assert rec.summary().total_queue_wait >= 0.0


class TestFailureRecording:
    def _boom(self):
        raise RuntimeError("boom")

    def test_threaded_engine_records_failed_task(self):
        rec = TraceRecorder()
        engine = TaskEngine(num_workers=1, recorder=rec).start()
        engine.spawn(self._boom, name="upd:bad")
        with pytest.raises(RuntimeError, match="boom"):
            engine.shutdown()
        records = rec.records()
        assert len(records) == 1
        assert records[0].status == "error" and records[0].failed
        assert rec.summary().failed == 1

    def test_serial_engine_records_failed_task_then_raises(self):
        rec = TraceRecorder()
        engine = SerialEngine(recorder=rec)
        engine.spawn(self._boom, name="upd:bad")
        with pytest.raises(RuntimeError, match="boom"):
            engine.run_until_idle()
        records = rec.records()
        assert len(records) == 1
        assert records[0].status == "error"

    def test_shutdown_notes_additional_errors(self):
        """With several workers failing, shutdown raises the first error
        and attaches the others as exception notes instead of dropping
        them (all stay reachable via ``engine.errors``)."""
        barrier = threading.Barrier(2, timeout=10)

        def fail(tag):
            def body():
                barrier.wait()  # both workers mid-task before either closes
                raise RuntimeError(f"boom-{tag}")
            return body

        engine = TaskEngine(num_workers=2).start()
        engine.spawn(fail("a"), name="upd:a")
        engine.spawn(fail("b"), name="upd:b")
        with pytest.raises(RuntimeError, match="boom-") as excinfo:
            engine.shutdown()
        assert len(engine.errors) == 2
        notes = getattr(excinfo.value, "__notes__", [])
        assert len(notes) == 1
        assert "additional worker error" in notes[0]
        # a second shutdown must not duplicate the notes
        with pytest.raises(RuntimeError):
            engine.shutdown()
        assert len(getattr(excinfo.value, "__notes__", [])) == 1
