"""Hierarchical tracing: context propagation, exporters, flight ring.

The cross-process half of the propagation story (spawn workers shipping
spans over the pipe) lives in ``tests/parallel/test_trace_shipping.py``;
here we cover the single-process contracts: span trees across TaskEngine
threads, the disabled fast path, ring-buffer bounds, and the Chrome /
text / trace-file exporters.
"""

import json
import threading

import pytest

from repro.observability.tracing import (
    Span,
    SpanContext,
    Tracer,
    current_context,
    get_tracer,
    merge_trace_files,
    read_trace_file,
    render_span_tree,
    set_tracer,
    spans_to_chrome_trace,
    write_trace_file,
)
from repro.scheduler import SerialEngine, Task, TaskEngine


@pytest.fixture
def tracer():
    """A fresh enabled tracer installed as the process global (so Task
    construction and the engines see it), restored afterwards."""
    fresh = Tracer(enabled=True, process="test")
    previous = set_tracer(fresh)
    yield fresh
    set_tracer(previous)


def by_name(spans, name):
    matches = [s for s in spans if s.name == name]
    assert matches, f"no span named {name!r} in {[s.name for s in spans]}"
    return matches[0]


class TestSpanBasics:
    def test_nested_spans_form_a_tree(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild"):
                    pass
        spans = tracer.spans()
        assert len(spans) == 3
        r = by_name(spans, "root")
        c = by_name(spans, "child")
        g = by_name(spans, "grandchild")
        assert r.parent_id is None
        assert c.parent_id == r.span_id
        assert g.parent_id == c.span_id
        assert {s.trace_id for s in spans} == {r.trace_id}
        assert root.trace_id == child.trace_id == r.trace_id

    def test_sibling_spans_share_parent(self, tracer):
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        spans = tracer.spans()
        assert by_name(spans, "a").parent_id == root.span_id
        assert by_name(spans, "b").parent_id == root.span_id

    def test_span_timing_is_monotone(self, tracer):
        with tracer.span("t"):
            pass
        span = tracer.spans()[0]
        assert span.end >= span.start
        assert span.duration >= 0

    def test_exception_marks_error_status(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        span = tracer.spans()[0]
        assert span.status == "error"
        assert span.attrs["error"] == "RuntimeError"

    def test_attrs_and_fail(self, tracer):
        with tracer.span("s", category="cat", fixed=1) as span:
            span.set(extra="x")
            span.fail("deadline_exceeded")
        recorded = tracer.spans()[0]
        assert recorded.category == "cat"
        assert recorded.attrs == {"fixed": 1, "extra": "x"}
        assert recorded.status == "deadline_exceeded"

    def test_record_completed_interval(self, tracer):
        ctx = tracer.make_context()
        t0 = tracer.now()
        returned = tracer.record("req", t0, t0 + 0.5, context=ctx,
                                 status="ok", model="m")
        assert returned == ctx
        span = tracer.spans()[0]
        assert span.span_id == ctx.span_id
        assert span.duration == pytest.approx(0.5)

    def test_activate_adopts_remote_parent(self, tracer):
        remote = SpanContext("t-remote", "s-remote")
        with tracer.activate(remote):
            assert tracer.current_context() == remote
            with tracer.span("local"):
                pass
        assert tracer.current_context() is None
        span = tracer.spans()[0]
        assert span.trace_id == "t-remote"
        assert span.parent_id == "s-remote"

    def test_unbalanced_exit_finishes_skipped_spans(self, tracer):
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        # Closing the outer span out of order must unwind the inner one
        # instead of corrupting the thread's stack.
        outer.__exit__(None, None, None)
        assert tracer.current_context() is None
        assert {s.name for s in tracer.spans()} == {"outer", "inner"}

    def test_ring_eviction_is_bounded(self):
        small = Tracer(enabled=True, process="test", max_spans=10)
        for i in range(25):
            with small.span(f"s{i}"):
                pass
        assert len(small) == 10
        assert small.spans()[0].name == "s15"

    def test_span_dict_round_trip(self, tracer):
        with tracer.span("s", category="c", k=1):
            pass
        span = tracer.spans()[0]
        assert Span.from_dict(json.loads(
            json.dumps(span.to_dict()))) == span


class TestDisabledFastPath:
    def test_disabled_span_is_noop(self):
        off = Tracer(enabled=False)
        with off.span("s") as span:
            assert span.context is None
            span.set(x=1)
            span.fail()
        assert len(off) == 0

    def test_disabled_record_and_context(self):
        off = Tracer(enabled=False)
        assert off.record("s", 0.0, 1.0) is None
        assert off.current_context() is None
        with off.activate(SpanContext("t", "s")):
            assert off.current_context() is None

    def test_env_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACING", raising=False)
        assert Tracer().enabled is False
        monkeypatch.setenv("REPRO_TRACING", "1")
        assert Tracer().enabled is True
        monkeypatch.setenv("REPRO_TRACING", "0")
        assert Tracer().enabled is False

    def test_module_current_context_checks_enabled(self):
        previous = set_tracer(Tracer(enabled=False))
        try:
            assert current_context() is None
        finally:
            set_tracer(previous)

    def test_task_captures_no_context_when_disabled(self):
        previous = set_tracer(Tracer(enabled=False))
        try:
            task = Task(lambda: None, name="fwd:x")
            assert task.span_context is None
        finally:
            set_tracer(previous)


class TestEnginePropagation:
    def test_serial_engine_parents_task_spans(self, tracer):
        engine = SerialEngine()
        with tracer.span("root") as root:
            engine.submit(Task(lambda: None, name="fwd:a"))
            engine.run_until_idle()
        spans = tracer.spans()
        assert by_name(spans, "fwd:a").parent_id == root.span_id
        assert by_name(spans, "fwd:a").category == "fwd"

    def test_task_spans_parent_across_engine_threads(self, tracer):
        done = threading.Event()
        with tracer.span("root") as root:
            with TaskEngine(num_workers=2) as engine:
                def child():
                    done.set()

                def parent_body():
                    # Spawned from inside fwd:parent's task span on a
                    # worker thread: must parent on it, not on root.
                    engine.spawn(child, name="fwd:child")

                engine.spawn(parent_body, name="fwd:parent")
                assert done.wait(timeout=10)
        spans = tracer.spans()
        parent = by_name(spans, "fwd:parent")
        child_span = by_name(spans, "fwd:child")
        assert parent.parent_id == root.span_id
        assert child_span.parent_id == parent.span_id
        assert child_span.trace_id == root.trace_id
        assert "worker" in parent.attrs

    def test_clone_for_retry_keeps_span_context(self, tracer):
        with tracer.span("root") as root:
            task = Task(lambda: None, name="fwd:x")
        clone = task.clone_for_retry()
        assert clone.span_context == task.span_context
        assert task.span_context.span_id == root.span_id


class TestExporters:
    def _spans(self):
        mk = Span
        return [
            mk("t1", "c:1", None, "round:0", "training", 1.0, 2.0,
               "coordinator", 1),
            mk("t1", "w:1", "c:1", "worker.round", "training", 1.1, 1.9,
               "worker-2", 7),
            mk("t1", "w:2", "w:1", "fwd:conv", "fwd", 1.2, 1.5,
               "worker-2", 7, status="error"),
        ]

    def test_chrome_trace_stable_pids_and_args(self):
        doc = spans_to_chrome_trace(self._spans())
        meta = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        assert meta == {"coordinator": 0, "worker-2": 2}
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 3
        root = next(e for e in slices if e["name"] == "round:0")
        assert root["pid"] == 0
        assert root["ts"] == 0.0
        assert root["dur"] == pytest.approx(1e6)
        assert root["args"]["trace_id"] == "t1"
        failed = next(e for e in slices if e["name"] == "fwd:conv")
        assert failed["cname"] == "terrible"

    def test_empty_chrome_trace(self):
        assert spans_to_chrome_trace([]) == {"traceEvents": [],
                                            "displayTimeUnit": "ms"}

    def test_render_span_tree_indents_and_promotes_orphans(self):
        spans = self._spans() + [
            Span("t1", "lost:1", "missing-parent", "orphan", "", 1.3,
                 1.4, "worker-9", 1),
        ]
        text = render_span_tree(spans)
        lines = text.splitlines()
        assert lines[0] == "trace t1"
        assert lines[1].startswith("  round:0")
        assert lines[2].startswith("    worker.round")
        assert lines[3].startswith("      fwd:conv")
        assert "[error]" in lines[3]
        # The orphan is printed as a root, not dropped.
        assert any(line.startswith("  orphan") for line in lines)

    def test_render_span_tree_filters_by_trace(self):
        spans = self._spans() + [
            Span("t2", "x:1", None, "other", "", 5.0, 6.0, "serve", 1)]
        assert "other" not in render_span_tree(spans, "t1")
        assert "(no spans)" == render_span_tree(spans, "t-missing")


class TestTraceFiles:
    def test_write_read_round_trip(self, tracer, tmp_path):
        with tracer.span("a"):
            pass
        path = str(tmp_path / "trace.json")
        write_trace_file(path, tracer)
        loaded = read_trace_file(path)
        assert loaded == tracer.spans()

    def test_read_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "nope", "spans": []}))
        with pytest.raises(ValueError, match="not a repro.trace/v1"):
            read_trace_file(str(path))

    def test_merge_combines_processes_on_shared_origin(self, tmp_path):
        a = Tracer(enabled=True, process="coordinator")
        b = Tracer(enabled=True, process="worker-1")
        with a.span("round:0"):
            pass
        with b.span("worker.round"):
            pass
        pa = str(tmp_path / "a.json")
        pb = str(tmp_path / "b.json")
        write_trace_file(pa, a)
        write_trace_file(pb, b)
        out = str(tmp_path / "merged.json")
        doc = merge_trace_files([pa, pb], out)
        meta = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        assert meta == {"coordinator": 0, "worker-1": 1}
        assert json.load(open(out)) == doc

    def test_drain_and_ingest_relabels_process(self, tracer):
        with tracer.span("a"):
            pass
        payload = tracer.drain()
        assert len(tracer) == 0
        receiver = Tracer(enabled=True, process="coordinator")
        assert receiver.ingest(payload, process="worker-3") == 1
        assert receiver.spans()[0].process == "worker-3"


class TestGlobalTracer:
    def test_get_set_round_trip(self):
        mine = Tracer(enabled=True, process="mine")
        previous = set_tracer(mine)
        try:
            assert get_tracer() is mine
            assert mine.flight is not None  # inherits the global ring
        finally:
            set_tracer(previous)
        assert get_tracer() is previous
