"""Flight recorder: ring bounds, dump documents, crash triggers, and
the REPRO_METRICS=0 no-op path."""

import glob
import json
import os

import numpy as np
import pytest

from repro.core import Network
from repro.graph import build_layered_network
from repro.observability.export import prometheus_text
from repro.observability.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.observability.slo import SLOTracker
from repro.observability.tracing import (
    FlightRecorder,
    Tracer,
    flight_dump,
    flight_note,
    get_flight_recorder,
    set_tracer,
)
from repro.resilience.faults import FaultPlan, clear_plan, install_plan
from repro.scheduler import Task, TaskEngine


class TestFlightRing:
    def test_ring_is_bounded(self):
        ring = FlightRecorder(capacity=5)
        for i in range(12):
            ring.note(f"n{i}")
        events = ring.events()
        assert len(events) == 5
        assert events[0]["message"] == "n7"
        assert events[-1]["message"] == "n11"

    def test_spans_enter_the_ring(self):
        ring = FlightRecorder(capacity=8)
        tracer = Tracer(enabled=True, process="test")
        tracer.flight = ring
        with tracer.span("work"):
            pass
        kinds = [e["kind"] for e in ring.events()]
        assert kinds == ["span"]
        assert ring.events()[0]["name"] == "work"

    def test_notes_carry_attrs(self):
        ring = FlightRecorder()
        ring.note("worker death", worker=3, phase="round")
        event = ring.events()[0]
        assert event["kind"] == "note"
        assert event["attrs"] == {"worker": 3, "phase": "round"}

    def test_dump_document_schema(self, tmp_path):
        ring = FlightRecorder()
        ring.note("trouble", detail="x")
        path = str(tmp_path / "flight.json")
        assert ring.dump(path, reason="unit-test") == path
        doc = json.load(open(path))
        assert doc["schema"] == "repro.flight/v1"
        assert doc["reason"] == "unit-test"
        assert doc["pid"] == os.getpid()
        assert doc["events"][0]["message"] == "trouble"
        assert isinstance(doc["metrics"], dict)
        assert ring.dumps == 1


class TestFlightDumpTrigger:
    def test_noop_without_flight_dir(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLIGHT_DIR", raising=False)
        assert flight_dump("some-reason") is None

    def test_env_dir_opt_in(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        flight_note("before the crash", key="value")
        path = flight_dump("unit/test reason!")
        assert path is not None
        assert os.path.dirname(path) == str(tmp_path)
        name = os.path.basename(path)
        assert name.startswith(f"flight-{os.getpid()}-")
        assert "/" not in name.replace("flight-", "", 1)
        doc = json.load(open(path))
        assert doc["reason"] == "unit/test reason!"
        assert any(e.get("message") == "before the crash"
                   for e in doc["events"])

    def test_explicit_directory_wins(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_FLIGHT_DIR", raising=False)
        path = flight_dump("manual", directory=str(tmp_path))
        assert path is not None and os.path.exists(path)

    def test_unwritable_target_returns_none(self, tmp_path):
        missing = str(tmp_path / "does" / "not" / "exist")
        assert flight_dump("manual", directory=missing) is None


class TestCrashTriggers:
    """Injected faults must leave a dump behind (the observability
    story for unattended runs: REPRO_FLIGHT_DIR + a crash = evidence)."""

    @pytest.fixture(autouse=True)
    def _flight_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        get_flight_recorder().clear()
        yield
        clear_plan()

    def test_fft_degradation_dumps(self, tmp_path):
        install_plan(FaultPlan.from_string("fail:fft:1"))
        graph = build_layered_network("CT", width=1, kernel=3,
                                      transfer="tanh")
        net = Network(graph, input_shape=(8, 8, 8), seed=0,
                      conv_mode="fft", loss="euclidean")
        try:
            with pytest.warns(RuntimeWarning, match="falling back"):
                net.forward(np.zeros((8, 8, 8)))
        finally:
            net.close()
        dumps = glob.glob(str(tmp_path / "flight-*-fft-degraded-*.json"))
        assert len(dumps) == 1
        doc = json.load(open(dumps[0]))
        assert doc["schema"] == "repro.flight/v1"
        assert any(e.get("message") == "FFT degradation"
                   for e in doc["events"])

    def test_engine_fatal_error_dumps(self, tmp_path):
        def boom():
            raise ValueError("fatal by design")

        with pytest.raises(ValueError, match="fatal by design"):
            with TaskEngine(num_workers=1) as engine:
                engine.submit(Task(boom, name="fwd:boom"))
        dumps = glob.glob(str(tmp_path / "flight-*-engine-failed-*.json"))
        assert len(dumps) == 1
        doc = json.load(open(dumps[0]))
        assert any(e.get("message") == "engine task failed fatally"
                   for e in doc["events"])


class TestMetricsDisabledPath:
    @pytest.fixture
    def disabled(self):
        fresh = MetricsRegistry(enabled=False)
        previous = set_registry(fresh)
        yield fresh
        set_registry(previous)

    def test_metric_operations_are_noops(self, disabled):
        disabled.counter("engine.tasks").inc(5)
        disabled.gauge("queue.depth").set(3)
        h = disabled.histogram("slo.e2e_seconds")
        h.observe(1.0)
        assert disabled.counter("engine.tasks").value == 0
        assert h.snapshot()["count"] == 0
        assert h.quantile(0.5) is None

    def test_prometheus_text_shows_untouched_families(self, disabled):
        disabled.counter("engine.tasks").inc()
        text = prometheus_text(disabled)
        assert "repro_engine_tasks_total 0" in text

    def test_slo_tracker_reports_on_disabled_registry(self, disabled):
        slo = SLOTracker(registry=disabled)
        slo.observe(0.1, 0.2, 0.3, deadline_met=True)
        report = slo.report()
        assert report["e2e"]["count"] == 0
        assert report["deadline"]["ok"] == 0
        assert report["deadline"]["attainment"] is None

    def test_tracing_still_works_without_metrics(self, disabled):
        tracer = Tracer(enabled=True, process="test")
        previous = set_tracer(tracer)
        try:
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        finally:
            set_tracer(previous)
        assert len(tracer.spans()) == 2

    def test_env_disables_registry(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "0")
        assert MetricsRegistry(
            enabled=os.environ.get("REPRO_METRICS", "1").lower()
            not in ("0", "false", "off", "no")).enabled is False

    def test_global_registry_is_enabled_by_default(self):
        assert get_registry().enabled is True
