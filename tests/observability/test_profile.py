"""Cost profiler: aggregation, schema validation, edge instrumentation."""

import json

import numpy as np
import pytest

from repro.core import Network
from repro.graph import build_layered_network
from repro.observability.profile import (
    COST_MODEL_SCHEMA,
    CostModelError,
    CostProfiler,
    conv_pass_bytes,
    conv_pass_flops,
    get_profiler,
    load_cost_model,
    render_cost_model,
    set_profiler,
    validate_cost_model,
    write_cost_model,
)
from repro.pram.costs import (
    direct_conv_task_cost,
    fft_cost,
    pointwise_product_cost,
)
from repro.tensor.conv_direct import direct_pass_cost
from repro.tensor.conv_fft import FftConvPlan


@pytest.fixture
def profiler():
    fresh = CostProfiler(enabled=True)
    previous = set_profiler(fresh)
    yield fresh
    set_profiler(previous)


class TestPassAnnotations:
    def test_direct_flops_match_table2(self):
        img, ker = (12, 12, 12), (3, 3, 3)
        assert conv_pass_flops("fwd", "direct", img, ker) == \
            direct_conv_task_cost(img, ker)
        cost = direct_pass_cost(img, ker)
        out = 10 ** 3
        assert cost["bytes"] == 8.0 * (27 * out + out)

    def test_fft_flops_charge_transform_plus_product(self):
        img, ker = (12, 12, 12), (3, 3, 3)
        expected = fft_cost(img) + pointwise_product_cost(img)
        assert conv_pass_flops("bwd", "fft", img, ker) == expected
        assert FftConvPlan(img, ker).pass_cost()["flops"] == expected
        assert conv_pass_bytes("fwd", "fft", img, ker) == 8.0 * 4 * 12**3

    def test_unknown_op_and_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown conv pass"):
            conv_pass_flops("sideways", "direct", (8,) * 3, (3,) * 3)
        with pytest.raises(ValueError, match="unknown conv backend"):
            conv_pass_flops("fwd", "quantum", (8,) * 3, (3,) * 3)


class TestCostProfiler:
    def test_disabled_record_is_noop(self):
        off = CostProfiler(enabled=False)
        off.record("e", "direct", "fwd", 0.1)
        off.record_conv("e", "direct", "fwd", 0.1, (8,) * 3, (3,) * 3)
        assert len(off) == 0

    def test_env_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert CostProfiler().enabled is False
        monkeypatch.setenv("REPRO_PROFILE", "yes")
        assert CostProfiler().enabled is True

    def test_samples_aggregate_per_triple(self, profiler):
        profiler.record("e1", "fft", "fwd", 0.5, flops=100, bytes_moved=8)
        profiler.record("e1", "fft", "fwd", 1.5, flops=100, bytes_moved=8)
        profiler.record("e1", "fft", "bwd", 1.0, flops=50)
        entries = profiler.entries()
        assert len(entries) == 2
        fwd = next(e for e in entries if e["op"] == "fwd")
        assert fwd["count"] == 2
        assert fwd["seconds"] == pytest.approx(2.0)
        assert fwd["mean_seconds"] == pytest.approx(1.0)
        assert fwd["flops"] == 200
        assert fwd["flops_per_second"] == pytest.approx(100.0)

    def test_record_conv_derives_flops_from_shapes(self, profiler):
        profiler.record_conv("edge", "direct", "upd", 0.25,
                             (10, 10, 10), (3, 3, 3))
        entry = profiler.entries()[0]
        assert entry["flops"] == direct_conv_task_cost((10,) * 3, (3,) * 3)
        assert entry["image_shape"] == [10, 10, 10]
        assert entry["kernel_shape"] == [3, 3, 3]

    def test_network_passes_populate_the_profiler(self, profiler):
        graph = build_layered_network("CT", width=2, kernel=3,
                                      transfer="tanh", output_nodes=1)
        net = Network(graph, input_shape=(8, 8, 8), seed=3,
                      conv_mode="direct", loss="euclidean")
        try:
            rng = np.random.default_rng(0)
            x = rng.standard_normal((8, 8, 8))
            out_name = net.output_nodes[0].name
            target = rng.standard_normal(net.output_nodes[0].shape)
            net.train_step(x, {out_name: target})
        finally:
            net.close()
        ops = {(e["backend"], e["op"]) for e in profiler.entries()}
        assert ("direct", "fwd") in ops
        assert ("direct", "bwd") in ops
        assert ("direct", "upd") in ops
        assert all(e["edge"].startswith("conv_")
                   for e in profiler.entries())


class TestCostModelDocument:
    def test_write_load_round_trip(self, profiler, tmp_path):
        profiler.record_conv("e", "fft", "fwd", 0.1, (8,) * 3, (3,) * 3)
        path = str(tmp_path / "cost_model.json")
        write_cost_model(path, profiler)
        doc = load_cost_model(path)
        assert doc["schema"] == COST_MODEL_SCHEMA
        assert len(doc["entries"]) == 1

    def test_validate_rejects_bad_documents(self, profiler):
        good = profiler.cost_model()
        assert validate_cost_model(good) is good
        for mutate, pattern in [
            (lambda d: d.update(schema="v0"), "schema"),
            (lambda d: d.update(created="today"), "created"),
            (lambda d: d.update(entries={}), "entries"),
        ]:
            doc = dict(profiler.cost_model())
            mutate(doc)
            with pytest.raises(CostModelError, match=pattern):
                validate_cost_model(doc)

    def test_validate_rejects_bad_entries(self, profiler):
        profiler.record_conv("e", "fft", "fwd", 0.1, (8,) * 3, (3,) * 3)
        doc = profiler.cost_model()
        doc["entries"][0]["op"] = "diagonal"
        with pytest.raises(CostModelError, match="fwd|bwd|upd"):
            validate_cost_model(doc)
        doc["entries"][0]["op"] = "fwd"
        doc["entries"][0]["seconds"] = -1
        with pytest.raises(CostModelError, match="seconds"):
            validate_cost_model(doc)
        doc["entries"][0]["seconds"] = 0.1
        doc["entries"][0]["image_shape"] = [0, 8, 8]
        with pytest.raises(CostModelError, match="image_shape"):
            validate_cost_model(doc)

    def test_document_is_json_serialisable(self, profiler):
        profiler.record_conv("e", "direct", "bwd", 0.1, (8,) * 3,
                             (3,) * 3)
        json.dumps(profiler.cost_model())

    def test_render_table(self, profiler):
        profiler.record_conv("edge_a", "fft", "fwd", 0.1, (8,) * 3,
                             (3,) * 3)
        text = render_cost_model(profiler.cost_model())
        assert "edge_a" in text
        assert "gflop/s" in text


class TestGlobalProfiler:
    def test_get_set_round_trip(self):
        mine = CostProfiler(enabled=True)
        previous = set_profiler(mine)
        try:
            assert get_profiler() is mine
        finally:
            set_profiler(previous)
        assert get_profiler() is previous
