"""SLO tracker, histogram quantiles and the Prometheus exposition."""

import pytest

from repro.observability.export import prometheus_text
from repro.observability.metrics import MetricsRegistry
from repro.observability.slo import SLOTracker, render_slo_report


class TestHistogramQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        h = MetricsRegistry().histogram("h")
        assert h.quantile(0.5) is None
        snap = h.snapshot()
        assert snap["p50"] is None
        assert snap["p95"] is None
        assert snap["p99"] is None

    def test_single_value_collapses_all_quantiles(self):
        h = MetricsRegistry().histogram("h")
        h.observe(0.25)
        for q in (0.5, 0.95, 0.99):
            assert h.quantile(q) == pytest.approx(0.25)

    def test_quantiles_clamped_to_observed_range(self):
        h = MetricsRegistry().histogram("h", buckets=[1.0, 10.0, 100.0])
        for v in (2.0, 3.0, 4.0):
            h.observe(v)
        # All mass is in the (1, 10] bucket; interpolation may not
        # exceed the observed extremes.
        assert h.quantile(0.99) <= 4.0
        assert h.quantile(0.01) >= 2.0

    def test_interpolation_is_monotone_in_q(self):
        h = MetricsRegistry().histogram("h")
        for i in range(100):
            h.observe(0.001 * (i + 1))
        values = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert values == sorted(values)
        snap = h.snapshot()
        assert snap["p50"] == pytest.approx(h.quantile(0.5))

    def test_bad_q_rejected(self):
        h = MetricsRegistry().histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestSLOTracker:
    def _tracker(self, **kwargs):
        return SLOTracker(registry=MetricsRegistry(), **kwargs)

    def test_components_feed_their_histograms(self):
        slo = self._tracker()
        slo.observe(0.01, 0.2, 0.21, deadline_met=True)
        slo.observe(0.02, 0.3, 0.32, deadline_met=True)
        report = slo.report()
        assert report["admission_wait"]["count"] == 2
        assert report["service"]["count"] == 2
        assert report["e2e"]["mean"] == pytest.approx(0.265)
        assert report["deadline"]["ok"] == 2
        assert report["deadline"]["violated"] == 0
        assert report["deadline"]["attainment"] == 1.0

    def test_queue_expired_request_counts_wait_only(self):
        slo = self._tracker()
        slo.observe(1.5, None, None, deadline_met=False)
        report = slo.report()
        assert report["admission_wait"]["count"] == 1
        assert report["service"]["count"] == 0
        assert report["e2e"]["count"] == 0
        assert report["deadline"]["violated"] == 1
        assert report["deadline"]["attainment"] == 0.0

    def test_objective_classifies_undeadlined_requests(self):
        slo = self._tracker(objective_seconds=0.5)
        slo.observe(0.0, 0.1, 0.1)   # under the objective
        slo.observe(0.0, 0.9, 0.9)   # over it
        deadline = slo.report()["deadline"]
        assert deadline["ok"] == 1
        assert deadline["violated"] == 1
        assert deadline["objective_seconds"] == 0.5

    def test_no_objective_counts_undeadlined_as_ok(self):
        slo = self._tracker()
        slo.observe(0.0, 9.0, 9.0)
        assert slo.report()["deadline"]["ok"] == 1

    def test_empty_report_renders(self):
        text = render_slo_report(self._tracker().report())
        assert "admission_wait" in text
        assert "p99" in text

    def test_render_formats_milliseconds_and_attainment(self):
        slo = self._tracker()
        slo.observe(0.001, 0.002, 0.003, deadline_met=True)
        slo.observe(0.001, 0.002, 0.003, deadline_met=False)
        text = render_slo_report(slo.report())
        assert "50.0%" in text


class TestPrometheusExposition:
    def test_counter_gauge_histogram_families(self):
        reg = MetricsRegistry()
        reg.counter("engine.tasks").inc(3)
        reg.gauge("queue.depth").set(7)
        h = reg.histogram("slo.e2e_seconds", buckets=[0.1, 1.0])
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = prometheus_text(reg)
        lines = text.splitlines()
        assert "# TYPE repro_engine_tasks_total counter" in lines
        assert "repro_engine_tasks_total 3" in lines
        assert "# TYPE repro_queue_depth gauge" in lines
        assert "repro_queue_depth 7" in lines
        assert "# TYPE repro_slo_e2e_seconds histogram" in lines
        assert 'repro_slo_e2e_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_slo_e2e_seconds_bucket{le="1"} 2' in lines
        assert 'repro_slo_e2e_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_slo_e2e_seconds_count 3" in lines

    def test_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=[1.0, 2.0, 3.0])
        for v in (0.5, 1.5, 2.5):
            h.observe(v)
        text = prometheus_text(reg)
        counts = []
        for line in text.splitlines():
            if line.startswith("repro_h_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_labels_survive_and_names_sanitise(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits", model="a-b", tier="l1").inc()
        text = prometheus_text(reg)
        assert 'repro_cache_hits_total{model="a-b",tier="l1"} 1' in text

    def test_one_type_header_per_family(self):
        reg = MetricsRegistry()
        reg.counter("cache.hits", model="a").inc()
        reg.counter("cache.hits", model="b").inc(2)
        text = prometheus_text(reg)
        headers = [line for line in text.splitlines()
                   if line.startswith("# TYPE repro_cache_hits_total")]
        assert len(headers) == 1

    def test_empty_registry_gives_empty_exposition(self):
        assert prometheus_text(MetricsRegistry()) == ""
