"""Metrics registry tests: primitives, labeled families, no-op mode,
and exact counting under thread contention."""

import threading

import pytest

from repro.observability import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.observability.metrics import DEFAULT_BUCKETS


class TestCounter:
    def test_inc_and_value(self):
        c = MetricsRegistry().counter("c")
        assert c.value == 0
        c.inc()
        c.inc(5)
        c.inc(0.5)
        assert c.value == pytest.approx(6.5)

    def test_negative_inc_rejected(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_reset(self):
        c = MetricsRegistry().counter("c")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_snapshot_is_value(self):
        g = MetricsRegistry().gauge("g")
        g.set(3.5)
        assert g.snapshot() == 3.5


class TestHistogram:
    def test_bucketing(self):
        h = MetricsRegistry().histogram("h", buckets=[1.0, 10.0])
        for v in (0.5, 1.0, 2.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        # le boundaries are inclusive upper bounds; 1.0 lands in le=1.
        assert snap["buckets"] == {"le=1": 2, "le=10": 1, "le=+inf": 1}
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(103.5)
        assert snap["mean"] == pytest.approx(103.5 / 4)
        assert snap["min"] == 0.5
        assert snap["max"] == 100.0

    def test_empty_snapshot(self):
        snap = MetricsRegistry().histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["mean"] == 0.0
        assert snap["min"] is None and snap["max"] is None

    def test_default_buckets_sorted(self):
        h = MetricsRegistry().histogram("h")
        assert h.buckets == tuple(sorted(DEFAULT_BUCKETS))

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=[])

    def test_conflicting_buckets_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=[1.0, 2.0])
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=[5.0])

    def test_reset(self):
        h = MetricsRegistry().histogram("h", buckets=[1.0])
        h.observe(0.5)
        h.reset()
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["sum"] == 0.0


class TestRegistry:
    def test_same_name_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", a="1") is reg.counter("x", a="1")
        assert reg.counter("x") is not reg.counter("x", a="1")

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        assert reg.counter("x", a="1", b="2") is reg.counter("x", b="2", a="1")

    def test_rendered_label_names(self):
        reg = MetricsRegistry()
        reg.counter("engine.tasks", family="fwd")
        reg.counter("plain")
        names = set(reg.metrics())
        assert names == {"engine.tasks{family=fwd}", "plain"}

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_snapshot_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(1.5)
        reg.histogram("c", buckets=[1.0]).observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        assert snap["a"] == 1.5
        assert snap["b"] == 2
        assert isinstance(snap["c"], dict)

    def test_reset_zeroes_but_keeps_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc(7)
        reg.reset()
        assert reg.counter("x") is c
        assert c.value == 0

    def test_len(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.counter("a")  # same family, no new metric
        reg.gauge("b")
        assert len(reg) == 2


class TestNoOpMode:
    def test_disabled_registry_ignores_mutations(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c")
        g = reg.gauge("g")
        h = reg.histogram("h", buckets=[1.0])
        c.inc(5)
        g.set(3)
        h.observe(0.5)
        assert c.value == 0
        assert g.value == 0
        assert h.count == 0

    def test_reenable_resumes_counting(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        reg.disable()
        c.inc(10)
        reg.enable()
        c.inc(1)
        assert c.value == 1

    def test_env_gate_names(self):
        # the module-level gate accepts several falsey spellings
        import repro.observability.metrics as m

        for spelling in ("0", "false", "off", "no", "False", "OFF"):
            assert spelling.lower() in ("0", "false", "off", "no")
        assert isinstance(m.get_registry(), MetricsRegistry)


class TestGlobalRegistry:
    def test_swap_and_restore(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestConcurrency:
    N_THREADS = 8
    N_INCS = 2000

    def _hammer(self, target):
        threads = [threading.Thread(target=target)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_increments_sum_exactly(self):
        c = MetricsRegistry().counter("c")

        def work():
            for _ in range(self.N_INCS):
                c.inc()

        self._hammer(work)
        assert c.value == self.N_THREADS * self.N_INCS

    def test_histogram_counts_exactly(self):
        h = MetricsRegistry().histogram("h", buckets=[0.5])

        def work():
            for i in range(self.N_INCS):
                h.observe(i % 2)  # alternates buckets

        self._hammer(work)
        total = self.N_THREADS * self.N_INCS
        snap = h.snapshot()
        assert snap["count"] == total
        assert snap["buckets"]["le=0.5"] == total // 2
        assert snap["buckets"]["le=+inf"] == total // 2

    def test_concurrent_family_creation_yields_one_metric(self):
        reg = MetricsRegistry()
        seen = []

        def work():
            seen.append(reg.counter("shared", family="fwd"))

        self._hammer(work)
        assert len({id(m) for m in seen}) == 1


def test_counter_gauge_histogram_exported():
    # the package re-exports the primitives for direct construction
    assert Counter is not None and Gauge is not None and Histogram is not None
