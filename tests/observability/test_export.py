"""Exporter tests: Chrome-trace JSON structure and metrics snapshots."""

import json

import pytest

from repro.observability import (
    MetricsRegistry,
    chrome_trace,
    chrome_trace_events,
    metrics_snapshot,
    render_metrics,
    write_chrome_trace,
    write_metrics_json,
)
from repro.scheduler import TraceRecorder


def _recorded_span():
    rec = TraceRecorder()
    rec.record("fwd:a", 0, 10.0, 10.5, queue_wait=0.001)
    rec.record("bwd:a", 1, 10.5, 11.0)
    rec.record("upd:a", 0, 11.0, 11.2, status="error")
    return rec


class TestChromeTrace:
    def test_empty_records(self):
        assert chrome_trace_events([]) == []
        doc = chrome_trace(TraceRecorder())
        assert doc == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_slices_and_metadata(self):
        events = chrome_trace_events(_recorded_span().records())
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 3
        # process name + one thread name per worker
        names = {e["name"] for e in meta}
        assert names == {"process_name", "thread_name"}
        assert {e["args"]["name"] for e in meta} == {
            "repro task engine", "worker-0", "worker-1"}

    def test_timestamps_relative_microseconds(self):
        slices = [e for e in chrome_trace_events(_recorded_span().records())
                  if e["ph"] == "X"]
        by_name = {e["name"]: e for e in slices}
        assert by_name["fwd:a"]["ts"] == pytest.approx(0.0)
        assert by_name["fwd:a"]["dur"] == pytest.approx(0.5e6)
        assert by_name["bwd:a"]["ts"] == pytest.approx(0.5e6)
        assert by_name["fwd:a"]["args"]["queue_wait_us"] == pytest.approx(1e3)

    def test_failed_task_marked(self):
        slices = [e for e in chrome_trace_events(_recorded_span().records())
                  if e["ph"] == "X"]
        failed = [e for e in slices if e["args"]["status"] == "error"]
        assert len(failed) == 1
        assert failed[0]["cname"] == "terrible"
        ok = [e for e in slices if e["args"]["status"] == "ok"]
        assert all("cname" not in e for e in ok)

    def test_family_becomes_category(self):
        slices = [e for e in chrome_trace_events(_recorded_span().records())
                  if e["ph"] == "X"]
        assert {e["cat"] for e in slices} == {"fwd", "bwd", "upd"}

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "trace.json"
        out = write_chrome_trace(_recorded_span(), str(path))
        assert out == str(path)
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["displayTimeUnit"] == "ms"
        assert len([e for e in doc["traceEvents"] if e["ph"] == "X"]) == 3

    def test_accepts_record_list(self):
        rec = _recorded_span()
        assert chrome_trace(rec.records()) == chrome_trace(rec)


class TestMetricsExport:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("queue.pop").inc(7)
        reg.gauge("queue.depth").set(2)
        reg.histogram("queue.wait_seconds", buckets=[1.0]).observe(0.25)
        return reg

    def test_snapshot_of_explicit_registry(self):
        snap = metrics_snapshot(self._registry())
        assert snap["queue.pop"] == 7
        assert snap["queue.depth"] == 2
        assert snap["queue.wait_seconds"]["count"] == 1

    def test_render_contains_all_metrics(self):
        text = render_metrics(registry=self._registry())
        for fragment in ("queue.pop", "queue.depth", "queue.wait_seconds",
                         "count=1"):
            assert fragment in text

    def test_render_histogram_without_observations(self):
        reg = MetricsRegistry()
        reg.histogram("empty", buckets=[1.0])
        text = render_metrics(registry=reg)
        assert "count=0" in text and "max=-" in text

    def test_write_metrics_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(str(path), registry=self._registry())
        with open(path) as fh:
            snap = json.load(fh)
        assert snap["queue.pop"] == 7
        assert snap["queue.wait_seconds"]["buckets"]["le=+inf"] == 0


class TestEndToEnd:
    def test_training_round_fills_registry_and_trace(self, rng, tmp_path):
        """One traced, pooled training round populates every acceptance
        metric family and yields a loadable Chrome trace."""
        import numpy as np

        from repro.core import Network, SGD, Trainer
        from repro.data import PatchProvider, make_cell_volume
        from repro.observability import set_registry

        from repro.memory.pools import reset_global_allocators

        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        reset_global_allocators()  # rebuild pools against the fresh registry
        try:
            rec = TraceRecorder()
            from repro.graph import build_layered_network

            graph = build_layered_network("CTC", width=2, kernel=2,
                                          output_nodes=1)
            net = Network(graph, input_shape=(12, 12, 12), seed=0,
                          conv_mode="fft", recorder=rec,
                          optimizer=SGD(learning_rate=0.01))
            volume = make_cell_volume((24, 24, 24), seed=1)
            out_shape = net.output_nodes[0].shape
            provider = PatchProvider(volume, (12, 12, 12), out_shape,
                                     seed=2, pooled=True)
            Trainer(net, provider).run(rounds=2)
            net.synchronize()
            snap = fresh.snapshot()
            assert snap["queue.pop"] > 0
            assert snap["fft_cache.hit"] + snap["fft_cache.miss"] > 0
            assert any(name.startswith("pool.alloc") and value > 0
                       for name, value in snap.items()
                       if not isinstance(value, dict))
            assert snap["train.rounds"] == 2
            assert snap["train.seconds_per_update"]["count"] == 2
            path = write_chrome_trace(rec, str(tmp_path / "t.json"))
            with open(path) as fh:
                doc = json.load(fh)
            assert any(e["ph"] == "X" for e in doc["traceEvents"])
            assert np.isfinite(snap["train.loss"])
        finally:
            set_registry(previous)
            reset_global_allocators()
