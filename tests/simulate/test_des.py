"""Discrete-event simulator tests."""

import pytest

from repro.graph import TaskGraph, build_layered_network, build_task_graph
from repro.simulate import MachineSpec, get_machine, simulate_schedule


def chain_graph(costs):
    tg = TaskGraph()
    prev = None
    for i, c in enumerate(costs):
        tid = tg.add_task(f"t{i}", "forward", c, priority=0)
        if prev is not None:
            tg.add_dependency(prev, tid)
        prev = tid
    return tg


def fan_graph(n, cost):
    tg = TaskGraph()
    for i in range(n):
        tg.add_task(f"t{i}", "forward", cost, priority=0)
    return tg


def zero_overhead(cores=4, threads=4):
    return MachineSpec(name="ideal", cores=cores, threads=threads, ghz=1.0,
                       yield_tier1=0.0, sync_overhead=0.0)


class TestExactSmallCases:
    def test_chain_is_serial(self):
        tg = chain_graph([10, 20, 30])
        r = simulate_schedule(tg, zero_overhead(), 4)
        assert r.makespan == pytest.approx(60.0)
        assert r.speedup == pytest.approx(1.0)

    def test_independent_tasks_perfect_speedup(self):
        tg = fan_graph(8, 10.0)
        r = simulate_schedule(tg, zero_overhead(4, 4), 4)
        assert r.makespan == pytest.approx(20.0)
        assert r.speedup == pytest.approx(4.0)

    def test_quantization_effect(self):
        """9 equal tasks on 4 workers need 3 waves."""
        tg = fan_graph(9, 10.0)
        r = simulate_schedule(tg, zero_overhead(4, 4), 4)
        assert r.makespan == pytest.approx(30.0)

    def test_single_thread_matches_total(self):
        tg = fan_graph(5, 7.0)
        r = simulate_schedule(tg, zero_overhead(), 1)
        assert r.makespan == pytest.approx(35.0)

    def test_priority_policy_prefers_urgent(self):
        """Low-priority long task + high-priority chain: the priority
        policy starts the chain immediately on 1 worker."""
        tg = TaskGraph()
        a = tg.add_task("chain0", "forward", 10, priority=0)
        b = tg.add_task("chain1", "forward", 10, priority=0)
        tg.add_dependency(a, b)
        tg.add_task("bulk", "update", 10, priority=100)
        r = simulate_schedule(tg, zero_overhead(), 1, policy="priority")
        assert r.makespan == pytest.approx(30.0)

    def test_sync_overhead_charged_per_task(self):
        machine = MachineSpec(name="o", cores=1, threads=1, ghz=1.0,
                              sync_overhead=5.0)
        tg = fan_graph(4, 10.0)
        r = simulate_schedule(tg, machine, 1)
        assert r.makespan == pytest.approx(60.0)   # (10+5)*4
        assert r.speedup == pytest.approx(40.0 / 60.0)

    def test_empty_graph(self):
        r = simulate_schedule(TaskGraph(), zero_overhead(), 2)
        assert r.makespan == 0.0

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            simulate_schedule(fan_graph(2, 1.0), zero_overhead(), 0)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            simulate_schedule(fan_graph(2, 1.0), zero_overhead(), 1,
                              policy="magic")


class TestInvariants:
    @pytest.fixture(scope="class")
    def paper_tg(self):
        g = build_layered_network("CTMCT", width=4, kernel=3, window=2)
        g.propagate_shapes(16)
        return build_task_graph(g, conv_mode="direct")

    def test_makespan_at_least_critical_path(self, paper_tg):
        m = get_machine("xeon-18")
        r = simulate_schedule(paper_tg, m, 36)
        # critical path in time units at full per-thread speed
        lower = paper_tg.critical_path_cost() / m.thread_speed(36)
        assert r.makespan >= lower * 0.99

    def test_makespan_at_most_serial(self, paper_tg):
        m = get_machine("xeon-18")
        r = simulate_schedule(paper_tg, m, 18)
        serial = simulate_schedule(paper_tg, m, 1)
        assert r.makespan <= serial.makespan

    def test_speedup_monotone_in_threads_up_to_cores(self, paper_tg):
        m = get_machine("xeon-18")
        speedups = [simulate_schedule(paper_tg, m, w).speedup
                    for w in (1, 2, 4, 9, 18)]
        assert speedups == sorted(speedups)

    def test_utilization_bounded(self, paper_tg):
        r = simulate_schedule(paper_tg, get_machine("xeon-8"), 8)
        assert 0 < r.utilization <= 1.0

    @pytest.mark.parametrize("policy", ["priority", "fifo", "lifo",
                                        "random"])
    def test_all_policies_complete(self, paper_tg, policy):
        r = simulate_schedule(paper_tg, get_machine("xeon-8"), 8,
                              policy=policy)
        assert r.tasks == len(paper_tg)
        assert r.makespan > 0

    def test_deterministic(self, paper_tg):
        m = get_machine("xeon-8")
        a = simulate_schedule(paper_tg, m, 8)
        b = simulate_schedule(paper_tg, m, 8)
        assert a.makespan == b.makespan
