"""Machine model tests (Table V)."""

import pytest

from repro.simulate import MACHINES, MachineSpec, get_machine


class TestCatalog:
    def test_table_v_machines_present(self):
        assert set(MACHINES) == {"xeon-8", "xeon-18", "xeon-40", "xeon-phi"}

    def test_core_counts_match_table_v(self):
        assert MACHINES["xeon-8"].cores == 8
        assert MACHINES["xeon-18"].cores == 18
        assert MACHINES["xeon-40"].cores == 40
        assert MACHINES["xeon-phi"].cores == 60

    def test_thread_counts_match_table_v(self):
        assert MACHINES["xeon-8"].threads == 16
        assert MACHINES["xeon-18"].threads == 36
        assert MACHINES["xeon-40"].threads == 80
        assert MACHINES["xeon-phi"].threads == 240

    def test_get_machine(self):
        assert get_machine("xeon-18").cores == 18

    def test_get_unknown_raises(self):
        with pytest.raises(ValueError):
            get_machine("epyc")


class TestThroughputModel:
    def test_linear_up_to_cores(self):
        m = get_machine("xeon-8")
        assert m.throughput(4) == 4.0
        assert m.throughput(8) == 8.0

    def test_sublinear_through_hyperthreads(self):
        m = get_machine("xeon-8")
        t8, t12, t16 = m.throughput(8), m.throughput(12), m.throughput(16)
        assert t8 < t12 < t16
        assert (t12 - t8) < 4.0  # marginal yield < 1 per thread

    def test_saturates_beyond_hardware_threads(self):
        m = get_machine("xeon-8")
        assert m.throughput(16) == m.throughput(100)

    def test_phi_three_regimes(self):
        """Linear to 60, slower to 120, slowest to 240 (Section VIII)."""
        m = get_machine("xeon-phi")
        slope1 = m.throughput(60) - m.throughput(59)
        slope2 = m.throughput(120) - m.throughput(119)
        slope3 = m.throughput(240) - m.throughput(239)
        assert slope1 > slope2 > slope3 > 0

    def test_max_speedup_core_count_or_a_bit_larger(self):
        """'The value of the maximal speedup is equal to the number of
        cores or a bit larger.'"""
        for key, m in MACHINES.items():
            assert m.cores <= m.max_speedup() <= 2.0 * m.cores

    def test_phi_max_speedup_over_90(self):
        """The abstract's 'over 90x speedup on Knights Corner'."""
        assert get_machine("xeon-phi").max_speedup() > 90

    def test_thread_speed_decreases_with_oversubscription(self):
        m = get_machine("xeon-18")
        assert m.thread_speed(18) > m.thread_speed(36)

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            get_machine("xeon-8").throughput(0)


class TestValidation:
    def test_invalid_machine_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec(name="bad", cores=8, threads=4, ghz=1.0)
