"""Schedule-timeline tests: the DES's placements must be a valid
schedule."""

import pytest

from repro.graph import build_layered_network, build_task_graph
from repro.simulate import get_machine, paper_task_graph, simulate_schedule


@pytest.fixture(scope="module")
def run():
    tg = paper_task_graph(3, 5)
    machine = get_machine("xeon-8")
    result = simulate_schedule(tg, machine, 8, record_timeline=True)
    return tg, result


class TestTimelineValidity:
    def test_every_task_placed_exactly_once(self, run):
        tg, result = run
        placed = [s.task_id for s in result.timeline]
        assert sorted(placed) == list(range(len(tg)))

    def test_no_worker_overlap(self, run):
        _, result = run
        by_worker = {}
        for s in result.timeline:
            by_worker.setdefault(s.worker, []).append(s)
        for tasks in by_worker.values():
            tasks.sort(key=lambda s: s.start)
            for a, b in zip(tasks, tasks[1:]):
                assert a.end <= b.start + 1e-9

    def test_dependencies_respected(self, run):
        tg, result = run
        finish = {s.task_id: s.end for s in result.timeline}
        start = {s.task_id: s.start for s in result.timeline}
        for tid, succs in enumerate(tg.successors):
            for succ in succs:
                assert finish[tid] <= start[succ] + 1e-9

    def test_makespan_is_last_finish(self, run):
        _, result = run
        assert result.makespan == pytest.approx(
            max(s.end for s in result.timeline))

    def test_workers_within_bounds(self, run):
        _, result = run
        assert all(0 <= s.worker < 8 for s in result.timeline)

    def test_busy_time_matches_durations(self, run):
        _, result = run
        total = sum(s.end - s.start for s in result.timeline)
        assert total == pytest.approx(result.busy_time)


class TestGantt:
    def test_renders_lanes(self, run):
        _, result = run
        text = result.gantt(width=40, max_workers=3)
        lines = text.splitlines()
        assert len(lines) == 4  # 3 lanes + the elision note
        assert all("#" in line for line in lines[:3])
        assert lines[-1] == "... (5 more workers elided)"

    def test_no_elision_note_when_all_lanes_fit(self, run):
        _, result = run
        text = result.gantt(width=40, max_workers=8)
        lines = text.splitlines()
        assert len(lines) == 8
        assert "elided" not in text

    def test_single_worker_elision_is_singular(self, run):
        _, result = run
        text = result.gantt(width=40, max_workers=7)
        assert text.splitlines()[-1] == "... (1 more worker elided)"

    def test_no_timeline_message(self):
        tg = paper_task_graph(3, 5)
        result = simulate_schedule(tg, get_machine("xeon-8"), 8)
        assert "no timeline" in result.gantt()

    def test_zero_tasks_distinct_from_unrecorded(self):
        from repro.graph.taskgraph import TaskGraph

        empty = TaskGraph()
        recorded = simulate_schedule(empty, get_machine("xeon-8"), 8,
                                     record_timeline=True)
        assert recorded.timeline == []
        assert recorded.gantt() == "(no tasks)"
        unrecorded = simulate_schedule(empty, get_machine("xeon-8"), 8)
        assert unrecorded.timeline is None
        assert "no timeline" in unrecorded.gantt()

    def test_single_worker_renders_one_lane(self):
        tg = paper_task_graph(3, 4)
        result = simulate_schedule(tg, get_machine("xeon-8"), 1,
                                   record_timeline=True)
        lines = result.gantt(width=40).splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("w0  |")


class TestTimelineOffByDefault:
    def test_not_recorded_unless_requested(self):
        tg = paper_task_graph(3, 5)
        result = simulate_schedule(tg, get_machine("xeon-8"), 8)
        assert result.timeline is None

    def test_same_makespan_with_and_without(self):
        g = build_layered_network("CTMCT", width=3, kernel=3, window=2)
        g.propagate_shapes(16)
        tg = build_task_graph(g, conv_mode="direct")
        m = get_machine("xeon-18")
        a = simulate_schedule(tg, m, 18)
        b = simulate_schedule(tg, m, 18, record_timeline=True)
        assert a.makespan == b.makespan
