"""Temporal-locality metric tests (Section VI-A claim)."""

import pytest

from repro.graph import build_task_graph
from repro.simulate import (
    accumulation_target,
    get_machine,
    locality_report,
    simulate_schedule,
)
from repro.simulate.speedup import paper_graph_3d


@pytest.fixture(scope="module")
def setup():
    graph = paper_graph_3d(8)
    tg = build_task_graph(graph, conv_mode="direct")
    machine = get_machine("xeon-18")
    return graph, tg, machine


class TestAccumulationTarget:
    def test_forward_task_targets_head_sum(self, setup):
        graph, _, _ = setup
        edge = next(e for e in graph.edges.values() if e.kind == "conv")
        assert accumulation_target(f"fwd:{edge.name}", graph) \
            == f"fwd-sum:{edge.dst}"

    def test_backward_task_targets_tail_sum(self, setup):
        graph, _, _ = setup
        edge = next(e for e in graph.edges.values() if e.kind == "conv")
        assert accumulation_target(f"bwd:{edge.name}", graph) \
            == f"bwd-sum:{edge.src}"

    def test_non_accumulating_tasks_none(self, setup):
        graph, _, _ = setup
        assert accumulation_target("provider", graph) is None
        assert accumulation_target("upd:whatever", graph) is None
        assert accumulation_target("fft_img:L0_0", graph) is None


class TestReport:
    def test_requires_timeline(self, setup):
        graph, tg, machine = setup
        result = simulate_schedule(tg, machine, 18)
        with pytest.raises(ValueError):
            locality_report(result, graph)

    def test_counts(self, setup):
        graph, tg, machine = setup
        result = simulate_schedule(tg, machine, 18, record_timeline=True)
        report = locality_report(result, graph)
        expected = sum(1 for n in tg.names
                       if accumulation_target(n, graph) is not None)
        assert report.accumulating_tasks == expected
        assert 0 <= report.switches < report.accumulating_tasks
        assert report.mean_working_set >= 1.0

    def test_priority_policy_beats_alternatives(self, setup):
        """The paper's §VI-A design claim, quantified: the priority
        schedule touches fewer distinct sums per span and switches sums
        less often than FIFO/LIFO/random."""
        graph, tg, machine = setup
        rates = {}
        working = {}
        for policy in ("priority", "fifo", "lifo", "random"):
            result = simulate_schedule(tg, machine, machine.threads,
                                       policy=policy,
                                       record_timeline=True)
            report = locality_report(result, graph)
            rates[policy] = report.switch_rate
            working[policy] = report.mean_working_set
        for other in ("fifo", "lifo", "random"):
            assert rates["priority"] < rates[other]
            assert working["priority"] < working[other]

    def test_single_thread_priority_is_highly_local(self, setup):
        """Serially, the priority queue drains one sum at a time."""
        graph, tg, machine = setup
        result = simulate_schedule(tg, machine, 1, record_timeline=True)
        report = locality_report(result, graph)
        # Far fewer switches than tasks: contributions grouped per sum.
        assert report.switch_rate < 0.5
