"""Additional sweep-driver and reporting coverage."""

import pytest

from repro import reporting
from repro.simulate import (
    SpeedupSweep,
    default_thread_counts,
    get_machine,
    speedup_vs_threads,
    paper_task_graph,
)


class TestSpeedupSweep:
    def test_rows_sorted_by_width(self):
        sweep = SpeedupSweep.run("xeon-8", 3, widths=[10, 5],
                                 thread_counts=[1, 8])
        widths = [w for w, _, _ in sweep.rows()]
        assert widths == sorted(widths)

    def test_custom_policy(self):
        sweep = SpeedupSweep.run("xeon-8", 3, widths=[5],
                                 thread_counts=[8], policy="fifo")
        assert sweep.rows()[0][2] > 1.0

    def test_default_thread_counts_used(self):
        sweep = SpeedupSweep.run("xeon-8", 3, widths=[5])
        threads = sorted({t for _, t, _ in sweep.rows()})
        assert threads == default_thread_counts(get_machine("xeon-8"))


class TestSpeedupVsThreads:
    def test_returns_pairs_in_input_order(self):
        tg = paper_task_graph(3, 5)
        machine = get_machine("xeon-8")
        curve = speedup_vs_threads(tg, machine, [8, 1, 4])
        assert [t for t, _ in curve] == [8, 1, 4]

    def test_speedup_at_one_thread_close_to_one(self):
        tg = paper_task_graph(3, 5)
        machine = get_machine("xeon-8")
        curve = dict(speedup_vs_threads(tg, machine, [1]))
        assert 0.9 < curve[1] <= 1.0  # sync overhead keeps it under 1


class TestReportingDrivers:
    def test_figure5_values_numeric(self):
        header, rows = reporting.figure5("xeon-8", 3, widths=(5,))
        values = [float(v) for v in rows[0][1:]]
        assert all(v > 0 for v in values)

    def test_figure4_monotone_in_width(self):
        header, rows = reporting.figure4(widths=(5, 40, 120))
        for row in rows:
            values = [float(v) for v in row[1:]]
            assert values == sorted(values)

    def test_figure8_winner_column_consistent(self):
        header, rows = reporting.figure8(outputs=(8,))
        for row in rows:
            systems = header[2:-1]
            seconds = {s: (None if v == "OOM" else float(v))
                       for s, v in zip(systems, row[2:-1])}
            valid = {s: v for s, v in seconds.items() if v is not None}
            assert row[-1] == min(valid, key=valid.get)
