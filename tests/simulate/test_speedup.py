"""Speedup-sweep (Figs 5–7) tests — shape properties of the curves."""

import pytest

from repro.simulate import (
    PAPER_WIDTHS,
    SpeedupSweep,
    default_thread_counts,
    get_machine,
    max_speedup_vs_width,
    paper_graph_2d,
    paper_graph_3d,
    paper_task_graph,
    simulate_schedule,
    speedup_vs_threads,
)


class TestPaperNetworks:
    def test_3d_output_patch_12(self):
        g = paper_graph_3d(width=2)
        out = g.output_nodes[0]
        assert out.shape == (12, 12, 12)

    def test_3d_input_is_37(self):
        g = paper_graph_3d(width=2)
        assert g.input_nodes[0].shape == (37, 37, 37)

    def test_2d_output_patch_48(self):
        g = paper_graph_2d(width=2)
        assert g.output_nodes[0].shape == (1, 48, 48)

    def test_3d_spec_structure(self):
        """CTMCTMCTCT: 4 conv layers, 4 transfer, 2 max-filter."""
        g = paper_graph_3d(width=3)
        kinds = {}
        for e in g.edges.values():
            kinds[e.kind] = kinds.get(e.kind, 0) + 1
        assert kinds["conv"] == 3 + 3 * 9
        assert kinds["filter"] == 6
        assert kinds["transfer"] == 12

    def test_2d_uses_fft_3d_uses_direct(self):
        tg2 = paper_task_graph(2, 2)
        tg3 = paper_task_graph(3, 2)
        assert any(n.startswith("prod_fwd") for n in tg2.names)
        assert not any(n.startswith("prod_fwd") for n in tg3.names)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            paper_task_graph(4, 2)


class TestSpeedupCurves:
    @pytest.fixture(scope="class")
    def tg20(self):
        return paper_task_graph(3, 20)

    def test_linear_ramp_to_cores(self, tg20):
        """Fig 5: 'speedup increases linearly until the number of
        worker threads equals the number of cores.'"""
        m = get_machine("xeon-18")
        curve = dict(speedup_vs_threads(tg20, m, [1, 9, 18]))
        assert curve[9] > 0.85 * 9
        assert curve[18] > 0.85 * 18

    def test_slower_ramp_beyond_cores(self, tg20):
        m = get_machine("xeon-18")
        curve = dict(speedup_vs_threads(tg20, m, [18, 27, 36]))
        gain_smt = curve[36] - curve[18]
        assert 0 < gain_smt < 18  # positive but far sublinear

    def test_wider_networks_reach_higher_speedup(self):
        m = get_machine("xeon-40")
        rows = dict(max_speedup_vs_width(3, [5, 40], m))
        assert rows[40] > rows[5]

    def test_phi_needs_width_80(self):
        """Fig 7: the manycore CPU needs width >= 80 to approach its
        ceiling."""
        m = get_machine("xeon-phi")
        rows = dict(max_speedup_vs_width(3, [10, 80], m))
        assert rows[80] > 1.5 * rows[10]
        assert rows[80] > 80  # 'over 90x' territory at high widths

    def test_default_thread_counts_cover_regimes(self):
        m = get_machine("xeon-18")
        counts = default_thread_counts(m)
        assert 1 in counts and m.cores in counts and m.threads in counts
        assert counts == sorted(counts)

    def test_sweep_runner(self):
        sweep = SpeedupSweep.run("xeon-8", 3, widths=[5, 10],
                                 thread_counts=[1, 8])
        rows = sweep.rows()
        assert len(rows) == 4
        assert all(s > 0 for _, _, s in rows)

    def test_paper_widths_constant(self):
        assert PAPER_WIDTHS[0] == 5 and PAPER_WIDTHS[-1] == 120
