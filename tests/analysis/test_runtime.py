"""The REPRO_CHECK dynamic checkers: lock-order graph, recursive
acquire, unheld release, and the Eraser-style lockset race detector.

Deliberate violations run against throwaway ``_CheckState`` instances
(via the ``check_state`` fixture) so nothing leaks into the
environment state the REPRO_CHECK=1 CI lane asserts clean.
"""

import threading

import pytest

from repro.analysis import runtime
from repro.analysis.runtime import (CheckedLock, checking_enabled,
                                    lock_order_edges, make_condition,
                                    make_lock, note_access, track,
                                    violations)


@pytest.fixture
def check_state(monkeypatch):
    """Swap the module-global checking state for a fresh throwaway one."""
    state = runtime._CheckState()
    monkeypatch.setattr(runtime, "_state", state)
    return state


def kinds(state):
    with state.violations_lock:
        return [v.kind for v in state.violations]


def run_threads(*bodies):
    threads = [threading.Thread(target=body) for body in bodies]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert not any(t.is_alive() for t in threads)


# -- lock-order graph ----------------------------------------------------


def test_consistent_order_is_clean(check_state):
    a, b = make_lock("order.a"), make_lock("order.b")

    def nested():
        with a:
            with b:
                pass

    run_threads(nested, nested)
    assert kinds(check_state) == []
    assert ("order.a", "order.b") in lock_order_edges()


def test_two_lock_inversion_is_reported(check_state):
    a, b = make_lock("inv.a"), make_lock("inv.b")
    ready = threading.Barrier(2, timeout=10)

    def forward():
        with a:
            with b:
                ready.wait()

    def backward():
        ready.wait()
        with b:
            with a:
                pass

    run_threads(forward, backward)
    assert "lock-order" in kinds(check_state)
    report = [v for v in check_state.violations if v.kind == "lock-order"][0]
    assert "potential deadlock" in report.message
    assert report.stack and report.other_stack  # both stacks attached


def test_three_lock_inversion_across_two_threads(check_state):
    """The ISSUE's canonical case: A->B->C in one thread, C->A in the
    other closes the cycle without any direct B/A inversion."""
    a, b, c = make_lock("tri.a"), make_lock("tri.b"), make_lock("tri.c")
    first_done = threading.Event()

    def chain():
        with a:
            with b:
                with c:
                    pass
        first_done.set()

    def closer():
        assert first_done.wait(10)
        with c:
            with a:
                pass

    run_threads(chain, closer)
    reports = [v for v in check_state.violations if v.kind == "lock-order"]
    assert len(reports) == 1
    assert "tri.c" in reports[0].message and "tri.a" in reports[0].message


def test_same_name_different_instances_not_flagged(check_state):
    outer, inner = CheckedLock("task", state=check_state), CheckedLock(
        "task", state=check_state)
    with outer:
        with inner:
            pass
    assert kinds(check_state) == []


def test_recursive_acquire_raises(check_state):
    lock = make_lock("recursive")
    with lock:
        with pytest.raises(RuntimeError, match="re-acquired"):
            lock.acquire()  # lint: disable=raw-acquire
    assert kinds(check_state) == ["recursive-acquire"]


def test_nonblocking_probe_of_held_lock_is_not_a_violation(check_state):
    lock = make_lock("probe")
    with lock:
        assert lock.acquire(False) is False
    assert kinds(check_state) == []


def test_unheld_release_is_reported(check_state):
    lock = make_lock("unheld")
    lock.acquire()  # lint: disable=raw-acquire
    try:
        pass
    finally:
        lock.release()
    lock.acquire()  # lint: disable=raw-acquire
    lock.release()
    assert kinds(check_state) == []
    with pytest.raises(RuntimeError):
        lock.release()  # CPython raises; the violation is recorded first
    assert kinds(check_state) == ["unheld-release"]


def test_condition_over_checked_lock(check_state):
    cond = make_condition("cond.checked")
    results = []

    def producer():
        with cond:
            results.append("produced")
            cond.notify()

    def consumer():
        with cond:
            while not results:
                cond.wait(1)
            results.append("consumed")

    run_threads(consumer, producer)
    assert kinds(check_state) == []
    assert results == ["produced", "consumed"]


# -- race detector -------------------------------------------------------


def test_unsynchronised_writes_from_two_threads_flagged(check_state):
    class Shared:
        pass

    obj = track(Shared(), name="racy")
    barrier = threading.Barrier(2, timeout=10)

    def writer():
        barrier.wait()
        for _ in range(3):
            note_access(obj, "write")

    run_threads(writer, writer)
    assert kinds(check_state).count("race") == 1  # reported once
    report = [v for v in check_state.violations if v.kind == "race"][0]
    assert "racy" in report.message


def test_guarded_writes_are_clean(check_state):
    class Shared:
        pass

    lock = make_lock("guard")
    obj = track(Shared(), name="guarded")

    def writer():
        for _ in range(5):
            with lock:
                note_access(obj, "write")

    run_threads(writer, writer)
    assert kinds(check_state) == []


def test_single_thread_needs_no_lock(check_state):
    class Shared:
        pass

    obj = track(Shared(), name="exclusive")
    for _ in range(10):
        note_access(obj, "write")
    assert kinds(check_state) == []


def test_shared_reads_without_lock_are_clean(check_state):
    class Shared:
        pass

    obj = track(Shared(), name="read-shared")

    def reader():
        for _ in range(5):
            note_access(obj, "read")

    run_threads(reader, reader)
    assert kinds(check_state) == []


def test_atomic_policy_records_but_never_flags(check_state):
    class LockFree:
        pass

    obj = track(LockFree(), name="pool", policy="atomic")
    # Both threads must overlap, or a finished thread's ident can be
    # reused and the two writers collapse into one.
    barrier = threading.Barrier(2, timeout=10)

    def writer():
        barrier.wait()
        for _ in range(5):
            note_access(obj, "write")

    run_threads(writer, writer)
    assert kinds(check_state) == []
    info = getattr(obj, "_repro_track_info")
    assert info.accesses == 10 and len(info.threads) == 2


def test_unknown_policy_rejected(check_state):
    with pytest.raises(ValueError, match="unknown track policy"):
        track(object(), policy="wishful")


# -- gating --------------------------------------------------------------


def test_make_lock_is_plain_when_disabled(monkeypatch):
    monkeypatch.setattr(runtime, "_state", None)
    assert not checking_enabled()
    lock = make_lock("anything")
    assert not isinstance(lock, CheckedLock)
    track_result = track(object(), name="ignored")
    note_access(track_result, "write")  # no-op, must not blow up
    assert violations() == []


def test_make_lock_is_checked_when_enabled(check_state):
    assert checking_enabled()
    assert isinstance(make_lock("anything"), CheckedLock)


def test_violations_are_observable_via_metrics(check_state):
    before = check_state.m_lock_order.value
    lock = make_lock("metrics.recursive")
    with lock:
        with pytest.raises(RuntimeError):
            lock.acquire()  # lint: disable=raw-acquire
    assert check_state.m_lock_order.value == before + 1
