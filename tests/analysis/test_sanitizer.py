"""The runtime determinism sanitizer: double-run digest diffing with
first-divergence provenance.  Fast tests substitute a scripted probe
via ``probe_argv``; the slow lane runs the real train/serve/loadgen
probe (the CI determinism-check criterion)."""

import sys
import textwrap

import pytest

from repro.analysis.runtime import (
    DET_THREADS_ENV,
    _parse_probe_output,
    run_determinism_check,
)


def scripted_probe(body):
    return [sys.executable, "-c", textwrap.dedent(body)]


STABLE_PROBE = scripted_probe("""
    print('{"stage": "train", "digest": "aaaa"}')
    print("progress noise: not a digest line")
    print('{"stage": "serve", "digest": "bbbb"}')
    print('{"stage": "report", "digest": "cccc"}')
""")

# Digest depends on the perturbed thread count from the second stage
# on: the checker must name "serve" (not "report") as the first
# divergence.
LEAKY_PROBE = scripted_probe("""
    import json
    import os
    threads = os.environ["%s"]
    print(json.dumps({"stage": "train", "digest": "aaaa"}))
    print(json.dumps({"stage": "serve", "digest": "s-" + threads}))
    print(json.dumps({"stage": "report", "digest": "r-" + threads}))
""" % DET_THREADS_ENV)


def test_identical_probes_match():
    doc = run_determinism_check(probe_argv=STABLE_PROBE)
    assert doc["matched"] is True
    assert doc["stages"] == ["train", "serve", "report"]
    assert doc["first_divergence"] is None
    assert [run["threads"] for run in doc["runs"]] == [1, 2]


def test_first_divergence_provenance():
    doc = run_determinism_check(probe_argv=LEAKY_PROBE)
    assert doc["matched"] is False
    first = doc["first_divergence"]
    assert first["stage"] == "serve"
    assert first["run_a"] == "s-1"
    assert first["run_b"] == "s-2"
    assert [d["stage"] for d in doc["divergences"]] \
        == ["serve", "report"]


def test_perturbation_env_reaches_the_probe():
    probe = scripted_probe("""
        import json
        import os
        seed = os.environ["PYTHONHASHSEED"]
        print(json.dumps({"stage": "env", "digest": seed}))
    """)
    doc = run_determinism_check(probe_argv=probe, seeds=(7, 7))
    assert doc["matched"] is True
    assert doc["runs"][0]["digests"]["env"] == "7"


def test_failing_probe_raises():
    probe = scripted_probe("raise SystemExit(3)")
    with pytest.raises(RuntimeError, match="exited 3"):
        run_determinism_check(probe_argv=probe)


def test_probe_without_digests_raises():
    probe = scripted_probe("print('no json here')")
    with pytest.raises(RuntimeError, match="no stage digests"):
        run_determinism_check(probe_argv=probe)


def test_parse_ignores_malformed_lines():
    pairs = _parse_probe_output(
        '{"stage": "a", "digest": "1"}\n'
        "{broken json\n"
        '{"stage": 5, "digest": "x"}\n'
        "[1, 2]\n"
        '{"stage": "b", "digest": "2"}\n')
    assert pairs == (("a", "1"), ("b", "2"))


@pytest.mark.slow
def test_real_probe_is_bitwise_reproducible():
    doc = run_determinism_check()
    assert doc["matched"] is True, doc["first_divergence"]
    assert set(doc["stages"]) == {"train.state_digest", "train.losses",
                                  "serve.dense_volume",
                                  "loadtest.report"}
