"""The AST lint rules: each catches its seeded fixture and stays quiet
on the clean twin (docs/static_analysis.md)."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import lint_file, lint_paths, lint_source
from repro.analysis.linting import ALL_RULES, render_violations

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(name):
    return os.path.join(FIXTURES, name)


def rules_hit(path, rules=None):
    return {v.rule for v in lint_file(fixture(path), rules=rules)}


# -- each rule: positive fixture flagged, negative fixture clean ---------


@pytest.mark.parametrize("bad,ok,rule", [
    ("guarded_by_bad.py", "guarded_by_ok.py", "guarded-by"),
    ("raw_acquire_bad.py", "raw_acquire_ok.py", "raw-acquire"),
    ("blocking_bad.py", "blocking_ok.py", "blocking-under-lock"),
    ("swap_only_bad.py", "swap_only_ok.py", "swap-only-critical-section"),
    ("metrics_name_bad.py", "metrics_name_ok.py", "metrics-name"),
    ("det_unordered_bad.py", "det_unordered_ok.py", "determinism"),
    ("det_rng_bad.py", "det_rng_ok.py", "determinism"),
    ("det_wallclock_bad.py", "det_wallclock_ok.py", "determinism"),
    ("det_reduction_bad.py", "det_reduction_ok.py", "determinism"),
    ("det_completion_bad.py", "det_completion_ok.py", "determinism"),
])
def test_rule_catches_seeded_bug_and_passes_clean_twin(bad, ok, rule):
    assert rule in rules_hit(bad), f"{rule} missed its seeded fixture"
    assert rule not in rules_hit(ok), f"{rule} false-positive on clean twin"


def test_guarded_by_counts_every_seeded_mutation():
    violations = [v for v in lint_file(fixture("guarded_by_bad.py"))
                  if v.rule == "guarded-by"]
    # += without lock, .append() without lock, rebind without lock.
    assert len(violations) == 3
    assert all("_lock" in v.message for v in violations)


def test_raw_acquire_flags_assigned_result_too():
    violations = [v for v in lint_file(fixture("raw_acquire_bad.py"))
                  if v.rule == "raw-acquire"]
    assert len(violations) == 2


def test_swap_only_finds_call_raise_and_arithmetic():
    messages = [v.message for v in lint_file(fixture("swap_only_bad.py"))
                if v.rule == "swap-only-critical-section"]
    assert len(messages) == 3
    assert any("raising" in m for m in messages)


def test_metrics_rule_names_the_catalog():
    violations = [v for v in lint_file(fixture("metrics_name_bad.py"))
                  if v.rule == "metrics-name"]
    assert len(violations) == 2
    assert all("catalog" in v.message for v in violations)


# -- engine behaviour ----------------------------------------------------


def test_fixtures_dir_is_skipped_by_tree_lint():
    # Linting the directory above the fixtures skips them (they hold
    # deliberate violations); the test modules themselves are clean.
    assert lint_paths([os.path.dirname(__file__)]) == []


def test_line_suppression_waives_exactly_one_line():
    source = (
        "import threading\n"
        "lock = threading.Lock()\n"
        "def f():\n"
        "    lock.acquire()  # lint: disable=raw-acquire\n"
        "    lock.acquire()\n"
    )
    violations = lint_source(source)
    assert [v.line for v in violations if v.rule == "raw-acquire"] == [5]


def test_file_suppression_waives_the_rule_everywhere():
    source = (
        "# lint: disable-file=raw-acquire\n"
        "import threading\n"
        "lock = threading.Lock()\n"
        "def f():\n"
        "    lock.acquire()\n"
        "    lock.acquire()\n"
    )
    assert lint_source(source) == []


def test_multiline_statement_annotation_is_seen():
    source = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._items = [\n"
        "            None]  # guarded-by: _lock\n"
        "    def bad(self):\n"
        "        self._items.append(1)\n"
    )
    assert [v.rule for v in lint_source(source)] == ["guarded-by"]


def test_nested_field_mutation_counts_as_guarded_mutation():
    source = (
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.stats = object()  # guarded-by: _lock\n"
        "    def bad(self):\n"
        "        self.stats.hits += 1\n"
        "    def good(self):\n"
        "        with self._lock:\n"
        "            self.stats.hits += 1\n"
    )
    violations = lint_source(source)
    assert [v.rule for v in violations] == ["guarded-by"]
    assert violations[0].line == 7


def test_unknown_rule_is_an_error():
    with pytest.raises(ValueError, match="unknown lint rule"):
        lint_source("x = 1\n", rules=["no-such-rule"])


def test_render_json_round_trips():
    violations = lint_file(fixture("metrics_name_bad.py"))
    decoded = json.loads(render_violations(violations, fmt="json"))
    assert len(decoded) == len(violations)
    assert decoded[0]["rule"] == violations[0].rule


def test_source_tree_is_clean():
    repo_src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    assert lint_paths([os.path.normpath(repo_src)]) == []


# -- CLI -----------------------------------------------------------------


def run_cli(*argv):
    env = dict(os.environ)
    root = os.path.normpath(
        os.path.join(os.path.dirname(__file__), "..", ".."))
    env["PYTHONPATH"] = os.path.join(root, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        capture_output=True, text=True, cwd=root, env=env)


def test_cli_exits_zero_on_clean_tree():
    proc = run_cli("src")
    assert proc.returncode == 0, proc.stderr
    assert "clean" in proc.stdout


def test_cli_exits_one_on_violations_with_json_output():
    proc = run_cli("--format", "json",
                   os.path.join("tests", "analysis", "fixtures",
                                "raw_acquire_bad.py"))
    assert proc.returncode == 1
    decoded = json.loads(proc.stdout)
    assert {v["rule"] for v in decoded} == {"raw-acquire"}


def test_cli_lists_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    assert set(proc.stdout.split()) == set(ALL_RULES)
