"""The interprocedural call graph behind the determinism pass:
annotation roots, obligation propagation, `# nondeterministic:` cuts,
and bounded method resolution (docs/static_analysis.md)."""

import textwrap

from repro.analysis.callgraph import build_callgraph
from repro.analysis.linting import SourceFile


def graph_of(*sources):
    files = [SourceFile(f"mod{i}.py", textwrap.dedent(text))
             for i, text in enumerate(sources)]
    return build_callgraph(files)


def quals(names):
    return {q.split("::", 1)[1] for q in names}


def test_roots_are_annotated_defs():
    graph = graph_of("""
        # deterministic
        def entry():
            helper()

        def helper():
            pass
    """)
    assert quals(graph.roots()) == {"entry"}


def test_obligation_propagates_transitively():
    graph = graph_of("""
        # deterministic
        def entry():
            a()

        def a():
            b()

        def b():
            pass

        def unreachable():
            pass
    """)
    obligated, escaped = graph.reachable(graph.roots())
    assert quals(obligated) == {"entry", "a", "b"}
    assert escaped == set()


def test_nondeterministic_escape_cuts_propagation():
    graph = graph_of("""
        # deterministic
        def entry():
            logger()
            core()

        def logger():  # nondeterministic: diagnostics only
            timestamped()

        def core():
            pass

        def timestamped():
            pass
    """)
    obligated, escaped = graph.reachable(graph.roots())
    # The escape stops the walk: nothing past logger() is obligated.
    assert quals(obligated) == {"entry", "core"}
    assert quals(escaped) == {"logger"}


def test_cycles_terminate_and_stay_obligated():
    graph = graph_of("""
        # deterministic
        def entry():
            ping()

        def ping():
            pong()

        def pong():
            ping()
    """)
    obligated, _ = graph.reachable(graph.roots())
    assert quals(obligated) == {"entry", "ping", "pong"}


def test_mutual_recursion_in_classes():
    graph = graph_of("""
        class A:
            # deterministic
            def run(self):
                self.step()

            def step(self):
                self.run()
    """)
    obligated, _ = graph.reachable(graph.roots())
    assert quals(obligated) == {"A.run", "A.step"}


def test_decorated_defs_are_nodes_and_annotatable():
    graph = graph_of("""
        import functools

        # deterministic
        @functools.lru_cache(maxsize=None)
        def entry():
            helper()

        @functools.wraps(entry)
        def helper():
            pass
    """)
    obligated, _ = graph.reachable(graph.roots())
    assert quals(obligated) == {"entry", "helper"}


def test_annotation_between_decorator_and_def():
    graph = graph_of("""
        import functools

        @functools.lru_cache(maxsize=None)
        # deterministic
        def entry():
            pass
    """)
    assert quals(graph.roots()) == {"entry"}


def test_self_method_resolution_through_base_class():
    graph = graph_of("""
        class Base:
            def shared(self):
                pass

        class Child(Base):
            # deterministic
            def run(self):
                self.shared()
    """)
    obligated, _ = graph.reachable(graph.roots())
    assert quals(obligated) == {"Child.run", "Base.shared"}


def test_self_attribute_type_resolution():
    graph = graph_of("""
        class Worker:
            def step(self):
                pass

        class Driver:
            def __init__(self):
                self.worker = Worker()

            # deterministic
            def run(self):
                self.worker.step()
    """)
    obligated, _ = graph.reachable(graph.roots())
    assert quals(obligated) == {"Driver.run", "Worker.step"}


def test_annotated_parameter_resolution():
    graph = graph_of("""
        class Network:
            def forward(self):
                pass

        # deterministic
        def run_plan(network: Network):
            network.forward()
    """)
    obligated, _ = graph.reachable(graph.roots())
    assert quals(obligated) == {"run_plan", "Network.forward"}


def test_cross_module_import_resolution():
    graph = graph_of(
        """
        from mod1 import helper

        # deterministic
        def entry():
            helper()
        """,
        """
        def helper():
            inner()

        def inner():
            pass
        """)
    obligated, _ = graph.reachable(graph.roots())
    assert quals(obligated) == {"entry", "helper", "inner"}


def test_constructor_call_obligates_init():
    graph = graph_of("""
        class Plan:
            def __init__(self):
                self.setup()

            def setup(self):
                pass

        # deterministic
        def build():
            Plan()
    """)
    obligated, _ = graph.reachable(graph.roots())
    assert quals(obligated) == {"build", "Plan.__init__", "Plan.setup"}


def test_nested_defs_ride_with_their_parent():
    graph = graph_of("""
        # deterministic
        def entry():
            def inner():
                pass
            inner()
    """)
    obligated, _ = graph.reachable(graph.roots())
    assert "entry" in quals(obligated)
    assert any(q.endswith("inner") for q in quals(obligated))
