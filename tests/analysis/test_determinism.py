"""The determinism rule: interprocedural obligation, escapes,
suppression semantics, SARIF rendering, and the acceptance-criterion
injection (a `reduce_in_order` call swapped for builtin `sum` over a
set must be caught)."""

import json
import os
import textwrap

from repro.analysis import lint_paths, lint_source
from repro.analysis.linting import render_violations

SRC = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def lint(text, **kwargs):
    return lint_source(textwrap.dedent(text), rules=["determinism"],
                       **kwargs)


# -- interprocedural behaviour -------------------------------------------


def test_violation_in_transitive_callee_is_reported():
    violations = lint("""
        # deterministic
        def entry():
            return helper()

        def helper():
            return sum({1.0, 2.0})
    """)
    assert [v.rule for v in violations] == ["determinism"]
    assert "helper()" in violations[0].message


def test_unreachable_code_is_not_obligated():
    violations = lint("""
        # deterministic
        def entry():
            return 1.0

        def unrelated():
            return sum({1.0, 2.0})
    """)
    assert violations == []


def test_no_roots_means_no_findings():
    violations = lint("""
        def anything():
            return sum({1.0, 2.0})
    """)
    assert violations == []


# -- escape grammar ------------------------------------------------------


def test_reasoned_escape_suppresses_and_keeps_justification():
    violations = lint("""
        # deterministic
        def entry():
            return helper()

        def helper():  # nondeterministic: diagnostics only
            return sum({1.0, 2.0})
    """, include_suppressed=True)
    assert len(violations) == 1
    assert violations[0].suppressed
    assert violations[0].justification == "diagnostics only"


def test_suppressed_findings_hidden_by_default():
    violations = lint("""
        # deterministic
        def entry():
            return helper()

        def helper():  # nondeterministic: diagnostics only
            return sum({1.0, 2.0})
    """)
    assert violations == []


def test_escape_without_reason_is_itself_a_finding():
    violations = lint("""
        def helper():  # nondeterministic:
            pass
    """)
    assert len(violations) == 1
    assert "escape-without-reason" in violations[0].message
    assert not violations[0].suppressed


def test_line_level_escape_suppresses_one_finding():
    violations = lint("""
        # deterministic
        def entry(slots: set) -> float:
            a = sum(slots)  # nondeterministic: int cardinality sum
            b = sum(slots)
            return a + b
    """, include_suppressed=True)
    assert [v.suppressed for v in violations] == [True, False]
    assert violations[0].justification == "int cardinality sum"


# -- acceptance criterion: synthetic injection ---------------------------


def test_injected_sum_over_set_in_summation_is_caught():
    path = os.path.join(SRC, "repro", "sync", "summation.py")
    with open(path, encoding="utf-8") as fh:
        original = fh.read()
    assert "reduce_in_order(slots)" in original

    mutated = original.replace("reduce_in_order(slots)",
                               "sum(set(slots))")
    violations = lint_source(mutated, rules=["determinism"],
                             path="summation.py")
    assert any(v.rule == "determinism"
               and "reassociating-reduction" in v.message
               for v in violations), \
        "the injected sum-over-set must be flagged"

    # The unmutated module stays clean (regression guard).
    assert lint_source(original, rules=["determinism"],
                       path="summation.py") == []


def test_source_tree_is_determinism_clean_with_reasoned_escapes():
    violations = lint_paths([SRC], rules=["determinism"],
                            include_suppressed=True)
    active = [v for v in violations if not v.suppressed]
    assert active == [], "\n".join(str(v) for v in active)
    for v in violations:
        assert v.justification, f"suppression without a reason: {v}"


# -- SARIF rendering -----------------------------------------------------


def test_sarif_document_structure():
    violations = lint("""
        # deterministic
        def entry():
            return helper()

        def helper():  # nondeterministic: diagnostics only
            return sum({1.0, 2.0})

        def bad():  # nondeterministic:
            pass
    """, include_suppressed=True)
    doc = json.loads(render_violations(violations, fmt="sarif"))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "determinism" in rule_ids
    results = run["results"]
    assert len(results) == len(violations)
    suppressed = [r for r in results if r.get("suppressions")]
    assert len(suppressed) == 1
    assert suppressed[0]["suppressions"][0]["justification"] \
        == "diagnostics only"
    for result in results:
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"]
        assert loc["region"]["startLine"] >= 1


def test_sarif_empty_run_is_valid():
    doc = json.loads(render_violations([], fmt="sarif"))
    assert doc["runs"][0]["results"] == []
