"""Regression tests for the concurrency bugs the checkers surfaced.

Each test constructs the fixed component with a throwaway checking
state active, so its locks are non-reentrant ``CheckedLock`` instances
and its tracked objects feed the race detector — the original bugs
would re-report here before they deadlocked or corrupted anything.
"""

import threading

import numpy as np
import pytest

from repro.analysis import runtime
from repro.scheduler import TaskEngine
from repro.sync import ConcurrentSum
from repro.tensor.fft_cache import TransformCache


@pytest.fixture
def check_state(monkeypatch):
    state = runtime._CheckState()
    monkeypatch.setattr(runtime, "_state", state)
    return state


def test_summation_overflow_raises_outside_critical_section(check_state):
    # Bug: the over-contribution RuntimeError was raised inside the
    # Algorithm-4 swap-only critical section (string formatting and
    # exception allocation under the contended lock).
    s = ConcurrentSum(required=2)
    assert s.add(np.ones(4)) is False
    assert s.add(np.ones(4)) is True
    with pytest.raises(RuntimeError, match="more than required"):
        s.add(np.ones(4))
    assert [v.kind for v in check_state.violations] == []


def test_summation_threads_stay_clean_under_checker(check_state):
    s = ConcurrentSum(required=8)
    done = []

    def contribute():
        done.append(s.add(np.full(16, 1.0)))

    threads = [threading.Thread(target=contribute) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert done.count(True) == 1
    np.testing.assert_allclose(s.get(), np.full(16, 8.0))
    assert [v.kind for v in check_state.violations] == []


def test_fft_cache_concurrent_pins_are_not_lost(check_state):
    # Bug: pin_kind rebound the _pinned_kinds frozenset outside the
    # cache lock — concurrent pins could lose updates (and the race
    # detector flagged the unlocked write to the tracked cache).
    cache = TransformCache(enabled=True)
    kinds = [f"kind-{i}" for i in range(8)]
    barrier = threading.Barrier(len(kinds), timeout=10)

    def pin(kind):
        barrier.wait()
        cache.pin_kind(kind)

    threads = [threading.Thread(target=pin, args=(k,)) for k in kinds]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert cache.pinned_kinds == frozenset(kinds)
    assert [v.kind for v in check_state.violations] == []


def test_engine_family_counter_first_use_is_synchronised(check_state):
    # Bug: _m_families[family] = counter ran without the engine lock —
    # concurrent first-use of families raced the dict insertion.  The
    # double-checked path must hand every thread the same counter.
    engine = TaskEngine(num_workers=1)
    barrier = threading.Barrier(8, timeout=10)
    seen = []
    seen_lock = threading.Lock()

    def first_use():
        barrier.wait()
        mine = [engine._family_counter(f"fam-{j}") for j in range(4)]
        mine.append(engine._retried_counter("fam-retry"))
        with seen_lock:
            seen.append(mine)

    threads = [threading.Thread(target=first_use) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert len(seen) == 8
    for counters in seen[1:]:
        for mine, first in zip(counters, seen[0]):
            assert mine is first
    assert set(engine._m_families) == {f"fam-{j}" for j in range(4)}
    assert [v.kind for v in check_state.violations] == []
