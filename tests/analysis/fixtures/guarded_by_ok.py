"""Clean twin: every guarded mutation is under the lock (or exempt)."""

import threading

_registry = None  # guarded-by: _global_lock
_global_lock = threading.Lock()


def set_registry(value):
    global _registry
    with _global_lock:
        _registry = value


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock
        self._items = []  # guarded-by: _lock, _cond
        self._cond = threading.Condition(self._lock)

    def bump(self):
        with self._lock:
            self._count += 1

    def append(self, item):
        with self._cond:
            self._items.append(item)

    def read(self):
        return self._count  # reads are not checked

    def _drain_locked(self):
        self._items.clear()  # _locked suffix: caller holds the guard
