"""Seeded violation: guarded attribute mutated without its lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock
        self._items = []  # guarded-by: _lock

    def bump_unlocked(self):
        self._count += 1  # VIOLATION: no lock held

    def append_unlocked(self, item):
        self._items.append(item)  # VIOLATION: mutator without lock

    def replace_unlocked(self):
        self._items = []  # VIOLATION: rebind without lock
