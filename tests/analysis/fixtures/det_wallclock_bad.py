"""Seeded determinism violation: wall-clock reads leaking into the
result (directly and through a tainted local)."""

import time
from datetime import datetime


# deterministic
def stamp_result(value: float) -> dict:
    return {"value": value, "at": time.time()}


# deterministic
def decay(value: float) -> float:
    started = time.monotonic()
    elapsed = time.monotonic() - started
    return value * (1.0 - elapsed)


# deterministic
def label() -> str:
    return datetime.now().isoformat()
