"""Seeded violation: bare .acquire() without a try/finally release."""

import threading

lock = threading.Lock()


def leaky(shared):
    lock.acquire()  # VIOLATION: an exception below leaks the lock
    shared.append(1)
    lock.release()


def leaky_with_result(shared):
    got = lock.acquire(timeout=1)  # VIOLATION: still unprotected
    if got:
        shared.append(2)
        lock.release()
