"""Clean twin: blocking work happens outside critical sections."""

import queue
import threading
import time

lock = threading.Lock()
cond = threading.Condition(lock)
work_queue = queue.Queue()


def sleepy():
    time.sleep(0.5)
    with lock:
        pass


def io_outside(path):
    with open(path) as fh:
        data = fh.read()
    with lock:
        return data


def wait_is_fine():
    with cond:
        cond.wait(0.1)  # condition waits release the lock by design
        cond.notify_all()


def bounded_drain():
    with lock:
        return work_queue.get(timeout=0.1)  # bounded, deliberate


def nonblocking_drain():
    with lock:
        return work_queue.get(False)
