"""Seeded determinism violation: module-level RNG draws inside a
deterministic region (state shared with every other caller, no seed
ownership)."""

import random

import numpy as np


# deterministic
def sample_offsets(n: int) -> list:
    return [random.random() for _ in range(n)]


# deterministic
def jitter(shape) -> "np.ndarray":
    return np.random.rand(*shape)
