"""Clean twin: results consumed in submission order."""

from concurrent.futures import ThreadPoolExecutor


# deterministic
def parallel_losses(tasks: list) -> list:
    with ThreadPoolExecutor() as pool:
        futures = [pool.submit(t) for t in tasks]
        return [future.result() for future in futures]
