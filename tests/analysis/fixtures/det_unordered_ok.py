"""Clean twin: the same accumulation and digest, iteration sorted."""

import hashlib


# deterministic
def stitch(contributions: set) -> float:
    total = 0.0
    for value in sorted(contributions):
        total += value
    return total


# deterministic
def snapshot(state: dict) -> str:
    h = hashlib.sha256()
    for key in sorted(state.keys()):
        h.update(str(state[key]).encode())
    return h.hexdigest()
