"""Clean twin: catalogued names, plus shapes the rule must ignore."""

from repro.observability.metrics import get_registry


def instrument(dynamic_name):
    reg = get_registry()
    pushes = reg.counter("queue.push")
    depth = reg.gauge("queue.depth")
    waits = reg.histogram("queue.wait_seconds")
    # Non-literal names cannot be checked statically; not flagged.
    dyn = reg.counter(dynamic_name)
    # Non-registry receivers are not metric factories.
    other = object()
    return pushes, depth, waits, dyn, other
