"""Seeded determinism violation: reassociating reductions over
unordered iterables (Algorithm 4 forbids exactly this)."""

import numpy as np


# deterministic
def close_sum(slots: list) -> float:
    return sum(set(slots))


# deterministic
def gradient_norm(grads: dict) -> float:
    return float(np.sum([g * g for g in grads.values()]))
