"""Clean twin: with-statements, try/finally idioms, probe acquires."""

import threading

lock = threading.Lock()


def with_statement(shared):
    with lock:
        shared.append(1)


def try_finally(shared):
    lock.acquire()
    try:
        shared.append(2)
    finally:
        lock.release()


def probe(shared):
    if lock.acquire(False):
        try:
            shared.append(3)
        finally:
            lock.release()


def probe_kw(shared):
    if lock.acquire(blocking=False):
        lock.release()
