"""Seeded determinism violations: unordered iteration feeding float
accumulation and serialized output inside a deterministic region."""

import hashlib


# deterministic
def stitch(contributions: set) -> float:
    total = 0.0
    for value in contributions:  # set order is hash-seed dependent
        total += value
    return total


# deterministic
def snapshot(state: dict) -> str:
    h = hashlib.sha256()
    for key in state.keys():  # dict-view order feeds the digest
        h.update(str(state[key]).encode())
    return h.hexdigest()
