"""Clean twin: owned, seeded generators."""

import random

import numpy as np


# deterministic
def sample_offsets(n: int, seed: int = 0) -> list:
    rng = random.Random(seed)
    return [rng.random() for _ in range(n)]


# deterministic
def jitter(shape, seed: int = 0) -> "np.ndarray":
    rng = np.random.default_rng(seed)
    return rng.random(shape)
