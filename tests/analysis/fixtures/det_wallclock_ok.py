"""Clean twin: clocks only feed metrics/tracing sinks."""

import time


class _Hist:
    def observe(self, value: float) -> None:
        pass


_m_seconds = _Hist()


# deterministic
def stamp_result(value: float) -> dict:
    t0 = time.time()
    doc = {"value": value}
    _m_seconds.observe(time.time() - t0)
    return doc


# deterministic
def decay(value: float, elapsed: float) -> float:
    # The caller supplies elapsed time explicitly (simulated clock).
    return value * (1.0 - elapsed)
