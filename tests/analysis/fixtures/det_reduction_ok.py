"""Clean twin: reductions in fixed index / sorted order."""

import numpy as np


# deterministic
def close_sum(slots: list) -> float:
    return sum(slots)


# deterministic
def gradient_norm(grads: dict) -> float:
    ordered = [grads[k] for k in sorted(grads)]
    return float(np.sum(np.array(ordered)))
