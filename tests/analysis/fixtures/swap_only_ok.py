"""Clean twin: pointer swaps, flag tests and counter bumps only."""

import threading


class GoodSum:
    def __init__(self, required):
        self.required = required
        self._lock = threading.Lock()
        self._sum = None
        self._total = 0

    def add(self, value):
        v = value
        v_other = None
        last = False
        overflow = False
        while True:
            with self._lock:  # critical-section: swap-only
                if self._sum is None:
                    self._sum = v
                    v = None
                    self._total += 1
                    overflow = self._total > self.required
                    last = self._total == self.required
                else:
                    v_other = self._sum
                    self._sum = None
            if overflow:
                raise RuntimeError("too many contributions")
            if v is None:
                return last
            v += v_other
