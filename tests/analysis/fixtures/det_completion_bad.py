"""Seeded determinism violation: results consumed in thread
completion order."""

from concurrent.futures import ThreadPoolExecutor, as_completed


# deterministic
def parallel_losses(tasks: list) -> list:
    out = []
    with ThreadPoolExecutor() as pool:
        futures = [pool.submit(t) for t in tasks]
        for future in as_completed(futures):  # completion order
            out.append(future.result())
    return out
