"""Seeded violation: Algorithm-4 critical section doing real work."""

import threading


class BadSum:
    def __init__(self, required):
        self.required = required
        self._lock = threading.Lock()
        self._sum = None
        self._total = 0

    def add(self, value):
        with self._lock:  # critical-section: swap-only
            if self._sum is None:
                self._sum = value.copy()  # VIOLATION: allocation (call)
                self._total += 1
                if self._total > self.required:
                    raise RuntimeError(  # VIOLATION: raise allocates
                        "too many contributions")
            else:
                self._sum = self._sum + value  # VIOLATION: arithmetic
