"""Seeded violation: blocking calls while holding a lock."""

import queue
import threading
import time

lock = threading.Lock()
work_queue = queue.Queue()


def sleepy():
    with lock:
        time.sleep(0.5)  # VIOLATION: every contender stalls


def io_under_lock(path):
    with lock:
        with open(path) as fh:  # VIOLATION: I/O under the lock
            return fh.read()


def drain_forever():
    with lock:
        return work_queue.get()  # VIOLATION: indefinite block, no timeout
