"""Seeded violation: metric names missing from the catalog."""

from repro.observability.metrics import get_registry


def instrument():
    reg = get_registry()
    hits = reg.counter("made.up.metric")  # VIOLATION: not catalogued
    depth = reg.gauge("queue.depht")  # VIOLATION: typo of queue.depth
    return hits, depth
