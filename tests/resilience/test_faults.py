"""Fault-injection plan tests: parsing, determinism, injection sites."""

import time

import pytest

from repro.resilience import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    clear_plan,
    install_plan,
)


@pytest.fixture(autouse=True)
def no_global_plan():
    """Every test starts and ends with injection off."""
    clear_plan()
    yield
    clear_plan()


class TestFaultSpecParsing:
    def test_kind_and_family(self):
        spec = FaultSpec.parse("fail:fwd")
        assert (spec.kind, spec.family) == ("fail", "fwd")
        assert spec.occurrence == 1 and spec.count == 1 and spec.rate is None

    def test_occurrence(self):
        spec = FaultSpec.parse("hang:upd:3")
        assert spec.occurrence == 3 and spec.count == 1

    def test_occurrence_with_count(self):
        spec = FaultSpec.parse("fail:bwd:2x4")
        assert spec.occurrence == 2 and spec.count == 4

    def test_rate(self):
        spec = FaultSpec.parse("fail:fwd:~0.25")
        assert spec.rate == 0.25

    @pytest.mark.parametrize("bad", [
        "fail", "explode:fwd", "fail::", "fail:fwd:0", "fail:fwd:~1.5",
        "fail:fwd:1:2",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)

    def test_plan_string_with_options(self):
        plan = FaultPlan.from_string("fail:fwd:3,corrupt:loss:2,"
                                     "hang=0.05,seed=7")
        assert len(plan.specs) == 2
        assert plan.hang_seconds == 0.05
        assert plan.seed == 7

    def test_plan_string_without_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_string("seed=3")


class TestTriggering:
    def test_fail_on_nth_occurrence_only(self):
        plan = FaultPlan([FaultSpec.parse("fail:fwd:3")])
        plan.check("fwd")
        plan.check("fwd")
        with pytest.raises(InjectedFault):
            plan.check("fwd", name="fwd:conv_L1_0_0")
        plan.check("fwd")  # past the window: clean again
        assert plan.occurrences("fwd") == 4
        assert [e.occurrence for e in plan.events] == [3]

    def test_families_counted_independently(self):
        plan = FaultPlan([FaultSpec.parse("fail:fwd:2")])
        plan.check("bwd")
        plan.check("fwd")
        plan.check("bwd")
        with pytest.raises(InjectedFault):
            plan.check("fwd")

    def test_count_window(self):
        plan = FaultPlan([FaultSpec.parse("fail:upd:2x2")])
        plan.check("upd")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                plan.check("upd")
        plan.check("upd")

    def test_hang_sleeps(self):
        plan = FaultPlan([FaultSpec.parse("hang:fwd:1")], hang_seconds=0.05)
        t0 = time.perf_counter()
        plan.check("fwd")  # no exception
        assert time.perf_counter() - t0 >= 0.05

    def test_corrupt_only_fires_on_values(self):
        import math

        plan = FaultPlan([FaultSpec.parse("corrupt:loss:2")])
        plan.check("loss")  # occurrence 1; corrupt never raises in check()
        assert math.isnan(plan.corrupt("loss", 1.25))  # occurrence 2
        events = plan.events
        assert len(events) == 1 and events[0].kind == "corrupt"

    def test_corrupt_returns_nan_then_passthrough(self):
        import math

        plan = FaultPlan([FaultSpec.parse("corrupt:loss:1")])
        assert math.isnan(plan.corrupt("loss", 3.0))
        assert plan.corrupt("loss", 3.0) == 3.0

    def test_probabilistic_replay_is_deterministic(self):
        def run(seed):
            plan = FaultPlan([FaultSpec.parse("fail:fwd:~0.3")], seed=seed)
            fired = []
            for i in range(50):
                try:
                    plan.check("fwd")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert any(run(7))


class TestGlobalPlan:
    def test_off_by_default(self):
        assert active_plan() is None

    def test_install_and_clear(self):
        plan = FaultPlan([FaultSpec.parse("fail:fwd:1")])
        install_plan(plan)
        assert active_plan() is plan
        clear_plan()
        assert active_plan() is None

    def test_env_resolution(self, monkeypatch):
        import repro.resilience.faults as faults

        monkeypatch.setenv("REPRO_FAULTS", "fail:fwd:2,seed=3")
        monkeypatch.setattr(faults, "_plan", None)
        monkeypatch.setattr(faults, "_env_resolved", False)
        plan = active_plan()
        assert plan is not None
        assert plan.seed == 3
        clear_plan()

    def test_empty_env_means_off(self, monkeypatch):
        import repro.resilience.faults as faults

        monkeypatch.setenv("REPRO_FAULTS", "")
        monkeypatch.setattr(faults, "_plan", None)
        monkeypatch.setattr(faults, "_env_resolved", False)
        assert active_plan() is None

    def test_injected_counter(self):
        from repro.observability import MetricsRegistry, set_registry

        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            plan = FaultPlan([FaultSpec.parse("fail:fwd:1")])
            with pytest.raises(InjectedFault):
                plan.check("fwd")
            snap = fresh.snapshot()
            assert snap["resilience.faults_injected"] == 1
        finally:
            set_registry(previous)
