"""Retry policy, engine retry paths, and the watchdog timeout."""

import threading
import time

import pytest

from repro.observability import MetricsRegistry, set_registry
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    TaskTimeout,
    clear_plan,
    install_plan,
)
from repro.scheduler import SerialEngine, TaskEngine


@pytest.fixture(autouse=True)
def no_global_plan():
    clear_plan()
    yield
    clear_plan()


@pytest.fixture
def registry():
    """Fresh metrics registry installed around each test, so engines
    built inside the test bind their counters to it."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def metric_total(registry, family):
    return sum(value for name, value in registry.snapshot().items()
               if name.partition("{")[0] == family)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_factor=2.0,
                             max_backoff_seconds=0.25)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.25)  # capped

    def test_should_retry_respects_budget_and_types(self):
        policy = RetryPolicy(max_retries=2, retry_on=(ValueError,))
        assert policy.should_retry(ValueError(), 0)
        assert policy.should_retry(ValueError(), 1)
        assert not policy.should_retry(ValueError(), 2)
        assert not policy.should_retry(KeyError(), 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)


def fail_n_times(n, exc=RuntimeError):
    """A task body that raises on its first *n* calls then succeeds."""
    calls = []

    def body():
        calls.append(None)
        if len(calls) <= n:
            raise exc(f"transient #{len(calls)}")
    body.calls = calls
    return body


FAST = RetryPolicy(max_retries=2, backoff_seconds=0.001,
                   max_backoff_seconds=0.01)


class TestSerialEngineRetry:
    def test_transient_failure_retries_to_success(self, registry):
        engine = SerialEngine(retry_policy=FAST)
        body = fail_n_times(2)
        engine.spawn(body, name="fwd:e1")
        assert engine.run_until_idle() == 1
        assert len(body.calls) == 3
        assert metric_total(registry, "engine.tasks.retried") == 2

    def test_budget_exhaustion_raises(self, registry):
        engine = SerialEngine(retry_policy=FAST)
        body = fail_n_times(3)
        engine.spawn(body, name="fwd:e1")
        with pytest.raises(RuntimeError, match="transient #3"):
            engine.run_until_idle()
        assert metric_total(registry, "engine.failed") == 1

    def test_no_policy_fails_immediately(self, registry):
        engine = SerialEngine()
        body = fail_n_times(1)
        engine.spawn(body, name="fwd:e1")
        with pytest.raises(RuntimeError, match="transient #1"):
            engine.run_until_idle()
        assert len(body.calls) == 1

    def test_injected_fault_is_retried(self, registry):
        install_plan(FaultPlan([FaultSpec.parse("fail:fwd:1")]))
        engine = SerialEngine(retry_policy=FAST)
        ran = []
        engine.spawn(lambda: ran.append(1), name="fwd:e1")
        engine.run_until_idle()
        assert ran == [1]
        assert metric_total(registry, "engine.tasks.retried") == 1

    def test_advisory_timeout_counts_but_completes(self, registry):
        policy = RetryPolicy(timeout=0.005)
        engine = SerialEngine(retry_policy=policy)
        engine.spawn(lambda: time.sleep(0.02), name="fwd:slow")
        assert engine.run_until_idle() == 1
        assert metric_total(registry, "engine.tasks.timed_out") == 1


class TestTaskEngineRetry:
    def test_transient_failure_retries_to_success(self, registry):
        done = threading.Event()
        calls = []

        def body():
            calls.append(None)
            if len(calls) <= 2:
                raise RuntimeError("transient")
            done.set()

        with TaskEngine(num_workers=2, retry_policy=FAST) as engine:
            engine.spawn(body, name="fwd:e1")
            assert done.wait(timeout=5)
        assert engine.errors == []
        assert metric_total(registry, "engine.tasks.retried") == 2

    def test_budget_exhaustion_propagates(self, registry):
        engine = TaskEngine(num_workers=2, retry_policy=FAST).start()
        engine.spawn(fail_n_times(10), name="fwd:e1")
        time.sleep(0.2)
        with pytest.raises(RuntimeError, match="transient"):
            engine.shutdown()
        assert metric_total(registry, "engine.tasks.retried") == 2

    def test_injected_fault_is_retried(self, registry):
        install_plan(FaultPlan([FaultSpec.parse("fail:fwd:1")]))
        done = threading.Event()
        with TaskEngine(num_workers=2, retry_policy=FAST) as engine:
            engine.spawn(done.set, name="fwd:e1")
            assert done.wait(timeout=5)
        assert engine.errors == []
        assert metric_total(registry, "resilience.faults_injected") == 1


class TestWatchdogTimeout:
    def test_hung_task_reissued_and_run_completes(self, registry):
        install_plan(FaultPlan([FaultSpec.parse("hang:fwd:1")],
                               hang_seconds=5.0))
        policy = RetryPolicy(max_retries=2, backoff_seconds=0.001,
                             timeout=0.05)
        done = threading.Event()
        engine = TaskEngine(num_workers=1, retry_policy=policy).start()
        engine.spawn(done.set, name="fwd:e1")
        # The first attempt hangs in the injected fault; the watchdog
        # abandons it and a replacement worker runs the clone.
        assert done.wait(timeout=5)
        engine.shutdown()
        assert engine.errors == []
        assert metric_total(registry, "engine.tasks.timed_out") == 1
        assert metric_total(registry, "engine.tasks.retried") >= 1

    def test_timeout_without_budget_is_fatal(self, registry):
        install_plan(FaultPlan([FaultSpec.parse("hang:fwd:1x5")],
                               hang_seconds=5.0))
        policy = RetryPolicy(max_retries=0, backoff_seconds=0.001,
                             timeout=0.05)
        engine = TaskEngine(num_workers=1, retry_policy=policy).start()
        engine.spawn(lambda: None, name="fwd:e1")
        deadline = time.time() + 5
        while not engine.errors and time.time() < deadline:
            time.sleep(0.01)
        with pytest.raises(TaskTimeout):
            engine.shutdown()

    def test_shutdown_not_blocked_by_hung_worker(self, registry):
        install_plan(FaultPlan([FaultSpec.parse("hang:fwd:1x10")],
                               hang_seconds=2.0))
        policy = RetryPolicy(max_retries=0, timeout=0.05)
        engine = TaskEngine(num_workers=1, retry_policy=policy).start()
        engine.spawn(lambda: None, name="fwd:e1")
        deadline = time.time() + 5
        while not engine.errors and time.time() < deadline:
            time.sleep(0.01)
        t0 = time.perf_counter()
        with pytest.raises(TaskTimeout):
            engine.shutdown()
        # Hung workers are daemon threads joined only briefly.
        assert time.perf_counter() - t0 < 1.0


class TestAttachedSubtaskNotRetried:
    def test_failure_in_attached_subtask_is_fatal(self, registry):
        """A failing *attached* subtask must not re-run its COMPLETED
        parent: reset_for_retry refuses and the error propagates."""
        from repro.scheduler import LOWEST_PRIORITY, Task

        started = threading.Event()
        release = threading.Event()
        upd_runs = []

        def upd_body():
            upd_runs.append(1)
            started.set()
            release.wait(5)

        engine = TaskEngine(num_workers=2, retry_policy=FAST).start()
        upd = Task(upd_body, priority=LOWEST_PRIORITY, name="upd:e1")
        engine.submit(upd)

        def fwd():
            assert started.wait(5)
            # upd is EXECUTING: the failing subtask attaches to it and
            # runs on the updating worker once the body completes.
            engine.force(upd, lambda: 1 / 0, name="do-fwd:e1")
            release.set()

        engine.spawn(fwd, name="fwd:e1")
        deadline = time.time() + 5
        while not engine.errors and time.time() < deadline:
            time.sleep(0.01)
        with pytest.raises(ZeroDivisionError):
            engine.shutdown()
        assert upd_runs == [1]  # the parent body ran exactly once
        assert metric_total(registry, "engine.tasks.retried") == 0
