"""Graceful degradation: FFT→direct fallback and engine fallback."""

import numpy as np
import pytest

from repro.core import Network, SGD
from repro.graph import build_layered_network
from repro.observability import MetricsRegistry, set_registry
from repro.resilience import FaultPlan, clear_plan, install_plan
from repro.scheduler import SerialEngine


@pytest.fixture(autouse=True)
def clean_faults():
    clear_plan()
    yield
    clear_plan()


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def make_net(conv_mode, seed=0, num_workers=1):
    graph = build_layered_network("CTC", width=2, kernel=2,
                                  transfer="tanh")
    return Network(graph, input_shape=(8, 8, 8), seed=seed,
                   conv_mode=conv_mode, num_workers=num_workers,
                   optimizer=SGD(learning_rate=0.01, momentum=0.9))


class TestFftFallback:
    def test_forward_fault_degrades_edge_and_matches_direct(self, rng,
                                                            registry):
        x = rng.standard_normal((8, 8, 8))
        reference = make_net("direct", seed=5).forward(x)

        install_plan(FaultPlan.from_string("fail:fft:1"))
        net = make_net("fft", seed=5)
        with pytest.warns(RuntimeWarning, match="falling back to direct"):
            out = net.forward(x)
        degraded = [name for name, e in net.edges.items()
                    if getattr(e, "mode", None) == "fft" and not e.fft_ok]
        assert len(degraded) == 1
        # The autotune state records the mode actually executing.
        assert net.conv_modes[degraded[0]] == "direct"
        assert net.edges[degraded[0]].effective_mode == "direct"
        assert registry.snapshot()["resilience.fft_fallback"] == 1
        # The fallback contribution is exact: outputs match the
        # direct-mode network (other edges still ran FFT).
        for name in reference:
            np.testing.assert_allclose(out[name], reference[name],
                                       atol=1e-10)

    def test_training_continues_through_fft_faults(self, rng, registry):
        install_plan(FaultPlan.from_string("fail:fft:2,fail:fft:5"))
        net = make_net("fft", seed=1)
        x = rng.standard_normal((8, 8, 8))
        t = {n.name: np.zeros(n.shape) for n in net.output_nodes}
        with pytest.warns(RuntimeWarning):
            for _ in range(3):
                loss = net.train_step(x, t)
                assert np.isfinite(loss)
        net.synchronize()
        assert registry.snapshot()["resilience.fft_fallback"] >= 1

    def test_degraded_edge_stays_direct(self, rng):
        install_plan(FaultPlan.from_string("fail:fft:1"))
        net = make_net("fft", seed=2)
        x = rng.standard_normal((8, 8, 8))
        with pytest.warns(RuntimeWarning):
            net.forward(x)
        install_plan(FaultPlan.from_string("fail:nothing:1"))
        net.forward(x)  # no further faults, no further warnings
        # The degraded edge never re-enters the FFT path, so the "fft"
        # family sees fewer checks than a healthy network would make.
        assert any(not e.fft_ok for e in net.edges.values()
                   if getattr(e, "mode", None) == "fft")

    def test_gradients_stay_correct_after_degradation(self, rng):
        """Training after a backward-pass degradation converges on the
        same parameters as a direct-mode twin."""
        x = rng.standard_normal((8, 8, 8))
        t = None

        def run(conv_mode, plan_text=None):
            clear_plan()
            if plan_text:
                install_plan(FaultPlan.from_string(plan_text))
            net = make_net(conv_mode, seed=7)
            nonlocal t
            if t is None:
                t = {n.name: np.zeros(n.shape) for n in net.output_nodes}
            for _ in range(2):
                net.train_step(x, t)
            net.synchronize()
            return net.kernels()

        # "1x500" fails every fft product check, degrading every site
        direct = run("direct")
        with pytest.warns(RuntimeWarning):
            chaos = run("fft", "fail:fft:1x500")
        for name in direct:
            np.testing.assert_allclose(chaos[name], direct[name],
                                       atol=1e-10)


class TestEngineDegradation:
    def test_engine_start_fault_degrades_to_serial(self, registry):
        install_plan(FaultPlan.from_string("fail:engine-start:1"))
        with pytest.warns(RuntimeWarning, match="degrading to the serial"):
            net = make_net("direct", num_workers=4)
        assert isinstance(net.engine, SerialEngine)
        assert net.num_workers == 1
        assert registry.snapshot()["resilience.engine_degraded"] == 1

    def test_degraded_network_still_trains(self, rng, registry):
        install_plan(FaultPlan.from_string("fail:engine-start:1"))
        with pytest.warns(RuntimeWarning):
            net = make_net("direct", num_workers=4)
        x = rng.standard_normal((8, 8, 8))
        t = {n.name: np.zeros(n.shape) for n in net.output_nodes}
        loss = net.train_step(x, t)
        assert np.isfinite(loss)
        net.close()

    def test_no_fault_keeps_parallel_engine(self):
        net = make_net("direct", num_workers=2)
        assert not isinstance(net.engine, SerialEngine)
        assert net.num_workers == 2
        net.close()
