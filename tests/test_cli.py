"""CLI and reporting tests."""

import numpy as np
import pytest

from repro import reporting
from repro.cli import build_parser, main


class TestReporting:
    def test_render_table(self):
        text = reporting.render_table("T", ["a", "bb"], [[1, 2], [30, 4]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "bb" in lines[1]
        assert "30" in lines[4]

    def test_figure4_structure(self):
        header, rows = reporting.figure4(widths=(5, 20))
        assert header == ["P", "w=5", "w=20"]
        assert len(rows) == 5  # FIG4_PROCESSORS

    def test_figure5_structure(self):
        header, rows = reporting.figure5("xeon-8", 3, widths=(5,))
        assert header[0] == "width"
        assert len(rows) == 1

    def test_figure6_7(self):
        header, rows = reporting.figure6_7(3, widths=(5,),
                                           machine_keys=("xeon-8",))
        assert rows[0][0] == "xeon-8"
        assert float(rows[0][1]) > 1.0

    def test_figure8_has_oom(self):
        header, rows = reporting.figure8(outputs=(8,))
        flat = [c for row in rows for c in row]
        assert "OOM" in flat

    def test_figure9_winners(self):
        header, rows = reporting.figure9()
        winners = {row[-1] for row in rows}
        assert winners == {"theano", "znn"}

    def test_table5(self):
        header, rows = reporting.table5()
        assert len(rows) == 4


class TestCliCommands:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out and "Xeon Phi" in out

    @pytest.mark.parametrize("number", ["4", "8", "9"])
    def test_figures_fast(self, number, capsys):
        assert main(["figure", number]) == 0
        out = capsys.readouterr().out
        assert "Fig" in out

    def test_figure5(self, capsys):
        assert main(["figure", "5", "--machine", "xeon-8",
                     "--dims", "3"]) == 0
        assert "xeon-8" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--machine", "xeon-8", "--width", "5",
                     "--threads", "8"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_simulate_default_threads(self, capsys):
        assert main(["simulate", "--machine", "xeon-8", "--width", "5"]) == 0
        assert "threads   16" in capsys.readouterr().out

    def test_autotune(self, capsys):
        assert main(["autotune", "--image", "12", "--kernels", "2",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "chosen" in out

    def test_train_default_network(self, capsys, tmp_path):
        ckpt = tmp_path / "model.npz"
        assert main(["train", "--rounds", "2", "--input-size", "20",
                     "--volume-size", "32", "--conv-mode", "direct",
                     "--checkpoint", str(ckpt)]) == 0
        out = capsys.readouterr().out
        assert "loss/voxel" in out
        assert ckpt.exists()

    def test_train_from_spec_file(self, capsys, tmp_path):
        spec = tmp_path / "net.cfg"
        spec.write_text("[layered]\nspec = CTC\nwidth = 2 1\nkernel = 2\n"
                        "transfer = tanh\nfinal_transfer = linear\n")
        assert main(["train", "--spec", str(spec), "--rounds", "2",
                     "--input-size", "10", "--volume-size", "24",
                     "--conv-mode", "direct"]) == 0
        assert "loss/voxel" in capsys.readouterr().out

    def test_train_checkpoint_loadable(self, tmp_path, capsys):
        ckpt = tmp_path / "model.npz"
        main(["train", "--rounds", "1", "--input-size", "20",
              "--volume-size", "32", "--conv-mode", "direct",
              "--checkpoint", str(ckpt)])
        capsys.readouterr()
        from repro.core import Network, load_network
        from repro.graph import build_layered_network

        graph = build_layered_network("CTMCTCT", width=6, kernel=3,
                                      window=2, transfer="tanh",
                                      final_transfer="linear",
                                      skip_kernels=True, output_nodes=1)
        net = Network(graph, input_shape=(20, 20, 20), seed=5)
        assert load_network(net, ckpt) == 1


class TestParallelTrain:
    _FAST = ["--rounds", "1", "--input-size", "20", "--volume-size",
             "32", "--conv-mode", "direct"]

    def test_workers_exceeding_cpus_exits_nonzero(self, monkeypatch,
                                                  capsys):
        monkeypatch.setattr("repro.parallel.trainer.visible_cpus",
                            lambda: 1)
        assert main(["train", "--workers", "2", *self._FAST]) == 2
        err = capsys.readouterr().err
        assert "--workers 2 exceeds the 1 visible CPU(s)" in err
        assert "--oversubscribe" in err

    def test_workers_within_cpus_accepted(self, monkeypatch, capsys):
        monkeypatch.setattr("repro.parallel.trainer.visible_cpus",
                            lambda: 8)
        assert main(["train", "--workers", "1", "--batch", "2",
                     *self._FAST]) == 0
        out = capsys.readouterr().out
        assert "data-parallel: 1 process(es), global batch 2" in out
        assert "state digest: " in out

    @pytest.mark.parametrize("value", ["0", "-1"])
    def test_invalid_worker_count_rejected(self, value, capsys):
        assert main(["train", "--workers", value, *self._FAST]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_incompatible_flags_rejected(self, tmp_path, capsys):
        assert main(["train", "--workers", "1", "--resume",
                     "--checkpoint-dir", str(tmp_path), *self._FAST]) == 2
        assert "not supported with data-parallel" \
            in capsys.readouterr().err

    @pytest.mark.slow
    def test_digest_is_workers_invariant_via_cli(self, capsys):
        """--workers 1 and --workers 2 print the same state digest for
        the same seed (the acceptance contract, at CLI level)."""

        def digest_of(argv):
            assert main(argv) == 0
            out = capsys.readouterr().out
            return [line for line in out.splitlines()
                    if line.startswith("state digest: ")][0]

        base = ["train", "--batch", "2", "--seed", "3", *self._FAST]
        d1 = digest_of([*base, "--workers", "1"])
        d2 = digest_of([*base, "--workers", "2", "--oversubscribe"])
        assert d1 == d2


class TestObservabilityCommands:
    _SIZE = ["--input-size", "20", "--volume-size", "32"]

    def test_metrics_table(self, capsys):
        assert main(["metrics", "--rounds", "1", *self._SIZE,
                     "--conv-mode", "fft"]) == 0
        out = capsys.readouterr().out
        assert "queue.pop" in out
        assert "fft_cache.hit" in out and "fft_cache.miss" in out
        assert "pool.alloc" in out

    def test_metrics_json(self, capsys):
        import json

        assert main(["metrics", "--rounds", "1", *self._SIZE,
                     "--conv-mode", "direct", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["queue.pop"] > 0
        assert snap["train.rounds"] == 1

    def test_trace_writes_chrome_json(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "trace.json"
        assert main(["trace", "--out", str(out_file), "--rounds", "1",
                     "--workers", "2", *self._SIZE]) == 0
        with open(out_file) as fh:
            doc = json.load(fh)
        slices = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert slices
        assert all({"name", "ts", "dur", "tid"} <= set(e) for e in slices)

    def test_train_trace_out_and_metrics(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "trace.json"
        assert main(["train", "--rounds", "2", *self._SIZE,
                     "--conv-mode", "fft", "--trace-out", str(out_file),
                     "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "loss/voxel" in out
        assert "queue.pop" in out  # --metrics table
        with open(out_file) as fh:
            doc = json.load(fh)
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])


class TestResilienceCli:
    @pytest.fixture(autouse=True)
    def clean_faults(self):
        from repro.resilience import clear_plan

        clear_plan()
        yield
        clear_plan()

    def _spec(self, tmp_path):
        spec = tmp_path / "net.cfg"
        spec.write_text("[layered]\nspec = CTC\nwidth = 2 1\nkernel = 2\n"
                        "transfer = tanh\nfinal_transfer = linear\n")
        return spec

    def _train(self, tmp_path, *extra):
        return main(["train", "--spec", str(self._spec(tmp_path)),
                     "--input-size", "10", "--volume-size", "24",
                     "--conv-mode", "direct", *extra])

    def test_checkpoint_flags_write_and_print(self, capsys, tmp_path):
        ckdir = tmp_path / "ckpts"
        assert self._train(tmp_path, "--rounds", "2",
                           "--checkpoint-every", "1",
                           "--checkpoint-dir", str(ckdir)) == 0
        out = capsys.readouterr().out
        assert "latest checkpoint:" in out
        names = sorted(p.name for p in ckdir.iterdir())
        assert names[-1] == "ckpt-00000002.npz"

    def test_resume_continues_previous_run(self, capsys, tmp_path):
        ckdir = tmp_path / "ckpts"
        assert self._train(tmp_path, "--rounds", "2",
                           "--checkpoint-every", "1",
                           "--checkpoint-dir", str(ckdir)) == 0
        capsys.readouterr()
        assert self._train(tmp_path, "--rounds", "4", "--resume",
                           "--checkpoint-every", "1",
                           "--checkpoint-dir", str(ckdir)) == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        assert "2 rounds remaining" in out
        assert (ckdir / "ckpt-00000004.npz").exists()

    def test_resume_with_nothing_to_do(self, capsys, tmp_path):
        ckdir = tmp_path / "ckpts"
        assert self._train(tmp_path, "--rounds", "1",
                           "--checkpoint-every", "1",
                           "--checkpoint-dir", str(ckdir)) == 0
        capsys.readouterr()
        assert self._train(tmp_path, "--rounds", "1", "--resume",
                           "--checkpoint-dir", str(ckdir)) == 0
        assert "0 rounds remaining" in capsys.readouterr().out

    def test_resume_requires_checkpoint_dir(self, capsys, tmp_path):
        assert self._train(tmp_path, "--rounds", "1", "--resume") == 2

    def test_checkpoint_every_requires_dir(self, capsys, tmp_path):
        assert self._train(tmp_path, "--rounds", "1",
                           "--checkpoint-every", "1") == 2

    def test_recovery_events_none_on_clean_run(self, capsys, tmp_path):
        assert self._train(tmp_path, "--rounds", "1") == 0
        assert "recovery events: none" in capsys.readouterr().out

    def test_recovery_events_reported(self, capsys, tmp_path):
        from repro.resilience import FaultPlan, install_plan

        install_plan(FaultPlan.from_string("corrupt:loss:1"))
        ckdir = tmp_path / "ckpts"
        assert self._train(tmp_path, "--rounds", "2",
                           "--checkpoint-every", "1",
                           "--checkpoint-dir", str(ckdir)) == 0
        out = capsys.readouterr().out
        assert "recovery events:" in out
        assert "loss rollbacks 1" in out
        assert "injected faults 1" in out

    def test_task_retries_flag(self, capsys, tmp_path):
        from repro.resilience import FaultPlan, install_plan

        install_plan(FaultPlan.from_string("fail:fwd:1"))
        assert self._train(tmp_path, "--rounds", "1",
                           "--task-retries", "2") == 0
        out = capsys.readouterr().out
        assert "task retries 1" in out


class TestGradcheckCommand:
    def test_passing_network(self, capsys, tmp_path):
        spec = tmp_path / "net.cfg"
        spec.write_text("[layered]\nspec = CTC\nwidth = 2 1\nkernel = 2\n"
                        "transfer = tanh\n")
        assert main(["gradcheck", "--spec", str(spec),
                     "--input-size", "8"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_fft_mode(self, capsys, tmp_path):
        spec = tmp_path / "net.cfg"
        spec.write_text("[layered]\nspec = CT\nwidth = 1\nkernel = 2\n"
                        "transfer = logistic\n")
        assert main(["gradcheck", "--spec", str(spec), "--input-size", "8",
                     "--conv-mode", "fft"]) == 0


class TestObservabilityCli:
    _SIZE = ["--input-size", "20", "--volume-size", "32"]

    def test_profile_writes_validated_cost_model(self, capsys, tmp_path):
        import json

        from repro.observability.profile import validate_cost_model

        out_file = tmp_path / "cost_model.json"
        assert main(["profile", "--out", str(out_file), "--rounds", "1",
                     *self._SIZE, "--conv-mode", "direct"]) == 0
        out = capsys.readouterr().out
        assert "cost model written" in out
        assert "gflop/s" in out
        doc = validate_cost_model(json.load(open(out_file)))
        assert {e["op"] for e in doc["entries"]} == {"fwd", "bwd", "upd"}

    def test_profile_json_mode(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "cost_model.json"
        assert main(["profile", "--out", str(out_file), "--rounds", "1",
                     *self._SIZE, "--json"]) == 0
        stdout = capsys.readouterr().out
        doc = json.loads(stdout[:stdout.rindex("}") + 1])
        assert doc["schema"] == "repro.cost_model/v1"

    def test_slo_reports_attainment(self, capsys):
        assert main(["slo", "--requests", "3", "--volume-size", "12",
                     "--workers", "1", "--deadline", "30"]) == 0
        out = capsys.readouterr().out
        assert "SLO report" in out
        assert "attainment" in out

    def test_trace_merge_and_tree(self, capsys, tmp_path):
        import json

        from repro.observability.tracing import Tracer, write_trace_file

        a = Tracer(enabled=True, process="coordinator")
        b = Tracer(enabled=True, process="worker-1")
        with a.span("round:0"):
            pass
        with b.span("worker.round"):
            pass
        pa, pb = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        write_trace_file(pa, a)
        write_trace_file(pb, b)
        merged = tmp_path / "merged.json"
        assert main(["trace", "--merge", pa, pb,
                     "--out", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "coordinator, worker-1" in out
        doc = json.load(open(merged))
        pids = {e["pid"] for e in doc["traceEvents"]
                if e.get("ph") == "M" and e.get("name") == "process_name"}
        assert pids == {0, 1}
        assert main(["trace", "--merge", pa, pb, "--tree"]) == 0
        tree = capsys.readouterr().out
        assert "round:0" in tree and "worker.round" in tree

    def test_trace_merge_rejects_garbage(self, capsys, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert main(["trace", "--merge", str(bogus),
                     "--out", str(tmp_path / "out.json")]) == 1
        assert "merge failed" in capsys.readouterr().err


class TestAsciiChart:
    def test_renders_all_series(self):
        chart = reporting.ascii_chart(
            {"a": [(0, 0.0), (10, 5.0)], "b": [(0, 5.0), (10, 0.0)]},
            width=30, height=8)
        assert "*" in chart and "o" in chart
        assert "a" in chart and "b" in chart

    def test_empty(self):
        assert reporting.ascii_chart({}) == "(no data)"

    def test_constant_series_no_crash(self):
        chart = reporting.ascii_chart({"flat": [(0, 1.0), (5, 1.0)]})
        assert "flat" in chart

    def test_axis_labels(self):
        chart = reporting.ascii_chart({"a": [(0, 0), (1, 1)]},
                                      x_label="width", y_label="speedup")
        assert "width" in chart and "speedup" in chart

    def test_cli_chart_flag(self, capsys):
        assert main(["figure", "7", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "network width" in out


class TestFleetCli:
    def test_serve_parser_accepts_fleet_flags(self):
        args = build_parser().parse_args(
            ["serve", "--spec", "m.spec", "--fleet", "3",
             "--inflight-per-worker", "2", "--request-attempts", "4",
             "--drain-timeout", "5"])
        assert args.fleet == 3
        assert args.inflight_per_worker == 2
        assert args.request_attempts == 4
        assert args.drain_timeout == 5.0

    def test_fleet_defaults_to_single_process(self):
        args = build_parser().parse_args(["serve", "--spec", "m.spec"])
        assert args.fleet == 0

    def test_fleet_status_parser(self):
        args = build_parser().parse_args(["fleet", "status", "--json"])
        assert args.command == "fleet"
        assert args.json

    def test_fleet_status_renders_worker_table(self, capsys,
                                               monkeypatch):
        # `repro fleet status` reads /healthz; fake the HTTP round
        # trip and check the rendering of a fleet-shaped document.
        import io
        import json as jsonlib
        import urllib.request

        doc = {
            "status": "ok", "role": "fleet", "models": ["small"],
            "queue_depth": 1, "orphaned": 0, "max_queue": 16,
            "admission": {"capacity": 16},
            "workers": {
                "0": {"state": "healthy", "pid": 11, "restarts": 2,
                      "queued": 1, "inflight": 0, "served": 9,
                      "deadline_missed": 0,
                      "last_restart_reason": "crash: injected fault"},
                "1": {"state": "quarantined", "pid": None,
                      "restarts": 3, "queued": 0, "inflight": 0,
                      "served": 4, "deadline_missed": 1,
                      "last_restart_reason":
                          "hang: no heartbeat for 0.50s"},
            },
        }

        def fake_urlopen(url, timeout=None):
            body = io.BytesIO(jsonlib.dumps(doc).encode("utf-8"))
            body.read  # noqa: B018 - shaped like HTTPResponse enough
            class Resp:
                def __enter__(self):
                    return body
                def __exit__(self, *exc):
                    return False
            return Resp()

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        assert main(["fleet", "status"]) == 0
        out = capsys.readouterr().out
        assert "fleet status: ok" in out
        assert "quarantined" in out
        assert "crash: injected fault" in out
        assert "hang: no heartbeat" in out

    def test_fleet_status_unreachable_exits_nonzero(self, capsys):
        # Nothing listens on this port.
        assert main(["fleet", "status",
                     "--url", "http://127.0.0.1:9"]) == 69
        assert "cannot reach" in capsys.readouterr().err


class TestLoadtestCli:
    ARGS = ["loadtest", "--sim", "--scenario", "flash-crowd",
            "--duration", "20", "--rate", "2", "--seed", "7",
            "--size", "12:12", "--workers", "2"]

    def test_sim_report_is_byte_identical(self, capsys, tmp_path):
        # The determinism satellite: same seed, same flags => the
        # written report file is byte-for-byte identical.
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        assert main([*self.ARGS, "--autoscale", "1:3",
                     "--out", str(a)]) == 0
        assert main([*self.ARGS, "--autoscale", "1:3",
                     "--out", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()
        assert len(a.read_bytes()) > 0

    def test_sim_emits_valid_report(self, capsys, tmp_path):
        import json

        from repro.loadgen import validate_loadtest_report

        out = tmp_path / "report.json"
        trace = tmp_path / "trace.jsonl"
        assert main([*self.ARGS, "--out", str(out),
                     "--emit-trace", str(trace), "--json"]) == 0
        stdout = capsys.readouterr().out
        doc = validate_loadtest_report(json.load(open(out)))
        assert doc["mode"] == "sim"
        assert doc["trace"]["name"] == "flash-crowd"
        assert json.loads(stdout)["schema"] == doc["schema"]
        # The emitted trace replays to the same report.
        from repro.loadgen import load_trace
        assert len(load_trace(str(trace))) == doc["trace"]["requests"]

    def test_table_output(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "loadtest (sim)" in out
        assert "served" in out

    def test_multiplier_scales_trace(self, capsys):
        assert main([*self.ARGS, "--multiplier", "10", "--json"]) == 0
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["trace"]["multiplier"] == 10.0
        assert doc["trace"]["duration"] == pytest.approx(2.0)

    def test_bad_size_range_rejected(self):
        with pytest.raises(SystemExit):
            main(["loadtest", "--sim", "--size", "banana"])

    def test_autoscale_requires_fleet_in_live_mode(self):
        with pytest.raises(SystemExit):
            main(["loadtest", "--scenario", "steady", "--duration",
                  "1", "--autoscale", "1:2"])


class TestLintExitCodes:
    """`repro lint` exits non-zero only on *unsuppressed* findings."""

    ACTIVE = ("# deterministic\n"
              "def entry(slots: set) -> float:\n"
              "    return sum(slots)\n")
    SUPPRESSED = ("# deterministic\n"
                  "def entry() -> float:\n"
                  "    return helper()\n"
                  "\n"
                  "def helper():  # nondeterministic: diagnostics\n"
                  "    return sum({1.0, 2.0})\n")

    def test_exit_one_on_active_finding(self, capsys, tmp_path):
        path = tmp_path / "active.py"
        path.write_text(self.ACTIVE)
        assert main(["lint", "--rules", "determinism", str(path)]) == 1
        captured = capsys.readouterr()
        assert "reassociating-reduction" in captured.out
        assert "1 violation(s)" in captured.err

    def test_exit_zero_when_all_findings_suppressed(self, capsys,
                                                    tmp_path):
        path = tmp_path / "suppressed.py"
        path.write_text(self.SUPPRESSED)
        assert main(["lint", "--rules", "determinism", str(path)]) == 0
        captured = capsys.readouterr()
        assert "clean" in captured.out
        assert "1 suppressed" in captured.err

    def test_show_suppressed_lists_but_still_exits_zero(self, capsys,
                                                        tmp_path):
        path = tmp_path / "suppressed.py"
        path.write_text(self.SUPPRESSED)
        assert main(["lint", "--rules", "determinism",
                     "--show-suppressed", str(path)]) == 0
        out = capsys.readouterr().out
        assert "[suppressed: diagnostics]" in out

    def test_exit_zero_on_clean_file(self, capsys, tmp_path):
        path = tmp_path / "clean.py"
        path.write_text("def fine() -> int:\n    return 1\n")
        assert main(["lint", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_sarif_embeds_suppressions_and_exits_zero(self, capsys,
                                                      tmp_path):
        import json

        path = tmp_path / "suppressed.py"
        path.write_text(self.SUPPRESSED)
        assert main(["lint", "--rules", "determinism",
                     "--format", "sarif", str(path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        assert results[0]["suppressions"][0]["justification"] \
            == "diagnostics"

    def test_sarif_on_active_finding_exits_one(self, capsys, tmp_path):
        import json

        path = tmp_path / "active.py"
        path.write_text(self.ACTIVE)
        assert main(["lint", "--rules", "determinism",
                     "--format", "sarif", str(path)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"][0]["ruleId"] == "determinism"


class TestCheckDeterminismCli:
    """`repro check-determinism` rendering and exit codes (the probe
    itself is exercised in tests/analysis/test_sanitizer.py)."""

    @staticmethod
    def _doc(matched):
        doc = {
            "schema": "repro.determinism-check/v1",
            "matched": matched,
            "stages": ["train", "serve"],
            "runs": [
                {"hash_seed": 0, "threads": 1,
                 "digests": {"train": "aa", "serve": "bb"}},
                {"hash_seed": 4242, "threads": 2,
                 "digests": {"train": "aa",
                             "serve": "bb" if matched else "xx"}},
            ],
            "first_divergence": None if matched else {
                "stage": "serve", "run_a": "bb", "run_b": "xx"},
            "divergences": [] if matched else [
                {"stage": "serve", "run_a": "bb", "run_b": "xx"}],
        }
        return doc

    def test_matched_exits_zero(self, capsys, monkeypatch):
        import repro.analysis.runtime as runtime

        monkeypatch.setattr(runtime, "run_determinism_check",
                            lambda **kwargs: self._doc(True))
        assert main(["check-determinism"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "2 stage digest(s)" in out

    def test_divergence_exits_one_with_provenance(self, capsys,
                                                  monkeypatch):
        import repro.analysis.runtime as runtime

        monkeypatch.setattr(runtime, "run_determinism_check",
                            lambda **kwargs: self._doc(False))
        assert main(["check-determinism"]) == 1
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out and "'serve'" in out

    def test_json_output(self, capsys, monkeypatch):
        import json

        import repro.analysis.runtime as runtime

        monkeypatch.setattr(runtime, "run_determinism_check",
                            lambda **kwargs: self._doc(True))
        assert main(["check-determinism", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["matched"] is True

    def test_bad_seed_pair_rejected(self):
        with pytest.raises(SystemExit):
            main(["check-determinism", "--seeds", "1,2,3"])
