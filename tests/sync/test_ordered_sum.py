"""OrderedSum (deterministic accumulation) tests."""

import threading

import numpy as np
import pytest

from repro.sync import OrderedSum


class TestBasics:
    def test_in_order_reduction(self, rng):
        s = OrderedSum(3)
        arrays = [rng.standard_normal((3, 3, 3)) for _ in range(3)]
        assert not s.add(arrays[2], 2)
        assert not s.add(arrays[0], 0)
        assert s.add(arrays[1], 1)
        expected = arrays[0] + arrays[1] + arrays[2]
        np.testing.assert_array_equal(s.get(), expected)  # bitwise

    def test_arrival_order_irrelevant(self, rng):
        arrays = [rng.standard_normal((4, 4, 4)) for _ in range(4)]
        results = []
        for order in ([0, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1]):
            s = OrderedSum(4)
            for i in order:
                s.add(arrays[i], i)
            results.append(s.get())
        np.testing.assert_array_equal(results[0], results[1])
        np.testing.assert_array_equal(results[0], results[2])

    def test_missing_index_rejected(self, rng):
        s = OrderedSum(2)
        with pytest.raises(ValueError):
            s.add(rng.standard_normal((2, 2, 2)))

    def test_index_out_of_range(self, rng):
        s = OrderedSum(2)
        with pytest.raises(ValueError):
            s.add(rng.standard_normal((2, 2, 2)), 2)

    def test_duplicate_slot_rejected(self, rng):
        s = OrderedSum(2)
        s.add(rng.standard_normal((2, 2, 2)), 0)
        with pytest.raises(RuntimeError):
            s.add(rng.standard_normal((2, 2, 2)), 0)

    def test_get_before_complete(self, rng):
        s = OrderedSum(2)
        s.add(rng.standard_normal((2, 2, 2)), 0)
        with pytest.raises(RuntimeError):
            s.get()

    def test_reset_reuse(self, rng):
        s = OrderedSum(2)
        s.add(np.ones((2, 2, 2)), 0)
        s.add(np.ones((2, 2, 2)), 1)
        s.reset()
        a, b = rng.standard_normal((2, 2, 2)), rng.standard_normal((2, 2, 2))
        s.add(b, 1)
        s.add(a, 0)
        np.testing.assert_array_equal(s.get(), a + b)

    def test_threaded_matches_serial_bitwise(self, rng):
        arrays = [rng.standard_normal((8, 8, 8)) for _ in range(6)]
        serial = OrderedSum(6)
        for i, a in enumerate(arrays):
            serial.add(a.copy(), i)

        threaded = OrderedSum(6)
        barrier = threading.Barrier(6)

        def worker(i):
            barrier.wait()
            threaded.add(arrays[i].copy(), i)

        ts = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        np.testing.assert_array_equal(serial.get(), threaded.get())


class TestNetworkDeterminism:
    def test_bitwise_identical_across_worker_counts(self, rng):
        """The headline property: deterministic_sums=True makes full
        FFT-mode training bitwise reproducible regardless of thread
        count."""
        from repro.core import Network, SGD
        from repro.graph import build_layered_network

        x = rng.standard_normal((12, 12, 12))

        def run(workers):
            graph = build_layered_network("CTMCT", width=4, kernel=2,
                                          window=2, transfer="tanh")
            net = Network(graph, input_shape=(12, 12, 12), seed=5,
                          num_workers=workers, conv_mode="fft",
                          deterministic_sums=True,
                          optimizer=SGD(learning_rate=0.01))
            targets = {n.name: np.zeros(n.shape)
                       for n in net.output_nodes}
            losses = [net.train_step(x, targets) for _ in range(3)]
            net.synchronize()
            kernels = net.kernels()
            net.close()
            return losses, kernels

        losses1, kernels1 = run(1)
        losses4, kernels4 = run(4)
        assert losses1 == losses4  # float-exact
        for k in kernels1:
            np.testing.assert_array_equal(kernels1[k], kernels4[k])

    def test_deterministic_matches_waitfree_approximately(self, rng):
        from repro.core import Network
        from repro.graph import build_layered_network

        x = rng.standard_normal((10, 10, 10))

        def out(det):
            graph = build_layered_network("CTC", width=3, kernel=2)
            net = Network(graph, input_shape=(10, 10, 10), seed=2,
                          deterministic_sums=det)
            return net.forward(x)

        a, b = out(True), out(False)
        for k in a:
            np.testing.assert_allclose(a[k], b[k], atol=1e-10)
