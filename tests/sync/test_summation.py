"""Wait-free concurrent summation (Algorithm 4) tests — including
multi-threaded linearizability stress."""

import threading

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sync import ConcurrentSum, NaiveLockedSum

IMPLS = [ConcurrentSum, NaiveLockedSum]


@pytest.mark.parametrize("impl", IMPLS)
class TestSerialBehaviour:
    def test_single_contribution(self, impl):
        s = impl(1)
        assert s.add(np.full((2, 2, 2), 3.0)) is True
        np.testing.assert_array_equal(s.get(), np.full((2, 2, 2), 3.0))

    def test_three_contributions_sum(self, impl, rng):
        s = impl(3)
        arrays = [rng.standard_normal((3, 3, 3)) for _ in range(3)]
        expected = sum(a.copy() for a in arrays)
        flags = [s.add(a) for a in arrays]
        assert flags == [False, False, True]
        np.testing.assert_allclose(s.get(), expected, atol=1e-12)

    def test_get_before_complete_raises(self, impl):
        s = impl(2)
        s.add(np.zeros((1, 1, 1)))
        with pytest.raises(RuntimeError):
            s.get()

    def test_too_many_contributions_raise(self, impl):
        s = impl(1)
        s.add(np.zeros((1, 1, 1)))
        with pytest.raises(RuntimeError):
            s.add(np.zeros((1, 1, 1)))

    def test_complete_flag(self, impl):
        s = impl(2)
        assert not s.complete
        s.add(np.ones((1, 1, 1)))
        assert not s.complete
        s.add(np.ones((1, 1, 1)))
        assert s.complete

    def test_reset_allows_reuse(self, impl, rng):
        s = impl(2)
        s.add(np.ones((2, 2, 2)))
        s.add(np.ones((2, 2, 2)))
        s.reset()
        a = rng.standard_normal((2, 2, 2))
        b = rng.standard_normal((2, 2, 2))
        expected = a + b
        s.add(a)
        s.add(b)
        np.testing.assert_allclose(s.get(), expected, atol=1e-12)

    def test_reset_can_change_required(self, impl):
        s = impl(2)
        s.add(np.ones((1, 1, 1)))
        s.add(np.ones((1, 1, 1)))
        s.reset(required=3)
        assert s.required == 3

    def test_invalid_required_raises(self, impl):
        with pytest.raises(ValueError):
            impl(0)

    def test_complex_spectra(self, impl, rng):
        """FFT-mode nodes accumulate complex half-spectra."""
        s = impl(2)
        a = rng.standard_normal((2, 2, 2)) + 1j * rng.standard_normal((2, 2, 2))
        b = rng.standard_normal((2, 2, 2)) + 1j * rng.standard_normal((2, 2, 2))
        expected = a + b
        s.add(a)
        s.add(b)
        np.testing.assert_allclose(s.get(), expected, atol=1e-12)


@pytest.mark.parametrize("impl", IMPLS)
@pytest.mark.parametrize("threads", [2, 4, 8])
def test_threaded_sum_is_exact(impl, threads, rng):
    """N threads each contributing a distinct array must produce the
    exact total, and exactly one thread must observe last=True."""
    required = threads * 3
    arrays = [rng.standard_normal((8, 8, 8)) for _ in range(required)]
    expected = np.zeros((8, 8, 8))
    for a in arrays:
        expected = expected + a
    s = impl(required)
    last_flags = []
    flag_lock = threading.Lock()
    barrier = threading.Barrier(threads)

    def worker(idx):
        barrier.wait()
        for j in range(3):
            flag = s.add(arrays[idx * 3 + j].copy())
            with flag_lock:
                last_flags.append(flag)

    ts = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
    for t in ts:
        t.start()
    for t in ts:
        t.join()
    assert sum(last_flags) == 1
    np.testing.assert_allclose(s.get(), expected, atol=1e-10)


def test_many_rounds_of_threaded_reuse(rng):
    """Reset + reuse across rounds under threading (the per-node
    accumulator lifecycle)."""
    s = ConcurrentSum(4)
    for _ in range(10):
        arrays = [rng.standard_normal((4, 4, 4)) for _ in range(4)]
        expected = sum(a.copy() for a in arrays)
        done = threading.Event()

        def worker(a):
            if s.add(a):
                done.set()

        ts = [threading.Thread(target=worker, args=(a,)) for a in arrays]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert done.is_set()
        np.testing.assert_allclose(s.get(), expected, atol=1e-10)
        s.reset()


@given(counts=st.integers(1, 7), seed=st.integers(0, 999))
def test_property_serial_sum_exact(counts, seed):
    rng = np.random.default_rng(seed)
    s = ConcurrentSum(counts)
    arrays = [rng.standard_normal((2, 3, 4)) for _ in range(counts)]
    expected = sum(a.copy() for a in arrays)
    flags = [s.add(a) for a in arrays]
    assert flags[-1] is True and not any(flags[:-1])
    np.testing.assert_allclose(s.get(), expected, atol=1e-12)
