"""Heap-of-lists concurrent priority queue tests."""

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sync import HeapOfLists, QueueClosed


class TestOrdering:
    def test_lower_value_pops_first(self):
        q = HeapOfLists()
        q.push(5, "low-urgency")
        q.push(1, "high-urgency")
        assert q.pop(block=False) == (1, "high-urgency")

    def test_fifo_within_priority(self):
        q = HeapOfLists()
        for i in range(5):
            q.push(3, i)
        assert [q.pop(block=False)[1] for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_negative_priorities(self):
        q = HeapOfLists()
        q.push(0, "zero")
        q.push(-1, "provider")
        assert q.pop(block=False)[1] == "provider"

    def test_interleaved_push_pop(self):
        q = HeapOfLists()
        q.push(2, "b")
        q.push(1, "a")
        assert q.pop(block=False)[1] == "a"
        q.push(0, "c")
        assert q.pop(block=False)[1] == "c"
        assert q.pop(block=False)[1] == "b"

    @given(st.lists(st.integers(-5, 5), min_size=1, max_size=30))
    def test_property_pops_sorted_stable(self, priorities):
        q = HeapOfLists()
        for i, p in enumerate(priorities):
            q.push(p, i)
        out = [q.pop(block=False) for _ in priorities]
        # priorities nondecreasing; equal priorities in insertion order
        assert all(out[i][0] <= out[i + 1][0] for i in range(len(out) - 1))
        for p in set(priorities):
            idxs = [item for prio, item in out if prio == p]
            assert idxs == sorted(idxs)


class TestEmptyAndClosed:
    def test_pop_empty_nonblocking_raises(self):
        with pytest.raises(IndexError):
            HeapOfLists().pop(block=False)

    def test_pop_timeout(self):
        q = HeapOfLists()
        with pytest.raises(IndexError):
            q.pop(block=True, timeout=0.01)

    def test_close_wakes_blocked_popper(self):
        q = HeapOfLists()
        errors = []

        def popper():
            try:
                q.pop(block=True)
            except QueueClosed:
                errors.append("closed")

        t = threading.Thread(target=popper)
        t.start()
        q.close()
        t.join(timeout=2)
        assert errors == ["closed"]

    def test_push_after_close_raises(self):
        q = HeapOfLists()
        q.close()
        with pytest.raises(QueueClosed):
            q.push(0, "x")

    def test_drains_before_reporting_closed(self):
        q = HeapOfLists()
        q.push(0, "x")
        q.close()
        assert q.pop(block=False)[1] == "x"
        with pytest.raises(QueueClosed):
            q.pop(block=False)


class TestLazyInvalidation:
    def test_invalid_entries_skipped(self):
        q = HeapOfLists()
        alive = {"a": False, "b": True}
        q.push(0, "a", is_valid=lambda: alive["a"])
        q.push(1, "b", is_valid=lambda: alive["b"])
        assert q.pop(block=False)[1] == "b"

    def test_all_invalid_is_empty(self):
        q = HeapOfLists()
        q.push(0, "a", is_valid=lambda: False)
        with pytest.raises(IndexError):
            q.pop(block=False)


class TestHeapOfListsStructure:
    def test_distinct_priorities_counts_buckets(self):
        q = HeapOfLists()
        for i in range(100):
            q.push(i % 4, i)
        assert q.distinct_priorities() == 4  # K << N
        assert len(q) == 100

    def test_bucket_removed_when_empty(self):
        q = HeapOfLists()
        q.push(7, "x")
        q.pop(block=False)
        assert q.distinct_priorities() == 0


class TestConcurrency:
    def test_producers_and_consumers(self):
        q = HeapOfLists()
        produced = 200
        consumed = []
        lock = threading.Lock()

        def producer(base):
            for i in range(produced // 2):
                q.push(i % 7, (base, i))

        def consumer():
            while True:
                try:
                    _, item = q.pop(block=True, timeout=0.5)
                except (IndexError, QueueClosed):
                    return
                with lock:
                    consumed.append(item)

        ps = [threading.Thread(target=producer, args=(b,)) for b in range(2)]
        cs = [threading.Thread(target=consumer) for _ in range(3)]
        for t in ps + cs:
            t.start()
        for t in ps:
            t.join()
        for t in cs:
            t.join()
        assert len(consumed) == produced
        assert len(set(consumed)) == produced
