"""FFT convolution tests — exactness against the direct method at the
layer-common transform size, plan spectra reuse, sparse kernels."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tensor import (
    FftConvPlan,
    conv_backward_input,
    conv_kernel_gradient,
    correlate_valid,
    fft_conv_backward_input,
    fft_conv_kernel_gradient,
    fft_convolve_full,
    fft_correlate_valid,
)
from repro.tensor.conv_direct import convolve_full


@pytest.fixture
def image(rng):
    return rng.standard_normal((8, 9, 10))


@pytest.fixture
def kernel(rng):
    return rng.standard_normal((3, 2, 4))


class TestOneShotFunctions:
    def test_correlate_valid_matches_direct(self, image, kernel):
        np.testing.assert_allclose(fft_correlate_valid(image, kernel),
                                   correlate_valid(image, kernel),
                                   atol=1e-10)

    def test_backward_matches_direct(self, rng, image, kernel):
        grad = rng.standard_normal(correlate_valid(image, kernel).shape)
        np.testing.assert_allclose(fft_conv_backward_input(grad, kernel),
                                   conv_backward_input(grad, kernel),
                                   atol=1e-10)

    def test_kernel_gradient_matches_direct(self, rng, image, kernel):
        grad = rng.standard_normal(correlate_valid(image, kernel).shape)
        np.testing.assert_allclose(fft_conv_kernel_gradient(image, grad),
                                   conv_kernel_gradient(image, grad),
                                   atol=1e-10)

    def test_convolve_full_matches_direct(self, rng):
        a = rng.standard_normal((5, 6, 7))
        k = rng.standard_normal((2, 3, 2))
        np.testing.assert_allclose(fft_convolve_full(a, k),
                                   convolve_full(a, k), atol=1e-10)

    @pytest.mark.parametrize("sparsity", [2, (1, 2, 3)])
    def test_sparse_all_three_passes(self, rng, sparsity):
        img = rng.standard_normal((11, 12, 13))
        ker = rng.standard_normal((3, 2, 2))
        out = correlate_valid(img, ker, sparsity)
        grad = rng.standard_normal(out.shape)
        np.testing.assert_allclose(
            fft_correlate_valid(img, ker, sparsity), out, atol=1e-10)
        np.testing.assert_allclose(
            fft_conv_backward_input(grad, ker, sparsity),
            conv_backward_input(grad, ker, sparsity), atol=1e-10)
        np.testing.assert_allclose(
            fft_conv_kernel_gradient(img, grad, sparsity),
            conv_kernel_gradient(img, grad, sparsity), atol=1e-10)


class TestPlan:
    def test_transform_shape_is_input_shape(self):
        plan = FftConvPlan((8, 9, 10), (3, 3, 3))
        assert plan.transform_shape == (8, 9, 10)

    def test_output_shape(self):
        plan = FftConvPlan((8, 9, 10), (3, 3, 3), 2)
        assert plan.output_shape == (4, 5, 6)

    def test_kernel_spectrum_shared_by_fwd_and_bwd(self, rng):
        """The memoization contract: one kernel spectrum serves both
        the forward and the backward pass."""
        plan = FftConvPlan((8, 8, 8), (3, 3, 3))
        img = rng.standard_normal((8, 8, 8))
        ker = rng.standard_normal((3, 3, 3))
        grad = rng.standard_normal((6, 6, 6))
        fk = plan.kernel_spectrum(ker)
        fwd = plan.forward(plan.image_spectrum(img), fk)
        bwd = plan.backward(plan.grad_spectrum(grad), fk)
        np.testing.assert_allclose(fwd, correlate_valid(img, ker), atol=1e-10)
        np.testing.assert_allclose(bwd, conv_backward_input(grad, ker),
                                   atol=1e-10)

    def test_image_spectrum_shared_by_fwd_and_update(self, rng):
        plan = FftConvPlan((8, 8, 8), (3, 3, 3))
        img = rng.standard_normal((8, 8, 8))
        grad = rng.standard_normal((6, 6, 6))
        fi = plan.image_spectrum(img)
        fg = plan.grad_spectrum(grad)
        np.testing.assert_allclose(plan.kernel_gradient(fi, fg),
                                   conv_kernel_gradient(img, grad),
                                   atol=1e-10)

    def test_spectral_sum_equals_spatial_sum(self, rng):
        """Accumulating spectra then inverting once (the per-node sum)
        equals summing spatial outputs."""
        plan = FftConvPlan((7, 7, 7), (2, 2, 2))
        imgs = [rng.standard_normal((7, 7, 7)) for _ in range(3)]
        kers = [rng.standard_normal((2, 2, 2)) for _ in range(3)]
        spec_sum = sum(
            plan.forward_product(plan.image_spectrum(i),
                                 plan.kernel_spectrum(k))
            for i, k in zip(imgs, kers))
        spatial_sum = sum(correlate_valid(i, k) for i, k in zip(imgs, kers))
        np.testing.assert_allclose(plan.finalize_forward(spec_sum),
                                   spatial_sum, atol=1e-10)

    def test_wrong_image_shape_rejected(self, rng):
        plan = FftConvPlan((8, 8, 8), (3, 3, 3))
        with pytest.raises(ValueError):
            plan.image_spectrum(rng.standard_normal((7, 8, 8)))

    def test_wrong_grad_shape_rejected(self, rng):
        plan = FftConvPlan((8, 8, 8), (3, 3, 3))
        with pytest.raises(ValueError):
            plan.grad_spectrum(rng.standard_normal((8, 8, 8)))

    def test_wrong_kernel_shape_rejected(self, rng):
        plan = FftConvPlan((8, 8, 8), (3, 3, 3))
        with pytest.raises(ValueError):
            plan.kernel_spectrum(rng.standard_normal((2, 2, 2)))


@given(n=st.integers(4, 12), k=st.integers(1, 4), seed=st.integers(0, 999))
def test_property_fft_equals_direct(n, k, seed):
    """The size-n circular transform is exact for all three passes,
    for every (n, k) with k <= n (the fourier.py exactness argument)."""
    if k > n:
        return
    rng = np.random.default_rng(seed)
    img = rng.standard_normal((n, n, n))
    ker = rng.standard_normal((k, k, k))
    out = correlate_valid(img, ker)
    grad = rng.standard_normal(out.shape)
    np.testing.assert_allclose(fft_correlate_valid(img, ker), out, atol=1e-9)
    np.testing.assert_allclose(fft_conv_backward_input(grad, ker),
                               conv_backward_input(grad, ker), atol=1e-9)
    np.testing.assert_allclose(fft_conv_kernel_gradient(img, grad),
                               conv_kernel_gradient(img, grad), atol=1e-9)


@given(n=st.integers(5, 10), k=st.integers(2, 3), s=st.integers(1, 3),
       seed=st.integers(0, 999))
def test_property_fft_sparse_equals_direct(n, k, s, seed):
    if (k - 1) * s + 1 > n:
        return
    rng = np.random.default_rng(seed)
    img = rng.standard_normal((n, n, n))
    ker = rng.standard_normal((k, k, k))
    np.testing.assert_allclose(fft_correlate_valid(img, ker, s),
                               correlate_valid(img, ker, s), atol=1e-9)
