"""Max-filtering tests: strided forward vs the paper's heap-based
separable algorithm, sparse windows, Jacobian accumulation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from numpy.lib.stride_tricks import sliding_window_view

from repro.tensor import (
    max_filter_1d_heap,
    max_filter_backward,
    max_filter_forward,
    max_filter_separable,
)


class TestHeap1D:
    def test_matches_numpy(self, rng):
        a = rng.standard_normal(40)
        ref = sliding_window_view(a, 5).max(axis=1)
        np.testing.assert_array_equal(max_filter_1d_heap(a, 5), ref)

    def test_window_one_is_identity(self, rng):
        a = rng.standard_normal(10)
        np.testing.assert_array_equal(max_filter_1d_heap(a, 1), a)

    def test_window_equals_length(self, rng):
        a = rng.standard_normal(6)
        out = max_filter_1d_heap(a, 6)
        assert out.shape == (1,) and out[0] == a.max()

    def test_window_too_large_raises(self):
        with pytest.raises(ValueError):
            max_filter_1d_heap(np.zeros(3), 4)

    def test_window_zero_raises(self):
        with pytest.raises(ValueError):
            max_filter_1d_heap(np.zeros(3), 0)

    def test_with_duplicates(self):
        a = np.array([1.0, 1.0, 1.0, 0.0, 1.0])
        np.testing.assert_array_equal(max_filter_1d_heap(a, 2),
                                      [1.0, 1.0, 1.0, 1.0])

    @given(st.lists(st.floats(-100, 100), min_size=4, max_size=20),
           st.integers(1, 4))
    def test_property_matches_numpy(self, values, k):
        a = np.array(values)
        if k > len(a):
            return
        ref = sliding_window_view(a, k).max(axis=1)
        np.testing.assert_array_equal(max_filter_1d_heap(a, k), ref)


class TestForward:
    def test_shape(self, rng):
        out, argmax = max_filter_forward(rng.standard_normal((8, 9, 10)),
                                         (3, 2, 4))
        assert out.shape == (6, 8, 7)
        assert argmax.shape == (6, 8, 7, 3)

    def test_matches_separable(self, rng):
        img = rng.standard_normal((9, 9, 9))
        out, _ = max_filter_forward(img, 3)
        np.testing.assert_array_equal(out, max_filter_separable(img, 3))

    def test_matches_brute_force(self, rng):
        img = rng.standard_normal((6, 6, 6))
        out, _ = max_filter_forward(img, 2)
        for z in range(5):
            for y in range(5):
                for x in range(5):
                    assert out[z, y, x] == img[z:z + 2, y:y + 2,
                                               x:x + 2].max()

    def test_argmax_points_at_maximum(self, rng):
        img = rng.standard_normal((7, 7, 7))
        out, argmax = max_filter_forward(img, 3)
        coords = argmax.reshape(-1, 3)
        values = img[coords[:, 0], coords[:, 1], coords[:, 2]]
        np.testing.assert_array_equal(values, out.ravel())

    def test_sparse_window(self, rng):
        """Sparse max-filter takes taps at 0, s, ..., (k-1)s."""
        img = rng.standard_normal((9, 9, 9))
        out, _ = max_filter_forward(img, 2, 2)
        assert out.shape == (7, 7, 7)
        expected = np.maximum.reduce([
            img[dz:dz + 7, dy:dy + 7, dx:dx + 7]
            for dz in (0, 2) for dy in (0, 2) for dx in (0, 2)])
        np.testing.assert_array_equal(out, expected)

    def test_window_one_identity(self, rng):
        img = rng.standard_normal((4, 4, 4))
        out, _ = max_filter_forward(img, 1)
        np.testing.assert_array_equal(out, img)

    def test_separable_anisotropic(self, rng):
        img = rng.standard_normal((6, 7, 8))
        out, _ = max_filter_forward(img, (2, 1, 3))
        np.testing.assert_array_equal(out,
                                      max_filter_separable(img, (2, 1, 3)))


class TestBackward:
    def test_shape_restored(self, rng):
        img = rng.standard_normal((8, 8, 8))
        out, argmax = max_filter_forward(img, 3)
        grad = rng.standard_normal(out.shape)
        back = max_filter_backward(grad, argmax, img.shape)
        assert back.shape == img.shape

    def test_gradient_mass_preserved(self, rng):
        """Overlapping windows accumulate: total mass is conserved."""
        img = rng.standard_normal((8, 8, 8))
        out, argmax = max_filter_forward(img, 3)
        grad = rng.standard_normal(out.shape)
        back = max_filter_backward(grad, argmax, img.shape)
        assert np.isclose(back.sum(), grad.sum())

    def test_adjoint_identity(self, rng):
        img = rng.standard_normal((7, 7, 7))
        out, argmax = max_filter_forward(img, 2)
        grad = rng.standard_normal(out.shape)
        back = max_filter_backward(grad, argmax, img.shape)
        assert np.isclose(np.sum(out * grad), np.sum(img * back))

    def test_single_global_winner_accumulates_everything(self):
        """If one voxel dominates every window, it receives the full
        gradient sum."""
        img = np.zeros((5, 5, 5))
        img[2, 2, 2] = 100.0
        out, argmax = max_filter_forward(img, 3)
        grad = np.ones(out.shape)
        back = max_filter_backward(grad, argmax, img.shape)
        assert back[2, 2, 2] == grad.sum()
        assert np.count_nonzero(back) == 1

    def test_bad_argmax_shape_rejected(self, rng):
        img = rng.standard_normal((6, 6, 6))
        out, argmax = max_filter_forward(img, 2)
        with pytest.raises(ValueError):
            max_filter_backward(rng.standard_normal((4, 4, 4)), argmax,
                                img.shape)


@given(n=st.integers(4, 9), k=st.integers(1, 3), seed=st.integers(0, 999))
def test_property_forward_equals_separable(n, k, seed):
    if k > n:
        return
    rng = np.random.default_rng(seed)
    img = rng.standard_normal((n, n, n))
    out, _ = max_filter_forward(img, k)
    np.testing.assert_array_equal(out, max_filter_separable(img, k))
