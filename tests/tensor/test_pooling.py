"""Max-pooling forward/Jacobian tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tensor import max_pool_backward, max_pool_forward


class TestForward:
    def test_shape(self, rng):
        pooled, argmax = max_pool_forward(rng.standard_normal((8, 8, 8)), 2)
        assert pooled.shape == (4, 4, 4)
        assert argmax.shape == (4, 4, 4)

    def test_values_are_block_maxima(self, rng):
        img = rng.standard_normal((6, 6, 6))
        pooled, _ = max_pool_forward(img, 2)
        for z in range(3):
            for y in range(3):
                for x in range(3):
                    block = img[2 * z:2 * z + 2, 2 * y:2 * y + 2,
                                2 * x:2 * x + 2]
                    assert pooled[z, y, x] == block.max()

    def test_anisotropic_window(self, rng):
        img = rng.standard_normal((4, 6, 8))
        pooled, _ = max_pool_forward(img, (2, 3, 4))
        assert pooled.shape == (2, 2, 2)

    def test_window_one_is_identity(self, rng):
        img = rng.standard_normal((3, 3, 3))
        pooled, _ = max_pool_forward(img, 1)
        np.testing.assert_array_equal(pooled, img)

    def test_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            max_pool_forward(rng.standard_normal((7, 8, 8)), 2)

    def test_2d_special_case(self, rng):
        img = rng.standard_normal((6, 6))
        pooled, _ = max_pool_forward(img, (1, 2, 2))
        assert pooled.shape == (1, 3, 3)


class TestBackward:
    def test_routes_to_winner_only(self, rng):
        img = rng.standard_normal((4, 4, 4))
        pooled, argmax = max_pool_forward(img, 2)
        grad = rng.standard_normal((2, 2, 2))
        back = max_pool_backward(grad, argmax, 2)
        assert back.shape == (4, 4, 4)
        # exactly one nonzero per block, at the argmax position
        assert np.count_nonzero(back) == 8
        # winners carry the gradient value
        for z in range(2):
            for y in range(2):
                for x in range(2):
                    block = back[2 * z:2 * z + 2, 2 * y:2 * y + 2,
                                 2 * x:2 * x + 2]
                    assert np.isclose(block.sum(), grad[z, y, x])

    def test_gradient_mass_preserved(self, rng):
        img = rng.standard_normal((6, 6, 6))
        _, argmax = max_pool_forward(img, 3)
        grad = rng.standard_normal((2, 2, 2))
        back = max_pool_backward(grad, argmax, 3)
        assert np.isclose(back.sum(), grad.sum())

    def test_adjoint_identity(self, rng):
        """<pool(I), G> == <I, pool_backward(G)> holds at the winning
        voxels (pooling is locally linear around the argmax)."""
        img = rng.standard_normal((6, 6, 6))
        pooled, argmax = max_pool_forward(img, 2)
        grad = rng.standard_normal((3, 3, 3))
        back = max_pool_backward(grad, argmax, 2)
        assert np.isclose(np.sum(pooled * grad), np.sum(img * back))

    def test_shape_mismatch_rejected(self, rng):
        _, argmax = max_pool_forward(rng.standard_normal((4, 4, 4)), 2)
        with pytest.raises(ValueError):
            max_pool_backward(rng.standard_normal((3, 3, 3)), argmax, 2)

    def test_numeric_jacobian(self, rng):
        """Perturbing the winning voxel moves the pooled output 1:1."""
        img = rng.standard_normal((4, 4, 4))
        pooled, argmax = max_pool_forward(img, 2)
        flat = argmax[0, 0, 0]
        z, r = divmod(int(flat), 4)
        y, x = divmod(r, 2)
        img2 = img.copy()
        img2[z, y, x] += 1e-3  # small enough not to change the argmax? it
        # was already the max, so increasing it keeps it the max.
        pooled2, _ = max_pool_forward(img2, 2)
        assert np.isclose(pooled2[0, 0, 0] - pooled[0, 0, 0], 1e-3)


@given(p=st.sampled_from([1, 2, 3]), m=st.integers(1, 3),
       seed=st.integers(0, 999))
def test_property_roundtrip_mass(p, m, seed):
    rng = np.random.default_rng(seed)
    n = p * m
    img = rng.standard_normal((n, n, n))
    pooled, argmax = max_pool_forward(img, p)
    grad = rng.standard_normal(pooled.shape)
    back = max_pool_backward(grad, argmax, p)
    assert back.shape == img.shape
    assert np.isclose(back.sum(), grad.sum())
