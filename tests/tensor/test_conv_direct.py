"""Direct convolution tests — correctness against scipy and brute force,
sparse/dilated behaviour, gradient identities."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy.signal import correlate as sp_correlate
from scipy.signal import fftconvolve as sp_fftconvolve

from repro.tensor import (
    conv_backward_input,
    conv_kernel_gradient,
    convolve_full,
    convolve_valid,
    correlate_full,
    correlate_valid,
    dilate_kernel,
    flip3,
)


@pytest.fixture
def image(rng):
    return rng.standard_normal((8, 9, 10))


@pytest.fixture
def kernel(rng):
    return rng.standard_normal((3, 2, 4))


class TestFlipAndDilate:
    def test_flip_is_involution(self, kernel):
        assert np.array_equal(flip3(flip3(kernel)), kernel)

    def test_flip_reverses_all_axes(self):
        k = np.arange(8.0).reshape(2, 2, 2)
        assert flip3(k)[0, 0, 0] == k[1, 1, 1]

    def test_dilate_identity_at_sparsity_one(self, kernel):
        assert np.array_equal(dilate_kernel(kernel, 1), kernel)

    def test_dilate_shape(self, kernel):
        d = dilate_kernel(kernel, 2)
        assert d.shape == (5, 3, 7)

    def test_dilate_preserves_taps(self, kernel):
        d = dilate_kernel(kernel, 3)
        assert np.array_equal(d[::3, ::3, ::3], kernel)

    def test_dilate_zeros_between_taps(self, kernel):
        d = dilate_kernel(kernel, 2)
        assert d[1, 0, 0] == 0.0 and d[0, 1, 0] == 0.0


class TestCorrelateValid:
    def test_matches_scipy(self, image, kernel):
        ours = correlate_valid(image, kernel)
        ref = sp_correlate(image, kernel, mode="valid")
        np.testing.assert_allclose(ours, ref, atol=1e-12)

    def test_output_shape(self, image, kernel):
        assert correlate_valid(image, kernel).shape == (6, 8, 7)

    def test_identity_kernel(self, image):
        one = np.ones((1, 1, 1))
        np.testing.assert_allclose(correlate_valid(image, one), image)

    def test_brute_force_single_voxel(self, rng):
        img = rng.standard_normal((3, 3, 3))
        ker = rng.standard_normal((3, 3, 3))
        out = correlate_valid(img, ker)
        assert out.shape == (1, 1, 1)
        assert np.isclose(out[0, 0, 0], np.sum(img * ker))

    def test_sparse_equals_dilated_dense(self, image, kernel):
        ours = correlate_valid(image, kernel, 2)
        ref = correlate_valid(image, dilate_kernel(kernel, 2))
        np.testing.assert_allclose(ours, ref, atol=1e-12)

    def test_anisotropic_sparsity(self, rng):
        img = rng.standard_normal((9, 9, 9))
        ker = rng.standard_normal((2, 2, 2))
        ours = correlate_valid(img, ker, (1, 2, 3))
        ref = correlate_valid(img, dilate_kernel(ker, (1, 2, 3)))
        np.testing.assert_allclose(ours, ref, atol=1e-12)

    def test_2d_input_promoted(self, rng):
        img = rng.standard_normal((5, 5))
        ker = rng.standard_normal((2, 2))
        out = correlate_valid(img, ker)
        assert out.shape == (1, 4, 4)

    def test_kernel_larger_than_image_raises(self, rng):
        with pytest.raises(ValueError):
            correlate_valid(rng.standard_normal((3, 3, 3)),
                            rng.standard_normal((4, 4, 4)))

    def test_linearity_in_image(self, image, kernel):
        a = correlate_valid(image, kernel)
        b = correlate_valid(2.0 * image, kernel)
        np.testing.assert_allclose(b, 2.0 * a, atol=1e-12)


class TestConvolveAndFull:
    def test_convolve_valid_is_flipped_correlation(self, image, kernel):
        np.testing.assert_allclose(convolve_valid(image, kernel),
                                   correlate_valid(image, flip3(kernel)),
                                   atol=1e-12)

    def test_convolve_full_matches_scipy(self, image, kernel):
        ref = sp_fftconvolve(image, kernel, mode="full")
        np.testing.assert_allclose(convolve_full(image, kernel), ref,
                                   atol=1e-10)

    def test_correlate_full_matches_scipy(self, image, kernel):
        ref = sp_correlate(image, kernel, mode="full")
        np.testing.assert_allclose(correlate_full(image, kernel), ref,
                                   atol=1e-10)

    def test_full_shape(self, image, kernel):
        assert convolve_full(image, kernel).shape == (10, 10, 13)

    def test_full_sparse_shape(self, image, kernel):
        assert convolve_full(image, kernel, 2).shape == (12, 11, 16)

    def test_commutativity_of_full_convolution(self, rng):
        a = rng.standard_normal((4, 4, 4))
        b = rng.standard_normal((3, 3, 3))
        np.testing.assert_allclose(convolve_full(a, b), convolve_full(b, a),
                                   atol=1e-12)


class TestGradients:
    """The backward ops must be the true adjoints of the forward op:
    <corr(I,K), dO> == <I, bwd(dO,K)> == <K, kgrad(I,dO)>."""

    @pytest.mark.parametrize("sparsity", [1, 2, (1, 2, 3)])
    def test_backward_input_is_adjoint(self, rng, sparsity):
        img = rng.standard_normal((9, 10, 11))
        ker = rng.standard_normal((2, 3, 2))
        out = correlate_valid(img, ker, sparsity)
        grad = rng.standard_normal(out.shape)
        lhs = np.sum(out * grad)
        rhs = np.sum(img * conv_backward_input(grad, ker, sparsity))
        assert np.isclose(lhs, rhs)

    @pytest.mark.parametrize("sparsity", [1, 2, (1, 2, 3)])
    def test_kernel_gradient_is_adjoint(self, rng, sparsity):
        img = rng.standard_normal((9, 10, 11))
        ker = rng.standard_normal((2, 3, 2))
        out = correlate_valid(img, ker, sparsity)
        grad = rng.standard_normal(out.shape)
        lhs = np.sum(out * grad)
        rhs = np.sum(ker * conv_kernel_gradient(img, grad, sparsity))
        assert np.isclose(lhs, rhs)

    def test_kernel_gradient_shape(self, rng):
        img = rng.standard_normal((8, 8, 8))
        grad = rng.standard_normal((6, 6, 6))
        assert conv_kernel_gradient(img, grad).shape == (3, 3, 3)

    def test_kernel_gradient_shape_sparse(self, rng):
        img = rng.standard_normal((9, 9, 9))
        grad = rng.standard_normal((5, 5, 5))  # eff kernel 5 = (3-1)*2+1
        assert conv_kernel_gradient(img, grad, 2).shape == (3, 3, 3)

    def test_numeric_kernel_gradient(self, rng):
        img = rng.standard_normal((6, 6, 6))
        ker = rng.standard_normal((2, 2, 2))
        grad = rng.standard_normal((5, 5, 5))
        analytic = conv_kernel_gradient(img, grad)
        eps = 1e-6
        for idx in [(0, 0, 0), (1, 1, 1), (0, 1, 0)]:
            k2 = ker.copy()
            k2[idx] += eps
            numeric = np.sum(
                (correlate_valid(img, k2) - correlate_valid(img, ker))
                * grad) / eps
            assert np.isclose(analytic[idx], numeric, atol=1e-4)

    def test_backward_input_shape_restores(self, rng):
        img = rng.standard_normal((10, 10, 10))
        ker = rng.standard_normal((3, 3, 3))
        out = correlate_valid(img, ker, 2)
        back = conv_backward_input(rng.standard_normal(out.shape), ker, 2)
        assert back.shape == img.shape


@given(n=st.integers(4, 10), k=st.integers(1, 3), s=st.integers(1, 2),
       seed=st.integers(0, 1000))
def test_property_valid_full_roundtrip_shapes(n, k, s, seed):
    """full(valid shapes) restores the input shape for all (n, k, s)."""
    eff = (k - 1) * s + 1
    if eff > n:
        return
    rng = np.random.default_rng(seed)
    img = rng.standard_normal((n, n, n))
    ker = rng.standard_normal((k, k, k))
    out = correlate_valid(img, ker, s)
    back = conv_backward_input(rng.standard_normal(out.shape), ker, s)
    assert back.shape == img.shape


@given(seed=st.integers(0, 10_000))
def test_property_adjoint_identity(seed):
    """<corr(I,K), G> == <I, bwd(G,K)> for random sizes."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 9))
    k = int(rng.integers(1, 4))
    img = rng.standard_normal((n, n, n))
    ker = rng.standard_normal((k, k, k))
    out = correlate_valid(img, ker)
    grad = rng.standard_normal(out.shape)
    assert np.isclose(np.sum(out * grad),
                      np.sum(img * conv_backward_input(grad, ker)))
