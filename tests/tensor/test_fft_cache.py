"""TransformCache (FFT memoization) tests."""

import threading

import numpy as np
import pytest

from repro.tensor import TransformCache


def make(value):
    return lambda: np.full((2, 2, 2), float(value))


class TestBasics:
    def test_computes_once_per_round(self):
        cache = TransformCache()
        calls = []

        def compute():
            calls.append(1)
            return np.zeros((2, 2, 2))

        cache.get_or_compute("img", "a", compute)
        cache.get_or_compute("img", "a", compute)
        assert len(calls) == 1
        assert cache.stats.computed == 1
        assert cache.stats.reused == 1

    def test_distinct_keys_distinct_entries(self):
        cache = TransformCache()
        a = cache.get_or_compute("img", "a", make(1))
        b = cache.get_or_compute("img", "b", make(2))
        assert a[0, 0, 0] == 1 and b[0, 0, 0] == 2
        assert len(cache) == 2

    def test_kind_disambiguates(self):
        cache = TransformCache()
        cache.get_or_compute("img", "a", make(1))
        g = cache.get_or_compute("grad", "a", make(2))
        assert g[0, 0, 0] == 2

    def test_next_round_evicts(self):
        cache = TransformCache()
        cache.get_or_compute("img", "a", make(1))
        cache.next_round()
        assert len(cache) == 0
        assert cache.stats.evicted == 1
        v = cache.get_or_compute("img", "a", make(3))
        assert v[0, 0, 0] == 3

    def test_invalidate_single_entry(self):
        cache = TransformCache()
        cache.get_or_compute("ker", "e", make(1))
        cache.invalidate("ker", "e")
        v = cache.get_or_compute("ker", "e", make(9))
        assert v[0, 0, 0] == 9

    def test_round_counter(self):
        cache = TransformCache()
        assert cache.round == 0
        assert cache.next_round() == 1
        assert cache.round == 1


class TestDisabled:
    def test_always_computes(self):
        cache = TransformCache(enabled=False)
        calls = []

        def compute():
            calls.append(1)
            return np.zeros((1, 1, 1))

        cache.get_or_compute("img", "a", compute)
        cache.get_or_compute("img", "a", compute)
        assert len(calls) == 2
        assert cache.stats.computed == 2
        assert cache.stats.reused == 0
        assert len(cache) == 0


class TestStats:
    def test_reuse_fraction(self):
        cache = TransformCache()
        cache.get_or_compute("img", "a", make(1))
        cache.get_or_compute("img", "a", make(1))
        cache.get_or_compute("img", "a", make(1))
        assert cache.stats.reuse_fraction == pytest.approx(2 / 3)

    def test_empty_fraction_zero(self):
        assert TransformCache().stats.reuse_fraction == 0.0

    def test_snapshot_keys(self):
        snap = TransformCache().stats.snapshot()
        assert set(snap) == {"computed", "reused", "evicted",
                             "reuse_fraction"}


class TestThreadSafety:
    def test_concurrent_get_or_compute_single_value(self):
        """Racing threads may both compute, but all observers see one
        stored array (setdefault semantics)."""
        cache = TransformCache()
        results = []
        barrier = threading.Barrier(4)

        def worker(i):
            barrier.wait()
            v = cache.get_or_compute("img", "x", make(i))
            results.append(v)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        first = results[0]
        assert all(r is first for r in results)
