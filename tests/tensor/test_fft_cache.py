"""TransformCache (FFT memoization) tests."""

import threading

import numpy as np
import pytest

from repro.tensor import TransformCache


def make(value):
    return lambda: np.full((2, 2, 2), float(value))


class TestBasics:
    def test_computes_once_per_round(self):
        cache = TransformCache()
        calls = []

        def compute():
            calls.append(1)
            return np.zeros((2, 2, 2))

        cache.get_or_compute("img", "a", compute)
        cache.get_or_compute("img", "a", compute)
        assert len(calls) == 1
        assert cache.stats.computed == 1
        assert cache.stats.reused == 1

    def test_distinct_keys_distinct_entries(self):
        cache = TransformCache()
        a = cache.get_or_compute("img", "a", make(1))
        b = cache.get_or_compute("img", "b", make(2))
        assert a[0, 0, 0] == 1 and b[0, 0, 0] == 2
        assert len(cache) == 2

    def test_kind_disambiguates(self):
        cache = TransformCache()
        cache.get_or_compute("img", "a", make(1))
        g = cache.get_or_compute("grad", "a", make(2))
        assert g[0, 0, 0] == 2

    def test_next_round_evicts(self):
        cache = TransformCache()
        cache.get_or_compute("img", "a", make(1))
        cache.next_round()
        assert len(cache) == 0
        assert cache.stats.evicted == 1
        v = cache.get_or_compute("img", "a", make(3))
        assert v[0, 0, 0] == 3

    def test_invalidate_single_entry(self):
        cache = TransformCache()
        cache.get_or_compute("ker", "e", make(1))
        cache.invalidate("ker", "e")
        v = cache.get_or_compute("ker", "e", make(9))
        assert v[0, 0, 0] == 9

    def test_round_counter(self):
        cache = TransformCache()
        assert cache.round == 0
        assert cache.next_round() == 1
        assert cache.round == 1


class TestDisabled:
    def test_always_computes(self):
        cache = TransformCache(enabled=False)
        calls = []

        def compute():
            calls.append(1)
            return np.zeros((1, 1, 1))

        cache.get_or_compute("img", "a", compute)
        cache.get_or_compute("img", "a", compute)
        assert len(calls) == 2
        assert cache.stats.computed == 2
        assert cache.stats.reused == 0
        assert len(cache) == 0


class TestStats:
    def test_reuse_fraction(self):
        cache = TransformCache()
        cache.get_or_compute("img", "a", make(1))
        cache.get_or_compute("img", "a", make(1))
        cache.get_or_compute("img", "a", make(1))
        assert cache.stats.reuse_fraction == pytest.approx(2 / 3)

    def test_empty_fraction_zero(self):
        assert TransformCache().stats.reuse_fraction == 0.0

    def test_snapshot_keys(self):
        snap = TransformCache().stats.snapshot()
        assert set(snap) == {"computed", "reused", "evicted",
                             "lru_evicted", "reuse_fraction"}


class TestThreadSafety:
    def test_concurrent_get_or_compute_single_value(self):
        """Racing threads may both compute, but all observers see one
        stored array (setdefault semantics)."""
        cache = TransformCache()
        results = []
        barrier = threading.Barrier(4)

        def worker(i):
            barrier.wait()
            v = cache.get_or_compute("img", "x", make(i))
            results.append(v)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        first = results[0]
        assert all(r is first for r in results)


class TestByteBoundedLru:
    def arr(self, value, n=4):
        return lambda: np.full((n, n, n), float(value))

    def test_unbounded_by_default(self):
        cache = TransformCache()
        assert cache.max_bytes is None

    def test_env_var_sets_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_FFT_CACHE_BYTES", "4096")
        assert TransformCache().max_bytes == 4096

    def test_env_var_zero_or_garbage_means_unbounded(self, monkeypatch):
        monkeypatch.setenv("REPRO_FFT_CACHE_BYTES", "0")
        assert TransformCache().max_bytes is None
        monkeypatch.setenv("REPRO_FFT_CACHE_BYTES", "lots")
        assert TransformCache().max_bytes is None

    def test_explicit_cap_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FFT_CACHE_BYTES", "4096")
        assert TransformCache(max_bytes=1024).max_bytes == 1024

    def test_lru_eviction_under_pressure(self):
        # Each 4^3 float64 entry is 512 bytes; cap at two entries.
        cache = TransformCache(max_bytes=1024)
        cache.get_or_compute("img", "a", self.arr(1))
        cache.get_or_compute("img", "b", self.arr(2))
        cache.get_or_compute("img", "c", self.arr(3))  # evicts "a"
        assert len(cache) == 2
        assert cache.stats.lru_evicted == 1
        assert cache.nbytes <= 1024
        # "a" must be recomputed, "c" is still cached.
        calls = []

        def recompute():
            calls.append(1)
            return np.zeros((4, 4, 4))

        cache.get_or_compute("img", "a", recompute)
        assert calls
        cache.get_or_compute("img", "c", recompute)
        assert len(calls) == 1

    def test_hit_refreshes_recency(self):
        cache = TransformCache(max_bytes=1024)
        cache.get_or_compute("img", "a", self.arr(1))
        cache.get_or_compute("img", "b", self.arr(2))
        cache.get_or_compute("img", "a", self.arr(1))  # touch "a"
        cache.get_or_compute("img", "c", self.arr(3))  # evicts "b", not "a"
        calls = []

        def recompute():
            calls.append(1)
            return np.zeros((4, 4, 4))

        cache.get_or_compute("img", "a", recompute)
        assert not calls  # "a" survived
        cache.get_or_compute("img", "b", recompute)
        assert calls  # "b" was the LRU victim

    def test_oversized_entry_still_stored(self):
        cache = TransformCache(max_bytes=64)
        v = cache.get_or_compute("img", "big", self.arr(1))
        assert v is cache.get_or_compute("img", "big", self.arr(1))


class TestPinnedKinds:
    def test_pinned_kind_survives_next_round(self):
        cache = TransformCache()
        cache.pin_kind("ker")
        calls = []

        def compute():
            calls.append(1)
            return np.zeros((2, 2, 2))

        cache.get_or_compute("ker", "conv1", compute)
        cache.get_or_compute("img", "a", lambda: np.ones((2, 2, 2)))
        cache.next_round()
        assert len(cache) == 1  # img evicted, ker kept
        cache.get_or_compute("ker", "conv1", compute)
        assert len(calls) == 1

    def test_invalidate_removes_pinned_entry(self):
        cache = TransformCache()
        cache.pin_kind("ker")
        cache.get_or_compute("ker", "conv1", lambda: np.zeros((2, 2, 2)))
        cache.invalidate("ker", "conv1")
        assert len(cache) == 0

    def test_unpinned_kind_is_round_scoped(self):
        cache = TransformCache()
        cache.pin_kind("ker")
        cache.get_or_compute("grad", "a", lambda: np.zeros((2, 2, 2)))
        cache.next_round()
        assert len(cache) == 0

    def test_bytes_tracked_across_round_with_pins(self):
        cache = TransformCache()
        cache.pin_kind("ker")
        cache.get_or_compute("ker", "k", lambda: np.zeros((4, 4, 4)))
        cache.get_or_compute("img", "a", lambda: np.zeros((4, 4, 4)))
        assert cache.nbytes == 2 * 512
        cache.next_round()
        assert cache.nbytes == 512
