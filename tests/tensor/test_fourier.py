"""Fourier helper tests: fast lengths and padded-transform exactness."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tensor.conv_direct import (
    conv_backward_input,
    conv_kernel_gradient,
    correlate_valid,
)
from repro.tensor.conv_fft import FftConvPlan
from repro.tensor.fourier import (
    crop_head,
    crop_valid_tail,
    fast_transform_shape,
    forward_transform,
    inverse_transform,
    next_fast_len,
    pad_to,
    rfft_shape,
)


class TestNextFastLen:
    @pytest.mark.parametrize("n,expected", [
        (1, 1), (2, 2), (3, 3), (4, 4), (5, 5), (6, 6),
        (7, 8), (11, 12), (13, 15), (17, 18), (23, 24),
        (97, 100), (101, 108), (127, 128), (241, 243),
    ])
    def test_known_values(self, n, expected):
        assert next_fast_len(n) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            next_fast_len(0)

    @given(n=st.integers(1, 5000))
    def test_property_5smooth_and_minimal(self, n):
        m = next_fast_len(n)
        assert m >= n
        # 5-smooth
        x = m
        for p in (2, 3, 5):
            while x % p == 0:
                x //= p
        assert x == 1
        # no smaller 5-smooth number in [n, m)
        for candidate in range(n, m):
            y = candidate
            for p in (2, 3, 5):
                while y % p == 0:
                    y //= p
            assert y != 1

    def test_fast_transform_shape(self):
        assert fast_transform_shape((7, 11, 13)) == (8, 12, 15)


class TestTransformHelpers:
    def test_rfft_shape(self):
        assert rfft_shape((4, 6, 9)) == (4, 6, 5)

    def test_pad_to(self, rng):
        a = rng.standard_normal((2, 3, 4))
        p = pad_to(a, (4, 4, 4))
        assert p.shape == (4, 4, 4)
        np.testing.assert_array_equal(p[:2, :3, :4], a)
        assert p[3].sum() == 0

    def test_pad_too_small_rejected(self, rng):
        with pytest.raises(ValueError):
            pad_to(rng.standard_normal((5, 5, 5)), (4, 5, 5))

    def test_roundtrip_transform(self, rng):
        a = rng.standard_normal((6, 7, 8))
        spec = forward_transform(a, (6, 7, 8))
        back = inverse_transform(spec, (6, 7, 8))
        np.testing.assert_allclose(back, a, atol=1e-12)

    def test_crops(self, rng):
        a = rng.standard_normal((6, 6, 6))
        np.testing.assert_array_equal(crop_head(a, (2, 3, 4)),
                                      a[:2, :3, :4])
        np.testing.assert_array_equal(crop_valid_tail(a, (2, 3, 4)),
                                      a[4:, 3:, 2:])


class TestOversizedTransformExactness:
    """Any transform size >= the image size is exact for all three
    convolution passes — the property that makes fast-size padding
    safe."""

    @given(n=st.integers(5, 12), k=st.integers(1, 3),
           pad=st.integers(0, 5), seed=st.integers(0, 500))
    def test_property_all_passes(self, n, k, pad, seed):
        if k > n:
            return
        rng = np.random.default_rng(seed)
        img = rng.standard_normal((n, n, n))
        ker = rng.standard_normal((k, k, k))
        plan = FftConvPlan((n, n, n), (k, k, k))
        # manually enlarge the transform
        object.__setattr__ if False else setattr(
            plan, "transform_shape", (n + pad, n + pad, n + pad))
        out = correlate_valid(img, ker)
        grad = rng.standard_normal(out.shape)
        fi = plan.image_spectrum(img)
        fk = plan.kernel_spectrum(ker)
        fg = plan.grad_spectrum(grad)
        np.testing.assert_allclose(plan.forward(fi, fk), out, atol=1e-9)
        np.testing.assert_allclose(plan.backward(fg, fk),
                                   conv_backward_input(grad, ker),
                                   atol=1e-9)
        np.testing.assert_allclose(plan.kernel_gradient(fi, fg),
                                   conv_kernel_gradient(img, grad),
                                   atol=1e-9)

    def test_fast_sizes_plan(self, rng):
        plan = FftConvPlan((11, 13, 17), (3, 3, 3), fast_sizes=True)
        assert plan.transform_shape == (12, 15, 18)
        img = rng.standard_normal((11, 13, 17))
        ker = rng.standard_normal((3, 3, 3))
        np.testing.assert_allclose(
            plan.forward(plan.image_spectrum(img),
                         plan.kernel_spectrum(ker)),
            correlate_valid(img, ker), atol=1e-9)
