"""Transfer function tests: values, derivative-from-output, bias."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.tensor import (
    LINEAR,
    LOGISTIC,
    RELU,
    TANH,
    TRANSFER_FUNCTIONS,
    get_transfer,
)

ALL = sorted(TRANSFER_FUNCTIONS)


class TestRegistry:
    def test_contains_paper_functions(self):
        # logistic, tanh, half-wave rectification (Section II)
        assert {"logistic", "tanh", "relu"} <= set(TRANSFER_FUNCTIONS)

    def test_get_by_name(self):
        assert get_transfer("relu") is RELU

    def test_get_passthrough(self):
        assert get_transfer(TANH) is TANH

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_transfer("swish")


class TestValues:
    def test_relu_clamps(self):
        x = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_array_equal(RELU.forward(x),
                                      [[0.0, 0.0, 2.0]])

    def test_logistic_range_and_symmetry(self, rng):
        x = rng.standard_normal((4, 4, 4)) * 10
        y = LOGISTIC.forward(x)
        assert np.all((y > 0) & (y < 1))
        np.testing.assert_allclose(LOGISTIC.forward(-x), 1 - y, atol=1e-12)

    def test_logistic_extreme_values_stable(self):
        y = LOGISTIC.forward(np.array([-1000.0, 1000.0]))
        assert np.isfinite(y).all()
        np.testing.assert_allclose(y, [0.0, 1.0], atol=1e-12)

    def test_tanh(self, rng):
        x = rng.standard_normal((3, 3, 3))
        np.testing.assert_allclose(TANH.forward(x), np.tanh(x))

    def test_linear_identity(self, rng):
        x = rng.standard_normal((3, 3, 3))
        np.testing.assert_array_equal(LINEAR.forward(x), x)

    @pytest.mark.parametrize("name", ALL)
    def test_nondecreasing(self, name, rng):
        """The paper requires nondecreasing nonlinearities."""
        f = get_transfer(name)
        x = np.sort(rng.standard_normal(100) * 3)
        y = f.forward(x)
        assert np.all(np.diff(y) >= -1e-12)


class TestBiasAndApply:
    def test_apply_adds_bias_before_nonlinearity(self):
        x = np.array([[-0.5]])
        assert RELU.apply(x, bias=1.0)[0, 0] == 0.5
        assert RELU.apply(x, bias=0.0)[0, 0] == 0.0


class TestDerivatives:
    @pytest.mark.parametrize("name", ALL)
    def test_derivative_from_output_matches_numeric(self, name, rng):
        f = get_transfer(name)
        x = rng.standard_normal((5, 5, 5))
        y = f.forward(x)
        d = f.derivative_from_output(y)
        numeric = (f.forward(x + 1e-6) - f.forward(x - 1e-6)) / 2e-6
        np.testing.assert_allclose(d, numeric, atol=1e-5)

    def test_backward_scales_gradient(self, rng):
        x = rng.standard_normal((4, 4, 4))
        y = TANH.forward(x)
        grad = rng.standard_normal((4, 4, 4))
        np.testing.assert_allclose(TANH.backward(grad, y),
                                   grad * (1 - y ** 2), atol=1e-12)

    def test_relu_derivative_zero_in_dead_zone(self):
        y = RELU.forward(np.array([-2.0, 3.0]))
        np.testing.assert_array_equal(RELU.derivative_from_output(y),
                                      [0.0, 1.0])


@given(name=st.sampled_from(ALL), seed=st.integers(0, 999),
       bias=st.floats(-2, 2))
def test_property_apply_equals_forward_of_shifted(name, seed, bias):
    rng = np.random.default_rng(seed)
    f = get_transfer(name)
    x = rng.standard_normal((3, 3, 3))
    np.testing.assert_allclose(f.apply(x, bias), f.forward(x + bias),
                               atol=1e-12)
