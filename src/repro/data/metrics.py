"""Evaluation metrics for boundary detection.

The connectomics papers the ZNN system served ([13], [23]) evaluate
boundary maps with pixel error and precision/recall of the membrane
class; we provide those so the examples can report learning progress
quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoundaryScores", "boundary_scores", "pixel_error"]


@dataclass(frozen=True)
class BoundaryScores:
    """Confusion-matrix summary of a thresholded boundary prediction."""

    precision: float
    recall: float
    f1: float
    accuracy: float

    def as_dict(self) -> dict:
        return {"precision": self.precision, "recall": self.recall,
                "f1": self.f1, "accuracy": self.accuracy}


def pixel_error(prediction: np.ndarray, target: np.ndarray,
                threshold: float = 0.5) -> float:
    """Fraction of voxels misclassified after thresholding."""
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch: {prediction.shape} vs {target.shape}")
    pred = prediction >= threshold
    truth = target >= 0.5
    return float(np.mean(pred != truth))


def boundary_scores(prediction: np.ndarray, target: np.ndarray,
                    threshold: float = 0.5) -> BoundaryScores:
    """Precision/recall/F1 of the membrane (positive) class."""
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch: {prediction.shape} vs {target.shape}")
    pred = prediction >= threshold
    truth = target >= 0.5
    tp = float(np.sum(pred & truth))
    fp = float(np.sum(pred & ~truth))
    fn = float(np.sum(~pred & truth))
    tn = float(np.sum(~pred & ~truth))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    accuracy = (tp + tn) / max(tp + tn + fp + fn, 1.0)
    return BoundaryScores(precision, recall, f1, accuracy)
