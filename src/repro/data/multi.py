"""Multi-volume sampling.

Connectomics training sets span several labelled volumes; each round
draws a patch from one of them.  :class:`MultiVolumeProvider` composes
any per-volume providers with (optionally weighted) random selection.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator

__all__ = ["MultiVolumeProvider"]


class MultiVolumeProvider:
    """Draw each sample from one of several providers.

    Parameters
    ----------
    providers:
        Per-volume providers (anything with ``sample()``).
    weights:
        Optional selection weights (normalised internally); defaults to
        uniform.  Weighting lets scarce-but-valuable volumes be
        oversampled.
    """

    def __init__(self, providers: Sequence, weights: Optional[Sequence[float]] = None,
                 seed: SeedLike = None) -> None:
        self.providers = list(providers)
        if not self.providers:
            raise ValueError("providers must be non-empty")
        if weights is None:
            self.weights = np.full(len(self.providers),
                                   1.0 / len(self.providers))
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (len(self.providers),):
                raise ValueError(
                    f"need one weight per provider, got {w.shape}")
            if np.any(w < 0) or w.sum() <= 0:
                raise ValueError("weights must be non-negative, not all 0")
            self.weights = w / w.sum()
        self.rng = as_generator(seed)
        self.draws = np.zeros(len(self.providers), dtype=np.int64)

    def sample(self):
        index = int(self.rng.choice(len(self.providers), p=self.weights))
        self.draws[index] += 1
        return self.providers[index].sample()

    def draw_fractions(self) -> np.ndarray:
        """Empirical selection frequencies so far."""
        total = self.draws.sum()
        if total == 0:
            return np.zeros(len(self.providers))
        return self.draws / total
