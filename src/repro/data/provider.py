"""Data providers — the orange task of Fig 3.

A provider "obtains a training sample used for a single round of
training".  Three implementations:

* :class:`RandomProvider` — random inputs and targets of fixed shapes;
  what the paper's *timing* benchmarks need (the measured quantity is
  seconds/update, not accuracy).
* :class:`PatchProvider` — samples aligned (input patch, boundary
  target) pairs from a :class:`repro.data.CellVolume`, handling the
  field-of-view offset so output voxel ``x`` is supervised by the label
  under the *centre* of its input window.  Supports *dense* targets
  (every output voxel) and *sparse* lattice targets with a period
  (the paper's "sparse training", predictions on a period-4 lattice).
* :class:`FixedProvider` — cycles through a fixed list of samples
  (deterministic tests).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.synthetic import CellVolume
from repro.utils.rng import SeedLike, as_generator
from repro.utils.shapes import Shape3, as_shape3

__all__ = ["RandomProvider", "PatchProvider", "FixedProvider",
           "ShardedSampler", "shard_indices"]


def shard_indices(batch: int, workers: int, worker: int) -> List[int]:
    """Deterministic round-robin shard assignment for data-parallel
    training: worker *w* of *workers* owns sample indices
    ``w, w + workers, w + 2*workers, ...`` of every round's global
    minibatch.

    The assignment is a pure function of its arguments so every process
    derives the same partition without communication; because samples
    and gradients are keyed by **global index** (not by worker), the
    training result is independent of how indices are distributed —
    which is what lets a dead worker's shard be reassigned mid-run
    without changing the final checkpoint.
    """
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not 0 <= worker < workers:
        raise ValueError(
            f"worker must be in [0, {workers}), got {worker}")
    return list(range(worker, batch, workers))


class ShardedSampler:
    """Deterministic per-``(round, index)`` sampling over a provider.

    Data-parallel determinism requires that the global minibatch of
    round *r* is the same regardless of the worker count, so sample
    ``(r, i)`` cannot come from a sequential RNG stream (whose position
    would depend on which samples this process drew before).  Instead
    each draw reseeds the provider with a fresh generator derived from
    ``SeedSequence((base_seed, r, i))`` — any process can produce any
    sample of any round, bitwise identically.

    Works with any provider exposing a ``rng`` attribute used by
    ``sample()`` (:class:`RandomProvider`, :class:`PatchProvider`);
    :class:`FixedProvider` is indexed directly via
    :meth:`FixedProvider.sample_at_index`.
    """

    def __init__(self, provider, base_seed: Optional[int],
                 batch: int) -> None:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.provider = provider
        self.base_seed = int(base_seed) if base_seed is not None else 0
        self.batch = batch
        if not (hasattr(provider, "rng")
                or hasattr(provider, "sample_at_index")):
            raise TypeError(
                f"{type(provider).__name__} supports neither reseeding "
                "(no .rng) nor direct indexing (no .sample_at_index)")

    def sample_at(self, round_index: int, sample_index: int):
        """The (inputs, targets) pair for global sample *sample_index*
        of round *round_index* — identical in every process."""
        if not 0 <= sample_index < self.batch:
            raise ValueError(
                f"sample_index {sample_index} out of range "
                f"[0, {self.batch})")
        if hasattr(self.provider, "rng"):
            seq = np.random.SeedSequence(
                (self.base_seed, round_index, sample_index))
            self.provider.rng = np.random.default_rng(seq)
            return self.provider.sample()
        return self.provider.sample_at_index(
            round_index * self.batch + sample_index)


class RandomProvider:
    """Gaussian inputs, Gaussian (or binary) targets, fixed shapes."""

    def __init__(self, input_shape, output_shape,
                 binary_targets: bool = False, seed: SeedLike = None) -> None:
        self.input_shape: Shape3 = as_shape3(input_shape, name="input_shape")
        self.output_shape: Shape3 = as_shape3(output_shape, name="output_shape")
        self.binary_targets = bool(binary_targets)
        self.rng = as_generator(seed)

    def sample(self) -> Tuple[np.ndarray, np.ndarray]:
        x = self.rng.standard_normal(self.input_shape)
        if self.binary_targets:
            t = (self.rng.random(self.output_shape) < 0.5).astype(np.float64)
        else:
            t = self.rng.standard_normal(self.output_shape)
        return x, t


class FixedProvider:
    """Cycles deterministically through a list of (inputs, targets)."""

    def __init__(self, samples: Sequence[Tuple[object, object]]) -> None:
        if not samples:
            raise ValueError("samples must be non-empty")
        self._samples: List[Tuple[object, object]] = list(samples)
        self._index = 0

    def sample(self) -> Tuple[object, object]:
        s = self._samples[self._index % len(self._samples)]
        self._index += 1
        return s

    def sample_at_index(self, index: int) -> Tuple[object, object]:
        """Positional access for deterministic sharding: global sample
        *index* maps onto the cycle without touching the sequential
        cursor."""
        if index < 0:
            raise ValueError(f"index must be >= 0, got {index}")
        return self._samples[index % len(self._samples)]


class PatchProvider:
    """Aligned (image patch, boundary target) pairs from a cell volume.

    Parameters
    ----------
    volume:
        Source :class:`CellVolume`.
    input_shape:
        Patch size fed to the network.
    output_shape:
        The network's output size for that input (dense nets:
        ``input - fov + 1``).
    lattice_period:
        If given, the target is the dense window's boundary subsampled
        on this lattice — matching a max-pooling network trained
        sparsely (output voxels on a period-``s`` grid).
    pooled:
        Serve sample buffers from the global pooled image allocator
        (Section VII-C), recycling the previous sample's chunks — the
        paper's pattern where the data-provider task hands pooled
        images to the network.  Each ``sample()`` call *invalidates the
        arrays returned by the previous call*, which is safe for
        training loops (the network copies its inputs and consumes
        targets within the round) but not for callers that hold
        samples across rounds.
    """

    def __init__(self, volume: CellVolume, input_shape, output_shape,
                 lattice_period: Optional[int | Sequence[int]] = None,
                 seed: SeedLike = None, pooled: bool = False) -> None:
        self.volume = volume
        self.input_shape = as_shape3(input_shape, name="input_shape")
        self.output_shape = as_shape3(output_shape, name="output_shape")
        self.period = (as_shape3(lattice_period, name="lattice_period")
                       if lattice_period is not None else None)
        self.rng = as_generator(seed)
        self.pooled = bool(pooled)
        self._pooled_live: List[np.ndarray] = []

        vshape = volume.shape
        if any(i > v for i, v in zip(self.input_shape, vshape)):
            raise ValueError(
                f"patch {self.input_shape} larger than volume {vshape}")
        # Dense span covered by the output lattice within the window.
        if self.period is None:
            span = self.output_shape
        else:
            span = tuple((o - 1) * p + 1
                         for o, p in zip(self.output_shape, self.period))
        if any(s > i for s, i in zip(span, self.input_shape)):
            raise ValueError(
                f"output span {span} exceeds input patch {self.input_shape}")
        # Field-of-view margin: centre the supervised region.
        self._offset = tuple((i - s) // 2
                             for i, s in zip(self.input_shape, span))
        self._span = span

    def sample(self) -> Tuple[np.ndarray, np.ndarray]:
        vshape = self.volume.shape
        corner = tuple(
            int(self.rng.integers(0, v - i + 1))
            for v, i in zip(vshape, self.input_shape))
        sl = tuple(slice(c, c + i) for c, i in zip(corner, self.input_shape))
        patch = self.volume.image[sl]
        tstart = tuple(c + o for c, o in zip(corner, self._offset))
        tsl = tuple(slice(s, s + sp) for s, sp in zip(tstart, self._span))
        target = self.volume.boundary[tsl]
        if self.period is not None:
            target = target[:: self.period[0], :: self.period[1],
                            :: self.period[2]]
        if self.pooled:
            return self._pooled_copy(patch), self._pooled_copy(target)
        return np.ascontiguousarray(patch), np.ascontiguousarray(target)

    def _pooled_copy(self, source: np.ndarray) -> np.ndarray:
        """Copy *source* into a chunk from the global image allocator,
        first returning the previous sample's chunks to their pools."""
        from repro.memory.pools import image_allocator

        alloc = image_allocator()
        if len(self._pooled_live) >= 2:  # one (patch, target) generation
            for old in self._pooled_live:
                owner = getattr(old, "_allocator", None)
                if owner is not None:  # survives reset_global_allocators()
                    owner.deallocate_array(old)
            self._pooled_live = []
        buf = alloc.allocate_array(source.shape, dtype=np.float64)
        np.copyto(buf, source)
        self._pooled_live.append(buf)
        return buf
