"""Data augmentation for volumetric training.

The connectomics pipelines built on ZNN ([13], [23]) train with the
standard volumetric augmentations — axis flips and, for isotropic
patches, in-plane transpositions.  :class:`AugmentedProvider` wraps any
provider and applies the *same* random rigid transform to the input
patch and its target, so spatial correspondence is preserved (required:
a dense target the same orientation as the input — lattice targets
transform consistently because the lattice is axis-aligned).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator

__all__ = ["AugmentedProvider", "random_rigid_transform", "apply_transform"]

#: A transform is (flips, transpose_yx): three booleans + one boolean.
Transform = Tuple[Tuple[bool, bool, bool], bool]


def random_rigid_transform(rng: np.random.Generator,
                           allow_transpose: bool = True) -> Transform:
    """Sample a random axis-flip/transpose combination."""
    flips = tuple(bool(rng.integers(0, 2)) for _ in range(3))
    transpose = bool(rng.integers(0, 2)) if allow_transpose else False
    return flips, transpose  # type: ignore[return-value]


def apply_transform(image: np.ndarray, transform: Transform) -> np.ndarray:
    """Apply a rigid transform to a 3D array."""
    flips, transpose = transform
    out = image
    for axis, flip in enumerate(flips):
        if flip:
            out = np.flip(out, axis=axis)
    if transpose:
        if out.shape[1] != out.shape[2]:
            raise ValueError(
                f"transpose requires square y/x, got {out.shape}")
        out = np.swapaxes(out, 1, 2)
    return np.ascontiguousarray(out)


class AugmentedProvider:
    """Wrap a provider with random flips (and optional y/x transposes).

    Both members of each sample receive the identical transform.  The
    transpose is only legal when input and target are square in the
    (y, x) plane; it is disabled automatically otherwise at sample time.
    """

    def __init__(self, provider, allow_transpose: bool = True,
                 seed: SeedLike = None) -> None:
        self.provider = provider
        self.allow_transpose = bool(allow_transpose)
        self.rng = as_generator(seed)

    def sample(self):
        inputs, targets = self.provider.sample()
        if not isinstance(inputs, np.ndarray) or not isinstance(
                targets, np.ndarray):
            raise TypeError(
                "AugmentedProvider requires array samples (single input, "
                "single target)")
        transposable = (self.allow_transpose
                        and inputs.shape[1] == inputs.shape[2]
                        and targets.shape[1] == targets.shape[2])
        transform = random_rigid_transform(self.rng, transposable)
        return (apply_transform(inputs, transform),
                apply_transform(targets, transform))
