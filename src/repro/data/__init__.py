"""Data substrate: synthetic connectomics-style volumes, data
providers, boundary metrics."""

from repro.data.augment import (
    AugmentedProvider,
    apply_transform,
    random_rigid_transform,
)
from repro.data.metrics import BoundaryScores, boundary_scores, pixel_error
from repro.data.multi import MultiVolumeProvider
from repro.data.provider import (
    FixedProvider,
    PatchProvider,
    RandomProvider,
    ShardedSampler,
    shard_indices,
)
from repro.data.synthetic import (
    CellVolume,
    boundary_map_from_labels,
    make_cell_volume,
)

__all__ = [
    "AugmentedProvider",
    "apply_transform",
    "random_rigid_transform",
    "BoundaryScores",
    "boundary_scores",
    "pixel_error",
    "MultiVolumeProvider",
    "FixedProvider",
    "PatchProvider",
    "RandomProvider",
    "ShardedSampler",
    "shard_indices",
    "CellVolume",
    "boundary_map_from_labels",
    "make_cell_volume",
]
