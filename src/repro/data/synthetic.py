"""Synthetic connectomics-style volumes.

The paper's motivating application is boundary detection in 3D electron
microscopy of brain tissue [13], [21], [23] — data we do not have.  We
substitute synthetic "cell" volumes with analytic ground truth that
exercise the same code paths (dense 3D input, dense binary boundary
target, sliding-window/dense inference):

* a random Voronoi partition of the volume plays the role of the cell
  segmentation;
* the boundary map marks voxels whose neighbourhood spans two cells
  (the membrane ground truth);
* the intensity image is bright inside cells and dark at membranes,
  with optional blur and noise — the EM contrast polarity.

Everything is seeded and pure numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.shapes import as_shape3

__all__ = ["CellVolume", "make_cell_volume", "boundary_map_from_labels"]


def boundary_map_from_labels(labels: np.ndarray) -> np.ndarray:
    """Binary membrane map: 1 where a voxel's 6-neighbourhood crosses a
    label boundary."""
    boundary = np.zeros(labels.shape, dtype=np.float64)
    for axis in range(labels.ndim):
        if labels.shape[axis] < 2:
            continue
        lo = [slice(None)] * labels.ndim
        hi = [slice(None)] * labels.ndim
        lo[axis] = slice(0, -1)
        hi[axis] = slice(1, None)
        diff = labels[tuple(lo)] != labels[tuple(hi)]
        boundary[tuple(lo)][diff] = 1.0
        boundary[tuple(hi)][diff] = 1.0
    return boundary


def _box_blur(image: np.ndarray, radius: int) -> np.ndarray:
    """Separable box blur (cheap smoothing without scipy.ndimage)."""
    out = image
    for axis in range(3):
        if out.shape[axis] < 2 * radius + 1 or radius < 1:
            continue
        csum = np.cumsum(out, axis=axis)
        width = 2 * radius + 1
        n = out.shape[axis]
        idx_hi = np.clip(np.arange(n) + radius, 0, n - 1)
        idx_lo = np.arange(n) - radius - 1
        hi = np.take(csum, idx_hi, axis=axis)
        lo = np.where(
            (idx_lo >= 0).reshape([-1 if a == axis else 1 for a in range(3)]),
            np.take(csum, np.clip(idx_lo, 0, n - 1), axis=axis), 0.0)
        counts = (idx_hi - np.clip(idx_lo, -1, n - 1)).astype(np.float64)
        counts = counts.reshape([-1 if a == axis else 1 for a in range(3)])
        out = (hi - lo) / counts
    return out


@dataclass
class CellVolume:
    """A synthetic labelled volume: intensity image, cell labels, and
    the binary membrane ground truth."""

    image: np.ndarray
    labels: np.ndarray
    boundary: np.ndarray

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self.image.shape  # type: ignore[return-value]

    def boundary_fraction(self) -> float:
        """Fraction of voxels labelled as membrane (class balance)."""
        return float(np.mean(self.boundary))


def make_cell_volume(shape: int | Sequence[int] = 48,
                     num_cells: int = 12,
                     noise: float = 0.1,
                     blur_radius: int = 1,
                     anisotropy: Sequence[float] = (1.0, 1.0, 1.0),
                     seed: SeedLike = None) -> CellVolume:
    """Generate a synthetic cell volume.

    Parameters
    ----------
    shape:
        Volume shape (scalar = isotropic cube).
    num_cells:
        Number of Voronoi seed points (cells).
    noise:
        Stddev of additive Gaussian intensity noise.
    blur_radius:
        Box-blur radius applied to the clean intensity (simulates the
        microscope point-spread).
    anisotropy:
        Per-axis distance weights (EM stacks have coarser z).
    seed:
        RNG seed.
    """
    shp = as_shape3(shape, name="shape")
    if num_cells < 1:
        raise ValueError(f"num_cells must be >= 1, got {num_cells}")
    rng = as_generator(seed)

    points = rng.random((num_cells, 3)) * np.array(shp)
    weights = np.asarray(anisotropy, dtype=np.float64)
    if weights.shape != (3,) or np.any(weights <= 0):
        raise ValueError(f"anisotropy must be 3 positive floats, got {anisotropy}")

    grid = np.stack(np.meshgrid(*[np.arange(s) for s in shp], indexing="ij"),
                    axis=-1).astype(np.float64)
    # Distance to every seed, weighted per axis; argmin = Voronoi label.
    best = np.full(shp, np.inf)
    labels = np.zeros(shp, dtype=np.int32)
    for i, p in enumerate(points):
        d = np.zeros(shp)
        for a in range(3):
            d += (weights[a] * (grid[..., a] - p[a])) ** 2
        closer = d < best
        best[closer] = d[closer]
        labels[closer] = i
    boundary = boundary_map_from_labels(labels)

    clean = 1.0 - boundary  # bright cytoplasm, dark membranes
    clean = _box_blur(clean, blur_radius)
    image = clean + noise * rng.standard_normal(shp)
    return CellVolume(image=np.ascontiguousarray(image),
                      labels=labels,
                      boundary=boundary)
