"""Cross-process deterministic gradient summation.

Algorithm 4 makes *thread* summation almost wait-free by keeping only
pointer swaps inside the critical section; its deterministic variant
(:class:`repro.sync.OrderedSum`) deposits into indexed slots and
reduces them in index order.  :class:`SharedOrderedSum` extends that
design across **processes**: the slots are shared-memory arrays from a
:class:`repro.memory.shared_pool.SharedMemoryPool`, each contribution
is keyed by its *global sample index*, and the coordinating process
performs the same fixed-order reduction
(:func:`repro.sync.summation.reduce_in_order`).

Because a slot's content is a pure function of (parameters, round,
sample index), any process may fill any slot — completion is defined
by "all slots filled", not by who filled them.  That property is what
lets the trainer reassign a dead worker's slots and still produce a
bitwise-identical result.

Synchronisation is message-based (the trainer's pipes order writes
before the reduction); the ``filled`` flags exist so a coordinator
recovering from a worker death can see which slots the casualty
completed before dying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.memory.shared_pool import (AttachedBlock, BlockHandle,
                                      SharedMemoryPool, attach_block)
from repro.sync.summation import reduce_in_order

__all__ = ["SharedOrderedSum", "SumHandles"]


@dataclass(frozen=True)
class SumHandles:
    """Picklable description of a :class:`SharedOrderedSum`'s blocks."""

    slot_handles: Tuple[BlockHandle, ...]
    flags_handle: BlockHandle
    shape: Tuple[int, ...]
    dtype: str


class SharedOrderedSum:
    """Fixed slots in shared memory, reduced in index order.

    Parameters
    ----------
    num_slots:
        Number of contributions completing the sum (the global batch
        size in the data-parallel trainer).
    shape / dtype:
        Shape and dtype of each contribution.
    """

    def __init__(self, slots: List[AttachedBlock], flags: AttachedBlock,
                 shape: Tuple[int, ...], dtype: np.dtype,
                 pool: SharedMemoryPool | None) -> None:
        self._blocks = slots
        self._flags_block = flags
        self.shape = shape
        self.dtype = dtype
        self._pool = pool  # owner only; attachers hold None
        self._slots = [b.as_array(shape, dtype) for b in slots]
        self._filled = flags.as_array(len(slots), np.uint8)

    # -- construction ---------------------------------------------------

    @classmethod
    def create(cls, pool: SharedMemoryPool, num_slots: int,
               shape: Sequence[int] | int,
               dtype=np.float64) -> "SharedOrderedSum":
        """Owner-side constructor: allocate slots from *pool*."""
        if num_slots < 1:
            raise ValueError(f"num_slots must be >= 1, got {num_slots}")
        shape_t = (shape,) if isinstance(shape, int) else tuple(shape)
        dt = np.dtype(dtype)
        slots = [pool.allocate(
            max(1, int(np.prod(shape_t)) * dt.itemsize))
            for _ in range(num_slots)]
        flags = pool.allocate(num_slots)
        out = cls(slots, flags, shape_t, dt, pool)
        out.reset()
        return out

    @classmethod
    def attach(cls, handles: SumHandles) -> "SharedOrderedSum":
        """Worker-side constructor: map the owner's blocks."""
        slots = [attach_block(h) for h in handles.slot_handles]
        flags = attach_block(handles.flags_handle)
        return cls(slots, flags, tuple(handles.shape),
                   np.dtype(handles.dtype), pool=None)

    def handles(self) -> SumHandles:
        """The picklable identity workers attach with."""
        return SumHandles(
            slot_handles=tuple(b.handle for b in self._blocks),
            flags_handle=self._flags_block.handle,
            shape=tuple(self.shape),
            dtype=self.dtype.str)

    # -- contribution ----------------------------------------------------

    @property
    def num_slots(self) -> int:
        return len(self._slots)

    def slot(self, index: int) -> np.ndarray:
        """The shared array for global contribution *index* — write the
        contribution directly into it, then :meth:`mark_filled`."""
        return self._slots[index]

    def mark_filled(self, index: int) -> None:
        self._filled[index] = 1

    def filled(self, index: int) -> bool:
        return bool(self._filled[index])

    def unfilled_indices(self) -> List[int]:
        """Slots not yet marked — after a worker death, the part of its
        shard that must be recomputed elsewhere."""
        return [i for i in range(self.num_slots) if not self._filled[i]]

    def reset(self) -> None:
        """Clear the flags for the next round (slot bytes are reused
        in place — every round overwrites every slot it fills)."""
        self._filled[:] = 0

    # -- reduction -------------------------------------------------------

    # deterministic
    def reduce(self) -> np.ndarray:
        """Sum all slots in index order (Algorithm 4's deterministic
        closing step, across processes).

        Raises if any slot is unfilled.  With one slot the returned
        array aliases the shared slot; callers that mutate the result
        must copy (the trainer's ``/= batch`` normalisation allocates a
        fresh array either way).
        """
        missing = self.unfilled_indices()
        if missing:
            raise RuntimeError(
                f"sum incomplete: slots {missing} unfilled "
                f"({self.num_slots - len(missing)}/{self.num_slots})")
        return reduce_in_order(self._slots)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Owner: return blocks to the pool.  Attacher: unmap them."""
        if self._pool is not None:
            for block in self._blocks:
                self._pool.deallocate(block)
            self._pool.deallocate(self._flags_block)
            self._pool = None
        else:
            for block in self._blocks:
                block.close()
            self._flags_block.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        done = self.num_slots - len(self.unfilled_indices())
        return (f"SharedOrderedSum({done}/{self.num_slots} filled, "
                f"shape={self.shape})")
