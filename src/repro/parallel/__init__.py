"""Multi-process data-parallel training (see ``docs/parallel.md``).

The paper scales one training round across threads of a shared-memory
machine; this package scales *rounds of a global minibatch* across
**processes**, sidestepping the GIL while keeping ZNN's determinism
guarantee: the final checkpoint is bitwise identical for any worker
count, because per-sample gradients land in globally-indexed
shared-memory slots that are reduced in fixed index order — the
cross-process extension of Algorithm 4's summation buffers.

* :class:`ParallelTrainer` — the coordinator: owns the canonical
  network, spawns workers, assigns shards, reduces gradients, applies
  the optimizer step, and degrades to fewer shards when a worker dies.
* :class:`SharedOrderedSum` — globally-indexed gradient slots in
  shared memory with an in-index-order reduction.
* :class:`ModelConfig` — a picklable recipe from which every process
  builds an identical network replica.
* :class:`Replica` — one process's network plus the gradient-capture
  machinery (parameters flattened into a canonical layout).
"""

from repro.parallel.replica import GradientCollector, ModelConfig, Replica
from repro.parallel.summation import SharedOrderedSum, SumHandles
from repro.parallel.trainer import (
    ParallelTrainer,
    WorkerPoolBroken,
    visible_cpus,
)

__all__ = [
    "GradientCollector",
    "ModelConfig",
    "ParallelTrainer",
    "Replica",
    "SharedOrderedSum",
    "SumHandles",
    "WorkerPoolBroken",
    "visible_cpus",
]
