"""Per-process network replicas and gradient capture.

Data-parallel training runs one full task-graph replica per process.
Each replica computes whole-model gradients for its shard of the global
minibatch; only the coordinator applies optimizer steps.  Three pieces
make that work:

* :class:`ModelConfig` — a picklable recipe from which every process
  builds an *identical* network (same graph, same seed → same initial
  weights, same per-edge convolution modes).
* :class:`GradientCollector` — an optimizer stand-in implementing the
  same duck-typed interface the edges call
  (:meth:`repro.core.SGD.update` / ``update_scalar``).  It records the
  exact gradient arrays the real optimizer would have consumed and
  leaves the parameters untouched.
* :class:`Replica` — one process's network plus a canonical flat
  parameter/gradient layout, so parameters and gradients travel between
  processes as single contiguous ``float64`` vectors.

The layout must be identical in every process: kernels are deduped by
weight-sharing group and keyed by the group's alphabetically-first edge
(the same stable id checkpointing uses), then sorted; biases follow,
sorted by edge name.  Layout order only affects where bytes live in the
shared vectors, never arithmetic order, so it cannot perturb results —
but it must agree across processes for the bytes to mean anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.network import Network
from repro.core.optimizer import SGD, UpdateState
from repro.graph.builders import build_layered_network
from repro.graph.computation_graph import ComputationGraph

__all__ = ["GradientCollector", "ModelConfig", "ParamSlot", "Replica"]


class GradientCollector:
    """Records gradients instead of applying them.

    Edges call ``optimizer.update(params, g, state, eta)`` (kernels)
    and ``optimizer.update_scalar(value, g, state, eta)`` (biases) from
    their deferred update tasks; a collector installed as the network's
    optimizer captures each ``g`` keyed by ``id(state)`` — the one
    object that is unique per parameter even under weight sharing.
    Contributions from edges sharing a kernel are summed (the serial
    engine drains update tasks in deterministic order).
    """

    def __init__(self) -> None:
        self.array_grads: Dict[int, np.ndarray] = {}
        self.scalar_grads: Dict[int, float] = {}

    def update(self, params: np.ndarray, gradient: np.ndarray,
               state: UpdateState, eta: Optional[float] = None) -> None:
        key = id(state)
        if key in self.array_grads:
            self.array_grads[key] = self.array_grads[key] + gradient
        else:
            self.array_grads[key] = np.array(gradient, dtype=np.float64)

    def update_scalar(self, value: float, gradient: float,
                      state: UpdateState,
                      eta: Optional[float] = None) -> float:
        key = id(state)
        self.scalar_grads[key] = (self.scalar_grads.get(key, 0.0)
                                  + float(gradient))
        return value  # parameter unchanged

    def clear(self) -> None:
        self.array_grads.clear()
        self.scalar_grads.clear()


@dataclass(frozen=True)
class ModelConfig:
    """Everything needed to build identical network replicas.

    Every field is picklable so the config crosses the ``spawn``
    boundary.  The graph comes from the layered builder (``spec`` +
    ``layered_kwargs``) — the same recipe in every process yields the
    same graph, and the same ``seed`` yields bitwise-identical initial
    weights.

    ``conv_mode`` may be ``"auto"`` only on the coordinator: workers
    must receive the *resolved* per-edge dict (autotuning measures the
    local machine and could disagree between processes), which
    :meth:`resolved` produces.
    """

    input_shape: Tuple[int, int, int]
    spec: str = ""
    layered_kwargs: Mapping[str, object] = field(default_factory=dict)
    #: Path to a spec file; overrides ``spec``/``layered_kwargs`` (the
    #: file must be readable by every worker process).
    spec_path: Optional[str] = None
    conv_mode: Union[str, Mapping[str, str]] = "direct"
    loss: str = "euclidean"
    seed: int = 0
    learning_rate: float = 0.01
    momentum: float = 0.0
    weight_decay: float = 0.0
    memoize: bool = True
    fft_fast_sizes: bool = False

    def build_graph(self) -> ComputationGraph:
        if self.spec_path is not None:
            from repro.graph.specfile import load_spec

            return load_spec(self.spec_path)
        if not self.spec:
            raise ValueError("ModelConfig needs spec or spec_path")
        return build_layered_network(self.spec, **dict(self.layered_kwargs))

    def build_network(self) -> Network:
        """A single-process deterministic replica of the model."""
        mode = self.conv_mode
        if not isinstance(mode, str):
            mode = dict(mode)
        return Network(
            self.build_graph(),
            input_shape=self.input_shape,
            conv_mode=mode,
            memoize=self.memoize,
            optimizer=SGD(learning_rate=self.learning_rate,
                          momentum=self.momentum,
                          weight_decay=self.weight_decay),
            loss=self.loss,
            num_workers=1,
            seed=self.seed,
            fft_fast_sizes=self.fft_fast_sizes)

    def resolved(self, network: Network) -> "ModelConfig":
        """The config workers should receive: ``conv_mode`` pinned to
        the per-edge modes *network* actually resolved (important for
        ``"auto"``, where autotuning must happen exactly once)."""
        return replace(self, conv_mode=dict(network.conv_modes))


@dataclass(frozen=True)
class ParamSlot:
    """One parameter's place in the flat vector."""

    name: str          # stable id: first sharing edge (kernel) / edge
    kind: str          # "kernel" | "bias"
    offset: int
    size: int
    shape: Tuple[int, ...]


class Replica:
    """A process-local network with a canonical flat parameter layout.

    The layout (kernel groups sorted by stable name, then biases sorted
    by edge name) is a pure function of the graph, so every process
    derives the same one.
    """

    def __init__(self, network: Network, base_seed: int = 0) -> None:
        self.network = network
        self.base_seed = int(base_seed)
        self.slots: List[ParamSlot] = []
        self._kernels: Dict[str, object] = {}   # stable name -> SharedKernel
        self._transfers: Dict[str, object] = {}  # edge name -> TransferEdge
        self._build_layout()

    @classmethod
    def from_config(cls, config: ModelConfig) -> "Replica":
        return cls(config.build_network(), base_seed=config.seed)

    # -- layout ----------------------------------------------------------

    def _build_layout(self) -> None:
        net = self.network
        groups: Dict[int, List[str]] = {}
        kernels: Dict[int, object] = {}
        for name, edge in net.edges.items():
            if hasattr(edge, "kernel"):
                groups.setdefault(id(edge.kernel), []).append(name)
                kernels[id(edge.kernel)] = edge.kernel
        stable: List[Tuple[str, object]] = sorted(
            (min(names), kernels[kid]) for kid, names in groups.items())
        offset = 0
        for name, kernel in stable:
            shape = tuple(kernel.array.shape)
            size = int(np.prod(shape))
            self.slots.append(ParamSlot(name, "kernel", offset, size, shape))
            self._kernels[name] = kernel
            offset += size
        for name in sorted(net.edges):
            edge = net.edges[name]
            if hasattr(edge, "bias"):
                self.slots.append(ParamSlot(name, "bias", offset, 1, ()))
                self._transfers[name] = edge
                offset += 1
        self.num_values = offset

    # -- parameter I/O ---------------------------------------------------

    def read_params_into(self, vec: np.ndarray) -> None:
        """Flatten current parameters into *vec* (length
        ``num_values``)."""
        for slot in self.slots:
            view = vec[slot.offset:slot.offset + slot.size]
            if slot.kind == "kernel":
                view[:] = self._kernels[slot.name].array.ravel()
            else:
                view[0] = self._transfers[slot.name].bias

    def write_params_from(self, vec: np.ndarray) -> None:
        """Overwrite the network's parameters from *vec*."""
        for slot in self.slots:
            view = vec[slot.offset:slot.offset + slot.size]
            if slot.kind == "kernel":
                self._kernels[slot.name].array[...] = view.reshape(
                    slot.shape)
            else:
                self._transfers[slot.name].bias = float(view[0])

    # -- gradient computation --------------------------------------------

    def _reseed_dropout(self, round_index: int, sample_index: int) -> None:
        """Give every dropout edge a generator that is a pure function
        of (seed, round, sample, edge) — the mask for global sample
        ``(r, i)`` must not depend on which process draws it or what it
        computed before."""
        dropouts = sorted(
            (name for name, e in self.network.edges.items()
             if hasattr(e, "rate") and hasattr(e, "rng")))
        for k, name in enumerate(dropouts):
            seq = np.random.SeedSequence(
                (self.base_seed, round_index, sample_index, k))
            self.network.edges[name].rng = np.random.default_rng(seq)

    def sample_gradient(self, sampler, round_index: int, sample_index: int,
                        out: np.ndarray) -> float:
        """Compute the whole-model gradient of global sample
        ``(round_index, sample_index)`` into *out*; returns the loss.

        The network's parameters are read, never stepped: the optimizer
        is swapped for a :class:`GradientCollector` around the round.
        """
        net = self.network
        self._reseed_dropout(round_index, sample_index)
        inputs, targets = sampler.sample_at(round_index, sample_index)
        collector = GradientCollector()
        real = net.optimizer
        net.optimizer = collector
        try:
            loss = net.train_step(inputs, targets)
            net.synchronize()  # drain deferred updates into the collector
        finally:
            net.optimizer = real
        for slot in self.slots:
            view = out[slot.offset:slot.offset + slot.size]
            if slot.kind == "kernel":
                state_id = id(self._kernels[slot.name].state)
                g = collector.array_grads.get(state_id)
                if g is None:
                    raise RuntimeError(
                        f"no gradient captured for kernel {slot.name!r}")
                view[:] = g.ravel()
            else:
                state_id = id(self._transfers[slot.name].state)
                if state_id not in collector.scalar_grads:
                    raise RuntimeError(
                        f"no gradient captured for bias {slot.name!r}")
                view[0] = collector.scalar_grads[state_id]
        return float(loss)

    # -- parameter step (coordinator only) -------------------------------

    def apply_update(self, grad_vec: np.ndarray,
                     optimizer: Optional[SGD] = None) -> None:
        """Apply one optimizer step with the (already reduced and
        normalised) gradient vector.

        Per parameter this performs exactly the operation an edge's own
        update task performs — ``SGD.update`` on the kernel array under
        its lock, ``SGD.update_scalar`` on the bias — against the
        edge-owned :class:`UpdateState`, so momentum velocities live
        where checkpointing expects them and a one-slot run is bitwise
        identical to the sequential trainer.
        """
        opt = optimizer if optimizer is not None else self.network.optimizer
        for slot in self.slots:
            view = grad_vec[slot.offset:slot.offset + slot.size]
            if slot.kind == "kernel":
                kernel = self._kernels[slot.name]
                g = view.reshape(slot.shape)
                with kernel.lock:
                    opt.update(kernel.array, g, kernel.state, kernel.eta)
            else:
                edge = self._transfers[slot.name]
                edge.bias = opt.update_scalar(
                    edge.bias, float(view[0]), edge.state, edge.eta)
