"""The data-parallel coordinator.

:class:`ParallelTrainer` owns the canonical network (the one that gets
checkpointed), spawns ``workers - 1`` child processes, and runs rounds
of *global-minibatch* gradient learning:

1. publish the current parameters into a shared-memory vector;
2. assign each live worker its shard of the ``batch`` global sample
   indices (round-robin via :func:`repro.data.shard_indices`);
3. every process computes whole-model gradients for its samples into
   the globally-indexed slots of a :class:`SharedOrderedSum`
   (the coordinator itself is worker 0);
4. the coordinator reduces the slots **in index order**, divides by
   ``batch``, and applies one optimizer step.

Because the reduction order is a function of the batch — never of the
workers — the final checkpoint is bitwise identical for any worker
count, including ``workers=1`` (which still exercises the same
shared-memory path).

**Degradation.** A worker that dies mid-run (detected by a broken or
silent pipe) does not kill training: its unfilled slots are recomputed
by the coordinator for the current round, the worker is dropped, and
future rounds shard over the survivors — same samples, same slots,
same reduction, so the checkpoint is unchanged.  The tolerated death
count is governed by a :class:`repro.resilience.RetryPolicy`
(``max_retries`` deaths, with its backoff between recoveries); one
death past the budget raises :class:`WorkerPoolBroken`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.training import TrainingDiverged, TrainingReport
from repro.data.provider import ShardedSampler, shard_indices
from repro.memory.shared_pool import SharedMemoryPool
from repro.observability.metrics import get_registry
from repro.observability.tracing import (
    flight_dump,
    flight_note,
    get_tracer,
)
from repro.parallel.replica import ModelConfig, Replica
from repro.parallel.summation import SharedOrderedSum
from repro.parallel.worker import worker_main
from repro.resilience.faults import active_plan
from repro.resilience.retry import RetryPolicy

__all__ = ["ParallelTrainer", "WorkerPoolBroken", "visible_cpus"]


class WorkerPoolBroken(RuntimeError):
    """More workers died than the retry policy tolerates, or a worker
    reported an unrecoverable error."""


def visible_cpus() -> int:
    """CPUs this process may run on (affinity-aware; >= 1)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class _Child:
    """Coordinator-side record of one spawned worker."""

    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn


class ParallelTrainer:
    """Multi-process data-parallel training with a deterministic
    cross-process gradient reduction.

    Parameters
    ----------
    config:
        The model recipe every process builds its replica from.  With
        ``conv_mode="auto"`` the coordinator resolves the per-edge
        modes once and ships the resolved dict to the workers.
    provider_factory / provider_args:
        A picklable callable (and its arguments) constructing the data
        provider *inside each process* — providers hold volumes and RNG
        state that must not cross the spawn boundary.  Sampling
        determinism comes from :class:`repro.data.ShardedSampler`, so
        the factory needs only to be deterministic in its arguments.
    workers:
        Total processes including the coordinator (>= 1).
    batch:
        Global minibatch size per round — the determinism contract:
        results depend on ``batch``, never on ``workers``.
    retry_policy:
        Worker-death budget and backoff; default
        :class:`RetryPolicy()` (tolerates ``max_retries`` deaths).
    worker_timeout:
        Seconds to wait for a worker's per-round reply before declaring
        it dead.
    """

    def __init__(self, config: ModelConfig, provider_factory,
                 provider_args: tuple = (), workers: int = 1,
                 batch: int = 1,
                 retry_policy: Optional[RetryPolicy] = None,
                 worker_timeout: float = 300.0) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.workers = int(workers)
        self.batch = int(batch)
        self.provider_factory = provider_factory
        self.provider_args = tuple(provider_args)
        self.retry_policy = (retry_policy if retry_policy is not None
                             else RetryPolicy())
        self.worker_timeout = float(worker_timeout)

        self.replica = Replica.from_config(config)
        self.network = self.replica.network
        #: The exact config shipped to workers ("auto" modes resolved).
        self.config = config.resolved(self.network)
        provider = provider_factory(*self.provider_args)
        self._sampler = ShardedSampler(provider, config.seed, self.batch)

        self._pool = SharedMemoryPool(name="parallel")
        self._grads = SharedOrderedSum.create(
            self._pool, self.batch, self.replica.num_values)
        self._params_block, self._params = self._pool.allocate_array(
            self.replica.num_values)
        self._losses_block, self._losses = self._pool.allocate_array(
            self.batch)
        self._children: List[_Child] = []
        self._closed = False
        self.worker_deaths = 0
        self._deaths_since_success = 0

        tracer = get_tracer()
        if tracer.enabled:
            # Stable process label for merged traces (pid 0); workers
            # label themselves "worker-N" inside worker_main.
            tracer.set_process("coordinator")

        reg = get_registry()
        self._m_workers = reg.gauge("parallel.workers")
        self._m_rounds = reg.counter("parallel.rounds")
        self._m_barrier = reg.histogram("parallel.barrier_wait_seconds")
        self._m_deaths = reg.counter("parallel.worker_deaths")
        self._m_reassigned = reg.counter("parallel.reassigned_samples")
        reg.gauge("parallel.bytes_shared").set(self._pool.held_bytes())
        self._spawn_children()
        self._m_workers.set(1 + len(self._children))

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------

    def _spawn_children(self) -> None:
        ctx = multiprocessing.get_context("spawn")
        for worker_id in range(1, self.workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=worker_main,
                args=(worker_id, self.config, self.provider_factory,
                      self.provider_args, self.batch,
                      self._grads.handles(), self._params_block.handle,
                      self._losses_block.handle, child_conn),
                daemon=True, name=f"repro-worker-{worker_id}")
            process.start()
            child_conn.close()
            self._children.append(_Child(worker_id, process, parent_conn))
        deadline = time.monotonic() + self.worker_timeout
        for child in list(self._children):
            remaining = max(0.0, deadline - time.monotonic())
            if not self._receive(child, remaining, expect="ready"):
                self._handle_death(child, phase="startup")

    def _receive(self, child: _Child, timeout: float,
                 expect: str) -> bool:
        """Wait for *expect* from *child*; False means the child is
        dead (broken pipe, silent past timeout, or exited)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            try:
                if not child.conn.poll(min(remaining, 0.2)):
                    if not child.process.is_alive():
                        return False
                    continue
                message = child.conn.recv()
            except (EOFError, OSError):
                return False
            if message[0] == "spans":
                # A worker shipping its span buffer ahead of "done":
                # adopt the spans under the worker's process label.
                get_tracer().ingest(message[2],
                                    process=f"worker-{message[1]}")
                continue
            if message[0] == "error":
                raise WorkerPoolBroken(
                    f"worker {message[2]} failed in round {message[1]}:\n"
                    f"{message[3]}")
            if message[0] == expect:
                return True
            # Stale message from a previous round (e.g. a late "done"
            # after the worker was presumed dead but survived): skip.

    def _handle_death(self, child: _Child, phase: str) -> None:
        """Drop *child* from the pool, within the death budget."""
        self.worker_deaths += 1
        self._deaths_since_success += 1
        self._m_deaths.inc()
        flight_note("worker death", worker=child.worker_id, phase=phase)
        flight_dump(f"worker-death-{child.worker_id}")
        try:
            child.conn.close()
        except OSError:  # pragma: no cover - already broken
            pass
        child.process.join(timeout=5.0)
        if child.process.is_alive():  # pragma: no cover - stuck child
            child.process.terminate()
            child.process.join(timeout=5.0)
        self._children.remove(child)
        self._m_workers.set(1 + len(self._children))
        if self._deaths_since_success > self.retry_policy.max_retries:
            raise WorkerPoolBroken(
                f"{self.worker_deaths} worker death(s) exceed the retry "
                f"budget ({self.retry_policy.max_retries}); last death "
                f"during {phase}")
        backoff = self.retry_policy.backoff(self._deaths_since_success - 1)
        if backoff > 0:
            time.sleep(backoff)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------

    def _assignments(self) -> Dict[int, List[int]]:
        """Current shard per live process: position in the live list —
        coordinator first, then surviving children — drives the
        round-robin, so shards re-balance automatically as the pool
        shrinks.  (Assignment never affects results; only which process
        fills which globally-indexed slot.)"""
        live = [0] + [c.worker_id for c in self._children]
        return {worker_id: shard_indices(self.batch, len(live), position)
                for position, worker_id in enumerate(live)}

    def _run_round(self, round_index: int) -> Tuple[float, float]:
        """One global-minibatch round; returns (loss, barrier_wait).

        With tracing on, the whole round runs inside a ``round:N``
        span whose context is shipped to every worker in the round
        message — so coordinator-side gradient tasks (created on this
        thread) and worker-side spans (shipped back over the pipe)
        all hang off one per-round tree.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return self._round_body(round_index, None)
        with tracer.span(f"round:{round_index}", category="training",
                         round=round_index, workers=1 +
                         len(self._children)) as span:
            return self._round_body(round_index, span.context)

    def _round_body(self, round_index: int,
                    round_ctx) -> Tuple[float, float]:
        tracer = get_tracer()
        self._grads.reset()
        self.replica.read_params_into(self._params)
        assignments = self._assignments()
        for child in list(self._children):
            try:
                child.conn.send(
                    ("round", round_index, assignments[child.worker_id],
                     round_ctx))
            except (BrokenPipeError, OSError):
                self._handle_death(child, phase="dispatch")
        for i in assignments[0]:
            self._losses[i] = self.replica.sample_gradient(
                self._sampler, round_index, i, self._grads.slot(i))
            self._grads.mark_filled(i)
        wait_start = time.perf_counter()
        barrier_t0 = tracer.now() if tracer.enabled else 0.0
        for child in list(self._children):
            if not self._receive(child, self.worker_timeout, expect="done"):
                self._handle_death(child, phase=f"round {round_index}")
        barrier_wait = time.perf_counter() - wait_start
        if tracer.enabled and round_ctx is not None:
            tracer.record("barrier.wait", barrier_t0,
                          barrier_t0 + barrier_wait, category="training",
                          parent=round_ctx, round=round_index)
        # Recompute whatever the casualties left unfilled — slots are
        # globally indexed, so who fills them cannot change the result.
        missing = self._grads.unfilled_indices()
        if missing:
            self._m_reassigned.inc(len(missing))
            for i in missing:
                self._losses[i] = self.replica.sample_gradient(
                    self._sampler, round_index, i, self._grads.slot(i))
                self._grads.mark_filled(i)
        self._deaths_since_success = 0
        total = self._grads.reduce()
        mean_grad = total / self.batch
        loss_total = 0.0
        for i in range(self.batch):  # fixed index order, like the slots
            loss_total += float(self._losses[i])
        loss = loss_total / self.batch
        plan = active_plan()
        if plan is not None:
            loss = plan.corrupt("loss", loss, name=f"round {round_index}")
        self.replica.apply_update(mean_grad, self.network.optimizer)
        return loss, barrier_wait

    def run(self, rounds: int, callback=None,
            checkpoint_every: int = 0,
            checkpoint_dir=None) -> TrainingReport:
        """Train for *rounds* global-minibatch rounds.

        Mirrors :meth:`repro.core.Trainer.run` for the features that
        make sense across processes: per-round *callback(i, loss)* and
        periodic atomic checkpoints (``ckpt-<rounds>.npz``, one before
        the first round and one at the end).  A non-finite round loss
        raises :class:`TrainingDiverged` immediately — rollback/replay
        is the sequential trainer's job.
        """
        if rounds < 0:
            raise ValueError("rounds must be >= 0")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if checkpoint_every and checkpoint_dir is None:
            raise ValueError("checkpoint_every needs a checkpoint_dir")
        if self._closed:
            raise RuntimeError("trainer is closed")
        from repro.core.serialization import save_network

        reg = get_registry()
        m_loss = reg.gauge("train.loss")
        m_seconds = reg.histogram("train.seconds_per_update")
        report = TrainingReport(workers=self.workers, batch=self.batch)
        start_rounds = self.network.rounds

        def write_checkpoint() -> None:
            path = os.path.join(
                os.fspath(checkpoint_dir),
                f"ckpt-{self.network.rounds:08d}.npz")
            save_network(self.network, path)
            report.checkpoints.append(path)

        if checkpoint_every:
            os.makedirs(os.fspath(checkpoint_dir), exist_ok=True)
            write_checkpoint()
        for i in range(rounds):
            t0 = time.perf_counter()
            loss, barrier_wait = self._run_round(i)
            seconds = time.perf_counter() - t0
            # The coordinator replica's own train_steps advanced the
            # counter once per *sample*; a round is one global update.
            self.network.rounds = start_rounds + i + 1
            if not np.isfinite(loss):
                raise TrainingDiverged(
                    f"loss became non-finite at round {i}")
            report.losses.append(loss)
            report.round_seconds.append(seconds)
            self._m_rounds.inc()
            self._m_barrier.observe(barrier_wait)
            m_loss.set(loss)
            m_seconds.observe(seconds)
            if callback is not None:
                callback(i, loss)
            if checkpoint_every and (i + 1) % checkpoint_every == 0 \
                    and i + 1 < rounds:
                write_checkpoint()
        if checkpoint_every:
            write_checkpoint()
        report.worker_deaths = self.worker_deaths
        return report

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop the workers, free the shared memory, close the
        network (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for child in self._children:
            try:
                child.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            try:
                child.conn.close()
            except OSError:  # pragma: no cover - already broken
                pass
        for child in self._children:
            child.process.join(timeout=10.0)
            if child.process.is_alive():  # pragma: no cover - stuck
                child.process.terminate()
                child.process.join(timeout=5.0)
        self._children.clear()
        self._m_workers.set(0)
        self._grads.close()
        self._pool.close()
        self.network.close()

    def __enter__(self) -> "ParallelTrainer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
