"""The data-parallel worker process.

Spawned (never forked — NumPy and the scheduler do not survive a fork)
with a picklable :class:`repro.parallel.ModelConfig`, a provider
factory, shared-memory handles, and one end of a duplex pipe.  The
worker builds its network replica once, then loops:

    ("round", r, indices[, ctx])
                           → copy the published parameters in, compute
                             the gradient of each assigned global
                             sample into its shared slot, record the
                             loss, mark the slot filled, reply
                             ("done", r).  With tracing enabled the
                             optional ``ctx`` (the coordinator's
                             round-span context) parents this worker's
                             spans, which are shipped back as
                             ("spans", worker_id, payload) just before
                             the "done".
    ("stop",)              → detach shared memory, close the network,
                             exit 0.

Any exception is reported back as ``("error", r, traceback)`` rather
than crashing silently.  An installed :class:`FaultPlan` (inherited via
the ``REPRO_FAULTS`` environment variable) with family ``"worker"``
simulates a *hard crash*: the worker dies with ``os._exit`` — no error
message, no cleanup — which is what the coordinator's dead-worker
detection and shard reassignment are built to survive.
"""

from __future__ import annotations

import os
import traceback

import numpy as np

from repro.data.provider import ShardedSampler
from repro.memory.shared_pool import BlockHandle, attach_block
from repro.observability.tracing import get_tracer
from repro.parallel.replica import ModelConfig, Replica
from repro.parallel.summation import SharedOrderedSum, SumHandles
from repro.resilience.faults import InjectedFault, active_plan

__all__ = ["worker_main"]

#: Exit code of a fault-injected simulated crash (distinguishable from
#: a Python traceback exit in the coordinator's logs).
CRASH_EXIT_CODE = 73


def worker_main(worker_id: int, config: ModelConfig,
                provider_factory, provider_args: tuple,
                batch: int, sum_handles: SumHandles,
                params_handle: BlockHandle, losses_handle: BlockHandle,
                conn) -> None:
    """Run one worker until told to stop (the spawn target)."""
    tracer = get_tracer()
    tracer.set_process(f"worker-{worker_id}")
    grads = SharedOrderedSum.attach(sum_handles)
    params_block = attach_block(params_handle)
    losses_block = attach_block(losses_handle)
    replica = None
    try:
        provider = provider_factory(*provider_args)
        sampler = ShardedSampler(provider, config.seed, batch)
        replica = Replica.from_config(config)
        params = params_block.as_array(replica.num_values, np.float64)
        losses = losses_block.as_array(batch, np.float64)
        conn.send(("ready", worker_id))
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _, round_index, indices = message[:3]
            # 4th element (when present): the coordinator's round-span
            # context — adopt it so this worker's spans join the tree.
            round_ctx = message[3] if len(message) > 3 else None
            try:
                plan = active_plan()
                if plan is not None:
                    plan.check("worker", f"worker-{worker_id}")
                with tracer.activate(round_ctx):
                    with tracer.span("worker.round", category="training",
                                     round=round_index,
                                     samples=len(indices)):
                        replica.write_params_from(params)
                        for i in indices:
                            loss = replica.sample_gradient(
                                sampler, round_index, i, grads.slot(i))
                            losses[i] = loss
                            grads.mark_filled(i)
                if tracer.enabled:
                    # Ship this round's spans ahead of the barrier
                    # reply; the coordinator ingests them under this
                    # worker's process label.
                    conn.send(("spans", worker_id, tracer.drain()))
                conn.send(("done", round_index, worker_id))
            except InjectedFault:
                # Simulated hard crash: no goodbye, no cleanup.
                os._exit(CRASH_EXIT_CODE)
            except Exception:
                conn.send(("error", round_index, worker_id,
                           traceback.format_exc()))
    finally:
        if replica is not None:
            replica.network.close()
        grads.close()
        params_block.close()
        losses_block.close()
        conn.close()
