"""repro — a reproduction of ZNN (Zlateski, Lee & Seung, IPDPS 2016):
fast and scalable training of 3D convolutional networks on multi-core
and many-core shared-memory machines.

Subpackages
-----------
``repro.core``
    The paper's contribution: task-parallel ConvNet training
    (:class:`~repro.core.Network`), direct/FFT autotuned convolution,
    FFT memoization, losses, SGD, dense-output inference, multi-scale
    and dropout extensions.
``repro.tensor``
    Convolution (direct & FFT, sparse/dilated), max-pooling,
    max-filtering, transfer functions, FFT memoization cache.
``repro.graph``
    Computation graphs, layered builders, priority orderings, the task
    dependency graph.
``repro.scheduler``
    Priority task engine with the FORCE protocol; FIFO/LIFO/
    work-stealing alternatives; serial baseline.
``repro.sync``
    Wait-free concurrent summation; heap-of-lists priority queue.
``repro.memory``
    Pooled power-of-two allocators.
``repro.observability``
    Metrics registry (thread-safe counters/gauges/histograms) fed by
    every subsystem above, plus Chrome-trace and snapshot exporters.
``repro.pram``
    FLOP cost model (Tables I–IV) and Brent-bound speedups (Fig 4).
``repro.simulate``
    Table V machine models and the discrete-event scheduler used to
    reproduce the scalability figures (Figs 5–7).
``repro.baselines``
    Calibrated GPU cost models and the CPU-vs-GPU harness (Figs 8–9).
``repro.data``
    Synthetic connectomics-style volumes, providers, metrics.

Quickstart
----------
>>> from repro import Network, build_layered_network, SGD
>>> graph = build_layered_network("CTMCTMCTCT", width=4, kernel=3,
...                               window=2, skip_kernels=True,
...                               output_nodes=1)
>>> net = Network(graph, input_shape=(30, 30, 30), conv_mode="auto",
...               optimizer=SGD(learning_rate=0.01), num_workers=2)
"""

from repro.core import (
    Network,
    SGD,
    Trainer,
    TrainingReport,
    autotune_graph,
    copy_parameters,
    dense_equivalent_network,
    get_loss,
    sliding_window_forward,
)
from repro.data import PatchProvider, RandomProvider, make_cell_volume
from repro.graph import (
    ComputationGraph,
    build_layered_network,
    build_task_graph,
    pool_to_filter_spec,
)
from repro.observability import (
    MetricsRegistry,
    get_registry,
    metrics_snapshot,
    write_chrome_trace,
)
from repro.scheduler import SerialEngine, TaskEngine, TraceRecorder
from repro.simulate import MACHINES, get_machine, simulate_schedule

__version__ = "1.0.0"

__all__ = [
    "Network",
    "SGD",
    "Trainer",
    "TrainingReport",
    "autotune_graph",
    "copy_parameters",
    "dense_equivalent_network",
    "get_loss",
    "sliding_window_forward",
    "PatchProvider",
    "RandomProvider",
    "make_cell_volume",
    "ComputationGraph",
    "build_layered_network",
    "build_task_graph",
    "pool_to_filter_spec",
    "SerialEngine",
    "TaskEngine",
    "TraceRecorder",
    "MetricsRegistry",
    "get_registry",
    "metrics_snapshot",
    "write_chrome_trace",
    "MACHINES",
    "get_machine",
    "simulate_schedule",
    "__version__",
]
