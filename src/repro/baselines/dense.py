"""Dense-training cost comparison (Section IX).

"ZNN can also perform 'dense training' … Requiring Caffe or Theano to
perform dense training could have been accomplished by computing 16
sparse outputs in 2D and 64 in 3D to assemble a dense output.  This
method is very inefficient and would have been no contest with ZNN."

The comparison net has two 2x pooling stages, so its outputs live on a
period-4 lattice: a dense map needs 4^d offset evaluations from a
pooling-based SIMD framework, while ZNN's max-filtering network
computes all offsets in one pass whose cost (Table II on the
*unpooled* image pyramid) is far below 4^d sparse passes.
"""

from __future__ import annotations

from typing import List

from repro.baselines.gpu_model import ConvLayerShape, GpuFramework
from repro.baselines.gpu_model import gpu_seconds_per_update
from repro.baselines.znn_model import comparison_layers, znn_seconds_per_update
from repro.utils.shapes import as_shape3, input_shape_for_output

__all__ = [
    "dense_offset_count",
    "gpu_dense_seconds",
    "znn_dense_layers",
    "znn_dense_seconds",
]


def dense_offset_count(dims: int, pooling_stages: int = 2,
                       pool: int = 2) -> int:
    """Sparse evaluations needed per dense output: (pool^stages)^dims —
    the paper's 16 (2D) and 64 (3D)."""
    if dims not in (2, 3):
        raise ValueError(f"dims must be 2 or 3, got {dims}")
    return (pool ** pooling_stages) ** dims


def gpu_dense_seconds(framework: GpuFramework, dims: int, kernel_size: int,
                      output_size: int, width: int = 40) -> float:
    """Modelled GPU seconds for one *dense* update: the sparse update
    repeated at every pooling offset."""
    layers = comparison_layers(dims, kernel_size, output_size, width=width)
    return (dense_offset_count(dims)
            * gpu_seconds_per_update(framework, layers))


def znn_dense_layers(dims: int, kernel_size: int, output_size: int,
                     width: int = 40) -> List[ConvLayerShape]:
    """Layer shapes of ZNN's dense (max-filtering, skip-kernel)
    equivalent of the comparison net.

    Resolution is never reduced: every layer sees the full input-sized
    image (minus valid-convolution trims), with convolutions dilated by
    the accumulated pooling factor.  ``output_size`` is the *sparse*
    patch size, so the dense output spans ``(output_size-1)*4 + 1``
    voxels per pooled dimension.
    """
    from repro.baselines.znn_model import COMPARISON_SPEC

    if dims == 2:
        kernel = (1, kernel_size, kernel_size)
        window = (1, 2, 2)
        out = (1, output_size, output_size)
    elif dims == 3:
        kernel = (kernel_size,) * 3
        window = (2, 2, 2)
        out = (output_size,) * 3
    else:
        raise ValueError(f"dims must be 2 or 3, got {dims}")

    # Same input extent as the pooled net (identical field of view).
    pooled_layers = []
    for c in COMPARISON_SPEC:
        if c == "C":
            pooled_layers.append(("conv", kernel, 1))
        elif c == "P":
            pooled_layers.append(("pool", window, 1))
        else:
            pooled_layers.append(("transfer", 1, 1))
    in_size = input_shape_for_output(out, pooled_layers)

    shapes: List[ConvLayerShape] = []
    current = as_shape3(in_size)
    sparsity = (1, 1, 1)
    f_in = 1
    for c in COMPARISON_SPEC:
        if c == "C":
            eff = tuple((k - 1) * s + 1 for k, s in zip(as_shape3(kernel),
                                                        sparsity))
            out_shape = tuple(n - e + 1 for n, e in zip(current, eff))
            shapes.append(ConvLayerShape(
                f_in=f_in, f_out=width, input_shape=current,
                output_shape=out_shape,  # type: ignore[arg-type]
                kernel_shape=as_shape3(kernel)))
            current = out_shape  # type: ignore[assignment]
            f_in = width
        elif c == "P":
            # max-filtering instead of pooling: valid trim, no decimation
            eff = tuple((w - 1) * s + 1 for w, s in zip(as_shape3(window),
                                                        sparsity))
            current = tuple(n - e + 1 for n, e in zip(current, eff))
            sparsity = tuple(s * w for s, w in zip(sparsity,
                                                   as_shape3(window)))
    return shapes


def znn_dense_seconds(dims: int, kernel_size: int, output_size: int,
                      width: int = 40, machine="xeon-18") -> float:
    """Modelled ZNN seconds for one dense update (one pass of the
    max-filter net over full-resolution images)."""
    return znn_seconds_per_update(znn_dense_layers(dims, kernel_size,
                                                   output_size, width),
                                  machine=machine)
