"""ZNN-CPU cost model for the GPU comparison (Section IX).

The paper runs ZNN on an 18-core EC2 c4.8xlarge with FFT convolution
(chosen by the autotuner for both 2D and 3D).  We model seconds/update
as the Table II FFT(Memoized) FLOPs of the benchmark network divided by
the machine's effective throughput, plus the per-task scheduling
overhead; the throughput calibration (fraction of peak achieved by MKL
FFTs) is the single tuned constant.

:func:`comparison_layers` derives the per-layer shapes of the
Section IX benchmark architecture ``CTPCTPCTCTCTCT`` (width 40) for a
given kernel size and output-patch size under *sparse training*
(predictions on a period-4 lattice, so the GPU nets process the pooled
pyramid and ZNN the equivalent work).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.baselines.gpu_model import ConvLayerShape
from repro.graph.builders import build_layered_network
from repro.pram.costs import (
    DEFAULT_FFT_CONSTANT,
    conv_layer_costs_direct,
    conv_layer_costs_fft,
    filtering_layer_costs,
    pooling_layer_costs,
    transfer_layer_costs,
)
from repro.simulate.machine import MachineSpec, get_machine
from repro.utils.shapes import as_shape3, input_shape_for_output

__all__ = [
    "COMPARISON_SPEC",
    "comparison_layers",
    "znn_seconds_per_update",
]

#: The Section IX benchmark: 6 conv layers, 2 max-poolings, width 40.
COMPARISON_SPEC = "CTPCTPCTCTCTCT"

#: Fraction of a Xeon core's peak the MKL FFT path sustains.
ZNN_FFT_EFFICIENCY = 0.20
#: Fraction sustained by the direct (tensordot/SIMD) path.
ZNN_DIRECT_EFFICIENCY = 0.55


def comparison_layers(dims: int, kernel_size: int, output_size: int,
                      width: int = 40) -> List[ConvLayerShape]:
    """Per-conv-layer shapes of the comparison net.

    ``dims``: 2 or 3.  ``kernel_size``/``output_size``: linear sizes
    (the paper's 10–40 / 1–64 in 2D, 3–7 / 1–8 in 3D).
    """
    if dims == 2:
        kernel = (1, kernel_size, kernel_size)
        window = (1, 2, 2)
        out = (1, output_size, output_size)
    elif dims == 3:
        kernel = (kernel_size,) * 3
        window = (2, 2, 2)
        out = (output_size,) * 3
    else:
        raise ValueError(f"dims must be 2 or 3, got {dims}")

    layers = []
    for c in COMPARISON_SPEC:
        if c == "C":
            layers.append(("conv", kernel, 1))
        elif c == "P":
            layers.append(("pool", window, 1))
        elif c == "T":
            layers.append(("transfer", 1, 1))
    in_size = input_shape_for_output(out, layers)

    # Per-layer image shapes are width-independent: propagate through a
    # width-1 build and read them off layer by layer.
    graph = build_layered_network(COMPARISON_SPEC, width=1, kernel=kernel,
                                  window=window)
    graph.propagate_shapes(in_size)
    layer_shape = {node.layer: node.shape
                   for node in graph.nodes.values()}

    shapes: List[ConvLayerShape] = []
    f_in = 1  # single input image
    for layer_index, c in enumerate(COMPARISON_SPEC, start=1):
        if c != "C":
            continue
        shapes.append(ConvLayerShape(
            f_in=f_in, f_out=width,
            input_shape=layer_shape[layer_index - 1],
            output_shape=layer_shape[layer_index],
            kernel_shape=as_shape3(kernel)))
        f_in = width
    return shapes


def znn_seconds_per_update(layers: List[ConvLayerShape],
                           machine: MachineSpec | str = "xeon-18",
                           mode: str = "fft-memo",
                           constant: float = DEFAULT_FFT_CONSTANT) -> float:
    """Modelled ZNN seconds per update on *machine*.

    The whole-update FLOPs (all three passes, conv layers plus the
    cheap pooling/transfer layers) are divided by the machine's
    aggregate throughput at its full hardware thread count scaled by
    the path's sustained-efficiency constant, and each conv task is
    charged the scheduling overhead.
    """
    if isinstance(machine, str):
        machine = get_machine(machine)
    total_flops = 0.0
    tasks = 0
    for layer in layers:
        if mode == "direct":
            costs = conv_layer_costs_direct(layer.f_in, layer.f_out,
                                            layer.input_shape,
                                            layer.kernel_shape)
        else:
            costs = conv_layer_costs_fft(layer.f_in, layer.f_out,
                                         layer.input_shape,
                                         memoized=(mode == "fft-memo"),
                                         constant=constant)
        total_flops += costs.total
        # transfer layer following each conv layer
        total_flops += transfer_layer_costs(layer.f_out,
                                            layer.output_shape).total
        tasks += 3 * layer.f_in * layer.f_out + 3 * layer.f_out
    # the two pooling layers (cheap, but counted)
    total_flops += 2 * pooling_layer_costs(
        layers[0].f_out, layers[0].output_shape).total

    efficiency = (ZNN_DIRECT_EFFICIENCY if mode == "direct"
                  else ZNN_FFT_EFFICIENCY)
    flops_per_second = (machine.throughput(machine.threads)
                        * machine.gflops_per_core * 1e9 * efficiency)
    overhead_flops = tasks * machine.sync_overhead
    return (total_flops + overhead_flops) / flops_per_second
