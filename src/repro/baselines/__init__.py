"""GPU baselines and the CPU-vs-GPU comparison harness (Figs 8–9)."""

from repro.baselines.compare import (
    FIG8_KERNELS,
    FIG8_OUTPUTS,
    FIG9_KERNELS,
    FIG9_OUTPUTS,
    ComparisonRow,
    fig8_comparison,
    fig9_comparison,
    format_comparison,
)
from repro.baselines.dense import (
    dense_offset_count,
    gpu_dense_seconds,
    znn_dense_layers,
    znn_dense_seconds,
)
from repro.baselines.gpu_model import (
    GPU_FRAMEWORKS,
    TITAN_X_MEMORY_BYTES,
    TITAN_X_PEAK_FLOPS,
    ConvLayerShape,
    GpuFramework,
    gpu_fits_in_memory,
    gpu_memory_bytes,
    gpu_seconds_per_update,
)
from repro.baselines.znn_model import (
    COMPARISON_SPEC,
    comparison_layers,
    znn_seconds_per_update,
)

__all__ = [
    "FIG8_KERNELS",
    "FIG8_OUTPUTS",
    "FIG9_KERNELS",
    "FIG9_OUTPUTS",
    "ComparisonRow",
    "fig8_comparison",
    "fig9_comparison",
    "format_comparison",
    "dense_offset_count",
    "gpu_dense_seconds",
    "znn_dense_layers",
    "znn_dense_seconds",
    "GPU_FRAMEWORKS",
    "TITAN_X_MEMORY_BYTES",
    "TITAN_X_PEAK_FLOPS",
    "ConvLayerShape",
    "GpuFramework",
    "gpu_fits_in_memory",
    "gpu_memory_bytes",
    "gpu_seconds_per_update",
    "COMPARISON_SPEC",
    "comparison_layers",
    "znn_seconds_per_update",
]
