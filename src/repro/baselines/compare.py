"""CPU-vs-GPU comparison harness — Figures 8 and 9.

Generates the paper's seconds-per-update bar charts as tables:

* **Fig 8** (2D): ZNN (18-core c4.8xlarge, FFT) vs Caffe, Caffe+cuDNN
  and Theano (Titan X, direct), kernels {10, 20, 30, 40}^2, output
  patches {1 … 64}^2, width 40, sparse training.  ``None`` entries are
  the paper's missing bars (the framework's modelled footprint exceeds
  the Titan X's 12 GB).
* **Fig 9** (3D): ZNN vs Theano's 3D path, kernels {3, 5, 7}^3, output
  patches {1 … 8}^3.  (Caffe's official release had no 3D support.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines.gpu_model import (
    GPU_FRAMEWORKS,
    gpu_fits_in_memory,
    gpu_memory_bytes,
    gpu_seconds_per_update,
)
from repro.baselines.znn_model import comparison_layers, znn_seconds_per_update

__all__ = [
    "FIG8_KERNELS",
    "FIG8_OUTPUTS",
    "FIG9_KERNELS",
    "FIG9_OUTPUTS",
    "ComparisonRow",
    "fig8_comparison",
    "fig9_comparison",
    "format_comparison",
]

FIG8_KERNELS = (10, 20, 30, 40)
FIG8_OUTPUTS = (1, 2, 4, 8, 16, 32, 64)
FIG9_KERNELS = (3, 5, 7)
FIG9_OUTPUTS = (1, 2, 4, 6, 8)


@dataclass
class ComparisonRow:
    """One bar group: seconds/update per system at one (kernel, output)."""

    kernel_size: int
    output_size: int
    seconds: Dict[str, Optional[float]] = field(default_factory=dict)

    def winner(self) -> str:
        """Fastest system (OOM entries excluded)."""
        valid = {k: v for k, v in self.seconds.items() if v is not None}
        return min(valid, key=valid.get)  # type: ignore[arg-type]


def fig8_comparison(kernels: Sequence[int] = FIG8_KERNELS,
                    outputs: Sequence[int] = FIG8_OUTPUTS,
                    width: int = 40) -> List[ComparisonRow]:
    """The 2D comparison of Fig 8."""
    rows: List[ComparisonRow] = []
    for k in kernels:
        for o in outputs:
            layers = comparison_layers(2, k, o, width=width)
            row = ComparisonRow(kernel_size=k, output_size=o)
            row.seconds["znn"] = znn_seconds_per_update(layers)
            for key in ("caffe", "caffe-cudnn", "theano"):
                fw = GPU_FRAMEWORKS[key]
                if gpu_fits_in_memory(fw, layers):
                    row.seconds[key] = gpu_seconds_per_update(fw, layers)
                else:
                    row.seconds[key] = None  # the paper's missing bars
            rows.append(row)
    return rows


def fig9_comparison(kernels: Sequence[int] = FIG9_KERNELS,
                    outputs: Sequence[int] = FIG9_OUTPUTS,
                    width: int = 40) -> List[ComparisonRow]:
    """The 3D comparison of Fig 9 (ZNN vs Theano's 3D path)."""
    rows: List[ComparisonRow] = []
    for k in kernels:
        for o in outputs:
            layers = comparison_layers(3, k, o, width=width)
            row = ComparisonRow(kernel_size=k, output_size=o)
            row.seconds["znn"] = znn_seconds_per_update(layers)
            fw = GPU_FRAMEWORKS["theano-3d"]
            if gpu_fits_in_memory(fw, layers):
                row.seconds["theano"] = gpu_seconds_per_update(fw, layers)
            else:
                row.seconds["theano"] = None
            rows.append(row)
    return rows


def format_comparison(rows: List[ComparisonRow],
                      dims: int) -> str:
    """Render rows as the figures' tables (seconds/update)."""
    systems = sorted({s for r in rows for s in r.seconds})
    lines = []
    header = f"{'kernel':>7} {'output':>7} " + " ".join(
        f"{s:>12}" for s in systems) + f" {'winner':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = []
        for s in systems:
            v = row.seconds.get(s)
            cells.append(f"{'OOM':>12}" if v is None else f"{v:12.4f}")
        suffix = "^%d" % dims
        lines.append(f"{row.kernel_size:>5}{suffix} {row.output_size:>5}{suffix} "
                     + " ".join(cells) + f" {row.winner():>12}")
    return "\n".join(lines)
