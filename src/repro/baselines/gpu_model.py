"""Analytic GPU baselines — Caffe, Caffe+cuDNN, Theano on a Titan X.

We cannot run the paper's GPU comparison hardware, so Figs 8 and 9 are
reproduced with calibrated throughput models (see DESIGN.md).  The
paper's comparison is fundamentally *algorithmic*: the GPU frameworks
perform direct convolution (SIMD layerwise, one thread per output
voxel; Caffe/cuDNN lower a layer to matrix multiplication), so their
time scales with ``f * f' * n'^d * k^d``, while ZNN-CPU uses FFT
convolution scaling with ``n^d log n``.  The crossovers in kernel size
and the out-of-memory cliffs (the missing bars of Fig 8) follow from
those scalings plus two calibrated constants per framework: an
effective fraction of the Titan X's peak throughput and a per-update
fixed overhead.

Memory model (Titan X: 12 GB): parameters + gradients, forward +
backward activations, and the im2col lowering workspace
(``f * k^d * n'^d`` floats) that makes Caffe "unable to handle networks
of the given size" for large kernels, and similarly limits Theano's 3D
convolutions to kernels ≤ 7^3 (Section IX-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.shapes import voxels

__all__ = [
    "TITAN_X_PEAK_FLOPS",
    "TITAN_X_MEMORY_BYTES",
    "ConvLayerShape",
    "GpuFramework",
    "GPU_FRAMEWORKS",
    "gpu_seconds_per_update",
    "gpu_memory_bytes",
    "gpu_fits_in_memory",
]

#: Titan X (Maxwell): ~6.1 TFLOP/s single precision, 12 GB on-board.
TITAN_X_PEAK_FLOPS = 6.1e12
TITAN_X_MEMORY_BYTES = 12 * 1024**3

_BYTES_PER_FLOAT = 4


@dataclass(frozen=True)
class ConvLayerShape:
    """One fully connected convolutional layer's shape summary."""

    f_in: int
    f_out: int
    input_shape: Tuple[int, int, int]
    output_shape: Tuple[int, int, int]
    kernel_shape: Tuple[int, int, int]

    @property
    def macs_per_pass(self) -> float:
        """Multiply-accumulates of one direct pass."""
        return (self.f_in * self.f_out
                * voxels(self.output_shape) * voxels(self.kernel_shape))


@dataclass(frozen=True)
class GpuFramework:
    """A direct-convolution GPU implementation model.

    ``efficiency``: fraction of Titan X peak achieved on conv layers
    (cuDNN's sgemm lowering is the most efficient; Theano's 3D path the
    least).  ``per_layer_overhead``: kernel-launch plus framework
    dispatch per layer per pass.  ``fixed_overhead``: per-update cost
    (optimizer, host sync).  ``workspace_passes``: how many im2col-sized
    workspaces the framework keeps live at once (0 = implicit-GEMM
    style, no lowering buffer).
    """

    name: str
    efficiency: float
    per_layer_overhead: float = 30e-6
    fixed_overhead: float = 3e-3
    workspace_passes: int = 1
    supports_3d: bool = True

    def conv_pass_seconds(self, layer: ConvLayerShape) -> float:
        flops = 2.0 * layer.macs_per_pass
        return (flops / (TITAN_X_PEAK_FLOPS * self.efficiency)
                + self.per_layer_overhead)


#: Calibrated framework models.  Efficiencies are chosen so the
#: regimes of Figs 8–9 reproduce: cuDNN fastest, Caffe's plain path
#: next, Theano's 2D path slower, and Theano's 3D path (the only 3D
#: option the paper could benchmark) far below peak.
GPU_FRAMEWORKS: Dict[str, GpuFramework] = {
    "caffe": GpuFramework(name="Caffe", efficiency=0.40,
                          per_layer_overhead=40e-6, fixed_overhead=4e-3,
                          workspace_passes=2, supports_3d=False),
    "caffe-cudnn": GpuFramework(name="Caffe (cuDNN)", efficiency=0.55,
                                per_layer_overhead=25e-6, fixed_overhead=3e-3,
                                workspace_passes=0, supports_3d=False),
    "theano": GpuFramework(name="Theano", efficiency=0.25,
                           per_layer_overhead=60e-6, fixed_overhead=8e-3,
                           workspace_passes=2, supports_3d=True),
    "theano-3d": GpuFramework(name="Theano (3D)", efficiency=0.10,
                              per_layer_overhead=80e-6, fixed_overhead=10e-3,
                              workspace_passes=1, supports_3d=True),
}


def gpu_seconds_per_update(framework: GpuFramework,
                           layers: Sequence[ConvLayerShape]) -> float:
    """Modelled seconds per training update: three direct-convolution
    passes per conv layer (forward, backward, weight gradient) plus
    fixed per-update overhead.  Pooling/transfer layers are bandwidth
    trivia on a GPU and are folded into the overhead."""
    total = framework.fixed_overhead
    for layer in layers:
        total += 3.0 * framework.conv_pass_seconds(layer)
    return total


def gpu_memory_bytes(framework: GpuFramework,
                     layers: Sequence[ConvLayerShape]) -> int:
    """Modelled on-board memory footprint of training."""
    params = sum(l.f_in * l.f_out * voxels(l.kernel_shape) for l in layers)
    # weights + gradients + momentum
    total = 3 * params * _BYTES_PER_FLOAT
    # forward + backward activations of every layer interface
    acts = sum(l.f_in * voxels(l.input_shape) for l in layers)
    acts += layers[-1].f_out * voxels(layers[-1].output_shape)
    total += 2 * acts * _BYTES_PER_FLOAT
    # im2col lowering workspace (the Caffe killer for big kernels)
    if framework.workspace_passes:
        workspace = max(l.f_in * voxels(l.kernel_shape) * voxels(l.output_shape)
                        for l in layers)
        total += framework.workspace_passes * workspace * _BYTES_PER_FLOAT
    return int(total)


def gpu_fits_in_memory(framework: GpuFramework,
                       layers: Sequence[ConvLayerShape],
                       capacity: int = TITAN_X_MEMORY_BYTES) -> bool:
    """False reproduces the paper's "missing bars"."""
    return gpu_memory_bytes(framework, layers) <= capacity
