"""Task retry and timeout policy for the execution engines.

The paper's engines treat the first task exception as fatal: the queue
closes and the whole multi-hour run dies.  A :class:`RetryPolicy`
layered into :class:`repro.scheduler.TaskEngine` /
:class:`repro.scheduler.SerialEngine` instead re-executes failed tasks
with exponential backoff before giving up, and (threaded engine only)
arms a watchdog that abandons tasks stuck past ``timeout`` and
speculatively re-submits them on a replacement worker.

Retry is safe for this codebase's task bodies because a *failed* task
has not published its result: node sums only receive contributions from
bodies that ran to completion, and update closures mutate parameters
only as their final action under the kernel lock.  Timeout-triggered
*speculative* re-execution is weaker — a genuinely hung (not crashed)
task that later completes will have run twice — which is why
``timeout`` is off by default and documented as at-least-once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Type

__all__ = ["RetryPolicy", "TaskTimeout"]


class TaskTimeout(RuntimeError):
    """A task exceeded the policy's ``timeout`` (raised via the
    engine's error channel when no retry budget remains)."""


@dataclass(frozen=True)
class RetryPolicy:
    """How the engines respond to failing or hung tasks.

    Parameters
    ----------
    max_retries:
        Re-execution budget per task (0 disables retry; the engine then
        behaves exactly as without a policy).
    backoff_seconds / backoff_factor / max_backoff_seconds:
        Exponential backoff: attempt *k* (0-based) sleeps
        ``min(backoff_seconds * backoff_factor**k, max_backoff_seconds)``
        before re-queueing.
    timeout:
        Per-task wall-clock budget in seconds, enforced by the threaded
        engine's watchdog (None disables it).  The serial engine cannot
        preempt the calling thread, so it only *records* overruns in the
        ``engine.tasks.timed_out`` metric.
    retry_on:
        Exception types eligible for retry.  Defaults to ``Exception``
        — programming errors like ``KeyboardInterrupt``/``SystemExit``
        (BaseException) always propagate.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.01
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 1.0
    timeout: Optional[float] = None
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ValueError("backoff seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")

    def backoff(self, attempt: int) -> float:
        """Sleep before re-queueing after failed attempt *attempt*
        (0-based)."""
        return min(self.backoff_seconds * self.backoff_factor ** attempt,
                   self.max_backoff_seconds)

    def should_retry(self, error: BaseException, attempts: int) -> bool:
        """May a task that has already failed *attempts* times retry
        after *error*?"""
        return (attempts < self.max_retries
                and isinstance(error, self.retry_on))
