"""Fault-tolerant training runtime.

The subsystem the paper leaves out: Section VI's scheduler assumes
tasks always complete.  This package supplies what a production
deployment layers on top —

* :mod:`repro.resilience.faults` — deterministic fault injection
  (``REPRO_FAULTS``) for tests and chaos jobs;
* :mod:`repro.resilience.retry` — task retry/backoff/timeout policy
  consumed by both execution engines;
* recovery accounting: :func:`recovery_summary` collects every
  recovery action (retries, timeouts, loss rollbacks, FFT fallbacks,
  engine degradations, injected faults) from the metrics registry so
  silent recovery never masks a systemic problem.

See ``docs/robustness.md`` for the fault model and degradation matrix.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.observability.metrics import MetricsRegistry, get_registry
from repro.resilience.faults import (
    FaultEvent,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    clear_plan,
    install_plan,
)
from repro.resilience.retry import RetryPolicy, TaskTimeout

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active_plan",
    "clear_plan",
    "install_plan",
    "RetryPolicy",
    "TaskTimeout",
    "recovery_summary",
    "RECOVERY_METRICS",
]

#: Metric families summed by :func:`recovery_summary`, mapped to the
#: short labels training summaries print.
RECOVERY_METRICS = {
    "engine.tasks.retried": "task retries",
    "engine.tasks.timed_out": "task timeouts",
    "train.rollbacks": "loss rollbacks",
    "resilience.fft_fallback": "fft fallbacks",
    "resilience.engine_degraded": "engine degradations",
    "resilience.faults_injected": "injected faults",
}


def recovery_summary(registry: Optional[MetricsRegistry] = None
                     ) -> Dict[str, float]:
    """Total per recovery-metric family (labels summed), keyed by the
    family name; families never touched report 0."""
    reg = registry if registry is not None else get_registry()
    totals = {family: 0.0 for family in RECOVERY_METRICS}
    for name, metric in reg.metrics().items():
        base = name.partition("{")[0]
        if base in totals:
            totals[base] += metric.snapshot()
    return totals
