"""Deterministic fault injection for the training runtime.

The paper's scheduler (Section VI, Algorithms 1–3) assumes every task
completes.  Production training runs do not get that luxury: task
bodies crash on bad allocations, hang on contended resources, and
losses go non-finite.  This module provides the *controlled* version of
those failures so the recovery machinery (task retry, watchdog
timeouts, checkpoint rollback, FFT fallback, engine degradation) can be
exercised in tests and chaos jobs.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each
targeting a *family* (the task-name prefix before the first colon —
``fwd``, ``bwd``, ``upd`` — or a synthetic family such as ``loss``,
``fft``, ``engine-start``) at a 1-based *occurrence* count.  Checks are
counted per family, so a plan is fully deterministic: the N-th check of
a family always triggers the same spec, regardless of thread timing.
Probabilistic specs draw from a seeded :class:`random.Random`, so they
too replay identically.

Fault kinds
-----------
``fail``
    :meth:`FaultPlan.check` raises :class:`InjectedFault`.
``hang``
    :meth:`FaultPlan.check` sleeps ``hang_seconds`` (long enough to
    trip a watchdog timeout, short enough not to wedge test suites).
``corrupt``
    :meth:`FaultPlan.corrupt` replaces the checked value with NaN
    (``check`` ignores these specs; they only fire on values).

Activation
----------
Injection is **off by default**: the process-global plan is ``None``
and every instrumented call site guards with a single
``active_plan() is not None`` check, so the hot path pays one global
read when no faults are configured.  Enable via the environment
variable ``REPRO_FAULTS`` (parsed lazily on first use) or
programmatically with :func:`install_plan`::

    REPRO_FAULTS="fail:fwd:3,corrupt:loss:2,hang:upd:1,seed=7"

Spec grammar (comma-separated entries):

* ``kind:family[:occurrence[xcount]]`` — trigger on the
  ``occurrence``-th (default 1) through ``occurrence+count-1``-th
  checks of ``family``;
* ``kind:family:~rate`` — trigger each check with probability *rate*
  from the plan's seeded RNG;
* ``seed=N`` — seed for probabilistic specs (default 0);
* ``hang=SECONDS`` — sleep duration of ``hang`` faults (default 30).

Serving-fleet faults
--------------------
Fleet worker processes check the ``serve_worker`` family once per
dispatched request, plus the per-worker family
``serve_worker@<worker_id>`` (built with :func:`worker_family`), so a
plan can kill or wedge one *specific* worker deterministically:

* ``fail:serve_worker:3`` — the third request dispatched to *any*
  worker crashes its process (``os._exit``, no goodbye);
* ``hang:serve_worker@1:1,hang=2`` — worker 1 wedges for 2 s on its
  first request, long enough for the supervisor's heartbeat watchdog
  to declare it hung and reroute its traffic.

Occurrence counts are per *process*: a restarted worker starts its
counts from zero, which is exactly what makes crash loops (and the
restart-storm circuit breaker that quarantines them) reproducible —
``fail:serve_worker@1:1`` kills worker 1's replacement on its first
request too, every time.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.observability.metrics import get_registry

__all__ = [
    "InjectedFault",
    "FaultSpec",
    "FaultPlan",
    "FaultEvent",
    "active_plan",
    "install_plan",
    "clear_plan",
    "worker_family",
]


def worker_family(family: str, worker_id: int) -> str:
    """The per-worker fault family (``"serve_worker@3"``): lets a plan
    target one specific fleet worker while ``family`` alone targets
    whichever worker checks next."""
    return f"{family}@{worker_id}"

KINDS = ("fail", "hang", "corrupt")

#: Default sleep of a ``hang`` fault — long enough that any sane
#: watchdog timeout fires first, short enough that an abandoned daemon
#: worker does not outlive a CI job.
DEFAULT_HANG_SECONDS = 30.0


class InjectedFault(RuntimeError):
    """Raised by ``fail`` fault specs.  Retry policies treat it like
    any other transient task failure."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: *kind* on checks of *family*.

    Exactly one trigger is active: occurrence counting
    (``occurrence``/``count``) or probability (``rate``).
    """

    kind: str
    family: str
    occurrence: int = 1
    count: int = 1
    rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"fault kind must be one of {KINDS}, got {self.kind!r}")
        if not self.family:
            raise ValueError("fault family must be non-empty")
        if self.rate is None:
            if self.occurrence < 1 or self.count < 1:
                raise ValueError(
                    f"occurrence and count must be >= 1 "
                    f"({self.occurrence}, {self.count})")
        elif not 0.0 < self.rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {self.rate}")

    def triggers(self, occurrence: int, rng: random.Random) -> bool:
        """Does this spec fire on the *occurrence*-th check?"""
        if self.rate is not None:
            return rng.random() < self.rate
        return self.occurrence <= occurrence < self.occurrence + self.count

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``kind:family[:trigger]`` entry."""
        parts = text.strip().split(":")
        if len(parts) < 2 or len(parts) > 3:
            raise ValueError(
                f"fault spec must be kind:family[:trigger], got {text!r}")
        kind, family = parts[0].strip(), parts[1].strip()
        occurrence, count, rate = 1, 1, None
        if len(parts) == 3:
            trigger = parts[2].strip()
            if trigger.startswith("~"):
                rate = float(trigger[1:])
            else:
                head, _, tail = trigger.partition("x")
                occurrence = int(head)
                count = int(tail) if tail else 1
        return cls(kind, family, occurrence, count, rate)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (for assertions and run summaries)."""

    kind: str
    family: str
    occurrence: int
    name: str = ""


class FaultPlan:
    """A deterministic set of faults to inject, with per-family
    occurrence counting.  Thread-safe; injection sites are never hot
    unless a plan is installed."""

    def __init__(self, specs: List[FaultSpec],
                 hang_seconds: float = DEFAULT_HANG_SECONDS,
                 seed: int = 0) -> None:
        if hang_seconds <= 0:
            raise ValueError(f"hang_seconds must be > 0, got {hang_seconds}")
        self.specs = list(specs)
        self.hang_seconds = float(hang_seconds)
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()
        self._occurrences: Dict[str, int] = {}
        self._events: List[FaultEvent] = []
        self._m_injected = get_registry().counter("resilience.faults_injected")

    # -- parsing -------------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS``-style plan string."""
        specs: List[FaultSpec] = []
        hang_seconds = DEFAULT_HANG_SECONDS
        seed = 0
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                seed = int(entry[5:])
            elif entry.startswith("hang="):
                hang_seconds = float(entry[5:])
            else:
                specs.append(FaultSpec.parse(entry))
        if not specs:
            raise ValueError(f"fault plan {text!r} contains no fault specs")
        return cls(specs, hang_seconds=hang_seconds, seed=seed)

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """Plan from ``REPRO_FAULTS``, or None when unset/empty."""
        text = (environ if environ is not None else os.environ).get(
            "REPRO_FAULTS", "").strip()
        return cls.from_string(text) if text else None

    # -- injection sites ----------------------------------------------

    def _match(self, family: str, kinds: Tuple[str, ...]
               ) -> Optional[Tuple[FaultSpec, int]]:
        with self._lock:
            occurrence = self._occurrences.get(family, 0) + 1
            self._occurrences[family] = occurrence
            for spec in self.specs:
                if spec.family != family or spec.kind not in kinds:
                    continue
                if spec.triggers(occurrence, self._rng):
                    return spec, occurrence
            return None

    def _record(self, spec: FaultSpec, occurrence: int, name: str) -> None:
        with self._lock:
            self._events.append(
                FaultEvent(spec.kind, spec.family, occurrence, name))
        self._m_injected.inc()

    def check(self, family: str, name: str = "") -> None:
        """Execution-site hook: may raise :class:`InjectedFault`
        (``fail``) or sleep (``hang``).  ``corrupt`` specs never fire
        here."""
        hit = self._match(family, ("fail", "hang"))
        if hit is None:
            return
        spec, occurrence = hit
        self._record(spec, occurrence, name)
        if spec.kind == "hang":
            time.sleep(self.hang_seconds)
            return
        raise InjectedFault(
            f"injected failure: {family} occurrence {occurrence}"
            + (f" ({name})" if name else ""))

    def corrupt(self, family: str, value: float, name: str = "") -> float:
        """Value-site hook: returns NaN when a ``corrupt`` spec fires,
        *value* untouched otherwise."""
        hit = self._match(family, ("corrupt",))
        if hit is None:
            return value
        spec, occurrence = hit
        self._record(spec, occurrence, name)
        return float("nan")

    # -- introspection -------------------------------------------------

    @property
    def events(self) -> List[FaultEvent]:
        """Faults injected so far (copy)."""
        with self._lock:
            return list(self._events)

    def occurrences(self, family: str) -> int:
        """How many times *family* has been checked."""
        with self._lock:
            return self._occurrences.get(family, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultPlan({len(self.specs)} specs, "
                f"{len(self._events)} injected)")


# ---------------------------------------------------------------------------
# Process-global plan.  ``active_plan()`` is the single flag check every
# injection site pays; it resolves REPRO_FAULTS lazily exactly once.
# ---------------------------------------------------------------------------

_plan: Optional[FaultPlan] = None
_env_resolved = False
_install_lock = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    """The installed fault plan, or None (the default: no injection)."""
    global _plan, _env_resolved
    if not _env_resolved:
        with _install_lock:
            if not _env_resolved:
                env_plan = FaultPlan.from_env()
                if env_plan is not None and _plan is None:
                    _plan = env_plan
                _env_resolved = True
    return _plan


def install_plan(plan: FaultPlan) -> FaultPlan:
    """Install *plan* as the process-global fault plan (tests/chaos
    harnesses); suppresses any pending ``REPRO_FAULTS`` resolution."""
    global _plan, _env_resolved
    with _install_lock:
        _plan = plan
        _env_resolved = True
    return plan


def clear_plan() -> None:
    """Remove the global plan — injection fully off (and REPRO_FAULTS
    will not be re-read this process)."""
    global _plan, _env_resolved
    with _install_lock:
        _plan = None
        _env_resolved = True
