"""Experiment reporting: table rendering and figure drivers.

Shared by the CLI (``python -m repro``) and the benchmark harness: each
``figure_*`` function regenerates one of the paper's tables/figures and
returns it as (header, rows) ready for :func:`render_table`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "render_table",
    "ascii_chart",
    "metrics_table",
    "figure4",
    "figure5",
    "figure6_7",
    "figure8",
    "figure9",
    "table5",
]

Table = Tuple[List[str], List[List[str]]]


def render_table(title: str, header: Sequence, rows: Sequence[Sequence],
                 ) -> str:
    """Fixed-width text table."""
    header = [str(h) for h in header]
    rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def metrics_table(snapshot: dict) -> Table:
    """A metrics-registry snapshot as (header, rows) for
    :func:`render_table`.

    Counters and gauges render as plain numbers; histogram snapshots
    (dicts) as ``count / sum / mean / max`` summaries.
    """
    rows: List[List[str]] = []
    for name in sorted(snapshot):
        value = snapshot[name]
        if isinstance(value, dict):  # histogram snapshot
            vmax = value.get("max")
            rows.append([name, "histogram",
                         f"count={value.get('count', 0)} "
                         f"sum={value.get('sum', 0.0):.6g} "
                         f"mean={value.get('mean') or 0.0:.6g} "
                         f"max={f'{vmax:.6g}' if vmax is not None else '-'}"])
        elif isinstance(value, float):
            rows.append([name, "value", f"{value:.6g}"])
        else:
            rows.append([name, "value", str(value)])
    return ["metric", "kind", "value"], rows


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "OOM"
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def figure4(mode: str = "direct",
            widths: Sequence[int] = (5, 10, 20, 40, 60, 80, 100, 120),
            depth: int = 8) -> Table:
    """Fig 4: theoretically achievable speedup vs width."""
    from repro.pram import FIG4_PROCESSORS, achievable_speedup_curve

    header = ["P"] + [f"w={w}" for w in widths]
    rows = []
    for p in FIG4_PROCESSORS:
        curve = achievable_speedup_curve(p, widths, depth=depth, mode=mode)
        rows.append([str(p)] + [_fmt(s) for s in curve])
    return header, rows


def figure5(machine_key: str = "xeon-18", dims: int = 3,
            widths: Sequence[int] = (5, 20, 60)) -> Table:
    """Fig 5: simulated speedup vs worker threads."""
    from repro.simulate import (default_thread_counts, get_machine,
                                paper_task_graph, simulate_schedule)

    machine = get_machine(machine_key)
    threads = default_thread_counts(machine)
    header = ["width"] + [f"W={t}" for t in threads]
    rows = []
    for width in widths:
        tg = paper_task_graph(dims, width)
        rows.append([str(width)] + [
            _fmt(simulate_schedule(tg, machine, t).speedup)
            for t in threads])
    return header, rows


def figure6_7(dims: int,
              widths: Sequence[int] = (5, 10, 20, 40, 80),
              machine_keys: Sequence[str] = ("xeon-8", "xeon-18",
                                             "xeon-40", "xeon-phi")
              ) -> Table:
    """Fig 6 (dims=2) / Fig 7 (dims=3): max speedup vs width."""
    from repro.simulate import get_machine, max_speedup_vs_width

    header = ["machine"] + [f"w={w}" for w in widths]
    rows = []
    for key in machine_keys:
        machine = get_machine(key)
        curve = dict(max_speedup_vs_width(dims, widths, machine))
        rows.append([key] + [_fmt(curve[w]) for w in widths])
    return header, rows


def figure8(outputs: Sequence[int] = (1, 8, 64)) -> Table:
    """Fig 8: ZNN vs GPU frameworks, 2D."""
    from repro.baselines import fig8_comparison

    systems = ["znn", "caffe", "caffe-cudnn", "theano"]
    header = ["kernel", "output"] + systems + ["winner"]
    rows = []
    for r in fig8_comparison(outputs=outputs):
        rows.append([f"{r.kernel_size}^2", f"{r.output_size}^2"]
                    + [_fmt(r.seconds.get(s)) for s in systems]
                    + [r.winner()])
    return header, rows


def figure9() -> Table:
    """Fig 9: ZNN vs Theano, 3D."""
    from repro.baselines import fig9_comparison

    header = ["kernel", "output", "theano", "znn", "winner"]
    rows = []
    for r in fig9_comparison():
        rows.append([f"{r.kernel_size}^3", f"{r.output_size}^3",
                     _fmt(r.seconds["theano"]), _fmt(r.seconds["znn"]),
                     r.winner()])
    return header, rows


def table5() -> Table:
    """Table V: benchmark machine catalog."""
    from repro.simulate import MACHINES

    header = ["key", "name", "cores", "threads", "GHz", "max speedup"]
    rows = [[key, m.name, str(m.cores), str(m.threads), str(m.ghz),
             _fmt(m.max_speedup())]
            for key, m in MACHINES.items()]
    return header, rows


def ascii_chart(series: dict, width: int = 64, height: int = 16,
                x_label: str = "", y_label: str = "") -> str:
    """Plot named (x, y) series as an ASCII chart.

    *series* maps a label to a list of ``(x, y)`` pairs.  Each series
    gets a distinct marker; axes are linearly scaled to the data.  Used
    by the CLI to sketch the paper's figures without a plotting stack.
    """
    markers = "*o+x#@%&"
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, pts) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in pts:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            prefix = f"{y_hi:>8.4g} |"
        elif i == height - 1:
            prefix = f"{y_lo:>8.4g} |"
        else:
            prefix = " " * 8 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 10 + "-" * width)
    lines.append(" " * 10 + f"{x_lo:<10.4g}{x_label:^{max(width - 20, 0)}}"
                 f"{x_hi:>10.4g}")
    legend = "   ".join(f"{markers[i % len(markers)]} {label}"
                        for i, label in enumerate(series))
    lines.append(" " * 10 + legend)
    if y_label:
        lines.insert(0, f"  [{y_label}]")
    return "\n".join(lines)
