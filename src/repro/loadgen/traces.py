"""Seed-deterministic workload-trace generation.

Capacity planning starts from production-shaped traffic, not uniform
arrivals: real serving load has diurnal cycles, flash crowds and
heavy-tailed request sizes.  This module generates such traces as pure
functions of a :class:`TraceConfig` — the same seed always yields the
byte-identical trace, which is what lets ``repro loadtest`` replay one
trace both live and in simulation and compare the two.

Arrival process
---------------
A nonhomogeneous Poisson process sampled by *thinning* (Lewis &
Shedler): candidate arrivals are drawn from a homogeneous process at
the peak rate and accepted with probability ``rate(t) / peak``.  The
instantaneous rate is::

    rate(t) = base_rate
              * (1 + diurnal_amplitude * sin(2*pi*t / diurnal_period))
              * flash(t)

where ``flash(t)`` is the product of the multipliers of every
:class:`FlashCrowd` covering ``t``.  Arrival times are strictly
increasing.

Request sizes
-------------
Cube edges are drawn from a bounded Pareto distribution (heavy tail —
most requests are small, a few are huge) and snapped down to 5-smooth
lengths via :func:`repro.serving.tiler.largest_fast_len`, so every
generated volume is FFT-friendly and the warm-model cache sees a small
set of distinct tile shapes instead of one per request.

Model / priority mixes
----------------------
Assigned by smooth weighted round-robin (the nginx algorithm): over
any prefix of the trace each key's count deviates from its weight
share by less than one request.  Mix proportions are therefore
*conserved*, not merely expected — the property test pins this down.

Serialisation
-------------
``repro.workload/v1`` JSONL: a header object carrying the config,
then one object per request (``t``, ``model``, ``shape``,
``priority``, ``deadline``).  Validation is hand-rolled in the style
of :func:`repro.observability.profile.validate_cost_model`.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.serving.pipeline import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
)
from repro.serving.tiler import largest_fast_len

__all__ = [
    "WORKLOAD_SCHEMA",
    "WorkloadError",
    "FlashCrowd",
    "TraceConfig",
    "TraceRequest",
    "Trace",
    "generate_trace",
    "scenario_config",
    "SCENARIOS",
    "write_trace",
    "load_trace",
]

#: Schema tag of serialized workload traces.
WORKLOAD_SCHEMA = "repro.workload/v1"


class WorkloadError(ValueError):
    """A trace document failed validation."""


@dataclass(frozen=True)
class FlashCrowd:
    """A transient rate spike: ``multiplier``× between ``start`` and
    ``start + duration`` seconds into the trace."""

    start: float
    duration: float
    multiplier: float

    def factor(self, t: float) -> float:
        if self.start <= t < self.start + self.duration:
            return self.multiplier
        return 1.0


@dataclass(frozen=True)
class TraceConfig:
    """Everything that determines a trace (pure function of this)."""

    name: str = "steady"
    seed: int = 0
    #: Trace length in seconds.
    duration: float = 60.0
    #: Long-run mean arrival rate in requests/second (before diurnal
    #: modulation and flash crowds).
    base_rate: float = 1.0
    #: Diurnal swing as a fraction of base_rate (0 = flat).
    diurnal_amplitude: float = 0.0
    #: Period of the diurnal sine in seconds.
    diurnal_period: float = 86400.0
    flash_crowds: Tuple[FlashCrowd, ...] = ()
    #: Bounded-Pareto tail exponent for cube edge lengths.
    size_alpha: float = 2.5
    #: Smallest / largest cube edge (inclusive bounds, voxels).
    size_min: int = 12
    size_max: int = 32
    #: model name -> weight (normalised internally).
    model_mix: Dict[str, float] = field(
        default_factory=lambda: {"default": 1.0})
    #: priority level -> weight.
    priority_mix: Dict[int, float] = field(
        default_factory=lambda: {PRIORITY_NORMAL: 1.0})
    #: Relative per-request deadline in seconds (None = no deadline).
    deadline: Optional[float] = 30.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise WorkloadError(
                f"duration must be > 0, got {self.duration}")
        if self.base_rate <= 0:
            raise WorkloadError(
                f"base_rate must be > 0, got {self.base_rate}")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise WorkloadError(
                f"diurnal_amplitude must be in [0, 1), got "
                f"{self.diurnal_amplitude}")
        if self.size_alpha <= 0:
            raise WorkloadError(
                f"size_alpha must be > 0, got {self.size_alpha}")
        if not 1 <= self.size_min <= self.size_max:
            raise WorkloadError(
                f"need 1 <= size_min <= size_max, got "
                f"{self.size_min}..{self.size_max}")
        for mix, what in ((self.model_mix, "model_mix"),
                          (self.priority_mix, "priority_mix")):
            if not mix or any(w <= 0 for w in mix.values()):
                raise WorkloadError(
                    f"{what} needs at least one positive weight, "
                    f"got {mix!r}")
        for crowd in self.flash_crowds:
            if crowd.duration <= 0 or crowd.multiplier <= 0:
                raise WorkloadError(
                    f"flash crowd needs positive duration and "
                    f"multiplier, got {crowd!r}")

    def rate(self, t: float) -> float:
        """Instantaneous arrival rate at *t* seconds into the trace."""
        value = self.base_rate * (
            1.0 + self.diurnal_amplitude
            * math.sin(2.0 * math.pi * t / self.diurnal_period))
        for crowd in self.flash_crowds:
            value *= crowd.factor(t)
        return value

    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate` (the thinning envelope)."""
        peak = self.base_rate * (1.0 + self.diurnal_amplitude)
        for crowd in self.flash_crowds:
            peak *= max(crowd.multiplier, 1.0)
        return peak

    def expected_requests(self) -> float:
        """``integral of rate(t) dt`` over the trace (closed form for
        the diurnal term, exact rectangles for flash crowds)."""
        # Diurnal integral: base * (T - A*P/2pi * (cos(2pi T/P) - 1)).
        two_pi = 2.0 * math.pi
        diurnal = self.base_rate * (
            self.duration
            - self.diurnal_amplitude * self.diurnal_period / two_pi
            * (math.cos(two_pi * self.duration / self.diurnal_period)
               - 1.0))
        extra = 0.0
        for crowd in self.flash_crowds:
            lo = max(0.0, crowd.start)
            hi = min(self.duration, crowd.start + crowd.duration)
            if hi > lo:
                # Approximate the overlap with the base rate (diurnal
                # modulation inside the window averages out).
                extra += (crowd.multiplier - 1.0) * self.base_rate \
                    * (hi - lo)
        return diurnal + extra


@dataclass(frozen=True)
class TraceRequest:
    """One generated request."""

    t: float
    model: str
    shape: Tuple[int, int, int]
    priority: int
    deadline: Optional[float]


@dataclass(frozen=True)
class Trace:
    """A generated (or loaded) workload trace."""

    config: TraceConfig
    requests: Tuple[TraceRequest, ...]

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def mean_rate(self) -> float:
        return len(self.requests) / self.config.duration

    def scaled(self, multiplier: float) -> "Trace":
        """The same trace compressed ``multiplier``× in time — the
        standard load-multiplier transform: identical request bodies
        and ordering, arrival rate scaled by *multiplier*."""
        if multiplier <= 0:
            raise WorkloadError(
                f"multiplier must be > 0, got {multiplier}")
        if multiplier == 1.0:
            return self
        config = replace(
            self.config,
            name=f"{self.config.name}x{multiplier:g}",
            duration=self.config.duration / multiplier,
            base_rate=self.config.base_rate * multiplier,
            diurnal_period=self.config.diurnal_period / multiplier,
            flash_crowds=tuple(
                FlashCrowd(c.start / multiplier,
                           c.duration / multiplier, c.multiplier)
                for c in self.config.flash_crowds))
        requests = tuple(
            TraceRequest(r.t / multiplier, r.model, r.shape,
                         r.priority, r.deadline)
            for r in self.requests)
        return Trace(config=config, requests=requests)


class _SmoothWRR:
    """Smooth weighted round-robin: deterministic, and over any prefix
    each key's count deviates from its weight share by < 1."""

    def __init__(self, weights: Dict) -> None:
        self._keys = sorted(weights)
        # Sum in sorted-key order so the float total (and with it the
        # whole schedule) is independent of dict insertion order.
        total = float(sum(weights[k] for k in self._keys))
        self._share = {k: weights[k] / total for k in self._keys}
        self._credit = {k: 0.0 for k in self._keys}

    def next(self):
        best = None
        for key in self._keys:
            self._credit[key] += self._share[key]
            if best is None or self._credit[key] > self._credit[best]:
                best = key
        self._credit[best] -= 1.0
        return best


def _snap_edge(edge: int, size_min: int) -> int:
    """Largest 5-smooth length in ``[size_min, edge]`` (falls back to
    *edge* when the window contains no 5-smooth integer)."""
    snapped = largest_fast_len(edge, floor=size_min)
    return snapped if snapped is not None else edge


def _sample_edge(rng: random.Random, config: TraceConfig) -> int:
    """Bounded-Pareto sample over ``[size_min, size_max]``, snapped
    down to a 5-smooth edge length."""
    lo, hi = float(config.size_min), float(config.size_max)
    if config.size_min == config.size_max:
        return config.size_min
    alpha = config.size_alpha
    u = rng.random()
    ratio = (lo / hi) ** alpha
    x = lo / (1.0 - u * (1.0 - ratio)) ** (1.0 / alpha)
    edge = min(max(int(x), config.size_min), config.size_max)
    return _snap_edge(edge, config.size_min)


# deterministic
def generate_trace(config: TraceConfig) -> Trace:
    """Generate the trace determined by *config* (pure function)."""
    rng = random.Random(config.seed)
    peak = config.peak_rate()
    models = _SmoothWRR(config.model_mix)
    priorities = _SmoothWRR(config.priority_mix)
    requests: List[TraceRequest] = []
    t = 0.0
    while True:
        # 1 - random() is in (0, 1]: log never sees zero, and the
        # exponential gap is strictly positive, so arrival times are
        # strictly increasing.
        t += -math.log(1.0 - rng.random()) / peak
        if t >= config.duration:
            break
        if rng.random() * peak > config.rate(t):
            continue  # thinned out
        edge = _sample_edge(rng, config)
        requests.append(TraceRequest(
            t=t, model=models.next(), shape=(edge, edge, edge),
            priority=priorities.next(), deadline=config.deadline))
    return Trace(config=config, requests=tuple(requests))


def scenario_config(scenario: str, *, seed: int = 0,
                    duration: float = 60.0, base_rate: float = 1.0,
                    size_min: int = 12, size_max: int = 32,
                    deadline: Optional[float] = 30.0) -> TraceConfig:
    """A named scenario preset (see :data:`SCENARIOS`)."""
    common = dict(seed=seed, duration=duration, base_rate=base_rate,
                  size_min=size_min, size_max=size_max,
                  deadline=deadline)
    if scenario == "steady":
        return TraceConfig(name="steady", **common)
    if scenario == "diurnal":
        return TraceConfig(
            name="diurnal", diurnal_amplitude=0.6,
            diurnal_period=duration, **common)
    if scenario == "flash-crowd":
        return TraceConfig(
            name="flash-crowd",
            flash_crowds=(FlashCrowd(start=duration * 0.4,
                                     duration=duration * 0.2,
                                     multiplier=5.0),),
            **common)
    if scenario == "multi-model":
        return TraceConfig(
            name="multi-model",
            model_mix={"default": 3.0, "alt": 1.0},
            priority_mix={PRIORITY_HIGH: 1.0, PRIORITY_NORMAL: 2.0,
                          PRIORITY_LOW: 1.0},
            **common)
    raise WorkloadError(
        f"unknown scenario {scenario!r}; use one of "
        f"{sorted(SCENARIOS)}")


#: Scenario presets accepted by ``repro loadtest --scenario``.
SCENARIOS = ("steady", "diurnal", "flash-crowd", "multi-model")


# ---------------------------------------------------------------------------
# JSONL serialisation (repro.workload/v1)
# ---------------------------------------------------------------------------


def _config_to_dict(config: TraceConfig) -> dict:
    return {
        "name": config.name,
        "seed": config.seed,
        "duration": config.duration,
        "base_rate": config.base_rate,
        "diurnal_amplitude": config.diurnal_amplitude,
        "diurnal_period": config.diurnal_period,
        "flash_crowds": [
            {"start": c.start, "duration": c.duration,
             "multiplier": c.multiplier}
            for c in config.flash_crowds],
        "size_alpha": config.size_alpha,
        "size_min": config.size_min,
        "size_max": config.size_max,
        "model_mix": dict(sorted(config.model_mix.items())),
        "priority_mix": {str(k): v for k, v
                         in sorted(config.priority_mix.items())},
        "deadline": config.deadline,
    }


def _config_from_dict(doc: dict) -> TraceConfig:
    try:
        return TraceConfig(
            name=doc["name"], seed=doc["seed"],
            duration=doc["duration"], base_rate=doc["base_rate"],
            diurnal_amplitude=doc["diurnal_amplitude"],
            diurnal_period=doc["diurnal_period"],
            flash_crowds=tuple(
                FlashCrowd(c["start"], c["duration"], c["multiplier"])
                for c in doc["flash_crowds"]),
            size_alpha=doc["size_alpha"], size_min=doc["size_min"],
            size_max=doc["size_max"],
            model_mix=dict(doc["model_mix"]),
            priority_mix={int(k): v
                          for k, v in doc["priority_mix"].items()},
            deadline=doc["deadline"])
    except (KeyError, TypeError) as exc:
        raise WorkloadError(f"bad trace config: {exc}") from None


def write_trace(path: str, trace: Trace) -> str:
    """Serialize *trace* as ``repro.workload/v1`` JSONL; returns
    *path*.  Deterministic: sorted keys, no timestamps."""
    with open(path, "w", encoding="utf-8") as fh:
        header = {"schema": WORKLOAD_SCHEMA,
                  "config": _config_to_dict(trace.config),
                  "requests": len(trace.requests)}
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for request in trace.requests:
            fh.write(json.dumps({
                "t": request.t,
                "model": request.model,
                "shape": list(request.shape),
                "priority": request.priority,
                "deadline": request.deadline,
            }, sort_keys=True) + "\n")
    return path


def _validate_request_line(i: int, doc: object) -> TraceRequest:
    if not isinstance(doc, dict):
        raise WorkloadError(f"line {i}: request must be an object")
    t = doc.get("t")
    if not isinstance(t, (int, float)) or t < 0:
        raise WorkloadError(f"line {i}: t must be a number >= 0")
    model = doc.get("model")
    if not isinstance(model, str) or not model:
        raise WorkloadError(f"line {i}: model must be a string")
    shape = doc.get("shape")
    if not (isinstance(shape, list) and len(shape) == 3
            and all(isinstance(v, int) and v > 0 for v in shape)):
        raise WorkloadError(
            f"line {i}: shape must be 3 positive ints")
    priority = doc.get("priority")
    if not isinstance(priority, int) or priority < 0:
        raise WorkloadError(f"line {i}: priority must be an int >= 0")
    deadline = doc.get("deadline")
    if deadline is not None and (
            not isinstance(deadline, (int, float)) or deadline <= 0):
        raise WorkloadError(
            f"line {i}: deadline must be null or a positive number")
    return TraceRequest(t=float(t), model=model,
                        shape=(shape[0], shape[1], shape[2]),
                        priority=priority,
                        deadline=(None if deadline is None
                                  else float(deadline)))


def load_trace(path: str) -> Trace:
    """Read and validate a ``repro.workload/v1`` JSONL trace."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh if line.strip()]
    if not lines:
        raise WorkloadError("empty trace file")
    header = json.loads(lines[0])
    if not isinstance(header, dict) \
            or header.get("schema") != WORKLOAD_SCHEMA:
        found = (header.get("schema") if isinstance(header, dict)
                 else header)
        raise WorkloadError(
            f"schema must be {WORKLOAD_SCHEMA!r}, got {found!r}")
    config = _config_from_dict(header.get("config", {}))
    requests: List[TraceRequest] = []
    previous = -1.0
    for i, line in enumerate(lines[1:], start=2):
        request = _validate_request_line(i, json.loads(line))
        if request.t < previous:
            raise WorkloadError(
                f"line {i}: arrival times must be nondecreasing")
        previous = request.t
        requests.append(request)
    declared = header.get("requests")
    if isinstance(declared, int) and declared != len(requests):
        raise WorkloadError(
            f"header declares {declared} requests, file has "
            f"{len(requests)}")
    return Trace(config=config, requests=tuple(requests))
