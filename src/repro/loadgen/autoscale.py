"""Closed-loop autoscaling: policy contract + hysteresis default.

The autoscaler closes the loop the ROADMAP asks for: observed demand
(queue depth, estimated wait) feeds back into supply (fleet worker
count).  The policy itself is a pure decision function so the *same*
policy object drives both the discrete-event simulator
(:mod:`repro.loadgen.sim`) and a live
:class:`~repro.serving.fleet.FleetServer` — simulation results
transfer because nothing but the signal source changes.

Policy contract
---------------
A policy is any object with ``decide(signals) -> int`` mapping a
:class:`Signals` snapshot to a *target* worker count.  The caller
clamps to ``[min_workers, max_workers]`` and applies the change;
``decide`` must tolerate being called at any cadence and must not
assume its previous target was applied (a scale-down may still be
draining).  Policies may keep internal state (cooldowns).

The default :class:`HysteresisPolicy` scales on queue depth per
worker with separate up/down thresholds and a cooldown, which makes
it provably stable under constant load: the scale-up condition at
``w`` workers (``depth > high * w``) and the scale-down condition at
``w + step`` (``depth < low * w``) cannot both hold when
``low < high``, so decisions converge instead of oscillating — the
hypothesis property test exercises exactly this.

Live wiring
-----------
:class:`FleetAutoscaler` samples the *catalog gauges*
(``fleet.queue.depth``, ``serving.service.ewma_seconds``,
``fleet.worker.inflight``) rather than any private server state, and
calls :meth:`FleetServer.scale_to` when the policy's clamped target
differs from the current active worker count.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Protocol

from repro.analysis.runtime import make_lock
from repro.observability.metrics import get_registry

__all__ = [
    "Signals",
    "AutoscalePolicy",
    "HysteresisPolicy",
    "ScaleDecision",
    "FleetAutoscaler",
]


@dataclass(frozen=True)
class Signals:
    """One observation of the serving system, policy input."""

    #: Requests queued (admitted, not yet dispatched).
    queue_depth: int
    #: Estimated queueing wait in seconds (EWMA- or Little's-law
    #: derived; the simulator uses its exact EWMA of observed waits).
    ewma_wait_seconds: float
    #: Requests currently executing across all workers.
    inflight: int
    #: Active worker count the decision starts from.
    workers: int


class AutoscalePolicy(Protocol):
    """Anything with ``decide(signals) -> int`` (target workers)."""

    min_workers: int
    max_workers: int

    def decide(self, signals: Signals) -> int:
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class ScaleDecision:
    """One autoscaler tick, for the loadtest report."""

    t: float
    workers: int
    target: int
    queue_depth: int
    ewma_wait_seconds: float


class HysteresisPolicy:
    """Queue-depth hysteresis with a wait-time override.

    Scale **up** by *step* when queue depth exceeds
    ``high_depth_per_worker`` per worker, or when the estimated wait
    exceeds ``high_wait_seconds``.  Scale **down** by *step* only when
    the post-shrink fleet would still sit below the *low* threshold
    (``depth < low_depth_per_worker * (workers - step)``) and the wait
    signal is calm — the asymmetric guard that prevents down/up
    flapping.  A cooldown of ``cooldown_ticks`` decisions separates
    consecutive changes.
    """

    def __init__(self, min_workers: int = 1, max_workers: int = 8,
                 high_depth_per_worker: float = 4.0,
                 low_depth_per_worker: float = 1.0,
                 high_wait_seconds: float = float("inf"),
                 cooldown_ticks: int = 2, step: int = 1) -> None:
        if min_workers < 1:
            raise ValueError(
                f"min_workers must be >= 1, got {min_workers}")
        if max_workers < min_workers:
            raise ValueError(
                f"max_workers ({max_workers}) must be >= min_workers "
                f"({min_workers})")
        if not 0 <= low_depth_per_worker < high_depth_per_worker:
            raise ValueError(
                "need 0 <= low_depth_per_worker < "
                f"high_depth_per_worker, got {low_depth_per_worker} "
                f"vs {high_depth_per_worker}")
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.high = high_depth_per_worker
        self.low = low_depth_per_worker
        self.high_wait = high_wait_seconds
        self.cooldown_ticks = cooldown_ticks
        self.step = step
        self._cooldown = 0

    def decide(self, signals: Signals) -> int:
        workers = min(max(signals.workers, self.min_workers),
                      self.max_workers)
        if self._cooldown > 0:
            self._cooldown -= 1
            return workers
        depth = signals.queue_depth
        hot = (depth > self.high * workers
               or signals.ewma_wait_seconds > self.high_wait)
        if hot and workers < self.max_workers:
            self._cooldown = self.cooldown_ticks
            return min(workers + self.step, self.max_workers)
        shrunk = workers - self.step
        calm = (shrunk >= self.min_workers
                and depth < self.low * shrunk
                and signals.ewma_wait_seconds <= self.high_wait)
        if calm:
            self._cooldown = self.cooldown_ticks
            return shrunk
        return workers


class FleetAutoscaler:
    """Background thread scaling a live fleet from catalog gauges.

    Reads ``fleet.queue.depth`` and ``serving.service.ewma_seconds``
    (role=fleet) from the metrics registry, derives a Little's-law
    wait estimate ``depth * service / workers``, and applies the
    policy via :meth:`FleetServer.scale_to`.  Also integrates
    worker-seconds (capacity × time) — the cost axis of the loadtest
    report.
    """

    def __init__(self, fleet, policy: AutoscalePolicy,
                 interval: float = 0.5) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.fleet = fleet
        self.policy = policy
        self.interval = interval
        self._lock = make_lock("loadgen.autoscaler")
        self._decisions: List[ScaleDecision] = []  # guarded-by: _lock
        self._worker_seconds = 0.0  # guarded-by: _lock
        self._last_sample: Optional[float] = None  # guarded-by: _lock
        self._started_at: Optional[float] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        reg = get_registry()
        self._g_depth = reg.gauge("fleet.queue.depth")
        self._g_service = reg.gauge("serving.service.ewma_seconds",
                                    role="fleet")
        self._m_decisions = reg.counter("autoscale.decisions")
        self._g_target = reg.gauge("autoscale.workers.target")

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "FleetAutoscaler":
        if self._thread is not None:
            return self
        self._started_at = time.monotonic()
        with self._lock:
            self._last_sample = self._started_at
        self._thread = threading.Thread(
            target=self._loop, name="fleet-autoscaler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._account(time.monotonic())

    def __enter__(self) -> "FleetAutoscaler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- accounting ----------------------------------------------------

    def _account(self, now: float) -> None:
        workers = self.fleet.active_workers
        with self._lock:
            if self._last_sample is not None:
                self._worker_seconds += workers * (
                    now - self._last_sample)
            self._last_sample = now

    @property
    def worker_seconds(self) -> float:
        """Capacity integral so far (workers × seconds)."""
        with self._lock:
            return self._worker_seconds

    def decisions(self) -> List[ScaleDecision]:
        with self._lock:
            return list(self._decisions)

    # -- control loop --------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick()

    def tick(self) -> None:
        """One observe-decide-act cycle (public for tests)."""
        now = time.monotonic()
        self._account(now)
        workers = self.fleet.active_workers
        depth = int(self._g_depth.value)
        service = float(self._g_service.value)
        wait = depth * service / max(workers, 1)
        inflight = self.fleet.total_inflight
        signals = Signals(queue_depth=depth, ewma_wait_seconds=wait,
                          inflight=inflight, workers=workers)
        target = min(max(self.policy.decide(signals),
                         self.policy.min_workers),
                     self.policy.max_workers)
        self._m_decisions.inc()
        self._g_target.set(target)
        elapsed = now - (self._started_at or now)
        with self._lock:
            self._decisions.append(ScaleDecision(
                t=elapsed, workers=workers, target=target,
                queue_depth=depth, ewma_wait_seconds=wait))
        if target != workers:
            self.fleet.scale_to(target)
