"""Loadtest report documents (``repro.loadtest/v1``).

One report format for both replay modes, so a simulated and a live
run of the same trace are directly diffable: the calibration report
is literally a field-by-field comparison of two of these documents.

Determinism contract: the report body carries **no wall-clock
timestamps** and is always dumped with sorted keys, so a ``--sim``
replay of a fixed-seed trace is byte-identical across runs (the CLI
regression test asserts this).  Latency quantiles are exact
order-statistics (linear interpolation), not histogram estimates —
the sample counts here are small enough to keep every observation.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence

__all__ = [
    "LOADTEST_SCHEMA",
    "LoadtestReportError",
    "latency_stats",
    "build_report",
    "dump_report",
    "validate_loadtest_report",
    "render_loadtest_report",
    "calibration_report",
]

#: Schema tag of emitted loadtest reports.
LOADTEST_SCHEMA = "repro.loadtest/v1"

#: Request fates a report accounts for.
_STATUSES = ("served", "shed", "deadline", "failed")


class LoadtestReportError(ValueError):
    """A document failed :func:`validate_loadtest_report`."""


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Exact order-statistic quantile of an ascending sequence."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def latency_stats(samples: Sequence[float]) -> Dict[str, float]:
    """count/mean/max/p50/p99 of raw latency samples."""
    ordered = sorted(samples)
    count = len(ordered)
    return {
        "count": count,
        "mean": (sum(ordered) / count) if count else 0.0,
        "max": ordered[-1] if count else 0.0,
        "p50": _quantile(ordered, 0.50),
        "p95": _quantile(ordered, 0.95),
        "p99": _quantile(ordered, 0.99),
    }


# deterministic
def build_report(mode: str, trace, counts: Dict[str, int],
                 latencies: Sequence[float],
                 waits: Optional[Sequence[float]] = None,
                 worker_seconds: float = 0.0,
                 workers: Optional[int] = None,
                 autoscaler: Optional[dict] = None,
                 multiplier: float = 1.0) -> dict:
    """Assemble a ``repro.loadtest/v1`` document.

    *counts* maps each status in ``served/shed/deadline/failed`` to a
    request count; *latencies* (and optionally *waits*) are the raw
    per-served-request samples in seconds.
    """
    if mode not in ("sim", "live"):
        raise LoadtestReportError(
            f"mode must be 'sim' or 'live', got {mode!r}")
    submitted = sum(counts.get(s, 0) for s in _STATUSES)
    served = counts.get("served", 0)
    config = trace.config
    doc = {
        "schema": LOADTEST_SCHEMA,
        "mode": mode,
        "trace": {
            "name": config.name,
            "seed": config.seed,
            "duration": config.duration,
            "requests": len(trace.requests),
            "mean_rate": trace.mean_rate,
            "multiplier": multiplier,
        },
        "results": {
            "submitted": submitted,
            "served": served,
            "shed": counts.get("shed", 0),
            "deadline_missed": counts.get("deadline", 0),
            "failed": counts.get("failed", 0),
            "served_fraction": (served / submitted) if submitted
            else 0.0,
            "latency": latency_stats(latencies),
        },
        "cost": {
            "worker_seconds": worker_seconds,
            "worker_seconds_per_request": (
                worker_seconds / served) if served else 0.0,
        },
        "workers": workers,
        "autoscaler": autoscaler or {"enabled": False},
    }
    if waits is not None:
        doc["results"]["wait"] = latency_stats(waits)
    return doc


def validate_loadtest_report(doc: object) -> dict:
    """Check *doc* against :data:`LOADTEST_SCHEMA`; returns it.

    Hand-rolled first-offending-field validation, same contract style
    as :func:`repro.observability.profile.validate_cost_model`.
    """
    if not isinstance(doc, dict):
        raise LoadtestReportError(
            f"report must be an object, got {type(doc).__name__}")
    if doc.get("schema") != LOADTEST_SCHEMA:
        raise LoadtestReportError(
            f"schema must be {LOADTEST_SCHEMA!r}, got "
            f"{doc.get('schema')!r}")
    if doc.get("mode") not in ("sim", "live"):
        raise LoadtestReportError(
            f"mode must be 'sim' or 'live', got {doc.get('mode')!r}")
    trace = doc.get("trace")
    if not isinstance(trace, dict):
        raise LoadtestReportError("trace must be an object")
    for key in ("name",):
        if not isinstance(trace.get(key), str):
            raise LoadtestReportError(f"trace.{key} must be a string")
    for key in ("seed", "requests"):
        if not isinstance(trace.get(key), int):
            raise LoadtestReportError(f"trace.{key} must be an int")
    for key in ("duration", "mean_rate", "multiplier"):
        if not isinstance(trace.get(key), (int, float)):
            raise LoadtestReportError(f"trace.{key} must be a number")
    results = doc.get("results")
    if not isinstance(results, dict):
        raise LoadtestReportError("results must be an object")
    for key in ("submitted", "served", "shed", "deadline_missed",
                "failed"):
        value = results.get(key)
        if not isinstance(value, int) or value < 0:
            raise LoadtestReportError(
                f"results.{key} must be an int >= 0, got {value!r}")
    fraction = results.get("served_fraction")
    if not isinstance(fraction, (int, float)) \
            or not 0.0 <= fraction <= 1.0:
        raise LoadtestReportError(
            f"results.served_fraction must be in [0, 1], got "
            f"{fraction!r}")
    for block in ("latency",) + (
            ("wait",) if "wait" in results else ()):
        stats = results.get(block)
        if not isinstance(stats, dict):
            raise LoadtestReportError(
                f"results.{block} must be an object")
        for key in ("count", "mean", "max", "p50", "p95", "p99"):
            if not isinstance(stats.get(key), (int, float)):
                raise LoadtestReportError(
                    f"results.{block}.{key} must be a number")
    cost = doc.get("cost")
    if not isinstance(cost, dict):
        raise LoadtestReportError("cost must be an object")
    for key in ("worker_seconds", "worker_seconds_per_request"):
        value = cost.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            raise LoadtestReportError(
                f"cost.{key} must be a number >= 0, got {value!r}")
    autoscaler = doc.get("autoscaler")
    if not isinstance(autoscaler, dict) \
            or not isinstance(autoscaler.get("enabled"), bool):
        raise LoadtestReportError(
            "autoscaler must be an object with a boolean 'enabled'")
    return doc


# deterministic
def dump_report(doc: dict) -> str:
    """Canonical serialisation: sorted keys, stable float repr."""
    return json.dumps(validate_loadtest_report(doc), indent=2,
                      sort_keys=True) + "\n"


def render_loadtest_report(doc: dict) -> str:
    """Fixed-width table view (the default ``repro loadtest``
    output)."""
    from repro import reporting

    results = doc["results"]
    latency = results["latency"]
    rows = [
        ["mode", doc["mode"]],
        ["trace", f"{doc['trace']['name']} "
                  f"(seed {doc['trace']['seed']}, "
                  f"{doc['trace']['requests']} requests, "
                  f"{doc['trace']['mean_rate']:.2f} req/s)"],
        ["submitted", str(results["submitted"])],
        ["served", f"{results['served']} "
                   f"({results['served_fraction']:.1%})"],
        ["shed", str(results["shed"])],
        ["deadline missed", str(results["deadline_missed"])],
        ["failed", str(results["failed"])],
        ["latency p50 / p99",
         f"{latency['p50'] * 1e3:.1f} / "
         f"{latency['p99'] * 1e3:.1f} ms"],
        ["worker-seconds", f"{doc['cost']['worker_seconds']:.2f}"],
    ]
    autoscaler = doc.get("autoscaler") or {}
    if autoscaler.get("enabled"):
        rows.append(["autoscaler",
                     f"{autoscaler.get('min')}-{autoscaler.get('max')}"
                     f" workers, {autoscaler.get('decisions')} "
                     f"decisions, final {autoscaler.get('final')}"])
    else:
        rows.append(["workers", str(doc.get("workers"))])
    return reporting.render_table(
        f"loadtest ({doc['mode']})", ["field", "value"], rows)


def calibration_report(sim_doc: dict, live_doc: dict) -> dict:
    """Simulated-vs-live deltas for the same trace.

    Ratios are live/sim (1.0 = the simulator nailed it); the absolute
    served-fraction delta is live - sim.
    """
    validate_loadtest_report(sim_doc)
    validate_loadtest_report(live_doc)

    def ratio(live: float, sim: float) -> Optional[float]:
        return (live / sim) if sim > 0 else None

    sim_lat = sim_doc["results"]["latency"]
    live_lat = live_doc["results"]["latency"]
    return {
        "trace": sim_doc["trace"]["name"],
        "p50_ratio": ratio(live_lat["p50"], sim_lat["p50"]),
        "p99_ratio": ratio(live_lat["p99"], sim_lat["p99"]),
        "served_fraction_delta": (
            live_doc["results"]["served_fraction"]
            - sim_doc["results"]["served_fraction"]),
        "sim": {"p50": sim_lat["p50"], "p99": sim_lat["p99"],
                "served_fraction":
                    sim_doc["results"]["served_fraction"]},
        "live": {"p50": live_lat["p50"], "p99": live_lat["p99"],
                 "served_fraction":
                     live_doc["results"]["served_fraction"]},
    }
