"""Discrete-event serving simulator for capacity planning.

:mod:`repro.simulate.des` schedules one task graph on a modelled
machine; this module lifts the same event-heap technique one level up,
to the *serving* tier: open-loop arrivals from a workload trace
(:mod:`repro.loadgen.traces`), a bounded admission queue with the
pipeline's priority shed fractions
(:func:`repro.serving.pipeline.admission_limit`), W parallel workers
with per-request service costs derived from a measured
``cost_model.json`` (:mod:`repro.observability.profile`), and an
optional autoscaler ticking at a fixed control interval.

The simulation is a pure function of ``(trace, config, policy)``:
no wall clock, no randomness beyond the trace itself.  That is what
makes ``repro loadtest --sim`` byte-identical across runs, and what
lets the calibration report attribute sim-vs-live deltas to model
error instead of nondeterminism.

Cost model
----------
Service time for a request of shape ``(a, b, c)`` is::

    overhead_seconds + seconds_per_voxel * a * b * c

``ServiceModel.from_cost_model`` derives ``seconds_per_voxel`` from
the forward-pass entries of a profiler document (measured seconds per
processed voxel); the default constants are calibrated to the tiny
CI-sized networks so smoke lanes work without a profile run.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.loadgen.autoscale import AutoscalePolicy, ScaleDecision, Signals
from repro.loadgen.traces import Trace
from repro.serving.pipeline import admission_limit

__all__ = [
    "ServiceModel",
    "SimConfig",
    "SimRequestOutcome",
    "SimResult",
    "simulate_serving",
]

#: EWMA smoothing for the simulated wait signal (matches the serving
#: tier's 0.8/0.2 service-time EWMA).
_EWMA_ALPHA = 0.2


@dataclass(frozen=True)
class ServiceModel:
    """Per-request service cost: ``overhead + spv * voxels``."""

    seconds_per_voxel: float = 2e-6
    overhead_seconds: float = 0.01

    def service_seconds(self, shape: Tuple[int, int, int]) -> float:
        voxels = shape[0] * shape[1] * shape[2]
        return self.overhead_seconds + self.seconds_per_voxel * voxels

    @classmethod
    def from_cost_model(cls, doc: dict,
                        overhead_seconds: float = 0.01
                        ) -> "ServiceModel":
        """Derive seconds-per-voxel from a validated cost-model
        document's forward-pass entries (falls back to the defaults
        when the document has no usable fwd samples)."""
        seconds = 0.0
        voxels = 0.0
        for entry in doc.get("entries", []):
            if entry.get("op") != "fwd":
                continue
            shape = entry.get("image_shape")
            count = entry.get("count", 0)
            if not shape or not count:
                continue
            v = 1.0
            for dim in shape:
                v *= dim
            seconds += entry.get("seconds", 0.0)
            voxels += count * v
        if voxels <= 0 or seconds <= 0:
            return cls(overhead_seconds=overhead_seconds)
        return cls(seconds_per_voxel=seconds / voxels,
                   overhead_seconds=overhead_seconds)


@dataclass(frozen=True)
class SimConfig:
    """Knobs of one simulated replay."""

    workers: int = 2
    max_queue: int = 32
    service: ServiceModel = field(default_factory=ServiceModel)
    #: Seconds between autoscaler observe-decide-act ticks (ignored
    #: without a policy).
    control_interval: float = 0.5

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(
                f"workers must be >= 1, got {self.workers}")
        if self.max_queue < 1:
            raise ValueError(
                f"max_queue must be >= 1, got {self.max_queue}")
        if self.control_interval <= 0:
            raise ValueError(
                f"control_interval must be > 0, got "
                f"{self.control_interval}")


@dataclass(frozen=True)
class SimRequestOutcome:
    """One request's simulated fate."""

    index: int
    #: "served" | "shed" | "deadline"
    status: str
    arrival: float
    #: Queue wait (dispatch - arrival), None unless served.
    wait: Optional[float]
    #: End-to-end latency (finish - arrival), None unless served.
    latency: Optional[float]


@dataclass(frozen=True)
class SimResult:
    """Everything the loadtest report needs from one sim run."""

    outcomes: Tuple[SimRequestOutcome, ...]
    #: Capacity integral over the run (workers × seconds).
    worker_seconds: float
    #: Simulated time at which the last event fired.
    end_time: float
    decisions: Tuple[ScaleDecision, ...]
    final_workers: int

    @property
    def served(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "served")


# Event kinds, ordered so simultaneous events resolve deterministically:
# finishes free capacity before the control loop observes, and both
# happen before the next arrival is admitted.
_EV_FINISH = 0
_EV_CONTROL = 1
_EV_ARRIVE = 2


# deterministic
def simulate_serving(trace: Trace, config: SimConfig,
                     policy: Optional[AutoscalePolicy] = None
                     ) -> SimResult:
    """Replay *trace* through the simulated serving tier."""
    requests = trace.requests
    n = len(requests)
    # (time, kind, seq) on the heap; payload looked up by seq.
    events: List[Tuple[float, int, int]] = []
    for i, request in enumerate(requests):
        heapq.heappush(events, (request.t, _EV_ARRIVE, i))
    capacity = config.workers
    if policy is not None:
        capacity = min(max(capacity, policy.min_workers),
                       policy.max_workers)
        heapq.heappush(events,
                       (config.control_interval, _EV_CONTROL, -1))
    busy = 0
    # Ready queue ordered by (priority, arrival, index): high priority
    # (lower value) first, FIFO within a priority class.
    queue: List[Tuple[int, float, int]] = []
    outcomes: List[Optional[SimRequestOutcome]] = [None] * n
    ewma_wait = 0.0
    worker_seconds = 0.0
    last_t = 0.0
    done = 0
    decisions: List[ScaleDecision] = []
    control_seq = 0

    def dispatch(now: float) -> None:
        nonlocal busy, ewma_wait, done
        while busy < capacity and queue:
            _, _, i = heapq.heappop(queue)
            request = requests[i]
            wait = now - request.t
            if (request.deadline is not None
                    and wait > request.deadline):
                outcomes[i] = SimRequestOutcome(
                    index=i, status="deadline", arrival=request.t,
                    wait=None, latency=None)
                done += 1
                continue
            ewma_wait = ((1.0 - _EWMA_ALPHA) * ewma_wait
                         + _EWMA_ALPHA * wait)
            busy += 1
            service = config.service.service_seconds(request.shape)
            heapq.heappush(events, (now + service, _EV_FINISH, i))

    while events:
        now, kind, seq = heapq.heappop(events)
        # Cost is provisioned capacity, except a draining scale-down
        # still pays for workers finishing their in-flight request.
        worker_seconds += max(capacity, busy) * (now - last_t)
        last_t = now
        if kind == _EV_ARRIVE:
            request = requests[seq]
            limit = admission_limit(request.priority,
                                    config.max_queue)
            if len(queue) >= limit:
                outcomes[seq] = SimRequestOutcome(
                    index=seq, status="shed", arrival=request.t,
                    wait=None, latency=None)
                done += 1
            else:
                heapq.heappush(
                    queue, (request.priority, request.t, seq))
            dispatch(now)
        elif kind == _EV_FINISH:
            request = requests[seq]
            busy -= 1
            latency = now - request.t
            service = config.service.service_seconds(request.shape)
            outcomes[seq] = SimRequestOutcome(
                index=seq, status="served", arrival=request.t,
                wait=latency - service, latency=latency)
            done += 1
            dispatch(now)
        else:  # _EV_CONTROL
            signals = Signals(queue_depth=len(queue),
                              ewma_wait_seconds=ewma_wait,
                              inflight=busy, workers=capacity)
            assert policy is not None
            target = min(max(policy.decide(signals),
                             policy.min_workers),
                         policy.max_workers)
            decisions.append(ScaleDecision(
                t=now, workers=capacity, target=target,
                queue_depth=len(queue),
                ewma_wait_seconds=ewma_wait))
            capacity = target
            dispatch(now)
            control_seq += 1
            if done < n:
                heapq.heappush(events, (
                    (control_seq + 1) * config.control_interval,
                    _EV_CONTROL, -1))

    assert done == n and busy == 0 and not queue
    final = [o for o in outcomes if o is not None]
    assert len(final) == n
    return SimResult(outcomes=tuple(final),
                     worker_seconds=worker_seconds,
                     end_time=last_t,
                     decisions=tuple(decisions),
                     final_workers=capacity)
