"""Traffic-scale load generation, replay and closed-loop autoscaling.

The capacity-planning subsystem (docs/serving.md, "Capacity
planning"): seed-deterministic workload traces
(:mod:`repro.loadgen.traces`), a discrete-event serving simulator
(:mod:`repro.loadgen.sim`), an open-loop live replay harness
(:mod:`repro.loadgen.replay`), autoscaling policies and the live
fleet autoscaler (:mod:`repro.loadgen.autoscale`), and the versioned
loadtest report (:mod:`repro.loadgen.report`).  Surfaced as
``repro loadtest``.
"""

from repro.loadgen.autoscale import (
    AutoscalePolicy,
    FleetAutoscaler,
    HysteresisPolicy,
    ScaleDecision,
    Signals,
)
from repro.loadgen.replay import (
    LiveOutcome,
    LiveReplayResult,
    replay_trace,
)
from repro.loadgen.report import (
    LOADTEST_SCHEMA,
    LoadtestReportError,
    build_report,
    calibration_report,
    dump_report,
    latency_stats,
    render_loadtest_report,
    validate_loadtest_report,
)
from repro.loadgen.sim import (
    ServiceModel,
    SimConfig,
    SimRequestOutcome,
    SimResult,
    simulate_serving,
)
from repro.loadgen.traces import (
    SCENARIOS,
    WORKLOAD_SCHEMA,
    FlashCrowd,
    Trace,
    TraceConfig,
    TraceRequest,
    WorkloadError,
    generate_trace,
    load_trace,
    scenario_config,
    write_trace,
)

__all__ = [
    "AutoscalePolicy",
    "FleetAutoscaler",
    "HysteresisPolicy",
    "ScaleDecision",
    "Signals",
    "LiveOutcome",
    "LiveReplayResult",
    "replay_trace",
    "LOADTEST_SCHEMA",
    "LoadtestReportError",
    "build_report",
    "calibration_report",
    "dump_report",
    "latency_stats",
    "render_loadtest_report",
    "validate_loadtest_report",
    "ServiceModel",
    "SimConfig",
    "SimRequestOutcome",
    "SimResult",
    "simulate_serving",
    "SCENARIOS",
    "WORKLOAD_SCHEMA",
    "FlashCrowd",
    "Trace",
    "TraceConfig",
    "TraceRequest",
    "WorkloadError",
    "generate_trace",
    "load_trace",
    "scenario_config",
    "write_trace",
]
