"""Open-loop trace replay against a live serving endpoint.

Drives the *same* trace the simulator consumes against a real
:class:`~repro.serving.pipeline.InferenceServer` or
:class:`~repro.serving.fleet.FleetServer` (both expose the same
``submit`` contract).  The replay is **open-loop**: request *i* is
submitted at ``start + t_i / speed`` regardless of how the previous
requests fared — the defining property of production traffic, and the
reason overload shows up as shed/deadline counts instead of silently
stretching the run.

Outcomes are classified exactly as the report schema counts them:

* ``served`` — the request resolved with a result;
* ``shed`` — admission rejected it (``ServerOverloaded`` /
  ``ServerDraining``);
* ``deadline`` — it resolved with ``DeadlineExceeded``;
* ``failed`` — any other error.

Per-request completion runs on small waiter threads; their number is
bounded by the server's own admission capacity (queue + in-flight),
so a replay can never fork unbounded threads.  The server's
:class:`~repro.observability.slo.SLOTracker` keeps recording as
usual — the replay adds its own sample list only because report
quantiles are exact order statistics, not histogram estimates.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.runtime import make_lock
from repro.loadgen.traces import Trace
from repro.serving.pipeline import (
    DeadlineExceeded,
    ServerClosed,
    ServerDraining,
    ServerOverloaded,
)

__all__ = ["LiveOutcome", "LiveReplayResult", "replay_trace"]


@dataclass(frozen=True)
class LiveOutcome:
    """One request's live fate."""

    index: int
    #: "served" | "shed" | "deadline" | "failed"
    status: str
    #: Submit-to-resolve latency in seconds (served requests only).
    latency: Optional[float]


@dataclass(frozen=True)
class LiveReplayResult:
    """Everything the loadtest report needs from one live replay."""

    outcomes: Tuple[LiveOutcome, ...]
    #: Wall-clock seconds the replay took (submit of first request to
    #: resolution of the last).
    elapsed: float

    @property
    def served(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "served")


def _volume_for(shape: Tuple[int, int, int], index: int) -> np.ndarray:
    """A cheap deterministic volume: content does not affect load, so
    a constant ramp beats per-request RNG draws."""
    volume = np.zeros(shape, dtype=np.float64)
    volume.flat[0] = float(index % 7)
    return volume


def replay_trace(trace: Trace, server, speed: float = 1.0,
                 on_progress=None) -> LiveReplayResult:
    """Replay *trace* against *server* (anything with ``submit``).

    ``speed`` > 1 compresses time: arrivals and deadlines are divided
    by it, so a 30-second trace replays in 30/speed wall seconds —
    the knob CI smoke lanes use.
    """
    if speed <= 0:
        raise ValueError(f"speed must be > 0, got {speed}")
    lock = make_lock("loadgen.replay")
    outcomes: List[Optional[LiveOutcome]] = \
        [None] * len(trace.requests)  # guarded-by: lock
    waiters: List[threading.Thread] = []
    start = time.monotonic()

    def record(index: int, status: str,
               latency: Optional[float]) -> None:
        with lock:
            outcomes[index] = LiveOutcome(index=index, status=status,
                                          latency=latency)
        if on_progress is not None:
            on_progress(index, status)

    def wait_for(index: int, pending, submitted: float) -> None:
        try:
            pending.result()
        except DeadlineExceeded:
            record(index, "deadline", None)
        except Exception:
            record(index, "failed", None)
        else:
            record(index, "served", time.monotonic() - submitted)

    for index, request in enumerate(trace.requests):
        delay = start + request.t / speed - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        timeout = (None if request.deadline is None
                   else request.deadline / speed)
        volume = _volume_for(request.shape, index)
        submitted = time.monotonic()
        try:
            pending = server.submit(request.model, volume,
                                    timeout=timeout,
                                    priority=request.priority)
        except (ServerOverloaded, ServerDraining):
            record(index, "shed", None)
        except ServerClosed:
            record(index, "failed", None)
        else:
            waiter = threading.Thread(
                target=wait_for, args=(index, pending, submitted),
                name=f"replay-wait-{index}", daemon=True)
            waiter.start()
            waiters.append(waiter)
    for waiter in waiters:
        waiter.join()
    elapsed = time.monotonic() - start
    with lock:
        final = list(outcomes)
    assert all(o is not None for o in final)
    return LiveReplayResult(outcomes=tuple(final), elapsed=elapsed)
