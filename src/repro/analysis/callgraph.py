"""Per-package static call graph for interprocedural lint passes.

The determinism rule (docs/static_analysis.md) must follow an
obligation — "everything this entry point executes stays bitwise
reproducible" — from an annotated ``def`` into its callees, across
files.  This module builds the call graph that propagation walks.

Resolution is deliberately conservative and type-annotation driven —
no whole-program inference, just the cases that occur in this repo:

* bare calls to module-level functions (and nested ``def``s);
* ``self.method()`` through the enclosing class and its bases;
* ``self.attr.method()`` where ``__init__`` assigned
  ``self.attr = SomeClass(...)``;
* ``var.method()`` where ``var = SomeClass(...)`` or ``var`` is a
  parameter annotated with a known class;
* ``SomeClass(...)`` construction (an edge to ``__init__``);
* imported names (``from pkg.mod import fn`` / ``import pkg.mod``)
  when the target module is part of the linted file set.

Everything unresolvable stays an *external* call — recorded with its
dotted name so leaf rules (``time.time``, ``random.random``, …) can
still match on it, but never followed.

Annotation grammar (comments, like ``# guarded-by``):

* ``# deterministic`` trailing a ``def`` line (or on the line directly
  above it / above its decorators) marks an entry point;
* ``# nondeterministic: <reason>`` on a ``def`` exempts the function
  and cuts propagation through it; the reason is mandatory and is
  carried into the lint report as the suppression justification.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.linting import SourceFile

__all__ = [
    "CallGraph",
    "FunctionNode",
    "build_callgraph",
]

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class FunctionNode:
    """One function or method in the analyzed file set."""

    #: ``module::func`` or ``module::Class.method``.
    qualname: str
    name: str
    cls: Optional[str]
    src: SourceFile
    node: ast.AST
    #: Marked ``# deterministic`` (propagation root).
    deterministic: bool = False
    #: ``# nondeterministic:`` escape — None means no escape; the
    #: empty string means an escape *without* the mandatory reason.
    nondet_reason: Optional[str] = None
    #: Resolved callee qualnames.
    calls: Set[str] = field(default_factory=set)
    #: Unresolved dotted call names with line numbers.
    external: List[Tuple[str, int]] = field(default_factory=list)


def _module_name(path: str) -> str:
    """Dotted module identity derived from the file path."""
    norm = path.replace(os.sep, "/")
    if norm.endswith(".py"):
        norm = norm[:-3]
    parts = [p for p in norm.split("/") if p not in ("", ".", "..")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "<module>"


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, '' otherwise."""
    parts: List[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    else:
        return ""
    return ".".join(reversed(parts))


def _annotation_class(node: Optional[ast.expr]) -> Optional[str]:
    """The class name a parameter annotation refers to, if plain.

    ``x: Worker`` and ``x: "Worker"`` resolve; ``Optional[Worker]``
    unwraps one subscript level; anything fancier is ignored.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].strip().rsplit(".", 1)[-1]
    if isinstance(node, ast.Subscript):
        # Optional[Worker] / "Optional[Worker]" — take the inner name
        # when the outer is a typing wrapper.
        outer = _dotted(node.value).rsplit(".", 1)[-1]
        if outer in ("Optional", "Final", "Annotated"):
            inner = node.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_class(
                inner if isinstance(inner, ast.expr) else None)
        return None
    name = _dotted(node)
    if name:
        return name.rsplit(".", 1)[-1]
    return None


class _ModuleInfo:
    """Per-module symbol tables used during resolution."""

    def __init__(self, src: SourceFile, module: str) -> None:
        self.src = src
        self.module = module
        #: local name -> dotted import target (module or symbol).
        self.imports: Dict[str, str] = {}
        #: class name -> ClassDef.
        self.classes: Dict[str, ast.ClassDef] = {}
        #: class name -> {method name -> qualname}.
        self.methods: Dict[str, Dict[str, str]] = {}
        #: class name -> base class names (as written).
        self.bases: Dict[str, List[str]] = {}
        #: (class name, attr) -> class name assigned in __init__.
        self.attr_types: Dict[Tuple[str, str], str] = {}
        #: module-level function name -> qualname.
        self.functions: Dict[str, str] = {}


class CallGraph:
    """The resolved call graph of one linted file set."""

    def __init__(self) -> None:
        #: qualname -> node.
        self.functions: Dict[str, FunctionNode] = {}
        #: module identity -> its symbol tables.
        self.modules: Dict[str, _ModuleInfo] = {}

    # -- queries -------------------------------------------------------

    def roots(self) -> List[str]:
        """Qualnames marked ``# deterministic``, sorted."""
        return sorted(q for q, f in self.functions.items()
                      if f.deterministic)

    def reachable(
            self, roots: Iterable[str]) -> Tuple[Set[str], Set[str]]:
        """(obligated, escaped) qualnames from *roots*.

        Obligated functions inherit the determinism obligation.
        Escaped functions carry a ``# nondeterministic:`` marker —
        propagation stops at them (their callees are *not* obligated
        through that path), but they are returned so the caller can
        report their findings as suppressed.
        """
        obligated: Set[str] = set()
        escaped: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            qual = stack.pop()
            fn = self.functions[qual]
            if fn.nondet_reason is not None:
                escaped.add(qual)
                continue
            if qual in obligated:
                continue
            obligated.add(qual)
            for callee in fn.calls:
                if callee in self.functions:
                    stack.append(callee)
        return obligated, escaped


def build_callgraph(sources: Sequence[SourceFile]) -> CallGraph:
    """Parse *sources* into a resolved :class:`CallGraph`."""
    graph = CallGraph()
    infos: List[Tuple[_ModuleInfo, SourceFile]] = []
    for src in sources:
        module = _module_name(src.path)
        info = _ModuleInfo(src, module)
        graph.modules[module] = info
        infos.append((info, src))
        _collect_symbols(graph, info, src)
    for info, src in infos:
        _resolve_calls(graph, info, src)
    return graph


# ---------------------------------------------------------------------------
# Pass 1: symbols and annotations
# ---------------------------------------------------------------------------


def _def_annotations(src: SourceFile,
                     node: ast.AST) -> Tuple[bool, Optional[str]]:
    """(deterministic, nondeterministic reason) for a ``def``.

    Scans the decorator/signature lines of the statement plus the line
    directly above the first of them, so both trailing and preceding
    comment placement work.
    """
    first = node.lineno
    decorators = getattr(node, "decorator_list", [])
    if decorators:
        first = min(first, min(d.lineno for d in decorators))
    body = getattr(node, "body", None)
    last = body[0].lineno - 1 if body else node.lineno
    deterministic = False
    reason: Optional[str] = None
    for line in range(first - 1, max(first - 1, last) + 1):
        text = src.comments.get(line)
        if text is None:
            continue
        if text == "deterministic" or text.startswith("deterministic:"):
            deterministic = True
        elif text.startswith("nondeterministic"):
            rest = text[len("nondeterministic"):]
            reason = rest[1:].strip() if rest.startswith(":") else ""
    return deterministic, reason


def _collect_symbols(graph: CallGraph, info: _ModuleInfo,
                     src: SourceFile) -> None:
    module = ast.parse(src.source, filename=src.path) \
        if src.tree is None else src.tree
    for stmt in ast.walk(module):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                info.imports[local] = target
        elif isinstance(stmt, ast.ImportFrom) and stmt.module:
            for alias in stmt.names:
                local = alias.asname or alias.name
                info.imports[local] = f"{stmt.module}.{alias.name}"

    def add_function(node: ast.AST, cls: Optional[str]) -> FunctionNode:
        name = getattr(node, "name", "<lambda>")
        qual = (f"{info.module}::{cls}.{name}" if cls
                else f"{info.module}::{name}")
        deterministic, reason = _def_annotations(src, node)
        fn = FunctionNode(qualname=qual, name=name, cls=cls, src=src,
                          node=node, deterministic=deterministic,
                          nondet_reason=reason)
        graph.functions[qual] = fn
        if cls is None:
            info.functions[name] = qual
        else:
            info.methods.setdefault(cls, {})[name] = qual
        return fn

    def visit_body(stmts: Iterable[ast.stmt], cls: Optional[str],
                   parent: Optional[FunctionNode]) -> None:
        for stmt in stmts:
            if isinstance(stmt, _DEF_NODES):
                fn = add_function(stmt, cls)
                if parent is not None:
                    # A nested def runs (if at all) inside its parent:
                    # conservatively treat it as called by it.
                    parent.calls.add(fn.qualname)
                visit_body(stmt.body, cls=None, parent=fn)
            elif isinstance(stmt, ast.ClassDef):
                info.classes[stmt.name] = stmt
                info.bases[stmt.name] = [
                    _dotted(b) for b in stmt.bases if _dotted(b)]
                for sub in stmt.body:
                    if isinstance(sub, _DEF_NODES):
                        fn = add_function(sub, stmt.name)
                        visit_body(sub.body, cls=None, parent=fn)
                if stmt.name in info.classes:
                    _collect_attr_types(info, stmt)
            elif isinstance(stmt, (ast.If, ast.Try)):
                visit_body(stmt.body, cls, parent)
                for handler in getattr(stmt, "handlers", []):
                    visit_body(handler.body, cls, parent)
                visit_body(stmt.orelse, cls, parent)
                visit_body(getattr(stmt, "finalbody", []), cls, parent)

    visit_body(module.body, cls=None, parent=None)


def _collect_attr_types(info: _ModuleInfo, cls: ast.ClassDef) -> None:
    """``self.x = SomeClass(...)`` assignments in ``__init__``."""
    for stmt in cls.body:
        if not (isinstance(stmt, _DEF_NODES)
                and getattr(stmt, "name", "") == "__init__"):
            continue
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            callee = _dotted(node.value.func)
            if not callee:
                continue
            leaf = callee.rsplit(".", 1)[-1]
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    info.attr_types[(cls.name, target.attr)] = leaf


# ---------------------------------------------------------------------------
# Pass 2: call resolution
# ---------------------------------------------------------------------------


def _find_module(graph: CallGraph, info: _ModuleInfo,
                 dotted_module: str) -> Optional[_ModuleInfo]:
    """The analyzed module whose identity matches *dotted_module*.

    Lint paths rarely start at the package root, so the derived module
    identity (``src.repro.sync.summation``) is matched by dotted
    suffix against the import target (``repro.sync.summation``).
    """
    for candidate in graph.modules.values():
        if candidate is info:
            continue
        if candidate.module == dotted_module:
            return candidate
        if candidate.module.endswith("." + dotted_module):
            return candidate
        if dotted_module.endswith("." + candidate.module.split(".")[-1]) \
                and candidate.module.split(".")[-1] \
                == dotted_module.split(".")[-1]:
            return candidate
    return None


def _resolve_class(graph: CallGraph, info: _ModuleInfo,
                   name: str) -> Optional[Tuple[_ModuleInfo, str]]:
    """Find class *name* locally or through imports."""
    leaf = name.rsplit(".", 1)[-1]
    if leaf in info.classes:
        return info, leaf
    target = info.imports.get(leaf)
    if target is None and "." in name:
        # mod.Class where mod is an imported module.
        head, _, tail = name.rpartition(".")
        mod_target = info.imports.get(head.split(".")[0])
        if mod_target is not None:
            target = f"{mod_target}.{tail}" if "." not in head else \
                f"{mod_target}.{'.'.join(head.split('.')[1:])}.{tail}"
    if target is None:
        return None
    mod_path, _, cls_name = target.rpartition(".")
    other = _find_module(graph, info, mod_path)
    if other is not None and cls_name in other.classes:
        return other, cls_name
    return None


def _method_qual(graph: CallGraph, info: _ModuleInfo, cls: str,
                 method: str,
                 seen: Optional[Set[str]] = None) -> Optional[str]:
    """Resolve *method* on *cls*, walking base classes in the set."""
    seen = seen if seen is not None else set()
    key = f"{info.module}:{cls}"
    if key in seen:
        return None
    seen.add(key)
    qual = info.methods.get(cls, {}).get(method)
    if qual is not None:
        return qual
    for base in info.bases.get(cls, []):
        resolved = _resolve_class(graph, info, base)
        if resolved is None:
            continue
        base_info, base_name = resolved
        qual = _method_qual(graph, base_info, base_name, method, seen)
        if qual is not None:
            return qual
    return None


def _resolve_calls(graph: CallGraph, info: _ModuleInfo,
                   src: SourceFile) -> None:
    for fn in graph.functions.values():
        if fn.src is not src:
            continue
        local_types = _local_var_types(graph, info, fn)
        for node in ast.walk(fn.node):  # type: ignore[arg-type]
            if not isinstance(node, ast.Call):
                continue
            qual = _resolve_one_call(graph, info, fn, node, local_types)
            if qual is not None:
                fn.calls.add(qual)
            else:
                dotted = _dotted(node.func)
                if dotted:
                    fn.external.append((dotted, node.lineno))


def _local_var_types(graph: CallGraph, info: _ModuleInfo,
                     fn: FunctionNode) -> Dict[str, str]:
    """var -> class name, from annotations and constructor calls."""
    types: Dict[str, str] = {}
    args = getattr(fn.node, "args", None)
    if args is not None:
        all_args = list(args.posonlyargs) + list(args.args) \
            + list(args.kwonlyargs)
        for arg in all_args:
            cls = _annotation_class(arg.annotation)
            if cls is not None and _resolve_class(graph, info, cls):
                types[arg.arg] = cls
    for node in ast.walk(fn.node):  # type: ignore[arg-type]
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Call):
            callee = _dotted(node.value.func)
            if not callee:
                continue
            if _resolve_class(graph, info, callee) is None:
                continue
            leaf = callee.rsplit(".", 1)[-1]
            for target in node.targets:
                if isinstance(target, ast.Name):
                    types[target.id] = leaf
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            cls_name = _annotation_class(node.annotation)
            if cls_name is not None \
                    and _resolve_class(graph, info, cls_name):
                types[node.target.id] = cls_name
    return types


def _resolve_one_call(graph: CallGraph, info: _ModuleInfo,
                      fn: FunctionNode, call: ast.Call,
                      local_types: Dict[str, str]) -> Optional[str]:
    func = call.func
    # Bare name: local function, imported function, or construction.
    if isinstance(func, ast.Name):
        name = func.id
        if name in info.functions:
            return info.functions[name]
        if name in info.classes:
            return _method_qual(graph, info, name, "__init__")
        target = info.imports.get(name)
        if target is not None:
            mod_path, _, symbol = target.rpartition(".")
            other = _find_module(graph, info, mod_path)
            if other is not None:
                if symbol in other.functions:
                    return other.functions[symbol]
                if symbol in other.classes:
                    return _method_qual(graph, other, symbol, "__init__")
        return None
    if not isinstance(func, ast.Attribute):
        return None
    method = func.attr
    receiver = func.value
    # self.method()
    if isinstance(receiver, ast.Name) and receiver.id == "self" \
            and fn.cls is not None:
        return _method_qual(graph, info, fn.cls, method)
    # self.attr.method()
    if isinstance(receiver, ast.Attribute) \
            and isinstance(receiver.value, ast.Name) \
            and receiver.value.id == "self" and fn.cls is not None:
        attr_cls = info.attr_types.get((fn.cls, receiver.attr))
        if attr_cls is not None:
            resolved = _resolve_class(graph, info, attr_cls)
            if resolved is not None:
                return _method_qual(graph, resolved[0], resolved[1],
                                    method)
        return None
    if isinstance(receiver, ast.Name):
        # var.method() for a typed local / annotated parameter.
        var_cls = local_types.get(receiver.id)
        if var_cls is not None:
            resolved = _resolve_class(graph, info, var_cls)
            if resolved is not None:
                return _method_qual(graph, resolved[0], resolved[1],
                                    method)
        # Class.method() (unbound) and mod.func().
        if receiver.id in info.classes:
            return _method_qual(graph, info, receiver.id, method)
        target = info.imports.get(receiver.id)
        if target is not None:
            other = _find_module(graph, info, target)
            if other is not None:
                if method in other.functions:
                    return other.functions[method]
                if method in other.classes:
                    return _method_qual(graph, other, method, "__init__")
            # from pkg import Class; Class.method()
            mod_path, _, symbol = target.rpartition(".")
            other = _find_module(graph, info, mod_path)
            if other is not None and symbol in other.classes:
                return _method_qual(graph, other, symbol, method)
    return None
