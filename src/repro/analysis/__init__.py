"""Concurrency correctness tooling (docs/static_analysis.md).

Two halves:

* **static** — :mod:`repro.analysis.linting`: an AST lint engine
  (``repro lint``) enforcing the repo's lock disciplines: declared
  ``# guarded-by:`` attributes are mutated only under their lock, no
  raw ``.acquire()`` without try/finally, no blocking calls while
  holding a lock, the Algorithm-4 summation critical section stays
  pointer-swap-only, and every metric name is catalogued.

* **dynamic** — :mod:`repro.analysis.runtime`: ``REPRO_CHECK=1`` swaps
  the instrumented subsystems' locks for :class:`CheckedLock` (global
  lock-order graph, cycle ⇒ potential-deadlock report with both
  stacks) and applies an Eraser-style lockset race detector to objects
  registered via :func:`track`.
"""

from repro.analysis.linting import (
    ALL_RULES,
    LintViolation,
    lint_file,
    lint_paths,
    lint_source,
    render_violations,
)
from repro.analysis.runtime import (
    CheckedLock,
    Violation,
    assert_clean,
    checking_enabled,
    disable_checks,
    enable_checks,
    lock_order_edges,
    make_condition,
    make_lock,
    note_access,
    reset_violations,
    track,
    violations,
)

__all__ = [
    "ALL_RULES",
    "CheckedLock",
    "LintViolation",
    "Violation",
    "assert_clean",
    "checking_enabled",
    "disable_checks",
    "enable_checks",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lock_order_edges",
    "make_condition",
    "make_lock",
    "note_access",
    "render_violations",
    "reset_violations",
    "track",
    "violations",
]
