"""Dynamic concurrency checking — ``REPRO_CHECK=1`` mode.

The paper's correctness claims rest on two disciplines that ordinary
tests cannot see: every shared structure is touched only under its
documented lock (the heap-of-lists queue, the FFT cache, the pools'
stats), and locks are always taken in a consistent global order (no
potential deadlock hides behind a lucky schedule).  This module makes
both disciplines *checked invariants*:

* :class:`CheckedLock` — an instrumented drop-in for ``threading.Lock``
  that maintains a per-thread held-lock stack and a process-global
  **lock-order graph**.  An edge ``A -> B`` is recorded the first time
  any thread acquires ``B`` while holding ``A``; a cycle in the graph
  is a potential deadlock and is reported with the acquisition stacks
  of both conflicting edges (the happens-before flavour of FastTrack,
  Flanagan & Freund, PLDI 2009, collapsed to lock identities).

* a lightweight **lockset race detector** in the spirit of Eraser
  (Savage et al., SOSP 1997): objects registered via :func:`track`
  maintain a candidate lockset — the intersection of the checked locks
  held at every access.  Once an object is written from two threads
  and its lockset is empty, a race is reported with the offending
  stack.

Both report through the existing observability registry
(``analysis.lock_order_violations`` / ``analysis.race_violations``
counters) and keep a programmatic list (:func:`violations`,
:func:`assert_clean`) the ``REPRO_CHECK=1`` CI lane asserts empty.

Activation: the instrumented subsystems call :func:`make_lock` /
:func:`checking_enabled` at *construction* time.  With ``REPRO_CHECK``
unset (the default) ``make_lock`` returns a plain ``threading.Lock``
and every hook collapses to one captured-bool branch — the measured
overhead is <1% (see ``benchmarks/bench_engine_utilization.py``),
mirroring ``REPRO_METRICS=0``.
"""

from __future__ import annotations

import os
import sys
import threading
import traceback
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple, Union

from repro.observability.metrics import get_registry

__all__ = [
    "CheckedLock",
    "DET_THREADS_ENV",
    "ProbeRun",
    "Violation",
    "assert_clean",
    "checking_enabled",
    "disable_checks",
    "enable_checks",
    "make_condition",
    "make_lock",
    "note_access",
    "reset_violations",
    "run_determinism_check",
    "track",
    "violations",
]

#: Attribute name under which :func:`track` stores per-object state.
_TRACK_ATTR = "_repro_track_info"


@dataclass(frozen=True)
class Violation:
    """One reported concurrency-discipline violation."""

    #: ``"lock-order"``, ``"recursive-acquire"``, ``"unheld-release"``
    #: or ``"race"``.
    kind: str
    message: str
    #: Formatted stack of the acquisition/access that completed the
    #: violation.
    stack: str
    #: For lock-order cycles: the formatted stack that created the
    #: conflicting (reverse-direction) edge.
    other_stack: str = ""

    def __str__(self) -> str:
        text = f"[{self.kind}] {self.message}\n--- stack ---\n{self.stack}"
        if self.other_stack:
            text += f"--- conflicting stack ---\n{self.other_stack}"
        return text


def _capture_stack(skip: int = 2) -> str:
    """The current stack, minus *skip* innermost frames of this module."""
    frames = traceback.format_stack()[:-skip]
    return "".join(frames[-8:])


class _HeldStack(threading.local):
    """Per-thread stack of currently-held :class:`CheckedLock` objects."""

    def __init__(self) -> None:
        self.locks: List["CheckedLock"] = []


class _TrackInfo:
    """Eraser-style per-object state (kept out of the object's API)."""

    __slots__ = ("name", "policy", "lock", "owner", "state", "lockset",
                 "reported", "accesses", "threads")

    def __init__(self, name: str, policy: str) -> None:
        self.name = name
        self.policy = policy
        # A plain (un-checked) lock: the detector's own bookkeeping
        # must stay invisible to the lock-order graph.
        self.lock = threading.Lock()
        self.owner: Optional[int] = None
        #: ``"exclusive"`` | ``"shared-read"`` | ``"shared-modified"``
        self.state = "virgin"
        #: None means "universe" (no multi-thread access yet).
        self.lockset: Optional[FrozenSet[str]] = None
        self.reported = False
        self.accesses = 0
        self.threads: Set[int] = set()


class _CheckState:
    """Process-global state for one checking session."""

    def __init__(self) -> None:
        self.held = _HeldStack()
        # (from_name, to_name) -> (stack, thread name); first sighting.
        self.edges: Dict[Tuple[str, str], Tuple[str, str]] = {}
        self.adjacency: Dict[str, Set[str]] = {}
        self.graph_lock = threading.Lock()
        self.violations: List[Violation] = []
        self.violations_lock = threading.Lock()
        reg = get_registry()
        self.m_lock_order = reg.counter("analysis.lock_order_violations")
        self.m_race = reg.counter("analysis.race_violations")
        self.m_tracked = reg.gauge("analysis.tracked_objects")

    # -- reporting -----------------------------------------------------

    def report(self, violation: Violation) -> None:
        with self.violations_lock:
            self.violations.append(violation)
        if violation.kind == "race":
            self.m_race.inc()
        else:
            self.m_lock_order.inc()
        print(f"REPRO_CHECK violation: {violation}", file=sys.stderr)

    # -- lock-order graph ----------------------------------------------

    def record_edge(self, held: "CheckedLock", acquiring: "CheckedLock",
                    stack: str) -> None:
        a, b = held.order_name, acquiring.order_name
        if a == b:
            # Same-name nesting across *instances* (e.g. two queues) is
            # hierarchical by construction here; a same-instance nest is
            # reported separately as recursive-acquire.
            return
        key = (a, b)
        with self.graph_lock:
            if key in self.edges:
                return
            self.edges[key] = (stack, threading.current_thread().name)
            self.adjacency.setdefault(a, set()).add(b)
            cycle = self._find_path(b, a)
        if cycle is not None:
            # The reverse-direction path exists: taking a -> b closes a
            # cycle.  Attach the stack of the first edge on that path.
            first_edge = (cycle[0], cycle[1])
            other_stack, other_thread = self.edges.get(first_edge, ("", "?"))
            self.report(Violation(
                kind="lock-order",
                message=(
                    f"lock-order cycle: acquired {b!r} while holding {a!r}, "
                    f"but the reverse order {' -> '.join(cycle)} was "
                    f"established by thread {other_thread!r} — potential "
                    f"deadlock"),
                stack=stack,
                other_stack=other_stack,
            ))

    def _find_path(self, start: str, goal: str) -> Optional[List[str]]:
        """DFS in the edge graph; returns the node path or None.

        Called with ``graph_lock`` held.
        """
        stack: List[Tuple[str, List[str]]] = [(start, [start])]
        seen: Set[str] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for nxt in self.adjacency.get(node, ()):
                stack.append((nxt, path + [nxt]))
        return None

    # -- lockset race detection ----------------------------------------

    def note(self, info: _TrackInfo, kind: str) -> None:
        tid = threading.get_ident()
        held = frozenset(lock.order_name for lock in self.held.locks)
        with info.lock:
            info.accesses += 1
            info.threads.add(tid)
            if info.policy == "atomic":
                # Lock-free by design (GIL-atomic deque ops): record the
                # traffic but do not apply lockset reasoning.
                return
            if info.state == "virgin":
                info.state = "exclusive"
                info.owner = tid
                return
            if info.state == "exclusive" and info.owner == tid:
                return
            # Second thread seen: start/refine the lockset.
            info.lockset = (held if info.lockset is None
                            else info.lockset & held)
            if kind == "write":
                info.state = "shared-modified"
            elif info.state != "shared-modified":
                info.state = "shared-read"
            racy = (info.state == "shared-modified" and not info.lockset
                    and not info.reported)
            if racy:
                info.reported = True
        if racy:
            self.report(Violation(
                kind="race",
                message=(
                    f"unsynchronised {kind} to tracked object "
                    f"{info.name!r}: accessed by {len(info.threads)} "
                    f"threads with an empty candidate lockset"),
                stack=_capture_stack(skip=3),
            ))


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CHECK", "0").strip().lower() not in (
        "", "0", "false", "off", "no")


_state: Optional[_CheckState] = _CheckState() if _env_enabled() else None

#: Shared state for CheckedLocks constructed directly while global
#: checking is off (unit tests): they must still see one held stack.
_standalone_state: Optional[_CheckState] = None
_standalone_guard = threading.Lock()


def _resolve_state(state: Optional[_CheckState]) -> _CheckState:
    global _standalone_state
    if state is not None:
        return state
    if _state is not None:
        return _state
    with _standalone_guard:
        if _standalone_state is None:
            _standalone_state = _CheckState()
        return _standalone_state


class CheckedLock:
    """An instrumented non-reentrant lock (``threading.Lock`` semantics).

    Maintains the per-thread held stack, feeds the lock-order graph,
    and reports (then raises on) recursive acquisition — which on the
    plain lock would be a silent self-deadlock.  Works as the lock of a
    ``threading.Condition``.
    """

    __slots__ = ("order_name", "_inner", "_state")

    def __init__(self, name: str,
                 state: Optional[_CheckState] = None) -> None:
        #: Site label; cycle detection aggregates instances by it.
        self.order_name = name
        self._inner = threading.Lock()
        self._state = _resolve_state(state)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        state = self._state
        held = state.held.locks
        if self in held:
            if not blocking:
                # threading.Condition._is_owned probes with
                # acquire(False); a held lock simply reports busy.
                return False
            violation = Violation(
                kind="recursive-acquire",
                message=(f"thread {threading.current_thread().name!r} "
                         f"re-acquired non-reentrant lock "
                         f"{self.order_name!r} it already holds — "
                         f"certain deadlock"),
                stack=_capture_stack(),
            )
            state.report(violation)
            raise RuntimeError(violation.message)
        if held:
            stack = _capture_stack()
            for other in held:
                state.record_edge(other, self, stack)
        acquired = self._inner.acquire(  # lint: disable=raw-acquire
            blocking, timeout)
        if acquired:
            held.append(self)
        return acquired

    def release(self) -> None:
        state = self._state
        held = state.held.locks
        if self in held:
            # Remove the most recent acquisition (Condition.wait may
            # interleave probe acquisitions, so not necessarily top).
            for i in range(len(held) - 1, -1, -1):
                if held[i] is self:
                    del held[i]
                    break
        else:
            state.report(Violation(
                kind="unheld-release",
                message=(f"thread {threading.current_thread().name!r} "
                         f"released lock {self.order_name!r} it does "
                         f"not hold"),
                stack=_capture_stack(),
            ))
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()  # lint: disable=raw-acquire

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckedLock({self.order_name!r}, locked={self.locked()})"


LockLike = Union[threading.Lock, CheckedLock]


# ---------------------------------------------------------------------------
# Public API used by the instrumented subsystems.
# ---------------------------------------------------------------------------


def checking_enabled() -> bool:
    """True when ``REPRO_CHECK`` mode is active (env or programmatic)."""
    return _state is not None


def enable_checks() -> None:
    """Activate checking (tests; the env var does this at import)."""
    global _state
    if _state is None:
        _state = _CheckState()


def disable_checks() -> None:
    """Deactivate checking and drop all recorded state."""
    global _state
    _state = None


def make_lock(name: str) -> LockLike:
    """A lock for the site *name*: plain when checking is off,
    :class:`CheckedLock` when on.  Call at construction time."""
    if _state is None:
        return threading.Lock()
    return CheckedLock(name, state=_state)


def make_condition(name: str) -> threading.Condition:
    """A condition over :func:`make_lock` of the same *name*."""
    return threading.Condition(make_lock(name))  # type: ignore[arg-type]


def track(obj: object, name: Optional[str] = None,
          policy: str = "guarded") -> object:
    """Register *obj* with the lockset race detector.

    ``policy="guarded"`` (default) applies Eraser lockset reasoning:
    every :func:`note_access` intersects the candidate lockset with the
    checked locks currently held; multi-thread writes with an empty
    lockset are reported.  ``policy="atomic"`` declares the object
    lock-free by design (the pools' GIL-atomic deques): accesses are
    recorded for the report but never flagged.

    No-op (and cheap) when checking is disabled.  Returns *obj*.
    """
    state = _state
    if state is None:
        return obj
    if policy not in ("guarded", "atomic"):
        raise ValueError(f"unknown track policy {policy!r}")
    label = name if name is not None else type(obj).__name__
    try:
        setattr(obj, _TRACK_ATTR, _TrackInfo(label, policy))
    except AttributeError:
        # __slots__ classes cannot be tracked; stay silent by contract.
        return obj
    state.m_tracked.inc()
    return obj


def note_access(obj: object, kind: str = "write") -> None:
    """Record a *kind* ∈ {"read", "write"} access to a tracked object.

    Call sites guard this behind a captured ``checking_enabled()`` bool
    so the disabled fast path is a single branch.
    """
    state = _state
    if state is None:
        return
    info = getattr(obj, _TRACK_ATTR, None)
    if info is None:
        return
    state.note(info, kind)


# ---------------------------------------------------------------------------
# Introspection for tests and the CI lane.
# ---------------------------------------------------------------------------


def violations() -> List[Violation]:
    """All violations reported since checks were enabled/reset."""
    state = _state
    if state is None:
        return []
    with state.violations_lock:
        return list(state.violations)


def reset_violations() -> None:
    """Clear recorded violations (the lock-order graph survives)."""
    state = _state
    if state is None:
        return
    with state.violations_lock:
        state.violations.clear()


def assert_clean() -> None:
    """Raise ``AssertionError`` listing violations, if any were seen."""
    seen = violations()
    if seen:
        summary = "\n\n".join(str(v) for v in seen)
        raise AssertionError(
            f"{len(seen)} concurrency violation(s) detected under "
            f"REPRO_CHECK:\n\n{summary}")


def lock_order_edges() -> Dict[Tuple[str, str], str]:
    """The observed lock-order graph: edge -> establishing thread."""
    state = _state
    if state is None:
        return {}
    with state.graph_lock:
        return {edge: thread for edge, (_, thread) in state.edges.items()}


def _iter_tracked_threads(obj: object) -> Iterator[int]:
    """Thread idents that touched *obj* (diagnostics)."""
    info = getattr(obj, _TRACK_ATTR, None)
    if info is None:
        return iter(())
    return iter(sorted(info.threads))


# ---------------------------------------------------------------------------
# Determinism sanitizer — the runtime half of `repro lint --rules
# determinism` (docs/static_analysis.md "Determinism checker").
# ---------------------------------------------------------------------------

#: Environment variable through which the sanitizer perturbs the
#: probe's worker counts (read by ``repro check-determinism --probe``).
DET_THREADS_ENV = "REPRO_DET_THREADS"


@dataclass(frozen=True)
class ProbeRun:
    """One probe execution under a specific perturbation."""

    hash_seed: int
    threads: int
    #: Ordered ``stage -> digest`` pairs emitted by the probe.
    digests: Tuple[Tuple[str, str], ...]


def _parse_probe_output(text: str) -> Tuple[Tuple[str, str], ...]:
    """Extract ordered ``(stage, digest)`` pairs from probe stdout.

    The probe emits one JSON object per line (``{"stage": ...,
    "digest": ...}``); any other line (progress noise from the
    subsystems) is ignored.
    """
    import json

    pairs: List[Tuple[str, str]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            continue
        if not isinstance(doc, dict):
            continue
        stage = doc.get("stage")
        digest = doc.get("digest")
        if isinstance(stage, str) and isinstance(digest, str):
            pairs.append((stage, digest))
    return tuple(pairs)


def _run_probe(argv: List[str], hash_seed: int, threads: int,
               timeout: float) -> ProbeRun:
    import subprocess

    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hash_seed)
    env[DET_THREADS_ENV] = str(threads)
    proc = subprocess.run(argv, capture_output=True, text=True,
                          env=env, timeout=timeout)
    if proc.returncode != 0:
        raise RuntimeError(
            f"determinism probe {argv!r} exited "
            f"{proc.returncode}:\n{proc.stderr}")
    digests = _parse_probe_output(proc.stdout)
    if not digests:
        raise RuntimeError(
            f"determinism probe {argv!r} emitted no stage digests; "
            f"stdout was:\n{proc.stdout}")
    return ProbeRun(hash_seed=hash_seed, threads=threads,
                    digests=digests)


def run_determinism_check(
        probe_argv: Optional[List[str]] = None,
        seeds: Tuple[int, int] = (0, 4242),
        threads: Tuple[int, int] = (1, 2),
        timeout: float = 900.0) -> Dict[str, object]:
    """Run the probe twice under perturbed hash seeds and thread
    schedules and diff the stage digests.

    The bitwise-reproducibility contract says every stage digest —
    the trained ``state_digest``, the stitched serving volume, the
    loadtest report bytes — is a function of the *seeds*, never of
    ``PYTHONHASHSEED`` (set/dict iteration order) or the worker
    schedule.  A stage whose digest moves between the two runs has
    leaked one of those into its arithmetic or serialization; the
    returned document names the first such stage (divergence
    provenance) so the offender is a grep away.

    *probe_argv* overrides the probe command (tests substitute a fake
    probe); the default runs ``repro check-determinism --probe`` under
    the current interpreter.
    """
    argv = probe_argv if probe_argv is not None else [
        sys.executable, "-m", "repro", "check-determinism", "--probe"]
    reg = get_registry()
    m_runs = reg.counter("analysis.determinism.probe_runs")
    m_stages = reg.counter("analysis.determinism.stages")
    m_div = reg.counter("analysis.determinism.divergences")

    runs: List[ProbeRun] = []
    for hash_seed, n_threads in zip(seeds, threads):
        runs.append(_run_probe(argv, hash_seed, n_threads, timeout))
        m_runs.inc()

    a, b = runs[0], runs[1]
    stages_a = [stage for stage, _ in a.digests]
    stages_b = [stage for stage, _ in b.digests]
    divergences: List[Dict[str, str]] = []
    if stages_a != stages_b:
        divergences.append({
            "stage": "<stage-list>",
            "run_a": ",".join(stages_a),
            "run_b": ",".join(stages_b),
        })
    else:
        for (stage, digest_a), (_, digest_b) in zip(a.digests, b.digests):
            m_stages.inc()
            if digest_a != digest_b:
                divergences.append({
                    "stage": stage,
                    "run_a": digest_a,
                    "run_b": digest_b,
                })
    for _ in divergences:
        m_div.inc()

    return {
        "schema": "repro.determinism-check/v1",
        "matched": not divergences,
        "stages": stages_a,
        "runs": [
            {"hash_seed": run.hash_seed, "threads": run.threads,
             "digests": {stage: digest for stage, digest in run.digests}}
            for run in runs
        ],
        "first_divergence": divergences[0] if divergences else None,
        "divergences": divergences,
    }
