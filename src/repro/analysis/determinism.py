"""The ``determinism`` lint rule — static half of the bitwise-
reproducibility contract (docs/static_analysis.md).

Every headline invariant of this reproduction — Algorithm 4's
fixed-order summation, worker-count-invariant checkpoints, tiled ⇄
whole-volume serving equality, byte-identical loadtest reports — is a
*determinism* property: the same inputs must produce the same bits
regardless of ``PYTHONHASHSEED``, thread schedule or worker count.
This pass enforces it at lint time, the way ``guarded-by`` enforces
the locking discipline.

A ``# deterministic`` annotation on a ``def`` marks an entry point of
the contract; the per-package call graph
(:mod:`repro.analysis.callgraph`) propagates the obligation to every
statically-reachable callee.  Inside an obligated function five
flow-sensitive checks fire:

``unordered-iteration``
    ``for`` over a ``set`` (hash-order depends on ``PYTHONHASHSEED``),
    or over a dict / ``.keys()``/``.values()``/``.items()`` view whose
    loop body accumulates floats or serializes output, without a
    ``sorted(...)`` wrapper.

``unseeded-rng``
    Module-level RNG (``random.random``, ``np.random.uniform``, …)
    shares hidden global state across threads; use an explicitly
    seeded ``random.Random`` / ``np.random.default_rng``.

``wall-clock``
    ``time.time``/``time.monotonic``/``datetime.now`` results flowing
    anywhere other than a metrics/tracing sink influence computed
    results (a local taint pass follows values through assignments).

``reassociating-reduction``
    ``sum``/``np.sum`` over an unordered iterable reassociates
    floating-point addition; use
    :func:`repro.sync.summation.reduce_in_order` over indexed slots or
    sort first.

``completion-order``
    ``as_completed``/``futures.wait``/``imap_unordered`` make results
    depend on thread completion order.

Escapes: ``# nondeterministic: <reason>`` on a ``def`` exempts the
function (and stops propagation through it); on a finding's line it
suppresses that finding.  The reason is mandatory — either way the
finding is still reported as *suppressed* with its justification, and
``repro lint`` exits zero as long as only suppressed findings remain.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import (CallGraph, FunctionNode,
                                      build_callgraph)
from repro.analysis.linting import (LintViolation, SourceFile,
                                    _dotted_name, _ParentedVisit)

__all__ = ["RULE", "run_determinism"]

#: The registered rule name (``repro lint --rules determinism``).
RULE = "determinism"

#: Module-level RNG functions on the ``random`` module.
_RNG_LEAVES = frozenset({
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate",
})

#: ``np.random.*`` members that *construct* seeded generators — the
#: sanctioned API — rather than drawing from the hidden global state.
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "RandomState",
    "BitGenerator", "PCG64", "Philox", "get_state", "set_state",
})

#: (module, attr) wall-clock reads.
_WALLCLOCK = frozenset({
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("datetime", "now"), ("datetime", "utcnow"),
    ("datetime", "today"), ("date", "today"),
})

#: Call leaves that serialize loop output (order becomes bytes).
_SERIAL_SINKS = frozenset({
    "update", "write", "writelines", "dump", "dumps", "tobytes",
    "pack", "send", "sendall", "hexdigest",
})

#: Receiver substrings that mark a call as a metrics/tracing sink —
#: wall-clock values may flow here (they measure, they don't compute).
_SINK_RECEIVER_TAGS = ("metric", "gauge", "hist", "counter", "tracer",
                       "span", "record", "slo", "log", "flight", "m_")

#: Call leaves that are metric-API verbs regardless of receiver name.
_SINK_LEAVES = frozenset({"observe", "inc", "dec"})

#: Annotation leaves typing a parameter as a set / dict.
_SET_ANNOTATIONS = frozenset({"Set", "FrozenSet", "MutableSet",
                              "AbstractSet", "set", "frozenset"})
_DICT_ANNOTATIONS = frozenset({"Dict", "dict", "Mapping",
                               "MutableMapping", "DefaultDict",
                               "Counter"})

#: Wrappers that impose a total order on their argument.
_ORDERING_CALLS = frozenset({"sorted", "list", "tuple", "min", "max",
                             "len", "enumerate"})


# ---------------------------------------------------------------------------
# Expression classification
# ---------------------------------------------------------------------------


def _ann_leaf(node: Optional[ast.expr]) -> str:
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[")[0].strip().rsplit(".", 1)[-1]
    base: ast.expr = node
    if isinstance(base, ast.Subscript):
        base = base.value
    dotted = _dotted_name(base)
    return dotted.rsplit(".", 1)[-1] if dotted else ""


def _param_kinds(fn_node: ast.AST) -> Dict[str, str]:
    """Parameter name -> "set"|"dict" from type annotations."""
    kinds: Dict[str, str] = {}
    args = getattr(fn_node, "args", None)
    if args is None:
        return kinds
    every = list(args.posonlyargs) + list(args.args) \
        + list(args.kwonlyargs)
    for arg in every:
        leaf = _ann_leaf(arg.annotation)
        if leaf in _SET_ANNOTATIONS:
            kinds[arg.arg] = "set"
        elif leaf in _DICT_ANNOTATIONS:
            kinds[arg.arg] = "dict"
    return kinds


def _unordered_kind(expr: ast.AST,
                    var_kinds: Dict[str, str]) -> Optional[str]:
    """"set" | "dict" | "dict-view" when *expr* iterates without a
    defined order, None when ordered/unknown."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(expr, ast.Name):
        return var_kinds.get(expr.id)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            if func.id in ("set", "frozenset"):
                return "set"
            if func.id == "dict":
                return "dict"
            if func.id in _ORDERING_CALLS:
                return None
            return None
        if isinstance(func, ast.Attribute):
            if func.attr in ("keys", "values", "items"):
                return "dict-view"
            if func.attr in ("union", "intersection", "difference",
                             "symmetric_difference"):
                return _unordered_kind(func.value, var_kinds)
        return None
    if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        # s1 | s2, s1 & s2, s1 - s2 on classified sets.
        left = _unordered_kind(expr.left, var_kinds)
        right = _unordered_kind(expr.right, var_kinds)
        if "set" in (left, right):
            return "set"
    return None


def _collect_var_kinds(fn_node: ast.AST) -> Dict[str, str]:
    """Flow-through classification of local variables (two passes so
    ``a = set(...); b = a`` transits)."""
    kinds = _param_kinds(fn_node)
    for _ in range(2):
        for node in ast.walk(fn_node):  # type: ignore[arg-type]
            if isinstance(node, ast.Assign):
                targets = [t for t in node.targets
                           if isinstance(t, ast.Name)]
                if not targets:
                    continue
                kind = _unordered_kind(node.value, kinds)
                for target in targets:
                    if kind is not None:
                        kinds[target.id] = kind
                    else:
                        # Re-binding to an ordered value clears the
                        # classification (v = sorted(v)).
                        kinds.pop(target.id, None)
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Name):
                leaf = _ann_leaf(node.annotation)
                if leaf in _SET_ANNOTATIONS:
                    kinds[node.target.id] = "set"
                elif leaf in _DICT_ANNOTATIONS:
                    kinds[node.target.id] = "dict"
    return kinds


def _is_int_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) \
        and isinstance(node.value, int) \
        and not isinstance(node.value, bool)


def _order_sensitive_sink(body: Sequence[ast.stmt]) -> Optional[str]:
    """Why this loop body makes iteration order observable, if it
    does: float accumulation or serialized output."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) \
                    and isinstance(node.op, (ast.Add, ast.Sub,
                                             ast.Mult, ast.Div)) \
                    and not _is_int_constant(node.value):
                return "accumulates floats"
            if isinstance(node, ast.Assign) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                target = node.targets[0].id
                if isinstance(node.value, ast.BinOp) and any(
                        isinstance(n, ast.Name) and n.id == target
                        for n in ast.walk(node.value)):
                    return "accumulates via re-binding"
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _SERIAL_SINKS:
                return (f"serializes output via "
                        f".{node.func.attr}()")
    return None


# ---------------------------------------------------------------------------
# Wall-clock taint
# ---------------------------------------------------------------------------


def _resolve_head(head: str, imports: Dict[str, str]) -> str:
    """First dotted segment resolved through the module's imports."""
    target = imports.get(head)
    return target if target is not None else head


def _is_wallclock_call(call: ast.Call,
                       imports: Dict[str, str]) -> bool:
    dotted = _dotted_name(call.func)
    if not dotted:
        return False
    parts = dotted.split(".")
    if len(parts) == 1:
        # Bare name: only through `from time import monotonic`.
        target = imports.get(parts[0], "")
        tparts = target.split(".")
        return len(tparts) >= 2 \
            and (tparts[-2], tparts[-1]) in _WALLCLOCK
    head = _resolve_head(parts[0], imports).split(".")[-1]
    resolved = [head] + parts[1:]
    return (resolved[-2], resolved[-1]) in _WALLCLOCK


def _collect_clock_vars(fn_node: ast.AST,
                        imports: Dict[str, str]) -> Set[str]:
    """Names assigned (transitively) from wall-clock reads."""
    clock: Set[str] = set()
    for _ in range(2):
        for node in ast.walk(fn_node):  # type: ignore[arg-type]
            if not isinstance(node, ast.Assign):
                continue
            tainted = False
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Call) \
                        and _is_wallclock_call(sub, imports):
                    tainted = True
                elif isinstance(sub, ast.Name) and sub.id in clock \
                        and isinstance(sub.ctx, ast.Load):
                    tainted = True
            if not tainted:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    clock.add(target.id)
    return clock


def _is_sink_call(call: ast.Call) -> bool:
    dotted = _dotted_name(call.func).lower()
    leaf = dotted.rsplit(".", 1)[-1]
    if leaf in _SINK_LEAVES:
        return True
    receiver = dotted.rsplit(".", 1)[0] if "." in dotted else ""
    return any(tag in receiver for tag in _SINK_RECEIVER_TAGS)


def _in_sink_args(node: ast.AST, ancestors: Sequence[ast.AST]) -> bool:
    """Is *node* inside the argument list of a metrics/tracing call?"""
    chain = list(ancestors) + [node]
    for i, ancestor in enumerate(chain[:-1]):
        if isinstance(ancestor, ast.Call) and _is_sink_call(ancestor):
            child = chain[i + 1]
            if child is not ancestor.func:
                return True
    return False


def _sink_only_body(statements: Sequence[ast.stmt]) -> bool:
    """Do *statements* only feed metrics/tracing sinks?"""
    for stmt in statements:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) \
                and isinstance(stmt.value, ast.Call) \
                and _is_sink_call(stmt.value):
            continue
        return False
    return bool(statements)


def _guards_only_sinks(node: ast.AST,
                       ancestors: Sequence[ast.AST]) -> bool:
    """Is *node* inside the test of an ``if`` whose branches only
    emit metrics/tracing?  A clock comparison that merely decides
    whether to bump an advisory counter does not leak time into
    results."""
    chain = list(ancestors) + [node]
    for i, ancestor in enumerate(chain[:-1]):
        if isinstance(ancestor, ast.If) and chain[i + 1] is ancestor.test:
            return _sink_only_body(ancestor.body) and (
                not ancestor.orelse or _sink_only_body(ancestor.orelse))
    return False


def _assigned_to_clock_var(node: ast.AST,
                           ancestors: Sequence[ast.AST],
                           clock: Set[str]) -> bool:
    """Is *node* on the RHS of an assignment whose target is (or
    becomes) a clock variable — judgment deferred to the uses?"""
    chain = list(ancestors) + [node]
    for i, ancestor in enumerate(chain[:-1]):
        if isinstance(ancestor, ast.Assign) \
                and chain[i + 1] is ancestor.value:
            return any(isinstance(t, ast.Name) and t.id in clock
                       for t in ancestor.targets)
        if isinstance(ancestor, ast.AugAssign) \
                and chain[i + 1] is ancestor.value:
            return isinstance(ancestor.target, ast.Name) \
                and ancestor.target.id in clock
    return False


# ---------------------------------------------------------------------------
# Per-function check
# ---------------------------------------------------------------------------


class _Finding:
    """One raw finding before suppression resolution."""

    __slots__ = ("line", "col", "check", "message", "node")

    def __init__(self, node: ast.AST, check: str, message: str) -> None:
        self.node = node
        self.line = getattr(node, "lineno", 1)
        self.col = getattr(node, "col_offset", 0)
        self.check = check
        self.message = message


def _kind_phrase(kind: str) -> str:
    return {"set": "a set (PYTHONHASHSEED-dependent order)",
            "dict": "a dict",
            "dict-view": "a dict view"}[kind]


def _check_function(fn: FunctionNode,
                    imports: Dict[str, str]) -> Iterator[_Finding]:
    node = fn.node
    var_kinds = _collect_var_kinds(node)
    clock_vars = _collect_clock_vars(node, imports)

    for sub, ancestors in _ParentedVisit(node):
        # Skip nested defs: they are separate FunctionNodes and are
        # checked under their own obligation.
        if any(isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
               and a is not node for a in list(ancestors) + [sub]):
            if sub is not node:
                continue

        # -- unordered iteration ---------------------------------------
        if isinstance(sub, (ast.For, ast.AsyncFor)):
            kind = _unordered_kind(sub.iter, var_kinds)
            if kind == "set":
                yield _Finding(
                    sub.iter, "unordered-iteration",
                    f"iteration over {_kind_phrase(kind)} in the "
                    f"deterministic region of {fn.name}() — wrap in "
                    f"sorted(...)")
            elif kind in ("dict", "dict-view"):
                why = _order_sensitive_sink(sub.body)
                if why is not None:
                    yield _Finding(
                        sub.iter, "unordered-iteration",
                        f"iteration over {_kind_phrase(kind)} {why} "
                        f"in {fn.name}() — iterate sorted(...) so the "
                        f"result is insertion-order independent")
        elif isinstance(sub, (ast.SetComp, ast.ListComp,
                              ast.GeneratorExp, ast.DictComp)):
            for gen in sub.generators:
                if _unordered_kind(gen.iter, var_kinds) == "set":
                    yield _Finding(
                        gen.iter, "unordered-iteration",
                        f"comprehension over a set "
                        f"(PYTHONHASHSEED-dependent order) in "
                        f"{fn.name}() — wrap in sorted(...)")

        if not isinstance(sub, ast.Call):
            # -- wall-clock variable uses ------------------------------
            if isinstance(sub, ast.Name) and sub.id in clock_vars \
                    and isinstance(sub.ctx, ast.Load) \
                    and not _in_sink_args(sub, ancestors) \
                    and not _guards_only_sinks(sub, ancestors) \
                    and not _assigned_to_clock_var(sub, ancestors,
                                                   clock_vars):
                yield _Finding(
                    sub, "wall-clock",
                    f"wall-clock value {sub.id!r} influences results "
                    f"in {fn.name}() — clocks may only feed "
                    f"metrics/tracing sinks inside a deterministic "
                    f"region")
            continue

        dotted = _dotted_name(sub.func)
        leaf = dotted.rsplit(".", 1)[-1] if dotted else ""

        # -- reassociating reductions ----------------------------------
        if leaf in ("sum", "fsum") and (
                isinstance(sub.func, ast.Name)
                or dotted in ("np.sum", "numpy.sum", "math.fsum")):
            if sub.args:
                arg = sub.args[0]
                kind = _unordered_kind(arg, var_kinds)
                if kind is None and isinstance(
                        arg, (ast.GeneratorExp, ast.ListComp)):
                    for gen in arg.generators:
                        inner = _unordered_kind(gen.iter, var_kinds)
                        if inner is not None:
                            kind = inner
                            break
                if kind is not None:
                    yield _Finding(
                        sub, "reassociating-reduction",
                        f"{dotted or leaf}() reduces over "
                        f"{_kind_phrase(kind)} in {fn.name}() — "
                        f"floating-point addition reassociates with "
                        f"iteration order; use reduce_in_order over "
                        f"indexed slots or sort first")

        # -- unseeded module-level RNG ---------------------------------
        head = dotted.split(".")[0] if dotted else ""
        resolved_head = _resolve_head(head, imports)
        if resolved_head == "random" \
                and len(dotted.split(".")) == 2 \
                and leaf in _RNG_LEAVES:
            yield _Finding(
                sub, "unseeded-rng",
                f"module-level RNG {dotted}() in {fn.name}() shares "
                f"hidden global state across threads — draw from an "
                f"explicitly seeded random.Random")
        elif isinstance(sub.func, ast.Name) \
                and imports.get(dotted, "").startswith("random.") \
                and leaf in _RNG_LEAVES:
            yield _Finding(
                sub, "unseeded-rng",
                f"module-level RNG random.{leaf}() in {fn.name}() — "
                f"draw from an explicitly seeded random.Random")
        elif resolved_head in ("numpy", "np") or head in ("np",
                                                          "numpy"):
            parts = dotted.split(".")
            if len(parts) >= 3 and parts[1] == "random" \
                    and parts[2] not in _NP_RANDOM_OK:
                yield _Finding(
                    sub, "unseeded-rng",
                    f"global NumPy RNG {dotted}() in {fn.name}() — "
                    f"use np.random.default_rng(seed) / a passed-in "
                    f"Generator")

        # -- wall-clock reads ------------------------------------------
        if _is_wallclock_call(sub, imports) \
                and not _in_sink_args(sub, ancestors) \
                and not _guards_only_sinks(sub, ancestors) \
                and not _assigned_to_clock_var(sub, ancestors,
                                               clock_vars):
            # Assignments to fresh names become clock vars; their uses
            # are judged above.  Everything else is a direct leak.
            assigned = False
            chain = list(ancestors) + [sub]
            for i, ancestor in enumerate(chain[:-1]):
                if isinstance(ancestor, ast.Assign) \
                        and chain[i + 1] is ancestor.value \
                        and all(isinstance(t, ast.Name)
                                for t in ancestor.targets):
                    assigned = True
            if not assigned:
                yield _Finding(
                    sub, "wall-clock",
                    f"{dotted}() read influences results in "
                    f"{fn.name}() — wall-clock may only feed "
                    f"metrics/tracing sinks inside a deterministic "
                    f"region")

        # -- completion-order dependence -------------------------------
        if leaf == "as_completed" or leaf == "imap_unordered":
            yield _Finding(
                sub, "completion-order",
                f"{dotted or leaf}() yields results in thread/process "
                f"completion order in {fn.name}() — iterate the "
                f"futures/tasks in submission order instead")
        elif leaf == "wait" and "futures" in dotted:
            yield _Finding(
                sub, "completion-order",
                f"{dotted}() partitions futures by completion in "
                f"{fn.name}() — completion order is "
                f"schedule-dependent")


# ---------------------------------------------------------------------------
# Rule driver
# ---------------------------------------------------------------------------


def _line_escape_reason(src: SourceFile,
                        node: ast.AST) -> Optional[str]:
    """A ``# nondeterministic: <reason>`` trailing the statement that
    produced a finding; None when absent, "" when reasonless."""
    start = getattr(node, "lineno", None)
    if start is None:
        return None
    end = getattr(node, "end_lineno", None) or start
    for line in range(start, end + 1):
        text = src.comments.get(line)
        if text is not None and text.startswith("nondeterministic"):
            rest = text[len("nondeterministic"):]
            return rest[1:].strip() if rest.startswith(":") else ""
    return None


def _emit(fn: FunctionNode, finding: _Finding,
          def_reason: Optional[str]) -> Optional[LintViolation]:
    src = fn.src
    if src.suppressed(RULE, finding.line):
        return None
    line_reason = _line_escape_reason(src, finding.node)
    reason: Optional[str] = None
    if def_reason:
        reason = def_reason
    elif line_reason:
        reason = line_reason
    message = f"{finding.check}: {finding.message}"
    if line_reason == "" and not def_reason:
        message += (" [a `# nondeterministic:` escape must carry a "
                    "reason]")
    return LintViolation(
        rule=RULE, path=src.path, line=finding.line, col=finding.col,
        message=message, suppressed=reason is not None,
        justification=reason or "")


def run_determinism(
        sources: Sequence[SourceFile]) -> Iterator[LintViolation]:
    """Run the determinism pass over a parsed file set."""
    from repro.observability.metrics import get_registry

    reg = get_registry()
    m_findings = reg.counter("analysis.determinism.findings")
    m_suppressed = reg.counter("analysis.determinism.suppressed")
    for violation in _run_determinism(sources):
        if violation.suppressed:
            m_suppressed.inc()
        else:
            m_findings.inc()
        yield violation


def _run_determinism(
        sources: Sequence[SourceFile]) -> Iterator[LintViolation]:
    graph: CallGraph = build_callgraph(sources)
    obligated, escaped = graph.reachable(graph.roots())

    # Grammar check: every escape must carry a reason — anywhere, not
    # just on reachable functions, so a bad escape cannot hide until
    # an entry point happens to reach it.
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if fn.nondet_reason == "":
            def_node = fn.node
            if not fn.src.suppressed(RULE,
                                     getattr(def_node, "lineno", 1)):
                yield LintViolation(
                    rule=RULE, path=fn.src.path,
                    line=getattr(def_node, "lineno", 1),
                    col=getattr(def_node, "col_offset", 0),
                    message=(f"escape-without-reason: {fn.name}() is "
                             f"marked `# nondeterministic:` with no "
                             f"reason — the justification is part of "
                             f"the contract"))

    module_imports = {m.src.path: m.imports
                      for m in graph.modules.values()}

    for qual in sorted(obligated):
        fn = graph.functions[qual]
        imports = module_imports.get(fn.src.path, {})
        for finding in _check_function(fn, imports):
            violation = _emit(fn, finding, def_reason=None)
            if violation is not None:
                yield violation

    for qual in sorted(escaped):
        fn = graph.functions[qual]
        if not fn.nondet_reason:
            continue  # reasonless escapes already reported above
        imports = module_imports.get(fn.src.path, {})
        for finding in _check_function(fn, imports):
            violation = _emit(fn, finding,
                              def_reason=fn.nondet_reason)
            if violation is not None:
                yield violation
