"""AST lint engine for the repo's concurrency and metrics disciplines.

``repro lint`` runs project-specific rules over the tree:

``guarded-by``
    Attributes documented as lock-guarded — a trailing
    ``# guarded-by: <lock>`` comment on the attribute's ``__init__``
    assignment (or on a module-level global) — may only be *mutated*
    inside a ``with self.<lock>`` block.  Methods whose name ends in
    ``_locked`` are exempt by convention (they document that the caller
    holds the guard).  Several accepted guards may be listed
    comma-separated (e.g. a lock and the condition wrapping it).

``raw-acquire``
    A bare ``<lock>.acquire()`` call whose enclosing function has no
    ``try/finally`` releasing the same lock leaks the lock on any
    exception; use ``with lock:`` instead.

``blocking-under-lock``
    Known-blocking calls (``time.sleep``, ``open``, ``print``,
    ``subprocess.*``, blocking ``queue.get``/``queue.pop`` without a
    timeout, …) inside a ``with <lock-like>`` block stall every other
    thread contending for the lock.  ``.wait(...)`` is exempt —
    condition waits release the lock by design.

``swap-only-critical-section``
    A ``with`` statement annotated ``# critical-section: swap-only``
    (the Algorithm-4 summation discipline) may contain only pointer
    swaps: plain name/attribute assignments, constant-step counter
    bumps, and comparisons.  No calls, no allocation (f-strings,
    containers, arithmetic), no subscripts, no ``raise``.

``metrics-name``
    Every string-literal metric name passed to
    ``registry.counter/gauge/histogram`` must appear in the
    observability catalog (``repro.observability.catalog``), keeping
    the docs' metric table and the code in lock-step.

Suppression: append ``# lint: disable=<rule>[,<rule>…]`` to the
offending line, or put ``# lint: disable-file=<rule>`` on its own line
anywhere in the file to waive a rule file-wide.
"""

from __future__ import annotations

import ast
import io
import json
import os
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ALL_RULES",
    "RULE_DESCRIPTIONS",
    "LintViolation",
    "SourceFile",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: Mutating method names on guarded containers.
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert",
    "pop", "popleft", "popitem", "remove", "discard", "clear",
    "add", "update", "setdefault", "sort", "reverse",
})

#: Known-blocking calls (dotted names) for blocking-under-lock.
_BLOCKING_CALLS = frozenset({
    "time.sleep", "os.system", "os.wait", "os.waitpid", "input",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "urllib.request.urlopen", "socket.create_connection",
})

#: Bare builtins that do I/O.
_BLOCKING_BUILTINS = frozenset({"open", "print", "input"})


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at a source location.

    A violation carrying an in-source justification (the determinism
    rule's ``# nondeterministic: <reason>`` escapes) is *suppressed*:
    it is still reported for visibility (and lands in SARIF with a
    ``suppressions`` entry) but does not fail ``repro lint``.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: str = ""

    def __str__(self) -> str:
        text = (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule}: {self.message}")
        if self.suppressed:
            text += f" [suppressed: {self.justification}]"
        return text

    def as_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "rule": self.rule, "path": self.path, "line": self.line,
            "col": self.col, "message": self.message}
        if self.suppressed:
            doc["suppressed"] = True
            doc["justification"] = self.justification
        return doc


class SourceFile:
    """A parsed module plus its comment annotations."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        #: line -> comment text (without the leading '#').
        self.comments: Dict[int, str] = {}
        #: line -> set of rule names disabled on that line.
        self.line_disables: Dict[int, Set[str]] = {}
        #: rules disabled for the whole file.
        self.file_disables: Set[str] = set()
        self._scan_comments()

    def _scan_comments(self) -> None:
        reader = io.StringIO(self.source).readline
        try:
            tokens = list(tokenize.generate_tokens(reader))
        except tokenize.TokenError:  # pragma: no cover - parse caught it
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            line = tok.start[0]
            self.comments[line] = text
            if text.startswith("lint:"):
                directive = text[len("lint:"):].strip()
                if directive.startswith("disable-file="):
                    rules = directive[len("disable-file="):]
                    self.file_disables.update(
                        r.strip() for r in rules.split(",") if r.strip())
                elif directive.startswith("disable="):
                    rules = directive[len("disable="):]
                    self.line_disables.setdefault(line, set()).update(
                        r.strip() for r in rules.split(",") if r.strip())

    def annotation(self, line: int, marker: str) -> Optional[str]:
        """The value of a ``# <marker>: <value>`` comment on *line*."""
        text = self.comments.get(line)
        if text is None or not text.startswith(marker):
            return None
        rest = text[len(marker):]
        if not rest.startswith(":"):
            return None
        return rest[1:].strip()

    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_disables:
            return True
        return rule in self.line_disables.get(line, set())


def _dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for Name/Attribute chains, '' otherwise."""
    parts: List[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
    elif isinstance(current, ast.Call):
        # e.g. get_registry().counter — keep the callee name.
        parts.append(_dotted_name(current.func) + "()")
    elif parts:
        parts.append("<expr>")
    else:
        return ""
    return ".".join(reversed(parts))


def _is_lockish(expr: ast.AST) -> bool:
    """Heuristic: does this with-context expression look like a lock?"""
    name = _dotted_name(expr).lower()
    leaf = name.rsplit(".", 1)[-1]
    return any(tag in leaf for tag in ("lock", "cond", "mutex", "sem"))


def _with_lock_names(node: ast.With) -> List[str]:
    """Leaf attribute/variable names of lock-like context managers."""
    names = []
    for item in node.items:
        expr = item.context_expr
        if _is_lockish(expr):
            dotted = _dotted_name(expr)
            names.append(dotted.rsplit(".", 1)[-1])
    return names


class _ParentedVisit:
    """Iterate (node, ancestors) pairs over a tree."""

    def __init__(self, tree: ast.AST) -> None:
        self.tree = tree

    def __iter__(self) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
        stack: List[Tuple[ast.AST, List[ast.AST]]] = [(self.tree, [])]
        while stack:
            node, ancestors = stack.pop()
            yield node, ancestors
            child_ancestors = ancestors + [node]
            for child in ast.iter_child_nodes(node):
                stack.append((child, child_ancestors))


# ---------------------------------------------------------------------------
# Rule: guarded-by
# ---------------------------------------------------------------------------


def _stmt_annotation(src: SourceFile, node: ast.stmt,
                     marker: str) -> Optional[str]:
    """An annotation on any line a (possibly multi-line) statement spans."""
    end = getattr(node, "end_lineno", None) or node.lineno
    for line in range(node.lineno, end + 1):
        value = src.annotation(line, marker)
        if value is not None:
            return value
    return None


def _guarded_attrs(src: SourceFile,
                   cls: ast.ClassDef) -> Dict[str, Tuple[str, ...]]:
    """attr -> accepted guard names, from ``# guarded-by:`` comments on
    ``self.<attr> = …`` lines inside ``__init__``."""
    guarded: Dict[str, Tuple[str, ...]] = {}
    for stmt in cls.body:
        if not (isinstance(stmt, ast.FunctionDef)
                and stmt.name == "__init__"):
            continue
        for node in ast.walk(stmt):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            value = _stmt_annotation(src, node, "guarded-by")
            if value is None:
                continue
            guards = tuple(g.strip() for g in value.split(",") if g.strip())
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    guarded[target.attr] = guards
    return guarded


def _guarded_globals(src: SourceFile,
                     module: ast.Module) -> Dict[str, Tuple[str, ...]]:
    """Module-level ``NAME = …  # guarded-by: <lock>`` annotations."""
    guarded: Dict[str, Tuple[str, ...]] = {}
    for stmt in module.body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        value = _stmt_annotation(src, stmt, "guarded-by")
        if value is None:
            continue
        guards = tuple(g.strip() for g in value.split(",") if g.strip())
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if isinstance(target, ast.Name):
                guarded[target.id] = guards
    return guarded


def _self_attr(node: ast.AST) -> Optional[str]:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _mutated_guarded_name(node: ast.AST, guarded: Dict[str, Tuple[str, ...]],
                          is_global: bool) -> Optional[Tuple[str, str]]:
    """(attr, how) when *node* mutates a guarded attribute/global."""

    def match(expr: ast.AST) -> Optional[str]:
        if is_global:
            if isinstance(expr, ast.Name) and expr.id in guarded:
                return expr.id
            return None
        # Mutating a field of a guarded object (self.stats.hits += 1)
        # counts as mutating the guarded object: walk the chain down to
        # the `self.<attr>` root.
        current = expr
        while isinstance(current, ast.Attribute):
            attr = _self_attr(current)
            if attr is not None:
                return attr if attr in guarded else None
            current = current.value
        return None

    def match_store_target(target: ast.AST) -> Optional[str]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                found = match_store_target(element)
                if found is not None:
                    return found
            return None
        direct = match(target)
        if direct is not None:
            return direct
        # self.attr[k] = … / self.attr[k] += …
        if isinstance(target, ast.Subscript):
            return match(target.value)
        return None

    if isinstance(node, ast.Assign):
        for target in node.targets:
            found = match_store_target(target)
            if found is not None:
                return found, "assigned"
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        found = match_store_target(node.target)
        if found is not None:
            return found, "assigned"
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            found = match_store_target(target)
            if found is not None:
                return found, "deleted"
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            found = match(func.value)
            if found is not None:
                return found, f"mutated via .{func.attr}()"
    return None


def _enclosing_with_guards(ancestors: Sequence[ast.AST]) -> Set[str]:
    held: Set[str] = set()
    for ancestor in ancestors:
        if isinstance(ancestor, ast.With):
            held.update(_with_lock_names(ancestor))
    return held


def _check_guarded_scope(src: SourceFile, scope: ast.AST,
                         guarded: Dict[str, Tuple[str, ...]],
                         is_global: bool,
                         skip_inits: bool) -> Iterator[LintViolation]:
    for func in ast.walk(scope):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if func.name.endswith("_locked"):
            continue  # convention: caller holds the guard
        if skip_inits and func.name == "__init__":
            continue  # construction precedes sharing
        for node, ancestors in _ParentedVisit(func):
            hit = _mutated_guarded_name(node, guarded, is_global)
            if hit is None:
                continue
            attr, how = hit
            guards = guarded[attr]
            held = _enclosing_with_guards(ancestors)
            if held.intersection(guards):
                continue
            line = getattr(node, "lineno", func.lineno)
            if src.suppressed("guarded-by", line):
                continue
            owner = "" if is_global else "self."
            yield LintViolation(
                rule="guarded-by", path=src.path, line=line,
                col=getattr(node, "col_offset", 0),
                message=(f"{owner}{attr} is {how} outside `with "
                         f"{' / '.join(guards)}` (declared guarded-by "
                         f"in {'module scope' if is_global else '__init__'})"))


def rule_guarded_by(src: SourceFile) -> Iterator[LintViolation]:
    module = src.tree
    module_guards = _guarded_globals(src, module)
    if module_guards:
        for stmt in module.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from _check_guarded_scope(
                    src, stmt, module_guards, is_global=True,
                    skip_inits=False)
    for node in ast.walk(module):
        if not isinstance(node, ast.ClassDef):
            continue
        guarded = _guarded_attrs(src, node)
        if guarded:
            yield from _check_guarded_scope(
                src, node, guarded, is_global=False, skip_inits=True)


# ---------------------------------------------------------------------------
# Rule: raw-acquire
# ---------------------------------------------------------------------------


def _releases_in_finally(try_node: ast.Try, receiver: str) -> bool:
    for final_stmt in try_node.finalbody:
        for sub in ast.walk(final_stmt):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "release"
                    and _dotted_name(sub.func.value) == receiver):
                return True
    return False


def rule_raw_acquire(src: SourceFile) -> Iterator[LintViolation]:
    for node, ancestors in _ParentedVisit(src.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "acquire"):
            continue
        receiver = _dotted_name(func.value)
        # Non-blocking probes (acquire(False) / blocking=False) do not
        # hold the lock on failure and are a legitimate idiom.
        if any(isinstance(a, ast.Constant) and a.value is False
               for a in node.args):
            continue
        if any(kw.arg == "blocking" and isinstance(kw.value, ast.Constant)
               and kw.value.value is False for kw in node.keywords):
            continue
        protected = False
        # Inside a try whose finally releases the same lock.
        for ancestor in ancestors:
            if (isinstance(ancestor, ast.Try)
                    and _releases_in_finally(ancestor, receiver)):
                protected = True
        # The `lock.acquire()` / `try: … finally: lock.release()` idiom:
        # the acquire statement immediately precedes such a try block.
        for ancestor in ancestors:
            for body in ("body", "orelse", "finalbody", "handlers"):
                stmts = getattr(ancestor, body, None)
                if not isinstance(stmts, list):
                    continue
                for i, stmt in enumerate(stmts[:-1]):
                    nxt = stmts[i + 1]
                    if (isinstance(stmt, ast.Expr) and stmt.value is node
                            and isinstance(nxt, ast.Try)
                            and _releases_in_finally(nxt, receiver)):
                        protected = True
        if protected or src.suppressed("raw-acquire", node.lineno):
            continue
        yield LintViolation(
            rule="raw-acquire", path=src.path, line=node.lineno,
            col=node.col_offset,
            message=(f"`{receiver or '<expr>'}.acquire()` without a "
                     f"try/finally release — use `with {receiver or 'lock'}:`"
                     f" so exceptions cannot leak the lock"))


# ---------------------------------------------------------------------------
# Rule: blocking-under-lock
# ---------------------------------------------------------------------------


def _blocking_reason(node: ast.Call) -> Optional[str]:
    dotted = _dotted_name(node.func)
    leaf = dotted.rsplit(".", 1)[-1]
    if dotted in _BLOCKING_CALLS:
        return f"`{dotted}` blocks"
    if leaf == "sleep":
        return f"`{dotted}` blocks"
    if dotted in _BLOCKING_BUILTINS:
        return f"`{dotted}()` performs I/O"
    # Blocking queue drains: receiver mentions "queue", no timeout.
    if leaf in ("get", "pop") and isinstance(node.func, ast.Attribute):
        receiver = _dotted_name(node.func.value).lower()
        if "queue" in receiver or receiver.endswith("q"):
            has_timeout = any(kw.arg == "timeout" and not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None)
                for kw in node.keywords)
            nonblocking = any(
                (kw.arg == "block" and isinstance(kw.value, ast.Constant)
                 and kw.value.value is False) for kw in node.keywords
            ) or any(isinstance(a, ast.Constant) and a.value is False
                     for a in node.args)
            if not has_timeout and not nonblocking:
                return (f"`{dotted}(…)` can block indefinitely "
                        f"(no timeout)")
    return None


def rule_blocking_under_lock(src: SourceFile) -> Iterator[LintViolation]:
    for node, ancestors in _ParentedVisit(src.tree):
        if not isinstance(node, ast.Call):
            continue
        # Condition waits release the lock; never flag .wait().
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in ("wait", "wait_for", "notify",
                                       "notify_all")):
            continue
        locks: List[str] = []
        for ancestor in ancestors:
            if isinstance(ancestor, ast.With):
                locks.extend(_with_lock_names(ancestor))
        if not locks:
            continue
        reason = _blocking_reason(node)
        if reason is None or src.suppressed("blocking-under-lock",
                                            node.lineno):
            continue
        yield LintViolation(
            rule="blocking-under-lock", path=src.path, line=node.lineno,
            col=node.col_offset,
            message=(f"{reason} while holding `{locks[-1]}` — move it "
                     f"outside the critical section"))


# ---------------------------------------------------------------------------
# Rule: swap-only-critical-section
# ---------------------------------------------------------------------------


def _is_swap_value(node: ast.AST) -> bool:
    """Expressions permitted inside a swap-only critical section."""
    if isinstance(node, (ast.Name, ast.Constant)):
        return True
    if isinstance(node, ast.Attribute):
        return _is_swap_value(node.value)
    if isinstance(node, ast.Compare):
        return (_is_swap_value(node.left)
                and all(_is_swap_value(c) for c in node.comparators))
    if isinstance(node, ast.BoolOp):
        return all(_is_swap_value(v) for v in node.values)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        return _is_swap_value(node.operand)
    if isinstance(node, ast.Tuple):
        return all(_is_swap_value(e) for e in node.elts)
    return False


def _swap_only_offences(stmts: Iterable[ast.stmt]) -> Iterator[Tuple[ast.stmt, str]]:
    for stmt in stmts:
        if isinstance(stmt, ast.Assign):
            if not all(isinstance(t, (ast.Name, ast.Attribute, ast.Tuple))
                       for t in stmt.targets):
                yield stmt, "only name/attribute targets are swaps"
            elif not _is_swap_value(stmt.value):
                yield stmt, ("assignment value allocates or computes "
                             "(only name/attribute/constant swaps and "
                             "comparisons are allowed)")
        elif isinstance(stmt, ast.AugAssign):
            if not (isinstance(stmt.op, (ast.Add, ast.Sub))
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, int)):
                yield stmt, ("only constant-step counter bumps are "
                             "allowed arithmetic")
            elif not isinstance(stmt.target, (ast.Name, ast.Attribute)):
                yield stmt, "only name/attribute counter bumps are allowed"
        elif isinstance(stmt, ast.If):
            if not _is_swap_value(stmt.test):
                yield stmt, "branch condition must be a pointer/flag test"
            yield from _swap_only_offences(stmt.body)
            yield from _swap_only_offences(stmt.orelse)
        elif isinstance(stmt, (ast.Pass, ast.Break, ast.Continue)):
            continue
        elif isinstance(stmt, ast.Raise):
            yield stmt, ("raising (and formatting the message) allocates "
                         "inside the critical section — set a flag and "
                         "raise outside the lock")
        elif isinstance(stmt, ast.Expr):
            yield stmt, "calls are not allowed in a swap-only section"
        else:
            yield stmt, (f"statement {type(stmt).__name__} is not a "
                         f"pointer swap")


def rule_swap_only(src: SourceFile) -> Iterator[LintViolation]:
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.With):
            continue
        marker = src.annotation(node.lineno, "critical-section")
        if marker is None or marker.split()[0] != "swap-only":
            continue
        for stmt, why in _swap_only_offences(node.body):
            if src.suppressed("swap-only-critical-section", stmt.lineno):
                continue
            yield LintViolation(
                rule="swap-only-critical-section", path=src.path,
                line=stmt.lineno, col=stmt.col_offset,
                message=(f"swap-only critical section violated: {why} "
                         f"(Algorithm 4 allows pointer operations only)"))


# ---------------------------------------------------------------------------
# Rule: metrics-name
# ---------------------------------------------------------------------------


def _registryish(receiver: str) -> bool:
    lowered = receiver.lower()
    return "reg" in lowered or "metrics" in lowered


def rule_metrics_name(src: SourceFile) -> Iterator[LintViolation]:
    from repro.observability.catalog import METRIC_NAMES

    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in ("counter", "gauge", "histogram")):
            continue
        if not _registryish(_dotted_name(func.value)):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant)
                and isinstance(first.value, str)):
            continue
        name = first.value
        if name in METRIC_NAMES:
            continue
        if src.suppressed("metrics-name", node.lineno):
            continue
        yield LintViolation(
            rule="metrics-name", path=src.path, line=node.lineno,
            col=node.col_offset,
            message=(f"metric {name!r} is not in the observability "
                     f"catalog — add it to "
                     f"src/repro/observability/catalog.py and the table "
                     f"in docs/observability.md"))


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def rule_determinism(src: SourceFile) -> Iterator[LintViolation]:
    """Single-file entry for the interprocedural determinism pass.

    ``lint_paths`` runs the pass once over the *whole* file set instead
    (cross-module call-graph propagation); this wrapper serves
    ``lint_source``/``lint_file`` on self-contained modules.
    """
    from repro.analysis.determinism import run_determinism

    yield from run_determinism([src])


ALL_RULES = {
    "guarded-by": rule_guarded_by,
    "raw-acquire": rule_raw_acquire,
    "blocking-under-lock": rule_blocking_under_lock,
    "swap-only-critical-section": rule_swap_only,
    "metrics-name": rule_metrics_name,
    "determinism": rule_determinism,
}

#: Rules that analyze the whole file set at once (call-graph passes),
#: not file by file.
_WHOLE_SET_RULES = frozenset({"determinism"})


def _select_rules(rules: Optional[Iterable[str]]) -> List[str]:
    selected = list(rules) if rules is not None else list(ALL_RULES)
    unknown = [r for r in selected if r not in ALL_RULES]
    if unknown:
        raise ValueError(f"unknown lint rule(s): {unknown}; "
                         f"available: {sorted(ALL_RULES)}")
    return selected


def _sorted_violations(
        found: Iterable[LintViolation],
        include_suppressed: bool) -> List[LintViolation]:
    kept = [v for v in found if include_suppressed or not v.suppressed]
    return sorted(kept, key=lambda v: (v.path, v.line, v.col, v.rule))


def lint_source(source: str, path: str = "<string>",
                rules: Optional[Iterable[str]] = None,
                include_suppressed: bool = False) -> List[LintViolation]:
    """Lint one source string; returns violations sorted by location.

    Suppressed findings (justified ``# nondeterministic:`` escapes)
    are dropped unless *include_suppressed* is set — ``repro lint``
    requests them so it can report them without failing on them.
    """
    selected = _select_rules(rules)
    src = SourceFile(path, source)
    found: List[LintViolation] = []
    for rule_name in selected:
        found.extend(ALL_RULES[rule_name](src))
    return _sorted_violations(found, include_suppressed)


def lint_file(path: str,
              rules: Optional[Iterable[str]] = None,
              include_suppressed: bool = False) -> List[LintViolation]:
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    return lint_source(source, path=path, rules=rules,
                       include_suppressed=include_suppressed)


def _iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs
                             if not d.startswith(".")
                             and d not in ("__pycache__", "fixtures"))
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def lint_paths(paths: Sequence[str],
               rules: Optional[Iterable[str]] = None,
               include_suppressed: bool = False) -> List[LintViolation]:
    """Lint every ``.py`` file under *paths* (``fixtures`` dirs are
    skipped — they hold deliberate violations for the rule tests).

    Per-file rules run file by file; whole-set rules (``determinism``)
    run once over every parsed file so call-graph propagation crosses
    module boundaries.
    """
    selected = _select_rules(rules)
    per_file = [r for r in selected if r not in _WHOLE_SET_RULES]
    whole_set = [r for r in selected if r in _WHOLE_SET_RULES]
    sources: List[SourceFile] = []
    found: List[LintViolation] = []
    for path in _iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            src = SourceFile(path, fh.read())
        sources.append(src)
        for rule_name in per_file:
            found.extend(ALL_RULES[rule_name](src))
    if "determinism" in whole_set:
        from repro.analysis.determinism import run_determinism

        found.extend(run_determinism(sources))
    return _sorted_violations(found, include_suppressed)


#: One-line rule descriptions (SARIF rule metadata and docs).
RULE_DESCRIPTIONS = {
    "guarded-by": ("A `# guarded-by:` attribute is mutated only "
                   "under its declared lock."),
    "raw-acquire": ("No bare .acquire() without a try/finally "
                    "releasing the same lock."),
    "blocking-under-lock": ("No known-blocking calls while holding "
                            "a lock."),
    "swap-only-critical-section": ("Algorithm-4 critical sections "
                                   "contain only pointer swaps."),
    "metrics-name": ("Every literal metric name appears in the "
                     "observability catalog."),
    "determinism": ("Code reachable from `# deterministic` entry "
                    "points stays bitwise reproducible: no unordered "
                    "iteration into float accumulation or serialized "
                    "output, no module-level RNG, no wall-clock in "
                    "results, no reassociating reductions, no "
                    "completion-order dependence."),
}

#: SARIF 2.1.0 schema location (GitHub code scanning ingests this).
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                 "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def _render_sarif(found: Sequence[LintViolation]) -> str:
    """SARIF 2.1.0 document for GitHub code-scanning upload.

    Suppressed findings are included with an ``inSource`` suppression
    carrying the annotation's justification, so code scanning shows
    them as resolved rather than open.
    """
    rule_ids = sorted({v.rule for v in found} | set(ALL_RULES))
    rules: List[Dict[str, object]] = [{
        "id": rule_id,
        "shortDescription": {
            "text": RULE_DESCRIPTIONS.get(rule_id, rule_id)},
    } for rule_id in rule_ids]
    results: List[Dict[str, object]] = []
    for violation in found:
        uri = violation.path.replace(os.sep, "/")
        result: Dict[str, object] = {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {
                        "startLine": violation.line,
                        "startColumn": violation.col + 1,
                    },
                },
            }],
        }
        if violation.suppressed:
            result["suppressions"] = [{
                "kind": "inSource",
                "justification": violation.justification,
            }]
        results.append(result)
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri": ("https://github.com/znn-repro/"
                                       "znn-repro"),
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render_violations(found: Sequence[LintViolation],
                      fmt: str = "text") -> str:
    if fmt == "json":
        return json.dumps([v.as_dict() for v in found], indent=2)
    if fmt == "sarif":
        return _render_sarif(found)
    return "\n".join(str(v) for v in found)
