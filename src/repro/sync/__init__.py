"""Concurrency substrate: wait-free summation, heap-of-lists queue."""

from repro.sync.priority_queue import HeapOfLists, QueueClosed
from repro.sync.summation import (ConcurrentSum, NaiveLockedSum, OrderedSum,
                                  reduce_in_order)

__all__ = ["HeapOfLists", "QueueClosed", "ConcurrentSum", "NaiveLockedSum",
           "OrderedSum", "reduce_in_order"]
