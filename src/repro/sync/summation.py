"""Almost wait-free concurrent summation — Algorithm 4 (Section VII-B).

When multiple convolution edges converge on a node, their results must
be accumulated into one sum.  The naive strategy holds a lock while
adding two images, so critical-section time scales with the image size
``n^3``.  ZNN's method performs **only pointer operations inside the
critical section**: each thread repeatedly tries to deposit its pointer
into the slot; on failure it takes whatever pointer is there, adds it
into its own image *outside* the lock, and retries.  The thread whose
deposit completes the count learns it was last and triggers the
dependents.

This module transcribes Algorithm 4 exactly (see ``add``), plus a
naive locked-addition baseline used by the ablation benchmark, and a
``reset`` so a sum object can be reused every round the way ZNN reuses
its per-node accumulators.

The buffers may be real images or complex FFT spectra — the FFT path
accumulates spectra at each node and the last thread's ``get`` feeds
the layer's inverse-transform finaliser.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.runtime import (checking_enabled, make_lock, note_access,
                                    track)

__all__ = ["ConcurrentSum", "NaiveLockedSum", "OrderedSum",
           "reduce_in_order"]


# deterministic
def reduce_in_order(slots: Sequence[np.ndarray]) -> np.ndarray:
    """Sum *slots* in index order: ``((slots[0] + slots[1]) + ...)``.

    The deterministic closing step shared by :class:`OrderedSum`
    (threads depositing into indexed slots) and
    :class:`repro.parallel.SharedOrderedSum` (processes depositing into
    shared-memory slots): because the association order is fixed by
    slot index, the floating-point result is bitwise independent of
    which thread or process produced each contribution, and of how many
    there were.

    With a single slot the slot itself is returned (no copy) — callers
    that must not alias the inputs copy explicitly.
    """
    if not slots:
        raise ValueError("cannot reduce zero slots")
    result = slots[0]
    for slot in slots[1:]:
        result = result + slot
    return result


class ConcurrentSum:
    """Accumulate a known number of same-shaped arrays, almost wait-free.

    Parameters
    ----------
    required:
        Number of contributions that complete the sum (the node's
        in-degree in the computation graph).
    """

    def __init__(self, required: int) -> None:
        if required < 1:
            raise ValueError(f"required must be >= 1, got {required}")
        self.required = required
        self._lock = make_lock("sync.summation")
        self._sum: Optional[np.ndarray] = None  # guarded-by: _lock
        self._total = 0  # guarded-by: _lock
        self._check = checking_enabled()
        if self._check:
            track(self, name="sync.summation")

    def reset(self, required: Optional[int] = None) -> None:
        """Prepare the object for the next round's accumulation."""
        with self._lock:
            if self._check:
                note_access(self, "write")
            if self._total not in (0, self.required):
                raise RuntimeError(
                    f"reset during accumulation ({self._total}/{self.required})")
            if required is not None:
                if required < 1:
                    raise ValueError(f"required must be >= 1, got {required}")
                self.required = required
            self._sum = None
            self._total = 0

    def add(self, value: np.ndarray) -> bool:
        """ADD-TO-SUM: contribute *value*; return True iff this call
        completed the sum (the caller then owns triggering dependents).

        The caller relinquishes *value* — it may be mutated in place and
        may become the final sum buffer.
        """
        v: Optional[np.ndarray] = value
        v_other: Optional[np.ndarray] = None
        last = False
        overflow = False
        if self._check:
            # Record the lockset for the race detector under the lock but
            # outside the swap-only section (probes are debug-mode only).
            with self._lock:
                note_access(self, "write")
        while True:
            with self._lock:  # critical-section: swap-only
                if self._sum is None:
                    self._sum = v
                    v = None
                    self._total += 1
                    overflow = self._total > self.required
                    last = self._total == self.required
                else:
                    v_other = self._sum
                    self._sum = None
            if overflow:
                # Error formatting/raising stays outside the swap-only
                # critical section.
                raise RuntimeError(
                    f"more than required={self.required} contributions")
            if v is None:
                return last
            # The expensive addition happens outside the critical section.
            v += v_other

    def get(self) -> np.ndarray:
        """GET-SUM: the accumulated array; only valid once complete."""
        with self._lock:
            if self._total != self.required:
                raise RuntimeError(
                    f"sum incomplete: {self._total}/{self.required}")
            if self._sum is None:
                raise RuntimeError("sum pointer missing (unfinished add race)")
            return self._sum

    @property
    def complete(self) -> bool:
        with self._lock:
            return self._total == self.required and self._sum is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (f"ConcurrentSum(required={self.required}, "
                    f"total={self._total})")


class NaiveLockedSum:
    """Baseline: hold the lock for the entire addition.

    Critical-section time scales with the image size; used only by the
    Section VII-B ablation benchmark.
    """

    def __init__(self, required: int) -> None:
        if required < 1:
            raise ValueError(f"required must be >= 1, got {required}")
        self.required = required
        self._lock = make_lock("sync.summation.naive")
        self._sum: Optional[np.ndarray] = None  # guarded-by: _lock
        self._total = 0  # guarded-by: _lock

    def reset(self, required: Optional[int] = None) -> None:
        with self._lock:
            if required is not None:
                self.required = required
            self._sum = None
            self._total = 0

    def add(self, value: np.ndarray) -> bool:
        with self._lock:
            if self._sum is None:
                self._sum = value
            else:
                self._sum += value  # the slow addition, under the lock
            self._total += 1
            if self._total > self.required:
                raise RuntimeError(
                    f"more than required={self.required} contributions")
            return self._total == self.required

    def get(self) -> np.ndarray:
        with self._lock:
            if self._total != self.required or self._sum is None:
                raise RuntimeError(
                    f"sum incomplete: {self._total}/{self.required}")
            return self._sum

    @property
    def complete(self) -> bool:
        with self._lock:
            return self._total == self.required and self._sum is not None


class OrderedSum:
    """Deterministic concurrent accumulation.

    The wait-free scheme adds contributions in arrival order, so
    floating-point round-off depends on the thread schedule — runs with
    different worker counts agree only to ~1e-12.  ``OrderedSum`` trades
    a little memory for **bitwise reproducibility**: each contributor
    deposits into its own indexed slot (no synchronisation beyond an
    atomic counter), and the final reduction sums the slots in index
    order on the completing thread.  Used by
    ``Network(deterministic_sums=True)``.
    """

    def __init__(self, required: int) -> None:
        if required < 1:
            raise ValueError(f"required must be >= 1, got {required}")
        self.required = required
        self._lock = make_lock("sync.summation.ordered")
        self._slots: List[Optional[np.ndarray]] = [None] * required  # guarded-by: _lock
        self._total = 0  # guarded-by: _lock
        self._result: Optional[np.ndarray] = None  # guarded-by: _lock

    def reset(self, required: Optional[int] = None) -> None:
        with self._lock:
            if self._total not in (0, self.required):
                raise RuntimeError(
                    f"reset during accumulation ({self._total}/{self.required})")
            if required is not None:
                if required < 1:
                    raise ValueError(f"required must be >= 1, got {required}")
                self.required = required
            self._slots = [None] * self.required
            self._total = 0
            self._result = None

    # deterministic
    def add(self, value: np.ndarray, index: Optional[int] = None) -> bool:
        """Deposit *value* at *index* (the edge's position among the
        node's contributors); returns True for the completing call,
        which performs the in-order reduction."""
        if index is None:
            raise ValueError("OrderedSum requires a contribution index")
        if not 0 <= index < self.required:
            raise ValueError(
                f"index {index} out of range [0, {self.required})")
        with self._lock:
            if self._slots[index] is not None:
                raise RuntimeError(f"slot {index} already filled")
            self._slots[index] = value
            self._total += 1
            last = self._total == self.required
        if not last:
            return False
        # Reduction in fixed index order -> schedule-independent result.
        slots = [s for s in self._slots if s is not None]
        result = reduce_in_order(slots)
        with self._lock:
            self._result = result
        return True

    def get(self) -> np.ndarray:
        with self._lock:
            if self._result is None:
                raise RuntimeError(
                    f"sum incomplete: {self._total}/{self.required}")
            return self._result

    @property
    def complete(self) -> bool:
        with self._lock:
            return self._result is not None
