"""Concurrent priority queue as a heap of lists (Section VII-A).

The global task queue is the scheduler's central synchronisation point,
so its critical sections must be short.  ZNN implements it as a *heap of
lists*: a binary heap keyed by the (few) distinct priority values, each
heap entry holding a FIFO list of tasks at that priority.  Insertion and
deletion then cost ``O(log K)`` where ``K`` is the number of distinct
priorities present — much smaller than the number of queued tasks
``N`` for wide networks, where whole layers share one priority.

Lower priority *values* pop first (priority 0 is the most urgent);
the scheduler assigns update tasks the largest value so they are only
drawn when nothing else is ready (Section VI-A).

``pop`` supports blocking with timeout for worker loops, and entries can
be *invalidated* without scanning the deques — the FORCE protocol steals
an update task by flipping its state, and a popped entry whose
``is_valid`` callback fails is skipped.  ``close`` wakes all blocked
workers for shutdown.

The queue publishes ``queue.push`` / ``queue.pop`` / ``queue.skipped``
counters, a ``queue.depth`` gauge and a ``queue.wait_seconds`` histogram
(enqueue-to-dequeue latency) into the observability registry — the raw
material for the Section VII-A contention discussion.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.analysis.runtime import (checking_enabled, make_lock, note_access,
                                    track)
from repro.observability.metrics import MetricsRegistry, get_registry

__all__ = ["HeapOfLists", "QueueClosed"]


class QueueClosed(Exception):
    """Raised by :meth:`HeapOfLists.pop` after :meth:`HeapOfLists.close`."""


class HeapOfLists:
    """Thread-safe priority queue with O(log K) operations.

    Items are arbitrary objects.  An optional per-item validity callback
    supplied at push time allows lock-free logical removal: invalid
    items are dropped at pop time.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._lock = make_lock("sync.queue")
        self._not_empty = threading.Condition(self._lock)  # type: ignore[arg-type]
        self._heap: List[int] = []  # guarded-by: _lock
        self._lists: Dict[int, Deque[Tuple[Any, Optional[Callable[[], bool]], float]]] = {}  # guarded-by: _lock
        self._size = 0  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock
        self._check = checking_enabled()
        if self._check:
            track(self, name="sync.queue")
        reg = metrics if metrics is not None else get_registry()
        self._m_reg = reg
        self._m_push = reg.counter("queue.push")
        self._m_pop = reg.counter("queue.pop")
        self._m_skipped = reg.counter("queue.skipped")
        self._m_depth = reg.gauge("queue.depth")
        self._m_wait = reg.histogram("queue.wait_seconds")

    def push(self, priority: int, item: Any,
             is_valid: Optional[Callable[[], bool]] = None) -> None:
        """Insert *item* at *priority* (lower pops first)."""
        priority = int(priority)
        enqueued = time.perf_counter() if self._m_reg.enabled else 0.0
        with self._lock:
            if self._check:
                note_access(self, "write")
            if self._closed:
                raise QueueClosed("push after close")
            bucket = self._lists.get(priority)
            if bucket is None:
                bucket = deque()
                self._lists[priority] = bucket
                heapq.heappush(self._heap, priority)  # O(log K)
            bucket.append((item, is_valid, enqueued))
            self._size += 1
            self._m_depth.set(self._size)
            self._not_empty.notify()
        self._m_push.inc()

    def pop(self, block: bool = True,
            timeout: Optional[float] = None) -> Tuple[int, Any]:
        """Remove and return ``(priority, item)`` of the most urgent
        valid item.

        Raises ``IndexError`` when empty and not blocking (or on
        timeout), :class:`QueueClosed` once the queue is closed and
        drained.
        """
        with self._lock:
            while True:
                entry = self._pop_valid_locked()
                if entry is not None:
                    return entry
                if self._closed:
                    raise QueueClosed("queue closed")
                if not block:
                    raise IndexError("pop from empty queue")
                if not self._not_empty.wait(timeout):
                    raise IndexError("pop timed out")

    def _pop_valid_locked(self) -> Optional[Tuple[int, Any]]:
        if self._check:
            note_access(self, "write")
        while self._heap:
            priority = self._heap[0]
            bucket = self._lists[priority]
            while bucket:
                item, is_valid, enqueued = bucket.popleft()
                self._size -= 1
                self._m_depth.set(self._size)
                if is_valid is None or is_valid():
                    if not bucket:
                        heapq.heappop(self._heap)     # O(log K)
                        del self._lists[priority]
                    self._m_pop.inc()
                    if enqueued:
                        self._m_wait.observe(time.perf_counter() - enqueued)
                    return priority, item
                self._m_skipped.inc()
            heapq.heappop(self._heap)
            del self._lists[priority]
        return None

    def close(self) -> None:
        """Mark the queue closed and wake all blocked poppers."""
        with self._lock:
            if self._check:
                note_access(self, "write")
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        """Approximate size (includes logically-removed entries)."""
        with self._lock:
            return self._size

    def distinct_priorities(self) -> int:
        """Number of distinct priority values present (the K in O(log K))."""
        with self._lock:
            return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (f"HeapOfLists(size={self._size}, "
                    f"priorities={len(self._heap)}, closed={self._closed})")
