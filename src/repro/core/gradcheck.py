"""Finite-difference gradient checking for whole networks.

ZNN's extensibility pitch (Section XI) is that users add new layer
types by writing serial forward/backward functions — which makes an
automated correctness check for those Jacobians essential.  This module
verifies, by central finite differences against the loss, the gradient
that one round of backprop produces for:

* a sample of kernel voxels of every convolution edge,
* every transfer-edge bias,
* (optionally) a sample of input voxels, which exercises the backward
  transform of *every* edge type on the input-to-output paths —
  including custom ops.

Usage::

    report = check_gradients(net, x, targets)
    assert report.ok, report.failures
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.network import Network

__all__ = ["GradCheckReport", "check_gradients"]


@dataclass
class GradCheckReport:
    """Outcome of one gradient check."""

    checked: int = 0
    failures: List[str] = field(default_factory=list)
    max_relative_error: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def _record(self, label: str, analytic: float, numeric: float,
                tolerance: float) -> None:
        scale = max(abs(analytic), abs(numeric), 1.0)
        relative = abs(analytic - numeric) / scale
        self.checked += 1
        self.max_relative_error = max(self.max_relative_error, relative)
        if relative > tolerance:
            self.failures.append(
                f"{label}: analytic {analytic:.6g} vs numeric "
                f"{numeric:.6g} (rel err {relative:.2e})")


def _loss_value(net: Network, x, targets) -> float:
    outputs = net.forward(x)
    value, _ = net.loss.joint_value_and_gradient(outputs, targets)
    return value


def check_gradients(net: Network, inputs, targets,
                    kernel_samples: int = 2,
                    input_samples: int = 3,
                    epsilon: float = 1e-5,
                    tolerance: float = 1e-3,
                    seed: int = 0) -> GradCheckReport:
    """Finite-difference check of *net*'s backprop gradients.

    The network's learning rate is irrelevant — analytic gradients are
    obtained by probing one training step of a throwaway learning-rate
    and reading the parameter deltas, so the check works on any
    optimizer-free quantity the network exposes.  The network is left
    with its original parameters.

    Targets must be a mapping for multi-output nets (as for
    ``train_step``).
    """
    rng = np.random.default_rng(seed)
    targets = net._normalize_targets(targets)
    report = GradCheckReport()

    # --- analytic parameter gradients via a probe step ------------------
    probe_lr = 1e-7
    saved_optimizer = net.optimizer
    saved_kernels = {n: e.kernel.array.copy()
                     for n, e in net.edges.items() if hasattr(e, "kernel")}
    saved_biases = {n: e.bias for n, e in net.edges.items()
                    if hasattr(e, "bias")}
    saved_velocities = {n: None if e.kernel.state.velocity is None
                        else e.kernel.state.velocity.copy()
                        for n, e in net.edges.items()
                        if hasattr(e, "kernel")}
    net.optimizer = dataclasses.replace(saved_optimizer,
                                        learning_rate=probe_lr,
                                        momentum=0.0, weight_decay=0.0)
    try:
        net.train_step(inputs, targets)
        net.synchronize()
        kernel_grads = {
            n: (saved_kernels[n] - net.edges[n].kernel.array) / probe_lr
            for n in saved_kernels}
        bias_grads = {n: (saved_biases[n] - net.edges[n].bias) / probe_lr
                      for n in saved_biases}
    finally:
        for n, k in saved_kernels.items():
            net.edges[n].kernel.array[...] = k
            net.edges[n].kernel.state.velocity = saved_velocities[n]
        for n, b in saved_biases.items():
            net.edges[n].bias = b
        net.optimizer = saved_optimizer

    base = _loss_value(net, inputs, targets)

    # --- kernels ----------------------------------------------------------
    for name, grad in kernel_grads.items():
        kernel = net.edges[name].kernel.array
        flat = rng.choice(kernel.size,
                          size=min(kernel_samples, kernel.size),
                          replace=False)
        for f in flat:
            idx = np.unravel_index(int(f), kernel.shape)
            original = kernel[idx]
            kernel[idx] = original + epsilon
            plus = _loss_value(net, inputs, targets)
            kernel[idx] = original - epsilon
            minus = _loss_value(net, inputs, targets)
            kernel[idx] = original
            numeric = (plus - minus) / (2 * epsilon)
            report._record(f"kernel {name}{list(idx)}", float(grad[idx]),
                           numeric, tolerance)

    # --- biases ------------------------------------------------------------
    for name, grad in bias_grads.items():
        edge = net.edges[name]
        original = edge.bias
        edge.bias = original + epsilon
        plus = _loss_value(net, inputs, targets)
        edge.bias = original - epsilon
        minus = _loss_value(net, inputs, targets)
        edge.bias = original
        numeric = (plus - minus) / (2 * epsilon)
        report._record(f"bias {name}", float(grad), numeric, tolerance)

    # --- input gradients (exercise every backward transform) ---------------
    if input_samples > 0:
        images = net._normalize_inputs(inputs)
        for node in net.input_nodes:
            if node.bwd_sum is None:
                continue
            # Populate the input node's backward image with a zero-lr
            # training step (parameters unchanged).
            saved = net.optimizer
            net.optimizer = dataclasses.replace(saved, learning_rate=0.0,
                                                momentum=0.0)
            try:
                net.train_step(inputs, targets)
                net.synchronize()
            finally:
                net.optimizer = saved
            grad = node.bwd_image
            img = images[node.name]
            flat = rng.choice(img.size, size=min(input_samples, img.size),
                              replace=False)
            for f in flat:
                idx = np.unravel_index(int(f), img.shape)
                perturbed = {k: v.copy() for k, v in images.items()}
                perturbed[node.name][idx] += epsilon
                plus = _loss_value(net, perturbed, targets)
                perturbed[node.name][idx] -= 2 * epsilon
                minus = _loss_value(net, perturbed, targets)
                numeric = (plus - minus) / (2 * epsilon)
                report._record(f"input {node.name}{list(idx)}",
                               float(grad[idx]), numeric, tolerance)
    return report
