"""The ConvNet training network (Sections III, VI; Algorithms 1–3).

:class:`Network` binds a :class:`repro.graph.ComputationGraph` to
runtime nodes/edges and executes gradient learning as a cascade of
tasks on a pluggable engine:

* one **forward task** per edge, queued when its source image is ready,
  whose execution FORCEs the edge's pending update task first;
* one **loss-gradient task** per output node (or one joint task for
  cross-node losses), queued as its output completes;
* one **backward task** per edge, which also creates and enqueues the
  edge's **update task** at the lowest priority, capturing the images
  the gradient needs;
* a **data-provider task** seeding the input nodes.

Convergent contributions are accumulated with the wait-free
:class:`repro.sync.ConcurrentSum`; the thread that adds the last image
finalises the node and queues the dependents — exactly Algorithms 1–3.

Update tasks are *deferred*: a training round completes when the
backward pass does, and pending updates either run on idle workers, are
FORCEd by the next round's forward pass, or are drained explicitly by
:meth:`Network.synchronize`.

Priorities come from :mod:`repro.graph.ordering`.  Convolution mode is
``"direct"``, ``"fft"``, a per-edge dict, or ``"auto"`` (layerwise
autotuning, Section IV); FFT mode memoizes spectra in a
:class:`repro.tensor.TransformCache` (Table II "(Memoized)") unless
``memoize=False``.
"""

from __future__ import annotations

import threading
import warnings
from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.core.edges import ConvEdge, RuntimeEdge, SharedKernel, \
    make_runtime_edge
from repro.core.loss import Loss, get_loss
from repro.core.nodes import RuntimeNode
from repro.core.optimizer import SGD
from repro.graph.computation_graph import ComputationGraph
from repro.graph.ordering import backward_priorities, forward_priorities
from repro.observability.metrics import get_registry
from repro.resilience.faults import active_plan
from repro.resilience.retry import RetryPolicy
from repro.scheduler.engine import LOWEST_PRIORITY, TaskEngine
from repro.scheduler.serial import SerialEngine
from repro.scheduler.strategies import make_scheduler
from repro.scheduler.task import Task, TaskState, force
from repro.tensor.fft_cache import TransformCache
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_array3

__all__ = ["Network"]

InputsLike = Union[np.ndarray, Mapping[str, np.ndarray]]


class Network:
    """A trainable ConvNet over an arbitrary computation graph.

    Parameters
    ----------
    graph:
        The computation graph (shapes need not be propagated yet).
    input_shape:
        Shape of the input image(s); all input nodes share it.
    conv_mode:
        ``"direct"``, ``"fft"``, ``"auto"`` (layerwise autotuning), or a
        per-edge-name dict.
    memoize:
        Enable FFT memoization (Table II "(Memoized)").
    optimizer:
        An :class:`repro.core.SGD` instance.
    loss:
        Loss name or instance (see :mod:`repro.core.loss`).
    num_workers:
        1 → deterministic serial engine; >1 → threaded
        :class:`TaskEngine` with that many workers.
    scheduler:
        Scheduling strategy name: ``"priority"`` (paper), ``"fifo"``,
        ``"lifo"``, ``"work-stealing"``.
    seed:
        Seed for weight init and dropout.
    recorder:
        Optional :class:`repro.scheduler.TraceRecorder` capturing every
        executed task (see ``repro.scheduler.instrumentation``).
    fft_fast_sizes:
        Pad FFT transforms up to 5-smooth sizes (faster transforms,
        slightly more memory; results are bit-compatible to ~1e-12).
    deterministic_sums:
        Reduce convergent-node sums in fixed edge order
        (:class:`repro.sync.OrderedSum`) so results are bitwise
        identical across worker counts and schedules, at slightly
        higher memory (all contributions held until a node completes).
    retry_policy:
        Optional :class:`repro.resilience.RetryPolicy` handed to the
        engine: failed tasks re-execute with exponential backoff and
        (threaded engine only) tasks stuck past ``timeout`` are
        abandoned and re-issued.  See ``docs/robustness.md``.
    """

    def __init__(self, graph: ComputationGraph,
                 input_shape,
                 conv_mode: Union[str, Dict[str, str]] = "direct",
                 memoize: bool = True,
                 optimizer: Optional[SGD] = None,
                 loss: Union[str, Loss] = "euclidean",
                 num_workers: int = 1,
                 scheduler: str = "priority",
                 seed: SeedLike = None,
                 recorder=None,
                 fft_fast_sizes: bool = False,
                 deterministic_sums: bool = False,
                 retry_policy: Optional[RetryPolicy] = None) -> None:
        graph.validate()
        graph.propagate_shapes(input_shape)
        self.graph = graph
        self.optimizer = optimizer if optimizer is not None else SGD()
        self.loss = get_loss(loss)
        self.cache = TransformCache(enabled=memoize)
        self.rng = as_generator(seed)

        # Resolve per-edge convolution modes.
        if conv_mode == "auto":
            from repro.core.autotune import autotune_graph
            modes: Dict[str, str] = autotune_graph(graph)
        elif isinstance(conv_mode, str):
            if conv_mode not in ("direct", "fft"):
                raise ValueError(
                    f"conv_mode must be direct|fft|auto, got {conv_mode!r}")
            modes = {e.name: conv_mode for e in graph.edges.values()
                     if e.kind == "conv"}
        else:
            modes = dict(conv_mode)
        self.conv_modes = modes

        # Runtime nodes and edges.
        self.nodes: Dict[str, RuntimeNode] = {
            name: RuntimeNode(spec) for name, spec in graph.nodes.items()}
        self.edges: Dict[str, RuntimeEdge] = {}
        for name, spec in graph.edges.items():
            edge = make_runtime_edge(
                spec, self.nodes[spec.src], self.nodes[spec.dst],
                mode=modes.get(name, "direct"), cache=self.cache,
                rng=self.rng, fast_sizes=fft_fast_sizes)
            self.edges[name] = edge
            self.nodes[spec.src].out_edges.append(edge)
            self.nodes[spec.dst].in_edges.append(edge)
        for node in self.nodes.values():
            node.wire(deterministic=deterministic_sums)
        for edge in self.edges.values():
            if isinstance(edge, ConvEdge):
                edge.on_degrade = self._record_degraded_edge

        fp = forward_priorities(graph)
        bp = backward_priorities(graph)
        for name, edge in self.edges.items():
            edge.fwd_priority = fp[name]
            edge.bwd_priority = bp[name]

        self.input_nodes = [n for n in self.nodes.values() if n.is_input]
        self.output_nodes = [n for n in self.nodes.values() if n.is_output]

        # Engine.
        self.num_workers = int(num_workers)
        if self.num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        if self.num_workers == 1:
            self.engine = SerialEngine(
                scheduler=make_scheduler(scheduler, 1), recorder=recorder,
                retry_policy=retry_policy)
        else:
            try:
                plan = active_plan()
                if plan is not None:
                    plan.check("engine-start", "engine-start")
                self.engine = TaskEngine(
                    self.num_workers,
                    scheduler=make_scheduler(scheduler, self.num_workers),
                    recorder=recorder, retry_policy=retry_policy).start()
            except Exception as exc:
                # Graceful degradation: a broken parallel runtime must
                # not kill the run — fall back to the serial engine.
                get_registry().counter("resilience.engine_degraded").inc()
                warnings.warn(
                    f"parallel engine failed to start "
                    f"({type(exc).__name__}: {exc}); degrading to the "
                    "serial engine", RuntimeWarning, stacklevel=2)
                self.num_workers = 1
                self.engine = SerialEngine(
                    scheduler=make_scheduler(scheduler, 1),
                    recorder=recorder, retry_policy=retry_policy)

        # Round bookkeeping.
        self._lock = threading.Lock()
        self._fwd_done = threading.Event()
        self._bwd_done = threading.Event()
        self._outputs_remaining = 0
        self._inputs_remaining = 0
        self._training = False
        self._targets: Dict[str, np.ndarray] = {}
        self._loss_parts: Dict[str, float] = {}
        self.rounds = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drain pending updates and stop the engine."""
        self.synchronize()
        self.engine.shutdown()

    def __enter__(self) -> "Network":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:  # don't mask the original error with drain failures
            try:
                self.engine.shutdown()
            except BaseException:
                pass

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def forward(self, inputs: InputsLike) -> Dict[str, np.ndarray]:
        """Run one forward pass; returns {output node name: image}."""
        self._begin_round(training=False)
        self._seed_forward(inputs)
        self._await(self._fwd_done, "forward pass")
        return {n.name: np.array(n.fwd_image) for n in self.output_nodes}

    # deterministic
    def train_step(self, inputs: InputsLike,
                   targets: InputsLike) -> float:
        """One round of gradient learning (steps 1–5 of Section III).

        Returns the loss value.  Weight updates may still be pending
        when this returns (they are FORCEd by the next round or drained
        by :meth:`synchronize`) — the paper's deferred-update design.
        """
        self._begin_round(training=True)
        self._targets = self._normalize_targets(targets)
        self._seed_forward(inputs)
        self._await(self._bwd_done, "training round")
        self.rounds += 1
        return self._loss_value()

    def _loss_value(self) -> float:
        """Round loss: per-node parts reduced in sorted-name order so
        the value is schedule-independent."""
        with self._lock:
            parts = dict(self._loss_parts)
        total = 0.0
        for name in sorted(parts):
            total += parts[name]
        return total

    def synchronize(self) -> None:
        """Execute every pending update task (steal-or-wait)."""
        if isinstance(self.engine, SerialEngine):
            self.engine.run_until_idle()
            return
        for edge in self.edges.values():
            task = edge.update_task
            if task is None:
                continue
            if task.try_steal():
                task.execute()
            else:
                while task.state is not TaskState.COMPLETED:
                    if self.engine.errors:
                        raise self.engine.errors[0]
                    threading.Event().wait(0.0005)

    def outputs(self) -> Dict[str, np.ndarray]:
        """Output images of the most recent forward pass."""
        return {n.name: np.array(n.fwd_image) for n in self.output_nodes
                if n.fwd_image is not None}

    def kernels(self) -> Dict[str, np.ndarray]:
        """Current kernel of every convolution edge (copies)."""
        return {name: np.array(e.kernel.array)
                for name, e in self.edges.items() if hasattr(e, "kernel")}

    def biases(self) -> Dict[str, float]:
        """Current bias of every transfer edge."""
        return {name: e.bias for name, e in self.edges.items()
                if hasattr(e, "bias")}

    def set_kernel(self, edge_name: str, kernel: np.ndarray) -> None:
        """Overwrite one conv edge's kernel (e.g. to copy weights
        between a max-pooling net and its max-filtering equivalent)."""
        edge = self.edges[edge_name]
        if not hasattr(edge, "kernel"):
            raise ValueError(f"edge {edge_name!r} has no kernel")
        arr = np.asarray(kernel, dtype=np.float64)
        if arr.shape != edge.kernel.array.shape:
            raise ValueError(
                f"kernel shape {arr.shape} != {edge.kernel.array.shape}")
        edge.kernel.array[...] = arr

    def set_bias(self, edge_name: str, bias: float) -> None:
        edge = self.edges[edge_name]
        if not hasattr(edge, "bias"):
            raise ValueError(f"edge {edge_name!r} has no bias")
        edge.bias = float(bias)

    def share_kernels(self, edge_names) -> SharedKernel:
        """Make the named conv edges share one kernel parameter (the
        scale-invariant weight-sharing extension).  The first edge's
        kernel becomes the shared one."""
        names = list(edge_names)
        if len(names) < 2:
            raise ValueError("need at least two edges to share")
        first = self.edges[names[0]]
        if not hasattr(first, "kernel"):
            raise ValueError(f"edge {names[0]!r} has no kernel")
        shared = first.kernel
        for name in names[1:]:
            edge = self.edges[name]
            if not hasattr(edge, "kernel"):
                raise ValueError(f"edge {name!r} has no kernel")
            if edge.kernel.array.shape != shared.array.shape:
                raise ValueError("shared kernels must have equal shapes")
            edge.kernel = shared
        return shared

    def set_learning_rate(self, learning_rate: float) -> None:
        """Replace the optimizer's global learning rate (used by
        learning-rate schedules; momentum state is preserved on the
        edges, which own it)."""
        import dataclasses

        self.optimizer = dataclasses.replace(self.optimizer,
                                             learning_rate=learning_rate)

    def _record_degraded_edge(self, edge: ConvEdge) -> None:
        """FFT-fallback hook: keep the autotune state (``conv_modes``)
        in sync with the mode each edge actually executes, so
        inspection and re-planning tooling see the truth."""
        self.conv_modes[edge.name] = "direct"

    def set_training(self, training: bool) -> None:
        """Toggle train/inference behaviour of dropout edges."""
        for edge in self.edges.values():
            if hasattr(edge, "training"):
                edge.training = bool(training)

    # ------------------------------------------------------------------
    # round machinery
    # ------------------------------------------------------------------

    def _normalize_inputs(self, inputs: InputsLike) -> Dict[str, np.ndarray]:
        if isinstance(inputs, Mapping):
            images = {k: check_array3(v, f"input {k!r}") for k, v in inputs.items()}
        else:
            if len(self.input_nodes) != 1:
                raise ValueError(
                    f"network has {len(self.input_nodes)} input nodes; "
                    "pass a dict of inputs")
            images = {self.input_nodes[0].name:
                      check_array3(inputs, "input")}
        for node in self.input_nodes:
            if node.name not in images:
                raise ValueError(f"missing input for node {node.name!r}")
            if images[node.name].shape != node.shape:
                raise ValueError(
                    f"input {node.name!r} has shape "
                    f"{images[node.name].shape}, expected {node.shape}")
        return images

    def _normalize_targets(self, targets: InputsLike) -> Dict[str, np.ndarray]:
        if isinstance(targets, Mapping):
            imgs = {k: check_array3(v, f"target {k!r}") for k, v in targets.items()}
        else:
            if len(self.output_nodes) != 1:
                raise ValueError(
                    f"network has {len(self.output_nodes)} output nodes; "
                    "pass a dict of targets")
            imgs = {self.output_nodes[0].name: check_array3(targets, "target")}
        for node in self.output_nodes:
            if node.name not in imgs:
                raise ValueError(f"missing target for node {node.name!r}")
            if imgs[node.name].shape != node.shape:
                raise ValueError(
                    f"target {node.name!r} has shape "
                    f"{imgs[node.name].shape}, expected {node.shape}")
        return imgs

    def _begin_round(self, training: bool) -> None:
        if getattr(self.engine, "errors", None):
            raise self.engine.errors[0]
        self.cache.next_round()
        for node in self.nodes.values():
            node.reset_round()
        with self._lock:
            self._training = training
            self._outputs_remaining = len(self.output_nodes)
            self._inputs_remaining = len(self.input_nodes)
            self._loss_parts = {}
        self._fwd_done.clear()
        self._bwd_done.clear()

    def _seed_forward(self, inputs: InputsLike) -> None:
        images = self._normalize_inputs(inputs)

        def provider() -> None:
            for node in self.input_nodes:
                node.fwd_image = images[node.name].copy()
                self._node_forward_complete(node)

        self.engine.spawn(provider, priority=-1, name="provider")
        if isinstance(self.engine, SerialEngine):
            self.engine.run_until_idle()

    def _await(self, event: threading.Event, what: str,
               timeout: float = 300.0) -> None:
        if isinstance(self.engine, SerialEngine):
            self.engine.run_until_idle()
            if not event.is_set():
                raise RuntimeError(f"{what} did not complete (queue drained)")
            return
        deadline = timeout
        step = 0.05
        waited = 0.0
        while not event.wait(step):
            if self.engine.errors:
                raise self.engine.errors[0]
            waited += step
            if waited >= deadline:
                raise TimeoutError(f"{what} did not complete in {deadline}s")

    # -- forward -----------------------------------------------------------

    def _spawn_forward_task(self, edge: RuntimeEdge) -> None:
        """Queue the FORWARD-TASK of Algorithm 1 for *edge*."""

        def forward_task() -> None:
            # FORCE the pending update (from the previous round) and run
            # DO-FORWARD afterwards, on whichever thread wins.
            subtask = Task(lambda: self._do_forward(edge),
                           name=f"do-fwd:{edge.name}")
            force(edge.update_task, subtask)

        self.engine.spawn(forward_task, priority=edge.fwd_priority,
                          name=f"fwd:{edge.name}")

    def _do_forward(self, edge: RuntimeEdge) -> None:
        contribution = edge.forward(edge.src.fwd_image)
        if edge.dst.add_forward(edge, contribution):
            edge.dst.finalize_forward()
            self._node_forward_complete(edge.dst)

    def _node_forward_complete(self, node: RuntimeNode) -> None:
        if node.is_output:
            self._output_ready(node)
            return
        for out_edge in node.out_edges:
            self._spawn_forward_task(out_edge)

    def _output_ready(self, node: RuntimeNode) -> None:
        with self._lock:
            self._outputs_remaining -= 1
            last = self._outputs_remaining == 0
            training = self._training
        if not training:
            if last:
                self._fwd_done.set()
            return
        if self.loss.per_node:
            self._spawn_lossgrad(node)
            if last:
                self._fwd_done.set()
        elif last:
            self._spawn_joint_lossgrad()
            self._fwd_done.set()

    # -- loss gradient -------------------------------------------------------

    def _spawn_lossgrad(self, node: RuntimeNode) -> None:
        def lossgrad() -> None:
            value, grad = self.loss.node_value_and_gradient(
                node.fwd_image, self._targets[node.name])
            with self._lock:
                self._loss_parts[node.name] = value
            node.bwd_image = grad
            self._node_backward_complete(node)

        self.engine.spawn(lossgrad, priority=-1,
                          name=f"lossgrad:{node.name}")

    def _spawn_joint_lossgrad(self) -> None:
        def lossgrad() -> None:
            outputs = {n.name: n.fwd_image for n in self.output_nodes}
            value, grads = self.loss.joint_value_and_gradient(
                outputs, self._targets)
            with self._lock:
                self._loss_parts["__joint__"] = value
            for n in self.output_nodes:
                n.bwd_image = grads[n.name]
                self._node_backward_complete(n)

        self.engine.spawn(lossgrad, priority=-1, name="lossgrad:joint")

    # -- backward -------------------------------------------------------------

    def _node_backward_complete(self, node: RuntimeNode) -> None:
        if node.is_input:
            with self._lock:
                self._inputs_remaining -= 1
                last = self._inputs_remaining == 0
            if last:
                self._bwd_done.set()
            return
        for in_edge in node.in_edges:
            self.engine.spawn(lambda e=in_edge: self._backward_task(e),
                              priority=in_edge.bwd_priority,
                              name=f"bwd:{in_edge.name}")

    def _backward_task(self, edge: RuntimeEdge) -> None:
        contribution = edge.backward(edge.dst.bwd_image)
        if edge.is_trainable:
            update_fn = edge.capture_update(self.optimizer)
            task = Task(update_fn, priority=LOWEST_PRIORITY,
                        name=f"upd:{edge.name}")
            edge.update_task = task
            self.engine.submit(task)
        if edge.src.add_backward(edge, contribution):
            edge.src.finalize_backward()
            self._node_backward_complete(edge.src)
