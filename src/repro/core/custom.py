"""User-defined edge operations (Section XI).

"ZNN's task parallelism allows for easy extensions by simply providing
serial functions for the forward and backward pass, as well as the
gradient computation, if required."  This module is that extension
point: register a :class:`CustomOp` — plain serial numpy functions —
and use it in any computation graph via ``kind="custom"`` edges; the
engine parallelises *across* tasks exactly as for built-in edges.

Example — a voxelwise squaring op::

    register_custom_op(CustomOp(
        name="square",
        forward=lambda x, state: x * x,
        backward=lambda g, x, y, state: 2.0 * x * g,
    ))
    graph.add_edge("sq", "a", "b", "custom", op="square")

The forward receives the input image and a per-edge ``state`` dict it
may stash anything in (argmax positions, masks, …); the backward
receives the upstream gradient, the forward input and output, and the
same state.  ``output_shape`` defaults to shape-preserving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from repro.utils.shapes import Shape3, as_shape3

__all__ = ["CustomOp", "register_custom_op", "get_custom_op",
           "unregister_custom_op", "registered_custom_ops"]

ForwardFn = Callable[[np.ndarray, dict], np.ndarray]
BackwardFn = Callable[[np.ndarray, np.ndarray, np.ndarray, dict], np.ndarray]
ShapeFn = Callable[[Shape3], Shape3]


@dataclass(frozen=True)
class CustomOp:
    """A user-provided edge operation.

    Attributes
    ----------
    name:
        Registry key referenced by ``EdgeSpec.op``.
    forward:
        ``(input_image, state) -> output_image``.
    backward:
        ``(grad_output, forward_input, forward_output, state) ->
        grad_input``.
    output_shape:
        ``input_shape -> output_shape`` (defaults to identity).
    """

    name: str
    forward: ForwardFn
    backward: BackwardFn
    output_shape: Optional[ShapeFn] = None

    def shape(self, input_shape) -> Shape3:
        s = as_shape3(input_shape, name="input_shape")
        if self.output_shape is None:
            return s
        return as_shape3(self.output_shape(s), name="output_shape")


_REGISTRY: Dict[str, CustomOp] = {}


def register_custom_op(op: CustomOp, replace: bool = False) -> CustomOp:
    """Add *op* to the registry (``replace=True`` to overwrite)."""
    if not op.name:
        raise ValueError("custom op needs a non-empty name")
    if op.name in _REGISTRY and not replace:
        raise ValueError(f"custom op {op.name!r} already registered")
    _REGISTRY[op.name] = op
    return op


def unregister_custom_op(name: str) -> None:
    _REGISTRY.pop(name, None)


def get_custom_op(name: str) -> CustomOp:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown custom op {name!r}; registered: "
            f"{sorted(_REGISTRY)}") from None


def registered_custom_ops() -> list:
    return sorted(_REGISTRY)
