"""Dense-output inference and the sliding-window equivalence (Fig 2).

A max-pooling ConvNet with field of view ``v`` produces one output
voxel.  Sliding it over every valid window of an ``n^3`` image yields a
dense ``(n - v + 1)^3`` output — useful for boundary detection and
segmentation, but computationally wasteful done literally.  The paper's
efficient equivalent replaces each max-pooling with a *max-filtering*
and dilates all subsequent convolutions by the accumulated pooling
factor (skip-kernels / filter rarefaction); the resulting net computes
the identical dense output in one pass.

This module provides:

* :func:`sliding_window_forward` — the naive reference: apply a
  window-sized network at every offset (only sane for small inputs;
  used to *prove* the equivalence in tests and examples);
* :func:`dense_equivalent_network` — build the max-filter twin of a
  max-pooling network and copy its weights (edge names are preserved by
  the builder, so the mapping is by name);
* :func:`copy_parameters` — kernel/bias transfer between structurally
  matching networks;
* :func:`sparse_lattice` — subsample a dense output on the period-``s``
  lattice the paper calls "sparse training";
* :func:`dense_network_field_of_view` / :func:`pooling_period` — shape
  algebra of the dense twin straight from the layered spec (no network
  build needed), per axis, so anisotropic pooling factors such as
  ``(1, 2, 2)`` — ubiquitous for serial-section EM volumes whose z
  resolution is coarser — dilate each axis independently.

Pooling factors, kernels and windows may all be anisotropic (scalars,
3-tuples, or per-layer lists of either); every computation here is
per-axis.  2D networks are the ``(1, n, n)`` special case with
``(1, p, p)`` windows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.network import Network
from repro.graph.builders import LayeredSpec, build_layered_network, \
    pool_to_filter_spec
from repro.utils.shapes import Shape3, as_shape3, field_of_view
from repro.utils.validation import check_array3

__all__ = [
    "sliding_window_forward",
    "dense_equivalent_network",
    "dense_network_field_of_view",
    "pooling_period",
    "copy_parameters",
    "sparse_lattice",
]


def sliding_window_forward(window_network: Network, image: np.ndarray,
                           output_node: Optional[str] = None) -> np.ndarray:
    """Naive dense inference: run *window_network* (which must produce a
    single output voxel) at every valid offset of *image*.

    Returns an ``(n - v + 1)`` dense output per dimension, where ``v``
    is the network's field of view.
    """
    img = check_array3(image, "image")
    outs = window_network.output_nodes
    if output_node is None:
        if len(outs) != 1:
            raise ValueError("network has multiple outputs; name one")
        output_node = outs[0].name
    out_shape = window_network.nodes[output_node].shape
    if out_shape != (1, 1, 1):
        raise ValueError(
            f"window network must output a single voxel, got {out_shape}")
    v = window_network.input_nodes[0].shape
    dense_shape = tuple(n - vd + 1 for n, vd in zip(img.shape, v))
    if any(d <= 0 for d in dense_shape):
        raise ValueError(f"image {img.shape} smaller than field of view {v}")
    dense = np.empty(dense_shape, dtype=np.float64)
    for z in range(dense_shape[0]):
        for y in range(dense_shape[1]):
            for x in range(dense_shape[2]):
                window = img[z:z + v[0], y:y + v[1], x:x + v[2]]
                dense[z, y, x] = window_network.forward(window)[output_node][0, 0, 0]
    return dense


def copy_parameters(src: Network, dst: Network) -> int:
    """Copy kernels and biases from *src* to *dst* by edge name.

    Returns the number of parameters copied; raises if a trainable
    edge of *dst* has no counterpart in *src*.
    """
    copied = 0
    src_kernels = {n: e for n, e in src.edges.items() if hasattr(e, "kernel")}
    src_biases = {n: e for n, e in src.edges.items() if hasattr(e, "bias")}
    for name, edge in dst.edges.items():
        if hasattr(edge, "kernel"):
            if name not in src_kernels:
                raise KeyError(f"no source kernel for edge {name!r}")
            dst.set_kernel(name, src_kernels[name].kernel.array)
            copied += 1
        elif hasattr(edge, "bias"):
            if name not in src_biases:
                raise KeyError(f"no source bias for edge {name!r}")
            dst.set_bias(name, src_biases[name].bias)
            copied += 1
    return copied


def _dense_layer_stack(spec: str, **builder_kwargs
                       ) -> List[Tuple[str, Shape3, Shape3]]:
    """(kind, window, sparsity) stack of the dense-equivalent twin of
    *spec*, honouring per-axis (anisotropic) kernels/windows and the
    skip-kernel sparsity compounding of Fig 2.

    An explicit ``sparsity_schedule`` overrides the automatic rule for
    C layers, exactly as in :func:`build_layered_network`.
    """
    schedule = builder_kwargs.pop("sparsity_schedule", None)
    builder_kwargs.pop("skip_kernels", None)  # the twin always dilates
    filter_spec = pool_to_filter_spec(spec)
    parsed = LayeredSpec(filter_spec, skip_kernels=True, **builder_kwargs)
    explicit = None
    if schedule is not None:
        explicit = [as_shape3(s, name="sparsity") for s in schedule]
        if len(explicit) != parsed.spec.count("C"):
            raise ValueError(
                "sparsity_schedule must have one entry per C layer")
    layers: List[Tuple[str, Shape3, Shape3]] = []
    sparsity: Shape3 = (1, 1, 1)
    ci = wi = 0
    for c in parsed.spec:
        if c == "C":
            conv_sparsity = explicit[ci] if explicit is not None else sparsity
            layers.append(("conv", parsed.kernels[ci], conv_sparsity))
            ci += 1
        elif c == "M":
            w = parsed.windows[wi]
            layers.append(("filter", w, sparsity))
            sparsity = tuple(s * wd for s, wd in zip(sparsity, w))  # type: ignore[assignment]
            wi += 1
    return layers


def dense_network_field_of_view(spec: str, **builder_kwargs) -> Shape3:
    """Per-axis field of view of the dense-equivalent twin of *spec*,
    computed from the layered spec alone (no network build).

    This is the minimum input size of the twin, and the halo a tiled
    dense inference must extend each input block by
    (``input = output + fov - 1`` per axis).  Anisotropic kernels,
    windows and sparsity schedules are handled per axis.
    """
    return field_of_view(_dense_layer_stack(spec, **builder_kwargs))


def pooling_period(spec: str, window=2) -> Shape3:
    """Per-axis product of the pooling/filtering windows of *spec* —
    the period of the sparse-training lattice (Section II) and the
    stride at which the original pooling network samples the dense
    twin's output."""
    spec = spec.upper()
    n_window = sum(spec.count(c) for c in "MP")
    windows = LayeredSpec._per_layer_shapes(window, max(n_window, 1),
                                            "window")
    period: Shape3 = (1, 1, 1)
    wi = 0
    for c in spec:
        if c in "MP":
            w = as_shape3(windows[wi], name="window")
            period = tuple(p * wd for p, wd in zip(period, w))  # type: ignore[assignment]
            wi += 1
    return period


def dense_equivalent_network(pool_network: Network, spec: str,
                             input_shape,
                             conv_mode: str = "direct",
                             **builder_kwargs) -> Network:
    """Build the max-filtering + sparse-convolution twin of a
    max-pooling network built from *spec*, with weights copied.

    *spec* and *builder_kwargs* must match the arguments the pooling
    network was built with (the builder keeps conv/transfer edge names
    stable under the P→M substitution).  Kernels and pooling windows
    may be anisotropic; each axis dilates by its own accumulated
    pooling factor.  The input must cover the twin's field of view on
    every axis — violations raise an explicit per-axis error rather
    than a downstream shape failure.
    """
    network_kwargs = {k: builder_kwargs.pop(k)
                      for k in ("memoize", "fft_fast_sizes",
                                "deterministic_sums", "num_workers", "seed")
                      if k in builder_kwargs}
    fov = dense_network_field_of_view(spec, **builder_kwargs)
    shape = as_shape3(input_shape, name="input_shape")
    if any(n < f for n, f in zip(shape, fov)):
        raise ValueError(
            f"input {shape} smaller than the dense twin's field of view "
            f"{fov} (per-axis minimum input size)")
    filter_spec = pool_to_filter_spec(spec)
    graph = build_layered_network(filter_spec, skip_kernels=True,
                                  **builder_kwargs)
    dense = Network(graph, input_shape=shape, conv_mode=conv_mode,
                    **network_kwargs)
    copy_parameters(pool_network, dense)
    return dense


def sparse_lattice(dense: np.ndarray, period: int | Sequence[int],
                   offset: int | Sequence[int] = 0) -> np.ndarray:
    """Subsample a dense output on a period-``s`` lattice ("sparse
    training" produces predictions exactly on such a lattice)."""
    d = check_array3(dense, "dense")
    p = as_shape3(period, name="period")
    if isinstance(offset, int):
        start = (offset, offset, offset)
    else:
        # Promote like as_shape3, but promoted leading axes get offset
        # 0 (there is nothing to shift along a singleton axis).
        start = tuple(int(v) for v in offset)
        if len(start) in (1, 2):
            start = (0,) * (3 - len(start)) + start
        if len(start) != 3:
            raise ValueError(
                f"offset must be an int or 1–3 ints, got {offset!r}")
    if any(s < 0 for s in start):
        raise ValueError(f"offset must be >= 0, got {start}")
    return np.ascontiguousarray(
        d[start[0]:: p[0], start[1]:: p[1], start[2]:: p[2]])
