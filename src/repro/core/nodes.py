"""Runtime node state (the images living at computation-graph nodes).

Each node owns a forward and a backward accumulator (the paper's
``fwd_sum``/``bwd_sum``, instances of the wait-free
:class:`repro.sync.ConcurrentSum`), the finalized forward/backward
images, and — in FFT mode — the spectral-vs-spatial *domain* in which
each accumulator operates:

ZNN accumulates the convergent convolutions of an FFT layer in the
Fourier domain and performs a single inverse transform per node (this
is where the ``f'`` inverse-FFT term of Table II comes from), so when
*all* edges entering (resp. leaving) a node are FFT-mode convolutions
with a common transform size, the node's forward (resp. backward) sum
holds half-spectra and ``finalize`` applies the inverse transform +
crop.  Otherwise contributions are summed spatially.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.graph.computation_graph import NodeSpec
from repro.sync.summation import ConcurrentSum, OrderedSum

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.edges import RuntimeEdge

__all__ = ["RuntimeNode"]


class RuntimeNode:
    """Mutable per-round state for one computation-graph node."""

    __slots__ = ("spec", "shape", "in_edges", "out_edges",
                 "fwd_sum", "bwd_sum", "fwd_image", "bwd_image",
                 "forward_domain", "backward_domain",
                 "_in_index", "_out_index")

    def __init__(self, spec: NodeSpec) -> None:
        if spec.shape is None:
            raise ValueError(f"node {spec.name!r} has no shape; "
                             "propagate_shapes() first")
        self.spec = spec
        self.shape = spec.shape
        self.in_edges: List["RuntimeEdge"] = []
        self.out_edges: List["RuntimeEdge"] = []
        self.fwd_sum: Optional[ConcurrentSum] = None
        self.bwd_sum: Optional[ConcurrentSum] = None
        self.fwd_image: Optional[np.ndarray] = None
        self.bwd_image: Optional[np.ndarray] = None
        self.forward_domain = "spatial"
        self.backward_domain = "spatial"
        self._in_index = {}
        self._out_index = {}

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_input(self) -> bool:
        return not self.in_edges

    @property
    def is_output(self) -> bool:
        return not self.out_edges

    def wire(self, deterministic: bool = False) -> None:
        """Create the accumulators and decide sum domains.  Called once
        after all runtime edges are attached.

        ``deterministic=True`` uses :class:`repro.sync.OrderedSum` —
        contributions are reduced in fixed edge order, making results
        bitwise identical across thread counts and schedules (at the
        cost of holding all contributions until the node completes).
        """
        sum_cls = OrderedSum if deterministic else ConcurrentSum
        self._in_index = {id(e): i for i, e in enumerate(self.in_edges)}
        self._out_index = {id(e): i for i, e in enumerate(self.out_edges)}
        if self.in_edges:
            self.fwd_sum = sum_cls(len(self.in_edges))
            plans = [e.plan for e in self.in_edges
                     if getattr(e, "mode", None) == "fft"]
            if (len(plans) == len(self.in_edges)
                    and len({p.transform_shape for p in plans}) == 1):
                self.forward_domain = "spectral"
        if self.out_edges:
            self.bwd_sum = sum_cls(len(self.out_edges))
            plans = [e.plan for e in self.out_edges
                     if getattr(e, "mode", None) == "fft"]
            if (len(plans) == len(self.out_edges)
                    and len({p.transform_shape for p in plans}) == 1):
                self.backward_domain = "spectral"

    def reset_round(self) -> None:
        """Prepare the accumulators for the next training round."""
        if self.fwd_sum is not None:
            self.fwd_sum.reset()
        if self.bwd_sum is not None:
            self.bwd_sum.reset()

    def add_forward(self, edge, contribution: np.ndarray) -> bool:
        """Contribute *edge*'s forward output; True when complete."""
        assert self.fwd_sum is not None
        if isinstance(self.fwd_sum, OrderedSum):
            return self.fwd_sum.add(contribution, self._in_index[id(edge)])
        return self.fwd_sum.add(contribution)

    def add_backward(self, edge, contribution: np.ndarray) -> bool:
        """Contribute *edge*'s backward output; True when complete."""
        assert self.bwd_sum is not None
        if isinstance(self.bwd_sum, OrderedSum):
            return self.bwd_sum.add(contribution, self._out_index[id(edge)])
        return self.bwd_sum.add(contribution)

    def finalize_forward(self) -> np.ndarray:
        """Fix the node's forward image from its completed sum."""
        assert self.fwd_sum is not None
        total = self.fwd_sum.get()
        if self.forward_domain == "spectral":
            total = self.in_edges[0].plan.finalize_forward(total)
        self.fwd_image = total
        return total

    def finalize_backward(self) -> np.ndarray:
        """Fix the node's backward image from its completed sum."""
        assert self.bwd_sum is not None
        total = self.bwd_sum.get()
        if self.backward_domain == "spectral":
            total = self.out_edges[0].plan.finalize_backward(total)
        self.bwd_image = total
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RuntimeNode({self.name!r}, shape={self.shape})"
